// Package nocsim is a cycle-accurate 2D-mesh network-on-chip simulator and
// a from-scratch reproduction of "Footprint: Regulating Routing
// Adaptiveness in Networks-on-Chip" (Fu & Kim, ISCA 2017).
//
// The package is the public face of the library: configure a simulation
// with Config, drive it with synthetic traffic patterns, trace files or
// custom injectors, and collect latency/throughput/blocking statistics.
// The Footprint routing algorithm and all of the paper's baselines (DOR,
// Odd-Even, DBAR, and their XORDET variants) are built in; see Algorithms.
//
// Quick start:
//
//	cfg := nocsim.DefaultConfig()         // 8x8 mesh, 10 VCs, Footprint
//	res, err := nocsim.Run(cfg, "uniform", 0.3)
//	fmt.Println(res.AvgLatency(nocsim.ClassBackground))
//
// The experiment harnesses that regenerate every table and figure of the
// paper live in internal/exp and are exposed through the cmd/ tools and
// the repository-root benchmarks.
package nocsim

import (
	"fmt"

	"nocsim/internal/flit"
	"nocsim/internal/routing"
	"nocsim/internal/sim"
	"nocsim/internal/topo"
	"nocsim/internal/trace"
	"nocsim/internal/traffic"
)

// Config parameterizes one simulation; see DefaultConfig for the paper's
// Table 2 baseline.
type Config = sim.Config

// Result summarizes one simulation run.
type Result = sim.Result

// Simulation is a configured network plus its traffic injectors.
type Simulation = sim.Simulation

// Injector produces traffic cycle by cycle; traffic generators and trace
// players implement it.
type Injector = sim.Injector

// Class labels packets for per-class measurement.
type Class = flit.Class

// Packet measurement classes.
const (
	ClassBackground = flit.ClassBackground
	ClassHotspot    = flit.ClassHotspot
)

// Packet is one network message.
type Packet = flit.Packet

// DefaultConfig returns the paper's baseline configuration: 8×8 mesh,
// 10 VCs with 4-flit buffers, internal speedup 2, Footprint routing.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Algorithms lists the available routing algorithms: "footprint", "dbar",
// "oddeven", "dor" and their "+xordet" overlays.
func Algorithms() []string { return routing.Names() }

// Patterns lists the built-in synthetic traffic patterns.
func Patterns() []string { return []string{"uniform", "transpose", "shuffle", "bitcomp"} }

// New assembles a simulation from cfg and injectors; use
// NewUniformInjector / NewPatternInjector / NewTracePlayer to build
// injectors, or implement Injector yourself.
func New(cfg Config, injectors ...Injector) (*Simulation, error) {
	return sim.New(cfg, injectors...)
}

// Run simulates cfg under the named synthetic pattern at the given
// offered load (flits/node/cycle) with single-flit packets and returns
// the measured result.
func Run(cfg Config, pattern string, rate float64) (*Result, error) {
	return RunSized(cfg, pattern, rate, 1, 1)
}

// RunSized is Run with packet sizes drawn uniformly from [minFlits,
// maxFlits].
func RunSized(cfg Config, pattern string, rate float64, minFlits, maxFlits int) (*Result, error) {
	inj, err := NewPatternInjector(cfg, pattern, rate, minFlits, maxFlits)
	if err != nil {
		return nil, err
	}
	if cfg.PprofLabels == nil {
		cfg.PprofLabels = []string{"traffic", pattern, "rate", fmt.Sprintf("%.3f", rate)}
	}
	s, err := sim.New(cfg, inj)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// NewPatternInjector builds a Bernoulli injector of the named pattern at
// the given offered load with packet sizes uniform in [minFlits,
// maxFlits].
func NewPatternInjector(cfg Config, pattern string, rate float64, minFlits, maxFlits int) (Injector, error) {
	p, err := traffic.ByName(pattern, cfg.Mesh())
	if err != nil {
		return nil, err
	}
	var size traffic.SizeFn
	if minFlits == maxFlits {
		size = traffic.FixedSize(minFlits)
	} else {
		size = traffic.UniformSize(minFlits, maxFlits)
	}
	return &traffic.Generator{Pattern: p, Rate: rate, Size: size}, nil
}

// SweepPoint is one injection rate of a latency-throughput curve.
type SweepPoint = sim.SweepPoint

// LatencyThroughput sweeps injection rates (flits/node/cycle) and returns
// the latency-throughput curve of cfg under the named pattern with
// single-flit packets.
func LatencyThroughput(cfg Config, pattern string, rates []float64) ([]SweepPoint, error) {
	return sim.LatencyThroughput(cfg, pattern, traffic.FixedSize(1), rates)
}

// SaturationResult reports a saturation-throughput search.
type SaturationResult = sim.SaturationResult

// SaturationThroughput bisects for the highest stable offered load of cfg
// under the named pattern, to within tol flits/node/cycle.
func SaturationThroughput(cfg Config, pattern string, tol float64) (*SaturationResult, error) {
	return sim.SaturationThroughput(cfg, pattern, traffic.FixedSize(1), tol)
}

// HotspotPoint is one point of a Figure 9-style hotspot experiment.
type HotspotPoint = sim.HotspotPoint

// HotspotCurve measures background-traffic latency while the Table 3
// hotspot flows inject at each rate; cfg must describe an 8×8 mesh.
func HotspotCurve(cfg Config, backgroundRate float64, hotspotRates []float64) ([]HotspotPoint, error) {
	return sim.HotspotCurve(cfg, backgroundRate, hotspotRates)
}

// TraceRecord is one packet of a trace file.
type TraceRecord = trace.Record

// NewTracePlayer returns an injector that replays records, honouring
// their cycles and dependencies.
func NewTracePlayer(records []TraceRecord) Injector { return trace.NewPlayer(records) }

// GeneratePARSEC synthesizes a trace modelled on the named PARSEC
// workload (see ParsecWorkloads) for cfg's mesh.
func GeneratePARSEC(cfg Config, workload string, cycles, seed int64) ([]TraceRecord, error) {
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		return nil, err
	}
	return trace.Generate(w, cfg.Mesh(), cycles, seed), nil
}

// ParsecWorkloads lists the eight PARSEC workload models.
func ParsecWorkloads() []string {
	var names []string
	for _, w := range trace.Workloads() {
		names = append(names, w.Name)
	}
	return names
}

// MergeTraces interleaves traces, remapping IDs so dependencies stay
// intact; the paper pairs two PARSEC workloads this way.
func MergeTraces(traces ...[]TraceRecord) []TraceRecord { return trace.Merge(traces...) }

// PortAdaptiveness returns P_adapt (Equation 1 of the paper) of the named
// algorithm between two nodes of cfg's mesh.
func PortAdaptiveness(cfg Config, algorithm string, src, dest int) (float64, error) {
	alg, err := routing.New(algorithm)
	if err != nil {
		return 0, err
	}
	return routing.PortAdaptiveness(cfg.Mesh(), alg, src, dest), nil
}

// VCAdaptiveness returns VC_adapt (Equation 2) of the named algorithm for
// a non-escape channel with vcs virtual channels.
func VCAdaptiveness(algorithm string, vcs int) (float64, error) {
	alg, err := routing.New(algorithm)
	if err != nil {
		return 0, err
	}
	return routing.VCAdaptiveness(alg, vcs, false), nil
}

// FootprintCostBits returns the Section 4.4 storage overhead in bits per
// router port for a network of nodes endpoints and vcs VCs per channel.
func FootprintCostBits(nodes, vcs int) int {
	return routing.FootprintCost(nodes, vcs).TotalBitsPerPort
}

// Mesh returns the topology described by cfg; node ids are row-major.
func Mesh(cfg Config) topo.Mesh { return cfg.Mesh() }
