package nocsim

import (
	"path/filepath"
	"testing"

	"nocsim/internal/obs"
)

// TestObsOverheadBudget is the CI guard on the telemetry layer's cost.
// The disabled path already differs from a build without the obs seam
// only by cached-bool branches and plain counter increments (benchmarked
// at well under the 5% budget against the pre-obs tree); what can regress
// silently is the full-collector path — an accidental allocation or an
// ungated callback on the hot path shows up here as a blown ratio. The
// bound is deliberately loose (2.5x, best-of-3) so scheduler noise on
// shared CI runners does not flake it; real regressions of that kind are
// order-of-magnitude.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(o obs.Options, monitored bool) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			cfg := benchProfile().BaseConfig()
			cfg.Obs = o
			if monitored {
				cfg.Monitor = obs.NewHub()
				cfg.WatchdogCycles = 2000
				cfg.WatchdogOut = filepath.Join(t.TempDir(), "stall.json")
			}
			res, err := Run(cfg, "uniform", 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stalled {
				t.Fatal("benign overhead run flagged as stalled")
			}
			if cps := res.Runtime.CyclesPerSec; cps > best {
				best = cps
			}
		}
		return best
	}
	disabled := run(obs.Options{}, false)
	enabled := run(obs.Options{Trace: true, SamplePeriod: 100, Heatmap: true}, false)
	if disabled <= 0 || enabled <= 0 {
		t.Fatalf("degenerate rates: disabled %.0f, enabled %.0f cycles/s", disabled, enabled)
	}
	ratio := disabled / enabled
	t.Logf("cycles/s: disabled %.0f, enabled %.0f (%.2fx overhead)", disabled, enabled, ratio)
	if ratio > 2.5 {
		t.Errorf("full telemetry costs %.2fx (budget 2.5x): a hot-path callback lost its gate?", ratio)
	}
	// The live-observability path — monitoring hub plus armed watchdog,
	// heartbeat every 128 cycles — shares the same budget: it is meant to
	// be left on for whole sweeps.
	monitored := run(obs.Options{}, true)
	mratio := disabled / monitored
	t.Logf("cycles/s: monitored %.0f (%.2fx overhead)", monitored, mratio)
	if mratio > 2.5 {
		t.Errorf("hub+watchdog heartbeat costs %.2fx (budget 2.5x): did the beat gate break?", mratio)
	}
}

// TestAnatomyOverheadBudget bounds the anatomy collector's cost under the
// same regime as the full-collector path: 2.5x best-of-3, alternating so
// both paths sample the same host conditions. The anatomy path adds one
// map operation per lifecycle event of measured packets plus one Decision
// construction per (packet, router); a blown ratio means a callback lost
// its wantEvents/wantDecisions gate or the decision walk started
// allocating.
func TestAnatomyOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	one := func(o obs.Options) float64 {
		cfg := benchProfile().BaseConfig()
		cfg.Obs = o
		res, err := Run(cfg, "uniform", 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if o.Anatomy && (res.Anatomy == nil || res.Anatomy.Packets == 0) {
			t.Fatal("anatomy enabled but no aggregate attached")
		}
		return res.Runtime.CyclesPerSec
	}
	var disabled, enabled float64
	for i := 0; i < 3; i++ {
		if cps := one(obs.Options{}); cps > disabled {
			disabled = cps
		}
		if cps := one(obs.Options{Anatomy: true}); cps > enabled {
			enabled = cps
		}
	}
	if disabled <= 0 || enabled <= 0 {
		t.Fatalf("degenerate rates: disabled %.0f, enabled %.0f cycles/s", disabled, enabled)
	}
	ratio := disabled / enabled
	t.Logf("cycles/s: disabled %.0f, anatomy %.0f (%.2fx overhead)", disabled, enabled, ratio)
	if ratio > 2.5 {
		t.Errorf("anatomy collection costs %.2fx (budget 2.5x): an event callback lost its gate?", ratio)
	}
}

// TestPhaseProfilerOverheadBudget bounds the phase profiler's cost. The
// design target is <=5% at the default sampling period (the profiler
// touches one cycle in 64), and quiet hosts measure well under that; the
// asserted bound is 1.5x so shared-runner scheduling noise cannot flake
// the suite while a real regression — per-cycle clock or allocation
// reads escaping the sampling gate, or an accidental ReadMemStats on the
// hot path — still lands far outside it. Runs alternate
// disabled/enabled (best of 3 each) so both paths sample the same host
// conditions.
func TestPhaseProfilerOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	one := func(o obs.Options) float64 {
		cfg := benchProfile().BaseConfig()
		cfg.Obs = o
		res, err := Run(cfg, "uniform", 0.3)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime.CyclesPerSec
	}
	var disabled, profiled float64
	for i := 0; i < 3; i++ {
		if cps := one(obs.Options{}); cps > disabled {
			disabled = cps
		}
		if cps := one(obs.Options{Profile: true}); cps > profiled {
			profiled = cps
		}
	}
	if disabled <= 0 || profiled <= 0 {
		t.Fatalf("degenerate rates: disabled %.0f, profiled %.0f cycles/s", disabled, profiled)
	}
	ratio := disabled / profiled
	t.Logf("cycles/s: disabled %.0f, profiled %.0f (%.2fx overhead, design target 1.05x)", disabled, profiled, ratio)
	if ratio > 1.5 {
		t.Errorf("phase profiler costs %.2fx (budget 1.5x): did sampling-gated reads escape onto the per-cycle path?", ratio)
	}
}
