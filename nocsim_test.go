package nocsim

import "testing"

// quickCfg returns a fast config for facade tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.VCs = 4
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 600, 3000
	return cfg
}

func TestRunQuickstart(t *testing.T) {
	res, err := Run(quickCfg(), "uniform", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Error("low load unstable")
	}
	if lat := res.AvgLatency(ClassBackground); lat <= 0 {
		t.Errorf("latency = %v", lat)
	}
}

func TestRunSizedValidates(t *testing.T) {
	if _, err := Run(quickCfg(), "no-such-pattern", 0.2); err == nil {
		t.Error("unknown pattern accepted")
	}
	cfg := quickCfg()
	cfg.Algorithm = "bogus"
	if _, err := Run(cfg, "uniform", 0.2); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmsAndPatterns(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 10 {
		t.Errorf("Algorithms() = %v, want 10 entries", algs)
	}
	found := false
	for _, a := range algs {
		if a == "footprint" {
			found = true
		}
	}
	if !found {
		t.Error("footprint missing")
	}
	if len(Patterns()) < 4 {
		t.Errorf("Patterns() = %v", Patterns())
	}
}

func TestLatencyThroughputFacade(t *testing.T) {
	pts, err := LatencyThroughput(quickCfg(), "uniform", []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestTraceFacade(t *testing.T) {
	cfg := quickCfg()
	cfg.Width, cfg.Height = 8, 8
	recs, err := GeneratePARSEC(cfg, "dedup", 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	recs2, err := GeneratePARSEC(cfg, "x264", 1500, 8)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeTraces(recs, recs2)
	if len(merged) != len(recs)+len(recs2) {
		t.Fatal("merge lost records")
	}
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1500
	cfg.DrainCycles = 20000
	s, err := New(cfg, NewTracePlayer(merged))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Stable {
		t.Error("light trace pair did not drain")
	}
	if res.MeasuredEjected == 0 {
		t.Error("nothing delivered")
	}
}

func TestGeneratePARSECUnknown(t *testing.T) {
	if _, err := GeneratePARSEC(quickCfg(), "crysis", 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(ParsecWorkloads()) != 8 {
		t.Errorf("ParsecWorkloads() = %v", ParsecWorkloads())
	}
}

func TestAdaptivenessFacade(t *testing.T) {
	cfg := DefaultConfig()
	pa, err := PortAdaptiveness(cfg, "footprint", 0, 27)
	if err != nil || pa != 1.0 {
		t.Errorf("footprint P_adapt = %v, %v", pa, err)
	}
	va, err := VCAdaptiveness("footprint", 10)
	if err != nil || va != 0.9 {
		t.Errorf("footprint VC_adapt = %v, %v", va, err)
	}
	if _, err := PortAdaptiveness(cfg, "bogus", 0, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := VCAdaptiveness("bogus", 10); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestFootprintCostBits(t *testing.T) {
	if bits := FootprintCostBits(64, 16); bits != 101 {
		t.Errorf("cost = %d bits, want 101", bits)
	}
}

func TestHotspotFacadeRejectsSmallMesh(t *testing.T) {
	if _, err := HotspotCurve(quickCfg(), 0.3, []float64{0.1}); err == nil {
		t.Error("4x4 mesh accepted for Table 3 flows")
	}
}

func TestMeshAccessor(t *testing.T) {
	m := Mesh(DefaultConfig())
	if m.Nodes() != 64 {
		t.Errorf("nodes = %d", m.Nodes())
	}
}

func TestSaturationFacade(t *testing.T) {
	cfg := quickCfg()
	sr, err := SaturationThroughput(cfg, "uniform", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput <= 0 || sr.Throughput > 1 {
		t.Errorf("saturation = %v", sr.Throughput)
	}
}
