// Command traces regenerates Figure 10: PARSEC-substitute trace
// experiments — paired-workload latency (a), purity of blocking (b), and
// degree of HoL blocking (c).
//
//	traces
//	traces -profile quick
//	traces -pairs fluidanimate+bodytrack,x264+canneal
//	traces -gen dedup -cycles 20000 -o dedup.trace   # write a trace file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
	"nocsim/internal/topo"
	"nocsim/internal/trace"
)

func main() {
	profile := flag.String("profile", "full", "effort level: full or quick")
	pairs := flag.String("pairs", "", "comma-separated workload pairs, e.g. x264+canneal (default: the built-in set)")
	gen := flag.String("gen", "", "generate a trace file for the named workload and exit")
	cycles := flag.Int64("cycles", 20000, "trace length in cycles (with -gen)")
	seed := flag.Int64("seed", 1, "trace generation seed (with -gen)")
	out := flag.String("o", "", "output file (with -gen)")
	jobs := cli.NewJobs()
	lobs := cli.NewObs("traces")
	anat := cli.NewAnatomy("traces")
	rcache := cli.NewRouteCache("traces")
	flag.Parse()

	if *gen != "" {
		if err := generate(*gen, *cycles, *seed, *out); err != nil {
			fatal(err)
		}
		return
	}

	lobs.Start()
	defer lobs.Close()

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}
	prof.Jobs = *jobs
	anat.Apply(&prof.Obs)
	lobs.ApplyProfile(&prof)
	rcache.ApplyProfile(&prof)

	var pairList [][2]string
	if *pairs != "" {
		for _, p := range strings.Split(*pairs, ",") {
			ab := strings.SplitN(strings.TrimSpace(p), "+", 2)
			if len(ab) != 2 {
				fatal(fmt.Errorf("bad pair %q (want a+b)", p))
			}
			pairList = append(pairList, [2]string{ab[0], ab[1]})
		}
	}

	study, err := exp.Figure10(prof, pairList)
	if err != nil {
		fatal(err)
	}
	fmt.Println(study.Format())
}

func generate(name string, cycles, seed int64, out string) error {
	w, err := trace.WorkloadByName(name)
	if err != nil {
		return err
	}
	records := trace.Generate(w, topo.MustNew(8, 8), cycles, seed)
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := trace.Write(dst, records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "traces: wrote %d records of %s\n", len(records), name)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traces:", err)
	os.Exit(1)
}
