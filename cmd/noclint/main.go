// Command noclint runs the repository's domain-aware static analyzers
// over Go packages: the per-package rules (determinism, exhaustive,
// maporder, routepurity, seedident) and the interprocedural program
// rules (arenaescape, cacheread, rngorder, sinkcap), which resolve
// calls across the whole module at once. It must be run from the
// module root:
//
//	go run ./cmd/noclint ./...
//
// -json emits the findings (suppressed ones included, marked) as a
// JSON array; -waivers lists every //noclint:allow comment with its
// rule and reason without type-checking; -rules prints the suite.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. See internal/lint for the rules and the
// //noclint:allow suppression syntax.
package main

import (
	"os"

	"nocsim/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
