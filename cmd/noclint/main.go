// Command noclint runs the repository's domain-aware static analyzers
// (determinism, exhaustive, maporder, routepurity, seedident) over Go
// packages. It must be run from the module root:
//
//	go run ./cmd/noclint ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. See internal/lint for the rules and the
// //noclint:allow suppression syntax.
package main

import (
	"os"

	"nocsim/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
