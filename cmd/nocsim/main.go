// Command nocsim runs a single network simulation and reports latency,
// throughput and blocking statistics.
//
// Usage:
//
//	nocsim [flags]
//	nocsim -print-config            # show the Table 2 baseline
//	nocsim -alg dbar -pattern transpose -rate 0.35
//	nocsim -width 16 -height 16 -vcs 4 -rate 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"nocsim/internal/exp"
	"nocsim/internal/flit"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

func main() {
	cfg := sim.DefaultConfig()
	flag.IntVar(&cfg.Width, "width", cfg.Width, "mesh width")
	flag.IntVar(&cfg.Height, "height", cfg.Height, "mesh height")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufDepth, "buf", cfg.BufDepth, "flit buffer depth per VC")
	flag.IntVar(&cfg.Speedup, "speedup", cfg.Speedup, "router internal speedup")
	flag.StringVar(&cfg.Algorithm, "alg", cfg.Algorithm, "routing algorithm")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warmup cycles")
	flag.Int64Var(&cfg.MeasureCycles, "measure", cfg.MeasureCycles, "measurement cycles")
	flag.Int64Var(&cfg.DrainCycles, "drain", cfg.DrainCycles, "drain cycle budget")

	pattern := flag.String("pattern", "uniform", "traffic pattern (uniform|transpose|shuffle|bitcomp)")
	rate := flag.Float64("rate", 0.2, "offered load in flits/node/cycle")
	minFlits := flag.Int("min-flits", 1, "minimum packet size")
	maxFlits := flag.Int("max-flits", 1, "maximum packet size")
	printConfig := flag.Bool("print-config", false, "print the configuration (Table 2) and exit")
	heatmap := flag.Bool("heatmap", false, "print a link-utilization heatmap of the measurement window")
	flag.Parse()

	if *printConfig {
		fmt.Print(exp.Table2(cfg))
		return
	}

	p, err := traffic.ByName(*pattern, cfg.Mesh())
	if err != nil {
		fatal(err)
	}
	var size traffic.SizeFn
	if *minFlits == *maxFlits {
		size = traffic.FixedSize(*minFlits)
	} else {
		size = traffic.UniformSize(*minFlits, *maxFlits)
	}
	s, err := sim.New(cfg, &traffic.Generator{Pattern: p, Rate: *rate, Size: size})
	if err != nil {
		fatal(err)
	}
	var probe *sim.UtilizationProbe
	if *heatmap {
		probe = sim.NewUtilizationProbe(s.Network())
	}
	res := s.Run()

	fmt.Printf("algorithm          %s\n", cfg.Algorithm)
	fmt.Printf("mesh               %dx%d, %d VCs\n", cfg.Width, cfg.Height, cfg.VCs)
	fmt.Printf("pattern            %s @ %.3f flits/node/cycle\n", *pattern, *rate)
	fmt.Printf("offered/accepted   %.3f / %.3f flits/node/cycle\n", res.Offered, res.Accepted)
	fmt.Printf("avg latency        %.1f cycles\n", res.AvgLatency(flit.ClassBackground))
	fmt.Printf("p99 latency        %.0f cycles\n", res.P99)
	fmt.Printf("stable             %v (%d/%d measured packets delivered)\n",
		res.Stable, res.MeasuredEjected, res.Measured)
	fmt.Printf("blocking           %d events, purity %.3f, HoL degree %.1f\n",
		res.BlockEvents, res.Purity, res.HoLDegree)
	if probe != nil {
		snap := probe.Snapshot(cfg.Mesh())
		fmt.Printf("\nmean link utilization %.3f over %d cycles (whole run)\n", snap.Mean(), snap.Cycles)
		fmt.Print(snap.Heatmap(cfg.Mesh()))
		fmt.Println("hottest links:")
		for _, l := range snap.Hottest(5) {
			fmt.Printf("  n%-3d -%s-> n%-3d %.3f flits/cycle\n", l.From, l.Dir, l.To, l.Utilization)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
