// Command nocsim runs a single network simulation and reports latency,
// throughput and blocking statistics.
//
// Usage:
//
//	nocsim [flags]
//	nocsim -print-config            # show the Table 2 baseline
//	nocsim -alg dbar -pattern transpose -rate 0.35
//	nocsim -rates 0.1,0.2,0.3 -jobs 4  # parallel mini-sweep, one row per rate
//	nocsim -width 16 -height 16 -vcs 4 -rate 0.2
//	nocsim -trace-out trace.json    # Perfetto-loadable lifecycle trace
//	nocsim -heatmap-out links.csv   # measurement-window link heatmap
//	nocsim -counters-out ts.csv -sample-period 100
//	nocsim -obs-addr localhost:9090 # live /metrics, /status, /snapshot
//	nocsim -watchdog-cycles 5000    # dump a fabric snapshot on stalls
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
	"nocsim/internal/flit"
	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

func main() {
	cfg := sim.DefaultConfig()
	flag.IntVar(&cfg.Width, "width", cfg.Width, "mesh width")
	flag.IntVar(&cfg.Height, "height", cfg.Height, "mesh height")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufDepth, "buf", cfg.BufDepth, "flit buffer depth per VC")
	flag.IntVar(&cfg.Speedup, "speedup", cfg.Speedup, "router internal speedup")
	flag.StringVar(&cfg.Algorithm, "alg", cfg.Algorithm, "routing algorithm")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warmup cycles")
	flag.Int64Var(&cfg.MeasureCycles, "measure", cfg.MeasureCycles, "measurement cycles")
	flag.Int64Var(&cfg.DrainCycles, "drain", cfg.DrainCycles, "drain cycle budget")

	pattern := flag.String("pattern", "uniform", "traffic pattern (uniform|transpose|shuffle|bitcomp)")
	rate := flag.Float64("rate", 0.2, "offered load in flits/node/cycle")
	rates := flag.String("rates", "", "comma-separated rate grid, e.g. 0.1,0.2,0.3: run a latency-throughput sweep on the -jobs worker pool instead of a single simulation")
	jobs := cli.NewJobs()
	minFlits := flag.Int("min-flits", 1, "minimum packet size")
	maxFlits := flag.Int("max-flits", 1, "maximum packet size")
	printConfig := flag.Bool("print-config", false, "print the configuration (Table 2) and exit")
	heatmap := flag.Bool("heatmap", false, "print a link-utilization heatmap of the measurement window")

	traceOut := flag.String("trace-out", "", "write a Chrome-trace (Perfetto) packet lifecycle trace to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the packet lifecycle trace as JSONL to this file")
	traceCap := flag.Int("trace-cap", 0, "lifecycle tracer ring capacity in events (0 = default)")
	countersOut := flag.String("counters-out", "", "write per-router/per-port counter time series as CSV to this file")
	samplePeriod := flag.Int64("sample-period", 0, "counter sampling period in cycles (0 = off; implied 100 by -counters-out)")
	heatmapOut := flag.String("heatmap-out", "", "write the measurement-window link heatmap as CSV to this file")
	lobs := cli.NewObs("nocsim")
	anat := cli.NewAnatomy("nocsim")
	rcache := cli.NewRouteCache("nocsim")
	flag.Parse()

	if *printConfig {
		fmt.Print(exp.Table2(cfg))
		return
	}
	lobs.Start()
	defer lobs.Close()

	if *countersOut != "" && *samplePeriod <= 0 {
		*samplePeriod = 100
	}
	cfg.Obs = obs.Options{
		Trace:         *traceOut != "" || *traceJSONL != "",
		TraceCapacity: *traceCap,
		SamplePeriod:  *samplePeriod,
		Heatmap:       *heatmapOut != "",
	}
	anat.Apply(&cfg.Obs)
	lobs.ApplyConfig(&cfg)
	rcache.ApplyConfig(&cfg)
	rcache.Warn(cfg.Algorithm)

	p, err := traffic.ByName(*pattern, cfg.Mesh())
	if err != nil {
		fatal(err)
	}
	var size traffic.SizeFn
	if *minFlits == *maxFlits {
		size = traffic.FixedSize(*minFlits)
	} else {
		size = traffic.UniformSize(*minFlits, *maxFlits)
	}
	if *rates != "" {
		sweep(cfg, *pattern, size, *rates, *jobs, anat)
		return
	}
	s, err := sim.New(cfg, &traffic.Generator{Pattern: p, Rate: *rate, Size: size})
	if err != nil {
		fatal(err)
	}
	var probe *sim.UtilizationProbe
	if *heatmap {
		probe = sim.NewUtilizationProbe(s.Network())
	}
	res := s.Run()

	fmt.Printf("algorithm          %s\n", cfg.Algorithm)
	fmt.Printf("mesh               %dx%d, %d VCs\n", cfg.Width, cfg.Height, cfg.VCs)
	fmt.Printf("pattern            %s @ %.3f flits/node/cycle\n", *pattern, *rate)
	fmt.Printf("offered/accepted   %.3f / %.3f flits/node/cycle\n", res.Offered, res.Accepted)
	fmt.Printf("avg latency        %s cycles\n", naFloat(res.AvgLatency(flit.ClassBackground), "%.1f",
		res.Latency[flit.ClassBackground] != nil && res.Latency[flit.ClassBackground].N() > 0))
	fmt.Printf("p99 latency        %s cycles\n", naFloat(res.P99, "%.0f", !math.IsNaN(res.P99)))
	fmt.Printf("stable             %v (%d/%d measured packets delivered)\n",
		res.Stable, res.MeasuredEjected, res.Measured)
	fmt.Printf("blocking           %d events, purity %.3f, HoL degree %.1f\n",
		res.BlockEvents, res.Purity, res.HoLDegree)
	fmt.Printf("runtime            %s\n", res.Runtime)
	if pp := res.PerfProfile; pp != nil {
		fmt.Printf("\nphase profile      %d sampled cycles (every %d), GC: %d cycles, %.1fms paused\n",
			pp.SampledCycles, pp.SampleEvery, pp.GC.NumGC, float64(pp.GC.PauseTotalNanos)/1e6)
		fmt.Printf("%18s %10s %8s %12s %10s\n", "phase", "time", "share", "alloc", "allocs")
		for _, ph := range pp.Phases {
			fmt.Printf("%18s %9.2fms %7.1f%% %11.1fKB %10d\n",
				ph.Phase, float64(ph.Nanos)/1e6, 100*ph.TimeShare, float64(ph.AllocBytes)/1024, ph.Allocs)
		}
		if pp.Arena != nil {
			fmt.Printf("%18s %s\n", "arena", pp.Arena)
		}
		if pp.RouteCache != nil {
			fmt.Printf("%18s %s\n", "route cache", pp.RouteCache)
		}
	}
	if anat.Enabled() {
		fmt.Println()
		anat.Report(os.Stdout, fmt.Sprintf("%s-%s-%.2f", *pattern, cfg.Algorithm, *rate), res)
		anat.Summary()
	}
	if probe != nil {
		snap := probe.Snapshot(cfg.Mesh())
		fmt.Printf("\nmean link utilization %.3f over %d cycles (whole run)\n", snap.Mean(), snap.Cycles)
		fmt.Print(snap.Heatmap(cfg.Mesh()))
		fmt.Println("hottest links:")
		for _, l := range snap.Hottest(5) {
			fmt.Printf("  n%-3d -%s-> n%-3d %.3f flits/cycle\n", l.From, l.Dir, l.To, l.Utilization)
		}
	}

	if col := s.Observability(); col != nil {
		if *traceOut != "" {
			writeFile(*traceOut, col.Tracer.WriteChromeTrace)
			fmt.Printf("trace              %s (%d events, %d dropped) — load in https://ui.perfetto.dev\n",
				*traceOut, col.Tracer.Len(), col.Tracer.Dropped())
		}
		if *traceJSONL != "" {
			writeFile(*traceJSONL, col.Tracer.WriteJSONL)
			fmt.Printf("trace jsonl        %s (%d events, %d dropped)\n",
				*traceJSONL, col.Tracer.Len(), col.Tracer.Dropped())
		}
		if *countersOut != "" {
			writeFile(*countersOut, col.Sampler.WriteCSV)
			fmt.Printf("counters           %s (%d samples every %d cycles)\n",
				*countersOut, len(col.Sampler.Samples()), col.Sampler.Period())
		}
		if *heatmapOut != "" {
			writeFile(*heatmapOut, col.Heatmap.WriteCSV)
			fmt.Printf("heatmap            %s (%d flits ejected in window)\n",
				*heatmapOut, col.Heatmap.TotalEjected())
		}
	}
}

// sweep runs the comma-separated rate grid through the parallel
// execution engine and prints one row per rate. Single-run outputs
// (traces, counter CSVs) are skipped; use the experiment commands'
// -counters-out for per-run exports.
func sweep(cfg sim.Config, pattern string, size traffic.SizeFn, rateList string, jobs int, anat *cli.Anatomy) {
	var grid []float64
	for _, s := range strings.Split(rateList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("bad rate %q: %v", s, err))
		}
		grid = append(grid, v)
	}
	pts, err := sim.LatencyThroughputJobs(cfg, pattern, size, grid, jobs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s, %dx%d, %d VCs, %d workers\n",
		cfg.Algorithm, pattern, cfg.Width, cfg.Height, cfg.VCs, sim.Jobs(jobs))
	fmt.Printf("%8s %10s %10s %10s %8s %8s\n", "rate", "offered", "accepted", "latency", "p99", "stable")
	for _, pt := range pts {
		res := pt.Result
		fmt.Printf("%8.3f %10.3f %10.3f %10s %8s %8v\n",
			pt.Rate, res.Offered, res.Accepted,
			naFloat(res.AvgLatency(flit.ClassBackground), "%.1f",
				res.Latency[flit.ClassBackground] != nil && res.Latency[flit.ClassBackground].N() > 0),
			naFloat(res.P99, "%.0f", !math.IsNaN(res.P99)),
			res.Stable)
	}
	if anat.Enabled() {
		for _, pt := range pts {
			fmt.Println()
			anat.Report(os.Stdout, fmt.Sprintf("%s-%s-%.2f", pattern, cfg.Algorithm, pt.Rate), pt.Result)
		}
		anat.Summary()
	}
}

// naFloat formats v with format when ok, else "n/a".
func naFloat(v float64, format string, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
