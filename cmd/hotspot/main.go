// Command hotspot regenerates Figure 9: the latency of uniform background
// traffic as the Table 3 hotspot flows ramp up, for Footprint vs DBAR.
//
//	hotspot
//	hotspot -bg 0.3 -profile quick
//	hotspot -flows        # print Table 3
//	hotspot -obs-addr localhost:9090 -heatmap-out hot.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
	"nocsim/internal/traffic"
)

func main() {
	profile := flag.String("profile", "full", "effort level: full or quick")
	bg := flag.Float64("bg", 0.3, "background injection rate (flits/node/cycle)")
	flows := flag.Bool("flows", false, "print the Table 3 hotspot flows and exit")
	jobs := cli.NewJobs()
	lobs := cli.NewObs("hotspot")
	export := cli.NewRunExport("hotspot")
	anat := cli.NewAnatomy("hotspot")
	rcache := cli.NewRouteCache("hotspot")
	flag.Parse()

	if *flows {
		fmt.Println("Table 3 — hotspot flows (8x8 mesh)")
		f := traffic.HotspotFlows().Flows
		srcs := make([]int, 0, len(f))
		for s := range f {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			fmt.Printf("  n%-3d -> n%d\n", s, f[s])
		}
		return
	}

	lobs.Start()
	defer lobs.Close()

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}
	prof.Jobs = *jobs
	prof.Obs = export.Options()
	anat.Apply(&prof.Obs)
	lobs.ApplyProfile(&prof)
	rcache.ApplyProfile(&prof)

	study, err := exp.Figure9(prof, *bg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotspot:", err)
		os.Exit(1)
	}
	if export.Enabled() {
		for alg, pts := range study.Curves {
			for _, pt := range pts {
				export.Write(fmt.Sprintf("%s-hot%.2f", alg, pt.Rate), pt.Result.Obs)
			}
		}
	}
	export.Report()
	fmt.Println(study.Format())
	if anat.Enabled() {
		for alg, pts := range study.Curves {
			for _, pt := range pts {
				anat.Report(os.Stdout, fmt.Sprintf("%s-hot%.2f", alg, pt.Rate), pt.Result)
			}
		}
		anat.Summary()
	}
}
