// Command perfgate compares the newest BENCH_<n>.json performance
// report against its predecessor and exits nonzero on regression. It
// gates the metrics that are stable across machines — engine heap
// allocations/bytes, per-benchmark allocs/op and B/op — plus engine
// cycles/s under a wide wall-clock budget, and treats a lost
// determinism bit (serial vs parallel sweep divergence) as a hard
// failure no tolerance excuses. ns/op and parallel speedup are printed
// for context but never gated: the first depends on -benchtime and host
// load, the second is meaningless on hosts that cannot schedule the
// workers in parallel (see speedup_degenerate).
//
//	perfgate                            # newest two BENCH_<n>.json in .
//	perfgate -dir results               # ... in another directory
//	perfgate -old BENCH_3.json -new BENCH_pr.json
//	perfgate -tol-cycles 0.5            # widen the wall-clock budget (CI)
//	perfgate -markdown summary.md       # GitHub job-summary table
package main

import (
	"flag"
	"fmt"
	"os"

	"nocsim/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json reports")
	oldPath := flag.String("old", "", "predecessor report (default: second-newest in -dir)")
	newPath := flag.String("new", "", "newest report (default: newest in -dir)")
	markdown := flag.String("markdown", "", "also write the comparison as a markdown table to this file")
	tol := bench.DefaultTolerances()
	flag.Float64Var(&tol.CyclesPerSec, "tol-cycles", tol.CyclesPerSec,
		"allowed fractional drop in engine cycles/s (wall clock; widen on shared CI hosts)")
	flag.Float64Var(&tol.Allocs, "tol-allocs", tol.Allocs,
		"allowed fractional growth in heap allocations and allocs/op")
	flag.Float64Var(&tol.Bytes, "tol-bytes", tol.Bytes,
		"allowed fractional growth in heap bytes and B/op")
	flag.Parse()

	op, np := *oldPath, *newPath
	if op == "" && np == "" {
		var err error
		op, np, err = bench.LatestPair(*dir)
		if err != nil {
			fatal(err)
		}
	} else if op == "" || np == "" {
		fatal(fmt.Errorf("-old and -new must be given together (or neither, to use the newest pair in -dir)"))
	}

	oldR, err := bench.Load(op)
	if err != nil {
		fatal(err)
	}
	newR, err := bench.Load(np)
	if err != nil {
		fatal(err)
	}

	c := bench.Compare(oldR, newR, tol)
	c.OldPath, c.NewPath = op, np
	c.WriteText(os.Stdout)

	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fatal(err)
		}
		c.WriteMarkdown(f, newR)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Println(c.Summary())
	if !c.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfgate:", err)
	os.Exit(1)
}
