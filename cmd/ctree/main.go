// Command ctree regenerates Figure 2: the anatomy of the congestion tree
// created by the Section 2 example flows under each routing algorithm,
// plus Table 1 and the Section 4.4 cost analysis.
//
//	ctree
//	ctree -profile quick
//	ctree -tables         # Table 1 + cost analysis only
package main

import (
	"flag"
	"fmt"
	"os"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
)

func main() {
	profile := flag.String("profile", "full", "effort level: full or quick")
	tables := flag.Bool("tables", false, "print Table 1 and the cost analysis, skip the simulation")
	jobs := cli.NewJobs()
	lobs := cli.NewObs("ctree")
	anat := cli.NewAnatomy("ctree")
	rcache := cli.NewRouteCache("ctree")
	flag.Parse()

	fmt.Println(exp.Table1().Format())
	fmt.Println(exp.SectionCost().Format())
	if *tables {
		return
	}

	lobs.Start()
	defer lobs.Close()

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}
	prof.Jobs = *jobs
	anat.Apply(&prof.Obs)
	lobs.ApplyProfile(&prof)
	rcache.ApplyProfile(&prof)
	study, err := exp.Figure2(prof, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctree:", err)
		os.Exit(1)
	}
	fmt.Println(study.Format())
}
