// Command benchjson runs the repository's benchmark suite and writes the
// results as machine-readable JSON: ns/op, B/op, allocs/op and every
// custom b.ReportMetric unit of each benchmark, plus an engine reference
// run reporting the simulator's cycles/s, flit-hops/s and cycle-loop
// phase profile (per-phase time and allocation breakdown), and a
// parallel-sweep reference run recording the -jobs worker pool's speedup
// and determinism on a fixed Figure 5 grid. CI runs it in quick mode and
// uploads the file as an artifact, so performance history is a download
// away rather than buried in job logs; cmd/perfgate diffs consecutive
// reports.
//
//	benchjson                           # full suite -> BENCH_<n>.json
//	benchjson -bench 'Figure5|Table2' -benchtime 1x
//	benchjson -jobs 4 -o bench.json
//	benchjson -cpuprofile cpu.pprof -memprofile heap.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"time"

	"nocsim"
	"nocsim/internal/bench"
	"nocsim/internal/cli"
	"nocsim/internal/exp"
	"nocsim/internal/sim"
)

func main() {
	benchRe := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration per benchmark)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("o", "", "output file (default: next free BENCH_<n>.json)")
	skipEngine := flag.Bool("skip-engine", false, "skip the engine reference run")
	skipParallel := flag.Bool("skip-parallel", false, "skip the parallel-sweep reference run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the reference runs to this file (pprof format, with per-run labels)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the reference runs to this file")
	jobs := cli.NewJobs()
	flag.Parse()

	rep := bench.Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchRegexp: *benchRe,
		BenchTime:   *benchtime,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			rpprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "benchjson: wrote CPU profile to %s\n", *cpuprofile)
		}()
	}

	if !*skipEngine {
		cfg := exp.QuickProfile().BaseConfig()
		cfg.Obs.Profile = true // phase breakdown rides along in the report
		res, err := nocsim.Run(cfg, "uniform", 0.3)
		if err != nil {
			fatal(err)
		}
		rt := res.Runtime
		rep.Engine = bench.Engine{
			Cycles:         rt.Cycles,
			WallSeconds:    rt.WallSeconds,
			CyclesPerSec:   rt.CyclesPerSec,
			FlitHops:       rt.FlitHops,
			FlitHopsPerSec: rt.FlitHopsPerSec,
			HeapAllocBytes: rt.HeapAllocBytes,
			HeapAllocs:     rt.HeapAllocs,
			Profile:        res.PerfProfile,
			RouteCache:     res.RouteCache,
		}
		fmt.Fprintf(os.Stderr, "benchjson: engine reference %s\n", rt.String())
		if pp := res.PerfProfile; pp != nil {
			fmt.Fprintf(os.Stderr, "benchjson: engine phases %s\n", pp.String())
			if pp.Arena != nil {
				fmt.Fprintf(os.Stderr, "benchjson: engine arena %s\n", pp.Arena)
			}
		}
		if res.RouteCache != nil {
			fmt.Fprintf(os.Stderr, "benchjson: engine route cache %s\n", res.RouteCache)
		}
	}

	if !*skipParallel {
		ps, err := parallelReference(sim.Jobs(*jobs))
		if err != nil {
			fatal(err)
		}
		rep.Parallel = ps
		note := ""
		if ps.Degenerate() {
			note = " [degenerate: host cannot run jobs in parallel]"
		}
		fmt.Fprintf(os.Stderr,
			"benchjson: parallel sweep %d runs: serial %.2fs, jobs=%d (effective %d) %.2fs (%.2fx, identical=%v)%s\n",
			ps.Runs, ps.SerialSeconds, ps.Jobs, ps.EffectiveJobs, ps.ParallelSeconds, ps.Speedup, ps.Identical, note)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := rpprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "benchjson: wrote heap profile to %s\n", *memprofile)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *benchRe, "-benchtime", *benchtime, "-benchmem", *pkg)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	raw, err := io.ReadAll(io.TeeReader(stdout, os.Stderr))
	if err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if b, ok := bench.ParseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, *b)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *benchRe))
	}

	path := *out
	if path == "" {
		path = bench.NextPath(".")
	}
	if err := bench.Write(path, &rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(rep.Benchmarks), path)
}

// parallelReference runs the reference sweep — Figure 5 (all seven
// algorithms, single-flit packets) on uniform traffic over a three-point
// rate grid at quick effort — once at Jobs=1 and once at the requested
// worker count, and compares the formatted studies byte for byte. The
// speedup is labeled degenerate when GOMAXPROCS cannot actually schedule
// the requested workers in parallel, so a time-sliced host's ~1.0x is
// not mistaken for a scaling regression.
func parallelReference(jobs int) (bench.ParallelSweep, error) {
	prof := exp.QuickProfile()
	prof.Rates = []float64{0.1, 0.25, 0.4}

	prof.Jobs = 1
	t0 := time.Now()
	serial, err := exp.Figure5(prof, "uniform")
	if err != nil {
		return bench.ParallelSweep{}, err
	}
	serialSec := time.Since(t0).Seconds()

	prof.Jobs = jobs
	t1 := time.Now()
	par, err := exp.Figure5(prof, "uniform")
	if err != nil {
		return bench.ParallelSweep{}, err
	}
	parSec := time.Since(t1).Seconds()

	runs := 0
	for _, c := range serial.Curves {
		runs += len(c.Points)
	}
	gomaxprocs := runtime.GOMAXPROCS(0)
	effective := jobs
	if gomaxprocs < effective {
		effective = gomaxprocs
	}
	ps := bench.ParallelSweep{
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        gomaxprocs,
		Jobs:              jobs,
		EffectiveJobs:     effective,
		Runs:              runs,
		SerialSeconds:     serialSec,
		ParallelSeconds:   parSec,
		SpeedupDegenerate: jobs > 1 && gomaxprocs < jobs,
		Identical:         serial.Format() == par.Format(),
	}
	if parSec > 0 {
		ps.Speedup = serialSec / parSec
	}
	return ps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
