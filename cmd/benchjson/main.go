// Command benchjson runs the repository's benchmark suite and writes the
// results as machine-readable JSON: ns/op, B/op, allocs/op and every
// custom b.ReportMetric unit of each benchmark, plus an engine reference
// run reporting the simulator's cycles/s and flit-hops/s and a
// parallel-sweep reference run recording the -jobs worker pool's speedup
// and determinism on a fixed Figure 5 grid. CI runs it in quick mode and
// uploads the file as an artifact, so performance history is a download
// away rather than buried in job logs.
//
//	benchjson                           # full suite -> BENCH_<n>.json
//	benchjson -bench 'Figure5|Table2' -benchtime 1x
//	benchjson -jobs 4 -o bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nocsim"
	"nocsim/internal/cli"
	"nocsim/internal/exp"
	"nocsim/internal/sim"
)

// Report is the JSON document benchjson writes.
type Report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	BenchRegexp string        `json:"bench_regexp"`
	BenchTime   string        `json:"bench_time"`
	Engine      Engine        `json:"engine"`
	Parallel    ParallelSweep `json:"parallel_sweep"`
	Benchmarks  []Bench       `json:"benchmarks"`
}

// Engine is a fixed reference run of the simulation engine (Table 2
// baseline, uniform traffic at 0.3 flits/node/cycle, quick profile) —
// the simulator's own speed, independent of benchmark iteration counts.
type Engine struct {
	Cycles         int64   `json:"cycles"`
	WallSeconds    float64 `json:"wall_seconds"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitHops       int64   `json:"flit_hops"`
	FlitHopsPerSec float64 `json:"flit_hops_per_sec"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapAllocs     uint64  `json:"heap_allocs"`
}

// ParallelSweep is a fixed reference sweep (Figure 5, uniform traffic,
// reduced rate grid) run twice — serially, then on the -jobs worker
// pool — recording the wall-clock ratio and whether the two sweeps
// formatted identically (the engine's determinism guarantee).
type ParallelSweep struct {
	CPUs            int     `json:"cpus"`
	Jobs            int     `json:"jobs"`
	Runs            int     `json:"runs"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric units (satTP, latency
	// cycles, cycles/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration per benchmark)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("o", "", "output file (default: next free BENCH_<n>.json)")
	skipEngine := flag.Bool("skip-engine", false, "skip the engine reference run")
	skipParallel := flag.Bool("skip-parallel", false, "skip the parallel-sweep reference run")
	jobs := cli.NewJobs()
	flag.Parse()

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchRegexp: *bench,
		BenchTime:   *benchtime,
	}

	if !*skipEngine {
		cfg := exp.QuickProfile().BaseConfig()
		res, err := nocsim.Run(cfg, "uniform", 0.3)
		if err != nil {
			fatal(err)
		}
		rt := res.Runtime
		rep.Engine = Engine{
			Cycles:         rt.Cycles,
			WallSeconds:    rt.WallSeconds,
			CyclesPerSec:   rt.CyclesPerSec,
			FlitHops:       rt.FlitHops,
			FlitHopsPerSec: rt.FlitHopsPerSec,
			HeapAllocBytes: rt.HeapAllocBytes,
			HeapAllocs:     rt.HeapAllocs,
		}
		fmt.Fprintf(os.Stderr, "benchjson: engine reference %s\n", rt.String())
	}

	if !*skipParallel {
		ps, err := parallelReference(sim.Jobs(*jobs))
		if err != nil {
			fatal(err)
		}
		rep.Parallel = ps
		fmt.Fprintf(os.Stderr,
			"benchjson: parallel sweep %d runs: serial %.2fs, jobs=%d %.2fs (%.2fx, identical=%v)\n",
			ps.Runs, ps.SerialSeconds, ps.Jobs, ps.ParallelSeconds, ps.Speedup, ps.Identical)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchtime", *benchtime, "-benchmem", *pkg)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	raw, err := io.ReadAll(io.TeeReader(stdout, os.Stderr))
	if err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, *b)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *bench))
	}

	path := *out
	if path == "" {
		path = nextBenchFile(".")
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(rep.Benchmarks), path)
}

// parallelReference runs the reference sweep — Figure 5 (all seven
// algorithms, single-flit packets) on uniform traffic over a three-point
// rate grid at quick effort — once at Jobs=1 and once at the requested
// worker count, and compares the formatted studies byte for byte.
func parallelReference(jobs int) (ParallelSweep, error) {
	prof := exp.QuickProfile()
	prof.Rates = []float64{0.1, 0.25, 0.4}

	prof.Jobs = 1
	t0 := time.Now()
	serial, err := exp.Figure5(prof, "uniform")
	if err != nil {
		return ParallelSweep{}, err
	}
	serialSec := time.Since(t0).Seconds()

	prof.Jobs = jobs
	t1 := time.Now()
	par, err := exp.Figure5(prof, "uniform")
	if err != nil {
		return ParallelSweep{}, err
	}
	parSec := time.Since(t1).Seconds()

	runs := 0
	for _, c := range serial.Curves {
		runs += len(c.Points)
	}
	ps := ParallelSweep{
		CPUs:            runtime.NumCPU(),
		Jobs:            jobs,
		Runs:            runs,
		SerialSeconds:   serialSec,
		ParallelSeconds: parSec,
		Identical:       serial.Format() == par.Format(),
	}
	if parSec > 0 {
		ps.Speedup = serialSec / parSec
	}
	return ps, nil
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   123456 ns/op   4.5 custom-unit   67 B/op   8 allocs/op
func parseBenchLine(line string) (*Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, keeping sub-benchmark slashes.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		name = name[:i]
	}
	b := &Bench{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// benchFileRe matches previously written reports.
var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchFile returns BENCH_<n>.json for the smallest n greater than
// every existing report in dir.
func nextBenchFile(dir string) string {
	next := 1
	entries, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range entries {
			m := benchFileRe.FindStringSubmatch(e.Name())
			if m == nil {
				continue
			}
			if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
