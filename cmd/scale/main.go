// Command scale regenerates Figure 8: DBAR saturation throughput
// normalized to Footprint as the mesh grows from 4×4 to 16×16.
//
//	scale
//	scale -profile quick
//	scale -sizes 4x4,8x8,16x16
//	scale -obs-addr localhost:9090 -watchdog-cycles 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
)

func main() {
	profile := flag.String("profile", "full", "effort level: full or quick")
	sizes := flag.String("sizes", "4x4,16x16", "comma-separated mesh sizes, e.g. 4x4,16x16")
	jobs := cli.NewJobs()
	lobs := cli.NewObs("scale")
	anat := cli.NewAnatomy("scale")
	rcache := cli.NewRouteCache("scale")
	flag.Parse()

	lobs.Start()
	defer lobs.Close()

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}
	prof.Jobs = *jobs
	anat.Apply(&prof.Obs)
	lobs.ApplyProfile(&prof)
	rcache.ApplyProfile(&prof)

	var meshes [][2]int
	for _, s := range strings.Split(*sizes, ",") {
		var w, h int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%dx%d", &w, &h); err != nil {
			fatal(fmt.Errorf("bad size %q: %v", s, err))
		}
		meshes = append(meshes, [2]int{w, h})
	}

	study, err := exp.Figure8(prof, meshes)
	if err != nil {
		fatal(err)
	}
	fmt.Println(study.Format())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scale:", err)
	os.Exit(1)
}
