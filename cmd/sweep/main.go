// Command sweep regenerates the latency-throughput figures of the paper:
//
//	sweep -figure 5                 # Figure 5: 7 algorithms, single-flit
//	sweep -figure 6                 # Figure 6: variable packet size
//	sweep -figure 7                 # Figure 7: Footprint vs DBAR, VC sweep
//	sweep -figure anatomy           # adaptiveness & latency-composition study
//	sweep -figure 5 -pattern shuffle -profile quick
//	sweep -jobs 8                   # 8 parallel runs, identical results
//	sweep -obs-addr localhost:9090  # live per-run progress while it runs
//	sweep -counters-out ts.csv      # one counter CSV per (pattern,alg,rate)
//	sweep -figure anatomy -anatomy-out anatomy.csv  # per-run anatomy CSVs
package main

import (
	"flag"
	"fmt"
	"os"

	"nocsim/internal/cli"
	"nocsim/internal/exp"
)

func main() {
	figure := flag.String("figure", "5", "figure to regenerate (5, 6 or 7), or \"anatomy\" for the exercised-adaptiveness / latency-composition study")
	pattern := flag.String("pattern", "", "restrict to one pattern (default: all three)")
	profile := flag.String("profile", "full", "effort level: full or quick")
	jobs := cli.NewJobs()
	lobs := cli.NewObs("sweep")
	export := cli.NewRunExport("sweep")
	anat := cli.NewAnatomy("sweep")
	rcache := cli.NewRouteCache("sweep")
	flag.Parse()

	lobs.Start()
	defer lobs.Close()

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}
	prof.Jobs = *jobs
	prof.Obs = export.Options()
	anat.Apply(&prof.Obs)
	lobs.ApplyProfile(&prof)
	rcache.ApplyProfile(&prof)

	patterns := exp.SyntheticPatterns()
	if *pattern != "" {
		patterns = []string{*pattern}
	}

	for _, p := range patterns {
		switch *figure {
		case "5":
			cs, err := exp.Figure5(prof, p)
			if err != nil {
				fatal(err)
			}
			exportCurves(export, cs)
			fmt.Println(cs.Format())
			reportAnatomy(anat, cs)
		case "6":
			cs, err := exp.Figure6(prof, p)
			if err != nil {
				fatal(err)
			}
			exportCurves(export, cs)
			fmt.Println(cs.Format())
			reportAnatomy(anat, cs)
		case "7":
			vs, err := exp.Figure7(prof, p, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Println(vs.Format())
		case "anatomy":
			st, err := exp.Anatomy(prof, p, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Println(st.Format())
			for _, c := range st.Curves {
				for _, pt := range c.Points {
					id := fmt.Sprintf("%s-%s-%.2f", st.Pattern, c.Algorithm, pt.Rate)
					anat.Report(os.Stdout, id, pt.Result)
				}
			}
		default:
			fatal(fmt.Errorf("unknown figure %q (want 5, 6, 7 or anatomy)", *figure))
		}
	}
	export.Report()
	anat.Summary()
}

// exportCurves writes each run's collector files, suffixed with
// pattern-algorithm-rate.
func exportCurves(export *cli.RunExport, cs exp.CurveSet) {
	if !export.Enabled() {
		return
	}
	for _, c := range cs.Curves {
		for _, pt := range c.Points {
			id := fmt.Sprintf("%s-%s-%.2f", cs.Pattern, c.Algorithm, pt.Rate)
			export.Write(id, pt.Result.Obs)
		}
	}
}

// reportAnatomy prints/exports each run's latency anatomy when the
// -anatomy flag set enabled collection on the sweep's profile.
func reportAnatomy(anat *cli.Anatomy, cs exp.CurveSet) {
	if !anat.Enabled() {
		return
	}
	for _, c := range cs.Curves {
		for _, pt := range c.Points {
			id := fmt.Sprintf("%s-%s-%.2f", cs.Pattern, c.Algorithm, pt.Rate)
			anat.Report(os.Stdout, id, pt.Result)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
