// Command sweep regenerates the latency-throughput figures of the paper:
//
//	sweep -figure 5                 # Figure 5: 7 algorithms, single-flit
//	sweep -figure 6                 # Figure 6: variable packet size
//	sweep -figure 7                 # Figure 7: Footprint vs DBAR, VC sweep
//	sweep -figure 5 -pattern shuffle -profile quick
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"nocsim/internal/exp"
)

func main() {
	figure := flag.Int("figure", 5, "figure to regenerate (5, 6 or 7)")
	pattern := flag.String("pattern", "", "restrict to one pattern (default: all three)")
	profile := flag.String("profile", "full", "effort level: full or quick")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	prof := exp.FullProfile()
	if *profile == "quick" {
		prof = exp.QuickProfile()
	}

	patterns := exp.SyntheticPatterns()
	if *pattern != "" {
		patterns = []string{*pattern}
	}

	for _, p := range patterns {
		switch *figure {
		case 5:
			cs, err := exp.Figure5(prof, p)
			if err != nil {
				fatal(err)
			}
			fmt.Println(cs.Format())
		case 6:
			cs, err := exp.Figure6(prof, p)
			if err != nil {
				fatal(err)
			}
			fmt.Println(cs.Format())
		case 7:
			vs, err := exp.Figure7(prof, p, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Println(vs.Format())
		default:
			fatal(fmt.Errorf("unknown figure %d (want 5, 6 or 7)", *figure))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
