package nocsim

// The benchmark harness: one benchmark per table and figure of the paper,
// each regenerating its experiment at the quick effort profile and
// reporting the headline quantity via b.ReportMetric, plus ablation
// benchmarks for the design decisions called out in DESIGN.md. Run the
// cmd/ tools with -profile full for publication-scale numbers; these
// benches keep every experiment exercised by `go test -bench`.

import (
	"testing"

	"nocsim/internal/exp"
	"nocsim/internal/flit"
	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

// benchProfile is the effort level used by all benches.
func benchProfile() exp.Profile { return exp.QuickProfile() }

// BenchmarkTable1Adaptiveness regenerates Table 1's quantitative half:
// the mean port adaptiveness of every algorithm over the 8×8 mesh.
func BenchmarkTable1Adaptiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := exp.Table1()
		for _, r := range st.Measured {
			if r.Algorithm == "footprint" {
				b.ReportMetric(r.MeanPAdapt, "footprint-P_adapt")
			}
		}
	}
}

// BenchmarkTable2Config exercises the Table 2 baseline end to end: one
// default-configuration simulation at a moderate uniform load.
func BenchmarkTable2Config(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		cfg := p.BaseConfig()
		res, err := Run(cfg, "uniform", 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgLatency(ClassBackground), "latency-cycles")
	}
}

// BenchmarkTable3HotspotFlows drives the Table 3 flows alone and reports
// the aggregate accepted throughput of the four hotspot endpoints.
func BenchmarkTable3HotspotFlows(b *testing.B) {
	p := benchProfile()
	flows := traffic.HotspotFlows()
	for i := 0; i < b.N; i++ {
		cfg := p.BaseConfig()
		gen := &traffic.Generator{
			Nodes:   []int{0, 7, 24, 31, 32, 39, 56, 63},
			Pattern: flows,
			Rate:    0.8,
			Class:   flit.ClassHotspot,
		}
		s, err := sim.New(cfg, gen)
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		b.ReportMetric(res.Accepted*64, "hotspot-flits-per-cycle")
	}
}

// BenchmarkFigure2CongestionTree regenerates the Section 2 congestion
// tree anatomy and reports Footprint's tree size versus DBAR's.
func BenchmarkFigure2CongestionTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := exp.Figure2(benchProfile(), []string{"dbar", "footprint"})
		if err != nil {
			b.Fatal(err)
		}
		for _, ta := range st.Algorithms {
			b.ReportMetric(ta.Endpoint.VCs, ta.Algorithm+"-tree-VCs")
		}
	}
}

// benchFigure5 runs one Figure 5 panel and reports per-algorithm
// saturation throughput.
func benchFigure5(b *testing.B, pattern string) {
	for i := 0; i < b.N; i++ {
		cs, err := exp.Figure5(benchProfile(), pattern)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cs.Curves {
			if c.Algorithm == "footprint" || c.Algorithm == "dbar" {
				b.ReportMetric(exp.SaturationFromCurve(c), c.Algorithm+"-satTP")
			}
		}
	}
}

// BenchmarkFigure5Uniform regenerates Figure 5(a).
func BenchmarkFigure5Uniform(b *testing.B) { benchFigure5(b, "uniform") }

// BenchmarkFigure5Transpose regenerates Figure 5(b).
func BenchmarkFigure5Transpose(b *testing.B) { benchFigure5(b, "transpose") }

// BenchmarkFigure5Shuffle regenerates Figure 5(c).
func BenchmarkFigure5Shuffle(b *testing.B) { benchFigure5(b, "shuffle") }

// benchFigure6 runs one Figure 6 panel (variable packet sizes).
func benchFigure6(b *testing.B, pattern string) {
	for i := 0; i < b.N; i++ {
		cs, err := exp.Figure6(benchProfile(), pattern)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cs.Curves {
			if c.Algorithm == "footprint" {
				b.ReportMetric(exp.SaturationFromCurve(c), "footprint-satTP")
			}
		}
	}
}

// BenchmarkFigure6Uniform regenerates Figure 6(a).
func BenchmarkFigure6Uniform(b *testing.B) { benchFigure6(b, "uniform") }

// BenchmarkFigure6Transpose regenerates Figure 6(b).
func BenchmarkFigure6Transpose(b *testing.B) { benchFigure6(b, "transpose") }

// BenchmarkFigure6Shuffle regenerates Figure 6(c).
func BenchmarkFigure6Shuffle(b *testing.B) { benchFigure6(b, "shuffle") }

// BenchmarkFigure7VCSweep regenerates Figure 7 (uniform panel, 2–8 VCs at
// bench scale) and reports Footprint's gain over DBAR.
func BenchmarkFigure7VCSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vs, err := exp.Figure7(benchProfile(), "uniform", []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range vs.Points {
			db := pt.Throughput["dbar"]
			if db > 0 {
				gain := (pt.Throughput["footprint"] - db) / db * 100
				b.ReportMetric(gain, "gain-pct-"+vcLabel(pt.VCs))
			}
		}
	}
}

func vcLabel(v int) string {
	switch v {
	case 2:
		return "2vc"
	case 4:
		return "4vc"
	case 8:
		return "8vc"
	default:
		return "16vc"
	}
}

// BenchmarkFigure8Scaling regenerates Figure 8 on the 4×4 mesh (the
// 16×16 run is left to cmd/scale) and reports DBAR's normalized
// throughput.
func BenchmarkFigure8Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := exp.Figure8(benchProfile(), [][2]int{{4, 4}})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range st.Points {
			b.ReportMetric(pt.DBARNormalized, "dbar-over-fp-"+pt.Pattern)
		}
	}
}

// BenchmarkFigure9Hotspot regenerates Figure 9 at two hotspot rates and
// reports the background latencies of both algorithms at the higher rate.
func BenchmarkFigure9Hotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hs, err := exp.Figure9(benchProfile(), 0.3, []float64{0.2, 0.45})
		if err != nil {
			b.Fatal(err)
		}
		for alg, pts := range hs.Curves {
			b.ReportMetric(pts[1].BackgroundLatency, alg+"-bg-latency")
		}
	}
}

// BenchmarkFigure10Traces regenerates a reduced Figure 10: the
// x264+canneal pair (the paper's closest race) plus its per-workload
// blocking metrics.
func BenchmarkFigure10Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := exp.Figure10(benchProfile(), [][2]string{{"x264", "canneal"}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ts.Pairs[0].DeltaPct, "fp-gain-pct")
	}
}

// BenchmarkSectionCost regenerates the Section 4.4 storage table.
func BenchmarkSectionCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := exp.SectionCost()
		b.ReportMetric(float64(cs.Rows[2].TotalBitsPerPort), "bits-8x8-16vc")
	}
}

// BenchmarkObsOverhead measures the telemetry layer's cost on the
// Table 2 baseline scenario: the default disabled path (what every
// experiment pays) versus a run with every collector enabled — lifecycle
// tracer, 100-cycle counter sampler and link heatmap. CI tracks the
// cycles/s of both; see TestObsOverheadBudget for the enforced bound.
func BenchmarkObsOverhead(b *testing.B) {
	p := benchProfile()
	run := func(b *testing.B, o obs.Options) {
		for i := 0; i < b.N; i++ {
			cfg := p.BaseConfig()
			cfg.Obs = o
			res, err := Run(cfg, "uniform", 0.3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Runtime.CyclesPerSec, "cycles/s")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, obs.Options{}) })
	b.Run("enabled", func(b *testing.B) {
		run(b, obs.Options{Trace: true, SamplePeriod: 100, Heatmap: true})
	})
}

// BenchmarkRouteCacheHitPath runs the Table 2 baseline under DOR, whose
// scalar fingerprints make nearly every decision a cache hit (most via
// the per-requester epoch memo), against the same run with the cache
// off. The pair bounds what the cache's fast path costs and saves end
// to end; hit-rate rides along as a reported metric.
func BenchmarkRouteCacheHitPath(b *testing.B) { benchRouteCache(b, "dor") }

// BenchmarkRouteCacheMissPath runs the same pair under Footprint, whose
// idle/owner-mask fingerprints churn too fast under load for congruent
// states to recur: the adaptive gate bypasses the table, so this pair
// bounds the cache's residual overhead on its worst-case workload.
func BenchmarkRouteCacheMissPath(b *testing.B) { benchRouteCache(b, "footprint") }

func benchRouteCache(b *testing.B, alg string) {
	p := benchProfile()
	run := func(b *testing.B, off bool) {
		for i := 0; i < b.N; i++ {
			cfg := p.BaseConfig()
			cfg.Algorithm = alg
			cfg.NoRouteCache = off
			res, err := Run(cfg, "uniform", 0.3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Runtime.CyclesPerSec, "cycles/s")
			if rc := res.RouteCache; rc != nil {
				b.ReportMetric(rc.HitRate(), "hit-rate")
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("uncached", func(b *testing.B) { run(b, true) })
}

// --- ablations (DESIGN.md) -------------------------------------------------

// BenchmarkAblationThreshold sweeps Footprint's congestion threshold
// (paper default: half the VCs) under the hotspot scenario.
func BenchmarkAblationThreshold(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, thr := range []int{2, 5, 8} {
			cfg := p.BaseConfig()
			lat, err := runFootprintVariant(cfg, &routing.Footprint{Threshold: thr})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(lat, "bg-latency-thr"+itoa(thr))
		}
	}
}

// BenchmarkAblationPriorities disables Footprint's priority ladder to
// isolate its contribution versus plain footprint-set restriction. In
// this microarchitecture the ladder's effect is small — occupied VCs are
// rarely re-allocatable, so the allocatable set is mostly idle VCs that
// every packet ranks equally (see DESIGN.md).
func BenchmarkAblationPriorities(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		cfg := p.BaseConfig()
		with, err := runFootprintVariant(cfg, &routing.Footprint{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := runFootprintVariant(cfg, &routing.Footprint{DisablePriorities: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with, "bg-latency-with-priorities")
		b.ReportMetric(without, "bg-latency-without-priorities")
	}
}

// BenchmarkAblationRegulation removes Footprint's core mechanism — waiting
// on footprint VCs at saturated ports — under the Figure 9 hotspot
// scenario. This is the ablation that matters: without regulation the
// background latency collapses toward DBAR's.
func BenchmarkAblationRegulation(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		cfg := p.BaseConfig()
		with, err := runFootprintVariant(cfg, &routing.Footprint{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := runFootprintVariant(cfg, &routing.Footprint{DisableRegulation: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with, "bg-latency-regulated")
		b.ReportMetric(without, "bg-latency-unregulated")
	}
}

// BenchmarkAblationRealloc compares conservative (Duato) VC reallocation
// against eager reallocation on uniform traffic, the effect Section 4.2.1
// uses to explain Odd-Even's edge over DBAR.
func BenchmarkAblationRealloc(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, alg := range []string{"dbar", "oddeven"} {
			cfg := p.BaseConfig()
			cfg.Algorithm = alg
			res, err := Run(cfg, "uniform", 0.45)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Accepted, alg+"-accepted")
		}
	}
}

// runFootprintVariant runs the Figure 9 hotspot scenario with a custom
// Footprint instance (bypassing the registry) and returns the background
// latency.
func runFootprintVariant(cfg sim.Config, fp *routing.Footprint) (float64, error) {
	cfg.AlgFactory = func() routing.Algorithm {
		return &routing.Footprint{
			Threshold:         fp.Threshold,
			DisablePriorities: fp.DisablePriorities,
			DisableRegulation: fp.DisableRegulation,
		}
	}
	hot := &traffic.Generator{
		Nodes:   []int{0, 7, 24, 31, 32, 39, 56, 63},
		Pattern: traffic.HotspotFlows(), Rate: 0.45, Class: flit.ClassHotspot,
	}
	bg := &traffic.Generator{
		Nodes:   traffic.BackgroundNodes(cfg.Mesh()),
		Pattern: traffic.Uniform{Nodes: cfg.Mesh().Nodes()}, Rate: 0.3,
	}
	s, err := sim.New(cfg, hot, bg)
	if err != nil {
		return 0, err
	}
	return s.Run().AvgLatency(flit.ClassBackground), nil
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
