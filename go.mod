module nocsim

go 1.22
