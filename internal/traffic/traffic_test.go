package traffic

import (
	"math"
	"math/rand"
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/topo"
)

func TestUniformDest(t *testing.T) {
	u := Uniform{Nodes: 16}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]int{}
	for i := 0; i < 15000; i++ {
		d, ok := u.Dest(5, rng)
		if !ok {
			t.Fatal("uniform must always generate")
		}
		if d == 5 {
			t.Fatal("uniform sent to self")
		}
		if d < 0 || d >= 16 {
			t.Fatalf("dest out of range: %d", d)
		}
		seen[d]++
	}
	// Every other node should be hit roughly 1000 times.
	for n := 0; n < 16; n++ {
		if n == 5 {
			continue
		}
		if seen[n] < 800 || seen[n] > 1200 {
			t.Errorf("node %d hit %d times, want ~1000", n, seen[n])
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	u := Uniform{Nodes: 1}
	if _, ok := u.Dest(0, rand.New(rand.NewSource(1))); ok {
		t.Error("single-node uniform should be silent")
	}
}

func TestTranspose(t *testing.T) {
	m := topo.MustNew(4, 4)
	tr := Transpose{Mesh: m}
	// (1,2) = node 9 -> (2,1) = node 6.
	d, ok := tr.Dest(9, nil)
	if !ok || d != 6 {
		t.Errorf("transpose(9) = %d,%v, want 6,true", d, ok)
	}
	// Diagonal silent: node 5 = (1,1).
	if _, ok := tr.Dest(5, nil); ok {
		t.Error("diagonal node should be silent")
	}
}

func TestTransposeNonSquarePanics(t *testing.T) {
	tr := Transpose{Mesh: topo.MustNew(4, 2)}
	defer func() {
		if recover() == nil {
			t.Error("non-square transpose did not panic")
		}
	}()
	tr.Dest(1, nil)
}

func TestShuffle(t *testing.T) {
	s := Shuffle{Nodes: 8}
	// Shuffle = rotate-left of 3-bit address: 3 (011) -> 6 (110).
	d, ok := s.Dest(3, nil)
	if !ok || d != 6 {
		t.Errorf("shuffle(3) = %d,%v, want 6,true", d, ok)
	}
	// 5 (101) -> 3 (011).
	d, ok = s.Dest(5, nil)
	if !ok || d != 3 {
		t.Errorf("shuffle(5) = %d, want 3", d)
	}
	// 0 and 7 map to themselves: silent.
	if _, ok := s.Dest(0, nil); ok {
		t.Error("shuffle(0) should be silent")
	}
	if _, ok := s.Dest(7, nil); ok {
		t.Error("shuffle(7) should be silent")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := Shuffle{Nodes: 64}
	seen := map[int]bool{}
	for n := 0; n < 64; n++ {
		d, ok := s.Dest(n, nil)
		if !ok {
			d = n // self-mapping fixed points
		}
		if seen[d] {
			t.Fatalf("shuffle maps two sources to %d", d)
		}
		seen[d] = true
	}
}

func TestShuffleNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two shuffle did not panic")
		}
	}()
	Shuffle{Nodes: 12}.Dest(1, nil)
}

func TestBitComplement(t *testing.T) {
	b := BitComplement{Nodes: 16}
	if d, ok := b.Dest(3, nil); !ok || d != 12 {
		t.Errorf("bitcomp(3) = %d, want 12", d)
	}
}

func TestPermutation(t *testing.T) {
	p := Permutation{Flows: map[int]int{1: 2}}
	if d, ok := p.Dest(1, nil); !ok || d != 2 {
		t.Error("permutation flow broken")
	}
	if _, ok := p.Dest(3, nil); ok {
		t.Error("non-flow source should be silent")
	}
	if p.Name() != "permutation" {
		t.Errorf("default name %q", p.Name())
	}
	if (Permutation{Label: "x"}).Name() != "x" {
		t.Error("label not used")
	}
}

func TestByName(t *testing.T) {
	m := topo.MustNew(8, 8)
	for _, name := range []string{"uniform", "transpose", "shuffle", "bitcomp"} {
		p, err := ByName(name, m)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("pattern name = %q, want %q", p.Name(), name)
		}
	}
	if _, err := ByName("nope", m); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestSizeFns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := FixedSize(3)
	for i := 0; i < 10; i++ {
		if f(rng) != 3 {
			t.Fatal("FixedSize not fixed")
		}
	}
	u := UniformSize(1, 6)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		s := u(rng)
		if s < 1 || s > 6 {
			t.Fatalf("size %d out of range", s)
		}
		seen[s] = true
	}
	for s := 1; s <= 6; s++ {
		if !seen[s] {
			t.Errorf("size %d never drawn", s)
		}
	}
	if m := MeanSize(u, rng); math.Abs(m-3.5) > 0.2 {
		t.Errorf("MeanSize = %v, want ~3.5", m)
	}
}

func TestSizeFnValidation(t *testing.T) {
	for _, f := range []func(){
		func() { FixedSize(0) },
		func() { UniformSize(0, 3) },
		func() { UniformSize(4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid size fn did not panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneratorRate(t *testing.T) {
	m := topo.MustNew(8, 8)
	g := &Generator{Pattern: Uniform{Nodes: 64}, Rate: 0.3}
	g.Init(m, rand.New(rand.NewSource(3)))
	flits := 0
	const cycles = 5000
	for c := int64(0); c < cycles; c++ {
		g.Tick(c, func(p *flit.Packet) {
			flits += p.Size
			if p.Born != c {
				t.Fatal("Born not set to now")
			}
		})
	}
	got := float64(flits) / float64(cycles) / 64
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("offered load = %v flits/node/cycle, want ~0.3", got)
	}
}

func TestGeneratorVariableSizeRate(t *testing.T) {
	m := topo.MustNew(4, 4)
	g := &Generator{Pattern: Uniform{Nodes: 16}, Rate: 0.5, Size: UniformSize(1, 6)}
	g.Init(m, rand.New(rand.NewSource(4)))
	flits := 0
	const cycles = 20000
	for c := int64(0); c < cycles; c++ {
		g.Tick(c, func(p *flit.Packet) { flits += p.Size })
	}
	got := float64(flits) / float64(cycles) / 16
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("offered load = %v flits/node/cycle, want ~0.5", got)
	}
}

func TestGeneratorNodeSubsetAndClass(t *testing.T) {
	m := topo.MustNew(8, 8)
	g := &Generator{
		Nodes:   []int{4, 12},
		Pattern: Permutation{Flows: map[int]int{4: 13, 12: 13}},
		Rate:    1.0,
		Class:   flit.ClassHotspot,
	}
	g.Init(m, rand.New(rand.NewSource(5)))
	count := 0
	g.Tick(0, func(p *flit.Packet) {
		count++
		if p.Class != flit.ClassHotspot {
			t.Error("class not propagated")
		}
		if p.Src != 4 && p.Src != 12 {
			t.Errorf("unexpected source %d", p.Src)
		}
		if p.Dest != 13 {
			t.Errorf("unexpected dest %d", p.Dest)
		}
	})
	if count != 2 {
		t.Errorf("rate-1.0 subset generated %d packets, want 2", count)
	}
}

func TestHotspotFlows(t *testing.T) {
	flows := HotspotFlows()
	if len(flows.Flows) != 8 {
		t.Fatalf("want 8 flows, got %d", len(flows.Flows))
	}
	// Each hotspot has exactly two sources (Table 3).
	counts := map[int]int{}
	for _, d := range flows.Flows {
		counts[d]++
	}
	for _, h := range HotspotNodes() {
		if counts[h] != 2 {
			t.Errorf("hotspot %d has %d flows, want 2", h, counts[h])
		}
	}
	// The 8 sources of Table 3 include the 4 hotspot endpoints, so 56
	// nodes remain for background traffic.
	bg := BackgroundNodes(topo.MustNew(8, 8))
	if len(bg) != 56 {
		t.Errorf("background nodes = %d, want 56", len(bg))
	}
	for _, n := range bg {
		if _, isSrc := flows.Flows[n]; isSrc {
			t.Errorf("background node %d is a hotspot source", n)
		}
	}
}

func TestTornado(t *testing.T) {
	m := topo.MustNew(8, 8)
	tor := Tornado{Mesh: m}
	// (0,0) -> (3,0): shift = W/2-1 = 3.
	d, ok := tor.Dest(0, nil)
	if !ok || d != 3 {
		t.Errorf("tornado(0) = %d,%v, want 3,true", d, ok)
	}
	// Row preserved.
	d, _ = tor.Dest(8, nil) // (0,1) -> (3,1) = 11
	if d != 11 {
		t.Errorf("tornado(8) = %d, want 11", d)
	}
	// Degenerate 2-wide mesh: shift 0, silent.
	if _, ok := (Tornado{Mesh: topo.MustNew(2, 2)}).Dest(0, nil); ok {
		t.Error("2-wide tornado should be silent")
	}
}

func TestBitReverse(t *testing.T) {
	b := BitReverse{Nodes: 8}
	// 3 bits: 1 (001) -> 4 (100).
	d, ok := b.Dest(1, nil)
	if !ok || d != 4 {
		t.Errorf("bitrev(1) = %d, want 4", d)
	}
	// Palindromes are silent: 0 (000), 2 (010), 5 (101), 7 (111).
	for _, pal := range []int{0, 2, 5, 7} {
		if _, ok := b.Dest(pal, nil); ok {
			t.Errorf("bitrev(%d) should be silent", pal)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two bitrev did not panic")
		}
	}()
	BitReverse{Nodes: 12}.Dest(1, nil)
}

func TestNeighbor(t *testing.T) {
	m := topo.MustNew(4, 4)
	n := Neighbor{Mesh: m}
	if d, ok := n.Dest(0, nil); !ok || d != 1 {
		t.Errorf("neighbor(0) = %d, want 1", d)
	}
	// Wraps within the row: 3 -> 0.
	if d, _ := n.Dest(3, nil); d != 0 {
		t.Errorf("neighbor(3) = %d, want 0", d)
	}
}

func TestHotspotUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := HotspotUniform{Nodes: 64, Hotspots: []int{7}, Fraction: 0.5}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		d, ok := h.Dest(0, rng)
		if !ok {
			t.Fatal("hotspot-uniform silent")
		}
		if d == 7 {
			hits++
		}
	}
	// ~50% redirected + ~1/63 of the uniform remainder.
	frac := float64(hits) / n
	if frac < 0.45 || frac < 0.5*0.9 || frac > 0.6 {
		t.Errorf("hotspot fraction = %v, want ~0.51", frac)
	}
}

func TestByNameExtendedPatterns(t *testing.T) {
	m := topo.MustNew(8, 8)
	for _, name := range []string{"tornado", "bitrev", "neighbor"} {
		p, err := ByName(name, m)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("name = %q, want %q", p.Name(), name)
		}
	}
}
