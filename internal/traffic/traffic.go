// Package traffic generates the synthetic workloads of the paper's
// evaluation: uniform random, transpose, shuffle and bit-complement
// patterns, explicit permutation flows, and the hotspot configuration of
// Table 3 with uniform background traffic.
package traffic

import (
	"fmt"
	"math/rand"

	"nocsim/internal/flit"
	"nocsim/internal/topo"
)

// Pattern maps a source node to the destination of its next packet.
type Pattern interface {
	// Name identifies the pattern, e.g. "uniform".
	Name() string
	// Dest returns the destination for a packet from src, or ok=false
	// when src does not generate traffic under this pattern (e.g. the
	// diagonal of a transpose).
	Dest(src int, rng *rand.Rand) (dest int, ok bool)
}

// Uniform sends every packet to a destination drawn uniformly from all
// other nodes.
type Uniform struct{ Nodes int }

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *rand.Rand) (int, bool) {
	if u.Nodes < 2 {
		return 0, false
	}
	d := rng.Intn(u.Nodes - 1)
	if d >= src {
		d++
	}
	return d, true
}

// Transpose sends (x, y) to (y, x); diagonal nodes are silent. The mesh
// must be square.
type Transpose struct{ Mesh topo.Mesh }

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t Transpose) Dest(src int, _ *rand.Rand) (int, bool) {
	if t.Mesh.Width != t.Mesh.Height {
		panic("traffic: transpose requires a square mesh")
	}
	c := t.Mesh.Coord(src)
	d := t.Mesh.Node(topo.Coord{X: c.Y, Y: c.X})
	if d == src {
		return 0, false
	}
	return d, true
}

// Shuffle rotates the node address left by one bit: dest = (2*src +
// 2*src/N) mod N. The node count must be a power of two.
type Shuffle struct{ Nodes int }

// Name implements Pattern.
func (Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (s Shuffle) Dest(src int, _ *rand.Rand) (int, bool) {
	if s.Nodes&(s.Nodes-1) != 0 {
		panic("traffic: shuffle requires a power-of-two node count")
	}
	d := (2*src + 2*src/s.Nodes) % s.Nodes
	if d == src {
		return 0, false
	}
	return d, true
}

// BitComplement sends node i to node N-1-i.
type BitComplement struct{ Nodes int }

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, _ *rand.Rand) (int, bool) {
	d := b.Nodes - 1 - src
	if d == src {
		return 0, false
	}
	return d, true
}

// Permutation sends each listed source to its fixed destination; other
// nodes are silent.
type Permutation struct {
	Label string
	Flows map[int]int
}

// Name implements Pattern.
func (p Permutation) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "permutation"
}

// Dest implements Pattern.
func (p Permutation) Dest(src int, _ *rand.Rand) (int, bool) {
	d, ok := p.Flows[src]
	return d, ok
}

// ByName constructs one of the named standard patterns for mesh m.
func ByName(name string, m topo.Mesh) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{Nodes: m.Nodes()}, nil
	case "transpose":
		return Transpose{Mesh: m}, nil
	case "shuffle":
		return Shuffle{Nodes: m.Nodes()}, nil
	case "bitcomp":
		return BitComplement{Nodes: m.Nodes()}, nil
	case "tornado":
		return Tornado{Mesh: m}, nil
	case "bitrev":
		return BitReverse{Nodes: m.Nodes()}, nil
	case "neighbor":
		return Neighbor{Mesh: m}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// SizeFn draws a packet size in flits.
type SizeFn func(rng *rand.Rand) int

// FixedSize returns a SizeFn for constant n-flit packets.
func FixedSize(n int) SizeFn {
	if n < 1 {
		panic("traffic: packet size must be >= 1")
	}
	return func(*rand.Rand) int { return n }
}

// UniformSize returns a SizeFn drawing sizes uniformly from [lo, hi]; the
// paper's variable-size evaluation uses 1..6 flits.
func UniformSize(lo, hi int) SizeFn {
	if lo < 1 || hi < lo {
		panic("traffic: invalid size range")
	}
	return func(rng *rand.Rand) int { return lo + rng.Intn(hi-lo+1) }
}

// MeanSize estimates the expectation of a SizeFn by sampling; generators
// use it to convert a flit injection rate into a packet probability.
func MeanSize(f SizeFn, rng *rand.Rand) float64 {
	const samples = 4096
	sum := 0
	for i := 0; i < samples; i++ {
		sum += f(rng)
	}
	return float64(sum) / samples
}

// Generator injects Bernoulli traffic: each source node independently
// generates a packet with probability Rate/mean(Size) per cycle, so the
// offered load equals Rate flits per node per cycle.
type Generator struct {
	// Nodes are the source nodes; nil means every node of the mesh.
	Nodes   []int
	Pattern Pattern
	// Rate is the offered load in flits per source node per cycle.
	Rate  float64
	Size  SizeFn
	Class flit.Class

	prob   float64
	nextID uint64
	rng    *rand.Rand
	arena  *flit.Arena
}

// UseArena makes the generator allocate packets from a instead of the
// heap; the network's endpoints recycle them at ejection. Call before
// Tick.
func (g *Generator) UseArena(a *flit.Arena) { g.arena = a }

// newPacket allocates one packet, arena-backed when an arena is set.
func (g *Generator) newPacket() *flit.Packet {
	if g.arena != nil {
		return g.arena.NewPacket()
	}
	return &flit.Packet{}
}

// Init prepares the generator for mesh m using rng for all randomness.
// It must be called once before Tick.
func (g *Generator) Init(m topo.Mesh, rng *rand.Rand) {
	if g.Size == nil {
		g.Size = FixedSize(1)
	}
	if g.Nodes == nil {
		g.Nodes = make([]int, m.Nodes())
		for i := range g.Nodes {
			g.Nodes[i] = i
		}
	}
	g.rng = rng
	g.prob = g.Rate / MeanSize(g.Size, rng)
	if g.prob > 1 {
		g.prob = 1
	}
}

// Tick generates this cycle's packets, passing each to offer with Born set
// to now.
func (g *Generator) Tick(now int64, offer func(*flit.Packet)) {
	for _, src := range g.Nodes {
		if g.rng.Float64() >= g.prob {
			continue
		}
		dest, ok := g.Pattern.Dest(src, g.rng)
		if !ok {
			continue
		}
		g.nextID++
		p := g.newPacket()
		p.ID = g.nextID
		p.Src = src
		p.Dest = dest
		p.Size = g.Size(g.rng)
		p.Class = g.Class
		p.Born = now
		offer(p)
	}
}
