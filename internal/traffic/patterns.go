package traffic

import (
	"math/rand"

	"nocsim/internal/topo"
)

// This file adds the remaining classic synthetic patterns of the
// interconnection-networks literature (Dally & Towles, ch. 3); uniform,
// transpose, shuffle and bit-complement live in traffic.go.

// Tornado sends each node halfway around its row: (x, y) -> ((x + W/2 - 1)
// mod W, y), the canonical adversarial pattern for ring-like dimensions.
type Tornado struct{ Mesh topo.Mesh }

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t Tornado) Dest(src int, _ *rand.Rand) (int, bool) {
	c := t.Mesh.Coord(src)
	shift := t.Mesh.Width/2 - 1
	if shift <= 0 {
		return 0, false
	}
	d := t.Mesh.Node(topo.Coord{X: (c.X + shift) % t.Mesh.Width, Y: c.Y})
	if d == src {
		return 0, false
	}
	return d, true
}

// BitReverse sends node i to the node whose address is i's bit-reversal.
// The node count must be a power of two.
type BitReverse struct{ Nodes int }

// Name implements Pattern.
func (BitReverse) Name() string { return "bitrev" }

// Dest implements Pattern.
func (b BitReverse) Dest(src int, _ *rand.Rand) (int, bool) {
	if b.Nodes&(b.Nodes-1) != 0 {
		panic("traffic: bit-reverse requires a power-of-two node count")
	}
	bits := 0
	for 1<<bits < b.Nodes {
		bits++
	}
	d := 0
	for i := 0; i < bits; i++ {
		if src&(1<<i) != 0 {
			d |= 1 << (bits - 1 - i)
		}
	}
	if d == src {
		return 0, false
	}
	return d, true
}

// Neighbor sends each node to its east neighbour (wrapping within the
// row), the gentlest possible pattern; useful as a locality baseline.
type Neighbor struct{ Mesh topo.Mesh }

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (n Neighbor) Dest(src int, _ *rand.Rand) (int, bool) {
	c := n.Mesh.Coord(src)
	d := n.Mesh.Node(topo.Coord{X: (c.X + 1) % n.Mesh.Width, Y: c.Y})
	if d == src {
		return 0, false
	}
	return d, true
}

// HotspotUniform is uniform random traffic where a fraction of packets is
// redirected to a fixed hotspot set — the classic hotspot model of
// Pfister & Norton (1985), whose tree saturation the paper cites.
type HotspotUniform struct {
	Nodes    int
	Hotspots []int
	// Fraction of packets redirected to a hotspot (e.g. 0.1).
	Fraction float64
}

// Name implements Pattern.
func (HotspotUniform) Name() string { return "hotspot-uniform" }

// Dest implements Pattern.
func (h HotspotUniform) Dest(src int, rng *rand.Rand) (int, bool) {
	if len(h.Hotspots) > 0 && rng.Float64() < h.Fraction {
		d := h.Hotspots[rng.Intn(len(h.Hotspots))]
		if d != src {
			return d, true
		}
	}
	return Uniform{Nodes: h.Nodes}.Dest(src, rng)
}
