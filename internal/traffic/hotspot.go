package traffic

import "nocsim/internal/topo"

// HotspotFlows returns the eight persistent flows of Table 3 for an 8×8
// mesh: two sources oversubscribe each of the four hotspot endpoints
// (n63, n56, n0, n7), modelling memory-controller traffic.
func HotspotFlows() Permutation {
	return Permutation{
		Label: "hotspot",
		Flows: map[int]int{
			0:  63, // f1
			32: 63, // f2
			7:  56, // f3
			39: 56, // f4
			63: 0,  // f5
			31: 0,  // f6
			56: 7,  // f7
			24: 7,  // f8
		},
	}
}

// HotspotNodes returns the oversubscribed endpoints of Table 3.
func HotspotNodes() []int { return []int{63, 56, 0, 7} }

// BackgroundNodes returns the nodes of mesh m not participating in the
// hotspot flows (neither as source nor destination); they inject the
// uniform background traffic whose latency Figure 9 measures.
func BackgroundNodes(m topo.Mesh) []int {
	flows := HotspotFlows().Flows
	used := map[int]bool{}
	for s, d := range flows {
		used[s] = true
		used[d] = true
	}
	var out []int
	for n := 0; n < m.Nodes(); n++ {
		if !used[n] {
			out = append(out, n)
		}
	}
	return out
}
