package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"nocsim/internal/topo"
)

// Tests for the route-decision cache. The two load-bearing properties —
// cached decisions are byte-identical to uncached ones and consume the
// shared RNG stream identically — are checked by the differential fuzz
// target over walked reachable states; the unit tests below pin each
// service path (memo, table hit, miss insert, draw replay, bypass,
// uncacheable degradation) and the storage budget individually.

// stubCacheAlg is a deterministic draw-free cacheable algorithm with a
// scalar-only fingerprint spec, so tests can count live computations and
// script the request list length.
type stubCacheAlg struct {
	reqsPerCall int
	calls       int
}

func (s *stubCacheAlg) Name() string              { return "stub" }
func (s *stubCacheAlg) UsesEscape() bool          { return false }
func (s *stubCacheAlg) ConservativeRealloc() bool { return false }
func (s *stubCacheAlg) Route(ctx *Context, reqs []Request) []Request {
	s.calls++
	for v := 0; v < s.reqsPerCall; v++ {
		reqs = append(reqs, Request{Dir: topo.East, VC: (ctx.Dest + v) % 4})
	}
	return reqs
}
func (s *stubCacheAlg) CacheSpec() (CacheSpec, bool) { return CacheSpec{}, true }

// plainStubAlg does not implement Fingerprinter: the cache must disable
// itself and pass decisions straight through.
type plainStubAlg struct{ stubCacheAlg }

func (p *plainStubAlg) CacheSpec() (CacheSpec, bool) { return CacheSpec{}, false }

// scriptRand deals tie-break bits from a fixed script; giving the cached
// and uncached computation the same script makes draw-dependent
// decisions comparable call by call.
type scriptRand struct {
	bits []int
	i    int
}

func (s *scriptRand) Intn(n int) int {
	v := s.bits[s.i%len(s.bits)] % n
	s.i++
	return v
}

func TestCacheDisabledPassThrough(t *testing.T) {
	alg := &plainStubAlg{stubCacheAlg{reqsPerCall: 2}}
	c := NewCache(alg)
	if c.Enabled() {
		t.Fatal("cache enabled for a non-Fingerprinter algorithm")
	}
	m := topo.MustNew(4, 4)
	ctx := testCtx(m, 0, 5, bitsFakeView{newFakeView(4)})
	for i := 0; i < 3; i++ {
		if got := c.Requests(alg, ctx, nil, nil); len(got) != 2 {
			t.Fatalf("pass-through requests = %v", got)
		}
	}
	if alg.calls != 3 {
		t.Errorf("live computations = %d, want 3 (no caching)", alg.calls)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("disabled cache counted traffic: %v", st)
	}
}

func TestCacheMemoAndTableHit(t *testing.T) {
	alg := &stubCacheAlg{reqsPerCall: 3}
	c := NewCache(alg)
	m := topo.MustNew(4, 4)
	view := &epochFakeView{bitsFakeView: bitsFakeView{newFakeView(4)}}
	ctx := testCtx(m, 0, 5, view)
	var slot CacheSlot

	first := c.Requests(alg, ctx, &slot, nil)
	second := c.Requests(alg, ctx, &slot, nil) // identical state: memo
	third := c.Requests(alg, ctx, nil, nil)    // no slot: table hit
	if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(first, third) {
		t.Fatalf("replayed decisions diverged: %v / %v / %v", first, second, third)
	}
	if alg.calls != 1 {
		t.Errorf("live computations = %d, want 1", alg.calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.MemoHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits (1 memo), 1 miss", st)
	}

	// The replay appends after an existing prefix, like Route does.
	prefix := []Request{{Dir: topo.Local, VC: 9}}
	got := c.Requests(alg, ctx, &slot, prefix)
	if len(got) != 4 || got[0] != prefix[0] {
		t.Errorf("replay clobbered the caller's prefix: %v", got)
	}
}

func TestCacheEmptyDecisionCached(t *testing.T) {
	alg := &stubCacheAlg{reqsPerCall: 0}
	c := NewCache(alg)
	m := topo.MustNew(4, 4)
	ctx := testCtx(m, 0, 5, bitsFakeView{newFakeView(4)})
	if got := c.Requests(alg, ctx, nil, nil); len(got) != 0 {
		t.Fatalf("first call = %v, want empty", got)
	}
	if got := c.Requests(alg, ctx, nil, nil); len(got) != 0 {
		t.Fatalf("cached call = %v, want empty", got)
	}
	if st := c.Stats(); st.Hits != 1 || alg.calls != 1 {
		t.Errorf("empty decision not cached: stats %+v, %d live calls", st, alg.calls)
	}
}

func TestCacheEpochInvalidatesMemo(t *testing.T) {
	alg := MustNew("footprint")
	c := NewCache(alg)
	m := topo.MustNew(8, 8)
	view := benchView(8, 27)
	mk := func() *Context {
		return &Context{Mesh: m, Cur: 9, Dest: 27, InDir: topo.Local,
			View: view, Rand: &scriptRand{bits: []int{0}}}
	}
	var slot CacheSlot
	c.Requests(alg, mk(), &slot, nil) // miss
	c.Requests(alg, mk(), &slot, nil) // memo hit
	// A state transition on a productive port (East toward 27 from 9)
	// must reject the memo; the unchanged masks still tag-hit the table.
	view.epochs[topo.East]++
	c.Requests(alg, mk(), &slot, nil)
	st := c.Stats()
	if st.MemoHits != 1 {
		t.Errorf("memo hits = %d, want 1 (epoch bump must invalidate)", st.MemoHits)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestCacheGenInvalidatesMemoAfterOverwrite(t *testing.T) {
	alg := &stubCacheAlg{reqsPerCall: 2}
	c := NewCache(alg)
	m := topo.MustNew(4, 4)
	view := &epochFakeView{bitsFakeView: bitsFakeView{newFakeView(4)}}
	ctx := testCtx(m, 0, 5, view)
	var slot CacheSlot
	want := c.Requests(alg, ctx, &slot, nil)

	// Simulate a colliding insert overwriting the remembered entry:
	// exactly what Requests does when a different fingerprint hashes to
	// this slot. The stale memo must not replay the new occupant's data.
	e := slot.ent
	if e == nil {
		t.Fatal("slot memo not armed after a miss")
	}
	e.gen++
	e.key = fpKey{meta: ^uint64(0)}

	got := c.Requests(alg, ctx, &slot, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decision after overwrite = %v, want %v", got, want)
	}
	st := c.Stats()
	if st.MemoHits != 0 || st.Misses != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 0 memo hits, 2 misses, 1 eviction", st)
	}
	if alg.calls != 2 {
		t.Errorf("live computations = %d, want 2", alg.calls)
	}
}

func TestCacheDrawReplayServesBothVariants(t *testing.T) {
	alg := MustNew("footprint")
	c := NewCache(alg)
	m := topo.MustNew(8, 8)
	// All VCs idle: from 9 toward 27 both East and South tie on every
	// count, so each decision consumes exactly one tie-break draw.
	view := bitsFakeView{newFakeView(8)}
	script := []int{0, 1, 1, 0, 0, 1, 1, 1, 0}
	cr := &scriptRand{bits: script}
	ur := &scriptRand{bits: script}
	mk := func(r Rand) *Context {
		return &Context{Mesh: m, Cur: 9, Dest: 27, InDir: topo.Local, View: view, Rand: r}
	}
	for i := range script {
		want := alg.Route(mk(ur), nil)
		got := c.Requests(alg, mk(cr), nil, nil)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("call %d (bit %d): cached %v, uncached %v", i, script[i], got, want)
		}
	}
	if cr.i != ur.i {
		t.Errorf("draw consumption diverged: cached %d, uncached %d", cr.i, ur.i)
	}
	st := c.Stats()
	if st.DrawReplays != int64(len(script)-1) {
		t.Errorf("draw replays = %d, want %d", st.DrawReplays, len(script)-1)
	}
	if st.Hits != int64(len(script)-1) || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	found := false
	for i := range c.table {
		e := &c.table[i]
		if e.flags&entOccupied == 0 || e.flags&entDrew == 0 {
			continue
		}
		found = true
		if e.flags&entHasVar0 == 0 || e.flags&entHasVar1 == 0 {
			t.Errorf("entry served both bits but stores flags %#x", e.flags)
		}
	}
	if !found {
		t.Error("no draw-recorded entry in the table")
	}
}

func TestCacheStoreIntoBudget(t *testing.T) {
	c := &Cache{}
	var e entry
	big := make([]Request, 10)
	for i := range big {
		big[i] = Request{VC: i}
	}
	if !c.storeInto(&e, refReqs, big) {
		t.Fatal("first claim failed")
	}
	if len(c.arena) != 10 || e.refs[refReqs].cap != 10 {
		t.Fatalf("claim: arena %d, cap %d", len(c.arena), e.refs[refReqs].cap)
	}
	// A smaller list landing in the same ref reuses the span in place.
	if !c.storeInto(&e, refReqs, big[:4]) {
		t.Fatal("in-place reuse failed")
	}
	if len(c.arena) != 10 {
		t.Fatalf("in-place reuse grew the arena to %d", len(c.arena))
	}
	if e.refs[refReqs].n != 4 || e.refs[refReqs].cap != 10 {
		t.Fatalf("reused ref = %+v", e.refs[refReqs])
	}
	// Empty lists need no arena space at all.
	var e2 entry
	if !c.storeInto(&e2, refReqs, nil) || e2.refs[refReqs].n != 0 {
		t.Fatal("empty store failed")
	}
	// Exhaustion: a claim past the budget is refused, an exact fit is not.
	c.arena = c.arena[:arenaCap-5]
	var e3 entry
	if c.storeInto(&e3, refReqs, make([]Request, 6)) {
		t.Fatal("claim beyond the arena budget succeeded")
	}
	if !c.storeInto(&e3, refReqs, make([]Request, 5)) {
		t.Fatal("exact-fit claim failed")
	}
	if len(c.arena) != arenaCap {
		t.Fatalf("arena length %d, want %d", len(c.arena), arenaCap)
	}
}

func TestCacheArenaExhaustionDegradesSafely(t *testing.T) {
	// 120 requests per decision across 49 distinct fingerprints need
	// 5880 arena slots against a budget of 4096: later inserts must fail
	// to claim space, mark their entries uncacheable, and keep serving
	// correct results live.
	alg := &stubCacheAlg{reqsPerCall: 120}
	c := NewCache(alg)
	m := topo.MustNew(1, 50)
	view := bitsFakeView{newFakeView(4)}
	for dest := 1; dest < 50; dest++ {
		got := c.Requests(alg, testCtx(m, 0, dest, view), nil, nil)
		if len(got) != 120 {
			t.Fatalf("dest %d: %d requests", dest, len(got))
		}
	}
	if len(c.arena) > arenaCap {
		t.Fatalf("arena overran its budget: %d > %d", len(c.arena), arenaCap)
	}
	uncached := 0
	for i := range c.table {
		if c.table[i].flags&entUncache != 0 {
			uncached++
		}
	}
	if uncached == 0 {
		t.Fatal("no entry degraded to uncacheable despite arena exhaustion")
	}
	// Revisiting an uncacheable fingerprint computes live, correctly.
	liveBefore := alg.calls
	got := c.Requests(alg, testCtx(m, 0, 49, view), nil, nil)
	if len(got) != 120 {
		t.Fatalf("uncacheable revisit = %d requests", len(got))
	}
	if alg.calls != liveBefore+1 {
		t.Errorf("uncacheable revisit did not compute live")
	}
	// Revisiting an early (cached) fingerprint still hits.
	hitsBefore := c.Stats().Hits
	c.Requests(alg, testCtx(m, 0, 1, view), nil, nil)
	if c.Stats().Hits != hitsBefore+1 {
		t.Errorf("cached fingerprint no longer hits after exhaustion")
	}
}

// TestCacheBypassGateDeterministic drives a low-congruence workload —
// footprint with occupancy churned from a seeded RNG — long enough to
// trip the adaptive gate, twice, and checks the gate engages and every
// counter lands identically: the gate is a pure function of the
// simulated schedule, so it cannot perturb run-to-run determinism.
func TestCacheBypassGateDeterministic(t *testing.T) {
	run := func() (CacheStats, int, int) {
		alg := MustNew("footprint")
		c := NewCache(alg)
		m := topo.MustNew(8, 8)
		fv := newFakeView(8)
		view := bitsFakeView{fv}
		occR := rand.New(rand.NewSource(99))
		routeR := rand.New(rand.NewSource(7))
		var reqs []Request
		for i := 0; i < 3*probeWindow; i++ {
			for d := topo.East; d <= topo.South; d++ {
				for v := 0; v < 8; v++ {
					fv.owner[d][v] = -1
					if occR.Intn(2) == 1 {
						fv.owner[d][v] = occR.Intn(64)
					}
				}
			}
			dest := occR.Intn(63)
			if dest >= 9 {
				dest++ // never the current router
			}
			ctx := &Context{Mesh: m, Cur: 9, Dest: dest, InDir: topo.Local,
				View: view, Rand: routeR}
			reqs = c.Requests(alg, ctx, nil, reqs[:0])
		}
		return c.Stats(), c.bypassLeft, c.bypassLen
	}
	st1, left1, len1 := run()
	st2, left2, len2 := run()
	if st1 != st2 || left1 != left2 || len1 != len2 {
		t.Fatalf("gate not deterministic:\nrun1 %+v left=%d len=%d\nrun2 %+v left=%d len=%d",
			st1, left1, len1, st2, left2, len2)
	}
	if left1 == 0 {
		t.Errorf("random occupancy never tripped the bypass gate: %+v", st1)
	}
	if st1.Hits+st1.Misses != int64(3*probeWindow) {
		t.Errorf("stats don't cover every decision: %+v", st1)
	}
}

// randView builds a fakeView whose occupancy is drawn from rng, biased
// toward dest so owner/register fingerprint facets are exercised.
func randView(rng *rand.Rand, nodes, vcs, dest int) *fakeView {
	fv := newFakeView(vcs)
	fv.regOwner = map[topo.Direction][]int{}
	for d := topo.East; d <= topo.Local; d++ {
		ro := make([]int, vcs)
		for v := 0; v < vcs; v++ {
			ro[v] = -1
			switch rng.Intn(4) {
			case 0:
				fv.owner[d][v] = dest
			case 1:
				fv.owner[d][v] = rng.Intn(nodes)
			}
			if rng.Intn(3) == 0 {
				ro[v] = dest
			}
		}
		fv.regOwner[d] = ro
		fv.downstream[d] = rng.Intn(vcs + 1)
	}
	return fv
}

// TestFingerprintInjectivity checks congruence soundness for every
// cacheable algorithm: two reachable states that pack to the same
// fingerprint must produce the same decision (given the same RNG
// state). A violation means the key is missing a facet the algorithm
// actually reads — exactly the bug class the cache's correctness
// argument rests on excluding.
func TestFingerprintInjectivity(t *testing.T) {
	m := topo.MustNew(6, 6)
	for _, name := range Names() {
		alg := MustNew(name)
		if !Cacheable(alg) {
			continue
		}
		c := NewCache(alg)
		rng := rand.New(rand.NewSource(11))
		seen := map[fpKey]string{}
		dups := 0
		// One fabric has one VC count: a Cache never mixes them
		// (CacheSpec fixes configuration at construction).
		vcs := 2 + rng.Intn(7)
		for trial := 0; trial < 600; trial++ {
			cur := rng.Intn(m.Nodes())
			dest := rng.Intn(m.Nodes())
			if dest == cur {
				dest = (dest + 1) % m.Nodes()
			}
			// Walk the packet partway so (cur, inDir) is reachable.
			inDir := topo.Local
			fv := randView(rng, m.Nodes(), vcs, dest)
			for steps := rng.Intn(m.Hops(cur, dest)); steps > 0; steps-- {
				ctx := &Context{Mesh: m, Cur: cur, Dest: dest, InDir: inDir,
					View: bitsFakeView{fv}, Rand: rng}
				reqs := alg.Route(ctx, nil)
				if len(reqs) == 0 {
					break
				}
				r := reqs[rng.Intn(len(reqs))]
				next, ok := m.Neighbor(cur, r.Dir)
				if !ok || next == dest {
					break
				}
				inDir = r.Dir.Opposite()
				cur = next
				fv = randView(rng, m.Nodes(), vcs, dest)
			}
			bv := bitsFakeView{fv}
			ctx := &Context{Mesh: m, Cur: cur, Dest: dest, InDir: inDir,
				View: bv, Rand: &scriptRand{bits: []int{1}}}
			key, _, _, _, _, ok := c.key(ctx, bv)
			if !ok {
				t.Fatalf("%s: key bypassed on a 6x6 mesh", name)
			}
			sig := fmt.Sprintf("%v", alg.Route(ctx, nil))
			if prev, dup := seen[key]; dup {
				dups++
				if prev != sig {
					t.Fatalf("%s: congruent fingerprints, different decisions\nkey %+v\nfirst:  %s\nsecond: %s",
						name, key, prev, sig)
				}
			} else {
				seen[key] = sig
			}
		}
		if dups == 0 {
			t.Logf("%s: no congruent pairs in 600 trials (key space too wide to collide here)", name)
		}
	}
}

// FuzzRouteCacheDifferential is the cache's correctness argument made
// executable: a packet is walked through fuzz-chosen router states, and
// at every decision the cached path (one shared Cache, a per-requester
// memo slot, blocked re-routes, state churn under the blocked packet)
// is compared against a fresh uncached Route on its own RNG stream.
// Both the request lists and the RNG stream positions must stay
// identical — the two halves of the result-invisibility claim.
func FuzzRouteCacheDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	for i, name := range Names() {
		seed := make([]byte, 64)
		for j := range seed {
			seed[j] = byte(i*53 + j*7 + len(name))
		}
		f.Add(seed)
	}
	names := Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		name := names[fb.pick(len(names))]
		alg := MustNew(name)
		c := NewCache(alg)

		m := topo.MustNew(3+fb.pick(6), 3+fb.pick(6))
		vcs := 2 + fb.pick(7)
		cur := fb.pick(m.Nodes())
		dest := fb.pick(m.Nodes())
		if dest == cur {
			dest = (dest + 1) % m.Nodes()
		}
		seed := int64(fb.next())
		ru := rand.New(rand.NewSource(seed)) // uncached reference stream
		rc := rand.New(rand.NewSource(seed)) // stream the cache interposes

		view := &epochFakeView{bitsFakeView: bitsFakeView{fuzzView(fb, m.Nodes(), vcs)}}
		var slot CacheSlot
		inDir := topo.Local
		decisions := 0

		check := func() []Request {
			decisions++
			want := alg.Route(&Context{Mesh: m, Cur: cur, Dest: dest,
				InDir: inDir, View: view, Rand: ru}, nil)
			sl := &slot
			if fb.next()%4 == 0 {
				sl = nil // requesters without a memo (sanity: slot is optional)
			}
			got := c.Requests(alg, &Context{Mesh: m, Cur: cur, Dest: dest,
				InDir: inDir, View: view, Rand: rc}, sl, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: cached decision diverged at decision %d\nuncached: %v\ncached:   %v\nstats: %v",
					name, decisions, want, got, c.Stats())
			}
			// Drawing one value from each stream checks the cache consumed
			// exactly as many draws as the uncached computation; the draw
			// itself stays symmetric, so later decisions remain comparable.
			if u, cv := ru.Int63(), rc.Int63(); u != cv {
				t.Fatalf("%s: RNG stream diverged after decision %d (stats %v)",
					name, decisions, c.Stats())
			}
			return got
		}

		for hop := 0; hop < 12; hop++ {
			reqs := check()
			// Blocked re-routes: identical state, served by the memo.
			for n := fb.pick(3); n > 0; n-- {
				check()
			}
			// Router state changes under the blocked packet: new
			// occupancy, bumped epochs, decision recomputed or re-fetched.
			if fb.next()%2 == 0 {
				view.bitsFakeView = bitsFakeView{fuzzView(fb, m.Nodes(), vcs)}
				for d := range view.epochs {
					view.epochs[d]++
				}
				reqs = check()
			}
			if len(reqs) == 0 {
				break
			}
			r := reqs[fb.pick(len(reqs))]
			next, ok := m.Neighbor(cur, r.Dir)
			if !ok || next == dest {
				break
			}
			inDir = r.Dir.Opposite()
			cur = next
			// A different router: its own view, epochs and memo slot.
			view = &epochFakeView{bitsFakeView: bitsFakeView{fuzzView(fb, m.Nodes(), vcs)}}
			slot = CacheSlot{}
		}
		if st := c.Stats(); st.Hits+st.Misses != int64(decisions) {
			t.Fatalf("%s: hits+misses = %d after %d decisions: %+v",
				name, st.Hits+st.Misses, decisions, st)
		}
	})
}
