package routing

import (
	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// XORDET is the static HoL-blocking-aware VC mapping of Peñaranda et al.
// (HPCC'14), applied as an overlay on a base routing algorithm, exactly as
// the paper's "+XORDET" configurations: the base algorithm selects the
// output port, XORDET determines the VC.
//
// Every destination maps to a fixed VC class computed by XOR-folding its
// mesh coordinates, so packets to different destination classes never share
// a VC and a congestion tree stays one VC thick (Figure 2(c)) — at the cost
// of restricted VC usage and thus lower buffer utilization.
type XORDET struct {
	base Algorithm
}

// NewXORDET wraps base with XORDET VC selection.
func NewXORDET(base Algorithm) *XORDET { return &XORDET{base: base} }

// Name implements Algorithm.
func (x *XORDET) Name() string { return x.base.Name() + "+xordet" }

// UsesEscape implements Algorithm, deferring to the base algorithm.
func (x *XORDET) UsesEscape() bool { return x.base.UsesEscape() }

// ConservativeRealloc implements Algorithm, deferring to the base.
func (x *XORDET) ConservativeRealloc() bool { return x.base.ConservativeRealloc() }

// CacheSpec implements Fingerprinter: the base algorithm's spec plus the
// destination coordinate class, because the static VC map depends on
// absolute destination coordinates rather than offsets.
func (x *XORDET) CacheSpec() (CacheSpec, bool) {
	f, ok := x.base.(Fingerprinter)
	if !ok {
		return CacheSpec{}, false
	}
	spec, ok := f.CacheSpec()
	spec.DestClass = true
	return spec, ok
}

// Class returns the static VC class of dest on mesh m given nClasses
// usable VCs: the XOR of the destination coordinates folded modulo
// nClasses.
func Class(m topo.Mesh, dest, nClasses int) int {
	c := m.Coord(dest)
	return (c.X ^ c.Y) % nClasses
}

// Route implements Algorithm: run the base algorithm for its port
// decision, then rewrite the adaptive VC requests to the single statically
// assigned VC of the packet's destination class. Escape requests pass
// through unchanged.
func (x *XORDET) Route(ctx *Context, reqs []Request) []Request {
	base := len(reqs)
	reqs = x.base.Route(ctx, reqs)

	nVCs := ctx.View.VCs()
	lo := adaptiveVCRange(x.base.UsesEscape())
	vc := lo + Class(ctx.Mesh, ctx.Dest, nVCs-lo)

	// Find the port the base algorithm chose for its adaptive requests
	// and the escape request (if any).
	var dir topo.Direction
	found := false
	escReq := Request{Pri: alloc.None}
	for _, r := range reqs[base:] {
		if x.base.UsesEscape() && r.VC == 0 && r.Pri == alloc.Lowest {
			escReq = r
			continue
		}
		if !found {
			dir, found = r.Dir, true
		}
	}
	reqs = reqs[:base]
	if found {
		reqs = append(reqs, Request{Dir: dir, VC: vc, Pri: alloc.Low})
	}
	if escReq.Pri != alloc.None {
		reqs = append(reqs, escReq)
	}
	return reqs
}

var _ Algorithm = (*XORDET)(nil)

func init() {
	for _, base := range []string{"dor", "oddeven", "dbar"} {
		base := base
		Register(base+"+xordet", func() Algorithm { return NewXORDET(MustNew(base)) })
	}
}
