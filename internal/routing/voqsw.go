package routing

import (
	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// VOQSW is the switch-level virtual output queueing of McKeown et al.
// (INFOCOM'96) as adapted to NoCs and cited in footnote 5 of the paper:
// virtual channels are statically partitioned by the output port the
// packet will take at the *next* router, so packets bound for different
// downstream directions never share a VC and cannot HoL-block each other
// across one hop.
//
// Like XORDET it is applied as an overlay: the base algorithm selects the
// output port; VOQSW selects the VC class. The next-hop output port is
// computed with dimension-order routing, which is exact for DOR bases and
// a deterministic approximation for adaptive bases. The paper evaluated
// VOQ_sw but omitted its results because XORDET dominated it; it is
// provided here for completeness.
type VOQSW struct {
	base Algorithm
}

// NewVOQSW wraps base with switch-VOQ VC selection.
func NewVOQSW(base Algorithm) *VOQSW { return &VOQSW{base: base} }

// Name implements Algorithm.
func (v *VOQSW) Name() string { return v.base.Name() + "+voqsw" }

// UsesEscape implements Algorithm, deferring to the base.
func (v *VOQSW) UsesEscape() bool { return v.base.UsesEscape() }

// ConservativeRealloc implements Algorithm, deferring to the base.
func (v *VOQSW) ConservativeRealloc() bool { return v.base.ConservativeRealloc() }

// CacheSpec implements Fingerprinter: the next-hop class is a function
// of the offset and the base algorithm's port choice, so the base
// algorithm's spec already covers the overlay.
func (v *VOQSW) CacheSpec() (CacheSpec, bool) {
	f, ok := v.base.(Fingerprinter)
	if !ok {
		return CacheSpec{}, false
	}
	return f.CacheSpec()
}

// nextHopClass returns the VC class for a packet leaving cur through out
// toward dest: the dimension-order output direction it will take at the
// next router (Local when the next router is the destination), folded
// onto nClasses.
func nextHopClass(m topo.Mesh, cur int, out topo.Direction, dest, nClasses int) int {
	next, ok := m.Neighbor(cur, out)
	if !ok {
		return 0
	}
	var class int
	if next == dest {
		class = int(topo.Local)
	} else {
		class = int(dorDir(m, next, dest))
	}
	return class % nClasses
}

// Route implements Algorithm: take the base algorithm's port decision and
// rewrite the adaptive requests to the next-hop-output VC class.
func (v *VOQSW) Route(ctx *Context, reqs []Request) []Request {
	base := len(reqs)
	reqs = v.base.Route(ctx, reqs)

	nVCs := ctx.View.VCs()
	lo := adaptiveVCRange(v.base.UsesEscape())

	var dir topo.Direction
	found := false
	escReq := Request{Pri: alloc.None}
	for _, r := range reqs[base:] {
		if v.base.UsesEscape() && r.VC == 0 && r.Pri == alloc.Lowest {
			escReq = r
			continue
		}
		if !found {
			dir, found = r.Dir, true
		}
	}
	reqs = reqs[:base]
	if found {
		vc := lo + nextHopClass(ctx.Mesh, ctx.Cur, dir, ctx.Dest, nVCs-lo)
		reqs = append(reqs, Request{Dir: dir, VC: vc, Pri: alloc.Low})
	}
	if escReq.Pri != alloc.None {
		reqs = append(reqs, escReq)
	}
	return reqs
}

var _ Algorithm = (*VOQSW)(nil)

func init() {
	for _, base := range []string{"dor", "oddeven", "dbar"} {
		base := base
		Register(base+"+voqsw", func() Algorithm { return NewVOQSW(MustNew(base)) })
	}
}
