package routing

import (
	"math/rand"
	"testing"

	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// fakeView is a scriptable routing View for unit tests.
type fakeView struct {
	numVCs int
	// owner[d][v] is the VC owner destination, -1 when idle.
	owner map[topo.Direction][]int
	// regOwner[d][v] is the persistent footprint register; defaults to
	// mirroring owner when unset.
	regOwner   map[topo.Direction][]int
	downstream map[topo.Direction]int
}

func newFakeView(numVCs int) *fakeView {
	fv := &fakeView{
		numVCs:     numVCs,
		owner:      map[topo.Direction][]int{},
		downstream: map[topo.Direction]int{},
	}
	for d := topo.East; d <= topo.Local; d++ {
		o := make([]int, numVCs)
		for i := range o {
			o[i] = -1
		}
		fv.owner[d] = o
	}
	return fv
}

func (f *fakeView) VCs() int                            { return f.numVCs }
func (f *fakeView) VCIdle(d topo.Direction, v int) bool { return f.owner[d][v] == -1 }
func (f *fakeView) VCOwner(d topo.Direction, v int) int { return f.owner[d][v] }
func (f *fakeView) VCRegOwner(d topo.Direction, v int) int {
	if ro, ok := f.regOwner[d]; ok && ro[v] != -1 {
		return ro[v]
	}
	return f.owner[d][v]
}
func (f *fakeView) DownstreamIdle(d topo.Direction, _ int) int { return f.downstream[d] }

// clone deep-copies the view so a mutation by Route is detectable by
// comparing against the snapshot.
func (f *fakeView) clone() *fakeView {
	c := &fakeView{
		numVCs:     f.numVCs,
		owner:      map[topo.Direction][]int{},
		downstream: map[topo.Direction]int{},
	}
	for d, o := range f.owner {
		c.owner[d] = append([]int(nil), o...)
	}
	if f.regOwner != nil {
		c.regOwner = map[topo.Direction][]int{}
		for d, o := range f.regOwner {
			c.regOwner[d] = append([]int(nil), o...)
		}
	}
	for d, n := range f.downstream {
		c.downstream[d] = n
	}
	return c
}

func testCtx(m topo.Mesh, cur, dest int, v View) *Context {
	return &Context{
		Mesh: m, Cur: cur, Dest: dest, InDir: topo.Local,
		View: v, Rand: rand.New(rand.NewSource(42)),
	}
}

func reqsByDir(reqs []Request) map[topo.Direction][]Request {
	m := map[topo.Direction][]Request{}
	for _, r := range reqs {
		m[r.Dir] = append(m[r.Dir], r)
	}
	return m
}

func TestRegistryHasAllAlgorithms(t *testing.T) {
	want := []string{
		"dbar", "dbar+voqsw", "dbar+xordet",
		"dor", "dor+voqsw", "dor+xordet",
		"footprint",
		"oddeven", "oddeven+voqsw", "oddeven+xordet",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		a, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if a.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, a.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Error("New(nope) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(nope) did not panic")
		}
	}()
	MustNew("nope")
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("dor", func() Algorithm { return NewDOR() })
}

func TestDORRoute(t *testing.T) {
	m := topo.MustNew(4, 4)
	fv := newFakeView(4)
	// 0 -> 10 = (2,2): DOR must go East first.
	reqs := NewDOR().Route(testCtx(m, 0, 10, fv), nil)
	byDir := reqsByDir(reqs)
	if len(byDir) != 1 || len(byDir[topo.East]) != 4 {
		t.Fatalf("DOR requests = %v", reqs)
	}
	for _, r := range byDir[topo.East] {
		if r.Pri != alloc.Low {
			t.Errorf("DOR priority = %v, want Low", r.Pri)
		}
	}
	// Same column: go South.
	reqs = NewDOR().Route(testCtx(m, 2, 14, fv), nil)
	if d := reqs[0].Dir; d != topo.South {
		t.Errorf("DOR dir = %v, want S", d)
	}
}

func TestDORFlags(t *testing.T) {
	d := NewDOR()
	if d.UsesEscape() || d.ConservativeRealloc() {
		t.Error("DOR should not use escape VCs or conservative realloc")
	}
}

// forbiddenTurn reports whether moving from heading `in` (the travel
// direction) to out is an odd-even-forbidden turn at column x.
func forbiddenTurn(in, out topo.Direction, x int) bool {
	evenCol := x%2 == 0
	switch {
	case in == topo.East && (out == topo.North || out == topo.South):
		return evenCol // EN, ES forbidden at even columns
	case (in == topo.North || in == topo.South) && out == topo.West:
		return !evenCol // NW, SW forbidden at odd columns
	}
	return false
}

func TestOddEvenNoForbiddenTurns(t *testing.T) {
	m := topo.MustNew(8, 8)
	oe := NewOddEven()
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			// Walk every allowed branch with DFS, checking turns.
			type state struct {
				node  int
				inDir topo.Direction
			}
			stack := []state{{src, topo.Local}}
			seen := map[state]bool{}
			for len(stack) > 0 {
				s := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if s.node == dst || seen[s] {
					continue
				}
				seen[s] = true
				dirs, n := oe.allowedDirs(m, s.node, dst, s.inDir)
				if n == 0 {
					t.Fatalf("odd-even dead end at %d toward %d", s.node, dst)
				}
				for _, d := range dirs[:n] {
					heading := s.inDir.Opposite() // travel direction
					if s.inDir != topo.Local && forbiddenTurn(heading, d, m.Coord(s.node).X) {
						t.Fatalf("forbidden turn %v->%v at node %d (col %d), dst %d",
							heading, d, s.node, m.Coord(s.node).X, dst)
					}
					next, ok := m.Neighbor(s.node, d)
					if !ok {
						t.Fatalf("odd-even routed off-mesh at %d dir %v", s.node, d)
					}
					if m.Hops(next, dst) != m.Hops(s.node, dst)-1 {
						t.Fatalf("odd-even non-minimal move %d->%d toward %d", s.node, next, dst)
					}
					stack = append(stack, state{next, d.Opposite()})
				}
			}
		}
	}
}

func TestOddEvenSelectsByIdleVCs(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	// From node 9=(1,1) to 27=(3,3): odd column 1 allows E and S.
	// Make South look congested.
	for v := 0; v < 4; v++ {
		fv.owner[topo.South][v] = 99
	}
	reqs := NewOddEven().Route(testCtx(m, 9, 27, fv), nil)
	for _, r := range reqs {
		if r.Dir != topo.East {
			t.Fatalf("odd-even chose %v with South congested; reqs=%v", r.Dir, reqs)
		}
	}
}

func TestDBARPrefersUncongestedPort(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	// 9=(1,1) -> 27=(3,3): candidates E and S. Congest East locally
	// (fewer than half idle).
	for v := 0; v < 7; v++ {
		fv.owner[topo.East][v] = 50
	}
	reqs := NewDBAR().Route(testCtx(m, 9, 27, fv), nil)
	byDir := reqsByDir(reqs)
	if len(byDir[topo.South]) != 9 {
		t.Fatalf("DBAR should request 9 adaptive VCs on South, got %v", reqs)
	}
	// Escape request: VC0 on the DOR port (East) at Lowest.
	escs := byDir[topo.East]
	if len(escs) != 1 || escs[0].VC != 0 || escs[0].Pri != alloc.Lowest {
		t.Fatalf("DBAR escape request wrong: %v", escs)
	}
}

func TestDBARUsesDownstreamInfo(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	// Neither port congested locally; downstream South much freer.
	fv.downstream[topo.East] = 1
	fv.downstream[topo.South] = 8
	reqs := NewDBAR().Route(testCtx(m, 9, 27, fv), nil)
	for _, r := range reqs {
		if r.VC != 0 && r.Dir != topo.South {
			t.Fatalf("DBAR ignored downstream congestion: %v", reqs)
		}
	}
}

func TestDBARNeverRequestsEscapeAsAdaptive(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	reqs := NewDBAR().Route(testCtx(m, 0, 63, fv), nil)
	for _, r := range reqs {
		if r.VC == 0 && r.Pri != alloc.Lowest {
			t.Errorf("VC0 requested at %v", r.Pri)
		}
	}
}

func TestFootprintUncongestedUsesAllAdaptive(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10) // all idle
	reqs := NewFootprint().Route(testCtx(m, 9, 27, fv), nil)
	adaptive := 0
	for _, r := range reqs {
		if r.VC != 0 {
			adaptive++
			if r.Pri != alloc.Low {
				t.Errorf("uncongested request at %v, want Low", r.Pri)
			}
		}
	}
	if adaptive != 9 {
		t.Errorf("adaptive requests = %d, want 9", adaptive)
	}
}

func TestFootprintSaturatedFollowsFootprints(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	dest := 27
	// Saturate both candidate ports (E, S from node 9); East VC2 is a
	// footprint VC for dest, everything else owned by strangers.
	for v := 1; v < 4; v++ {
		fv.owner[topo.East][v] = 50
		fv.owner[topo.South][v] = 51
	}
	fv.owner[topo.East][2] = dest
	reqs := NewFootprint().Route(testCtx(m, 9, dest, fv), nil)
	var fpReqs []Request
	for _, r := range reqs {
		if r.Pri == alloc.High {
			fpReqs = append(fpReqs, r)
		}
	}
	if len(fpReqs) != 1 || fpReqs[0].Dir != topo.East || fpReqs[0].VC != 2 {
		t.Fatalf("saturated footprint requests = %v, want exactly East VC2", fpReqs)
	}
	// No Low requests for other busy VCs when footprints exist and the
	// port is saturated.
	for _, r := range reqs {
		if r.Pri == alloc.Low {
			t.Errorf("saturated port with footprint still requested busy VC: %v", r)
		}
	}
}

func TestFootprintSaturatedNoFootprintFallsBack(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	for d := topo.East; d <= topo.South; d++ {
		for v := 1; v < 4; v++ {
			fv.owner[d][v] = 50
		}
	}
	reqs := NewFootprint().Route(testCtx(m, 9, 27, fv), nil)
	adaptive := 0
	for _, r := range reqs {
		if r.VC != 0 {
			adaptive++
			if r.Pri != alloc.Low {
				t.Errorf("fallback request at %v, want Low", r.Pri)
			}
		}
	}
	if adaptive != 3 {
		t.Errorf("adaptive fallback requests = %d, want 3", adaptive)
	}
}

func TestFootprintMidLoadPriorityLadder(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	dest := 27
	// On East: 1 idle-deficit — make 8 of 9 adaptive VCs busy so
	// idle=1 (< threshold 5, > 0). VC3 is a footprint.
	for v := 1; v < 9; v++ {
		fv.owner[topo.East][v] = 50
	}
	fv.owner[topo.East][3] = dest
	// South fully busy so East is chosen (more idle VCs).
	for v := 1; v < 10; v++ {
		fv.owner[topo.South][v] = 51
	}
	reqs := NewFootprint().Route(testCtx(m, 9, dest, fv), nil)
	got := map[int]alloc.Priority{}
	for _, r := range reqs {
		if r.Dir == topo.East && r.VC != 0 {
			got[r.VC] = r.Pri
		}
	}
	// This packet HAS footprints on the port, so it is confined: fresh
	// idle VC9 at Low, occupied footprint VC3 at Medium, busy at Low.
	if got[9] != alloc.Low {
		t.Errorf("fresh idle VC9 priority = %v, want Low (confinement)", got[9])
	}
	if got[3] != alloc.Medium {
		t.Errorf("occupied footprint VC3 priority = %v, want Medium", got[3])
	}
	if got[1] != alloc.Low {
		t.Errorf("busy VC1 priority = %v, want Low", got[1])
	}
}

func TestFootprintMidLoadNoFootprintGetsIdleHigh(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	// Same port state but the packet has no footprints: idle VCs at
	// High (full adaptiveness preserved for unrelated traffic).
	for v := 1; v < 9; v++ {
		fv.owner[topo.East][v] = 50
		fv.owner[topo.South][v] = 51
	}
	fv.owner[topo.South][9] = 51
	reqs := NewFootprint().Route(testCtx(m, 9, 27, fv), nil)
	got := map[int]alloc.Priority{}
	for _, r := range reqs {
		if r.Dir == topo.East && r.VC != 0 {
			got[r.VC] = r.Pri
		}
	}
	if got[9] != alloc.High {
		t.Errorf("idle VC9 priority = %v, want High for footprint-less packet", got[9])
	}
}

func TestFootprintReclaimsRegisteredIdleVC(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	dest := 27
	// Mid-state: East VC2 is idle but its register still names dest (a
	// just-drained footprint channel); VC3 occupied by dest.
	fv.regOwner = map[topo.Direction][]int{}
	for d := topo.East; d <= topo.Local; d++ {
		ro := make([]int, 10)
		for i := range ro {
			ro[i] = -1
		}
		fv.regOwner[d] = ro
	}
	for v := 1; v < 9; v++ {
		fv.owner[topo.East][v] = 50
	}
	fv.owner[topo.East][2] = -1 // idle, register retained
	fv.regOwner[topo.East][2] = dest
	fv.owner[topo.East][3] = dest
	for v := 1; v < 10; v++ {
		fv.owner[topo.South][v] = 51
	}
	reqs := NewFootprint().Route(testCtx(m, 9, dest, fv), nil)
	got := map[int]alloc.Priority{}
	for _, r := range reqs {
		if r.Dir == topo.East && r.VC != 0 {
			got[r.VC] = r.Pri
		}
	}
	if got[2] != alloc.Highest {
		t.Errorf("registered idle VC2 priority = %v, want Highest (reclaim)", got[2])
	}
}

func TestFootprintPortSelectionByFootprintTieBreak(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	dest := 27
	// Equal idle counts (zero), but South has 2 footprints vs East 1.
	for v := 1; v < 4; v++ {
		fv.owner[topo.East][v] = 50
		fv.owner[topo.South][v] = 51
	}
	fv.owner[topo.East][1] = dest
	fv.owner[topo.South][1] = dest
	fv.owner[topo.South][2] = dest
	reqs := NewFootprint().Route(testCtx(m, 9, dest, fv), nil)
	for _, r := range reqs {
		if r.Pri == alloc.High && r.Dir != topo.South {
			t.Fatalf("footprint tie-break chose %v, want South: %v", r.Dir, reqs)
		}
	}
}

func TestFootprintAlwaysRequestsEscape(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(4)
	reqs := NewFootprint().Route(testCtx(m, 9, 27, fv), nil)
	found := false
	for _, r := range reqs {
		if r.VC == 0 && r.Pri == alloc.Lowest && r.Dir == topo.East {
			found = true // DOR port from 9 to 27 is East
		}
	}
	if !found {
		t.Errorf("no escape request in %v", reqs)
	}
}

func TestFootprintThresholdOverride(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	// 4 busy VCs -> idle = 5 = V/2: default treats as uncongested.
	for v := 1; v < 5; v++ {
		fv.owner[topo.East][v] = 50
		fv.owner[topo.South][v] = 50
	}
	fp := &Footprint{Threshold: 8}
	reqs := fp.Route(testCtx(m, 9, 27, fv), nil)
	sawLadder := false
	for _, r := range reqs {
		// Ladder branch emits High (idle VCs for this footprint-less
		// packet); the uncongested branch emits only Low.
		if r.Pri == alloc.High {
			sawLadder = true
		}
	}
	if !sawLadder {
		t.Error("raised threshold should trigger the priority ladder")
	}
}

func TestFootprintDisablePriorities(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	for v := 1; v < 9; v++ {
		fv.owner[topo.East][v] = 50
		fv.owner[topo.South][v] = 50
	}
	fp := &Footprint{DisablePriorities: true}
	reqs := fp.Route(testCtx(m, 9, 27, fv), nil)
	for _, r := range reqs {
		if r.Pri != alloc.Low && r.Pri != alloc.Lowest {
			t.Errorf("priorities not flattened: %v", r)
		}
	}
}

func TestXORDETClassStable(t *testing.T) {
	m := topo.MustNew(8, 8)
	for dest := 0; dest < m.Nodes(); dest++ {
		c1 := Class(m, dest, 10)
		c2 := Class(m, dest, 10)
		if c1 != c2 {
			t.Fatalf("class not deterministic for %d", dest)
		}
		if c1 < 0 || c1 >= 10 {
			t.Fatalf("class out of range: %d", c1)
		}
	}
}

func TestXORDETSingleVCRequest(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	x := MustNew("dor+xordet")
	reqs := x.Route(testCtx(m, 0, 27, fv), nil)
	if len(reqs) != 1 {
		t.Fatalf("dor+xordet requests = %v, want exactly one", reqs)
	}
	if want := Class(m, 27, 10); reqs[0].VC != want {
		t.Errorf("VC = %d, want class %d", reqs[0].VC, want)
	}
}

func TestXORDETWithDBARKeepsEscape(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	x := MustNew("dbar+xordet")
	reqs := x.Route(testCtx(m, 9, 27, fv), nil)
	var adaptive, escape int
	for _, r := range reqs {
		if r.VC == 0 && r.Pri == alloc.Lowest {
			escape++
		} else {
			adaptive++
			// Adaptive class must avoid VC0 (the escape VC).
			if r.VC == 0 {
				t.Errorf("xordet adaptive request on escape VC: %v", r)
			}
			if want := 1 + Class(m, 27, 9); r.VC != want {
				t.Errorf("VC = %d, want %d", r.VC, want)
			}
		}
	}
	if adaptive != 1 || escape != 1 {
		t.Errorf("adaptive=%d escape=%d, want 1 and 1: %v", adaptive, escape, reqs)
	}
}

func TestXORDETDifferentClassesDifferentVCs(t *testing.T) {
	m := topo.MustNew(8, 8)
	// Destinations with different xor-classes must get different VCs.
	a, b := 0, 1 // (0,0) xor=0; (1,0) xor=1
	if Class(m, a, 10) == Class(m, b, 10) {
		t.Fatal("test assumption broken")
	}
}

func TestPortAdaptiveness(t *testing.T) {
	m := topo.MustNew(8, 8)
	// Fully adaptive: 1.0 for every pair.
	fp := NewFootprint()
	if got := PortAdaptiveness(m, fp, 0, 27); got != 1.0 {
		t.Errorf("footprint P_adapt = %v, want 1", got)
	}
	if got := PortAdaptiveness(m, NewDBAR(), 0, 63); got != 1.0 {
		t.Errorf("dbar P_adapt = %v, want 1", got)
	}
	// DOR: single path.
	want := 1.0 / float64(m.MinimalPathCount(0, 27))
	if got := PortAdaptiveness(m, NewDOR(), 0, 27); got != want {
		t.Errorf("dor P_adapt = %v, want %v", got, want)
	}
	// Odd-Even: strictly between DOR and fully adaptive on average.
	oeMean := MeanPortAdaptiveness(topo.MustNew(4, 4), NewOddEven())
	dorMean := MeanPortAdaptiveness(topo.MustNew(4, 4), NewDOR())
	if !(oeMean > dorMean && oeMean < 1.0) {
		t.Errorf("odd-even mean P_adapt = %v, dor = %v; want strictly between", oeMean, dorMean)
	}
	// Same node.
	if got := PortAdaptiveness(m, fp, 5, 5); got != 1.0 {
		t.Errorf("P_adapt(5,5) = %v, want 1", got)
	}
}

func TestVCAdaptiveness(t *testing.T) {
	fp := NewFootprint()
	if got := VCAdaptiveness(fp, 10, false); got != 0.9 {
		t.Errorf("footprint VC_adapt = %v, want 0.9", got)
	}
	if got := VCAdaptiveness(fp, 10, true); got != 1.0 {
		t.Errorf("footprint escape VC_adapt = %v, want 1", got)
	}
	if got := VCAdaptiveness(NewDBAR(), 10, false); got != 0 {
		t.Errorf("dbar VC_adapt = %v, want 0", got)
	}
}

func TestTableOne(t *testing.T) {
	rows := TableOne()
	if len(rows) != 4 {
		t.Fatalf("TableOne rows = %d, want 4", len(rows))
	}
	byName := map[string]TableOneRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	if byName["footprint"].VCAdapt != Good {
		t.Error("footprint VC_adapt must be Good")
	}
	if byName["dbar"].VCAdapt != Poor {
		t.Error("dbar VC_adapt must be Poor")
	}
	out := FormatTableOne(rows)
	if out == "" {
		t.Error("FormatTableOne returned empty string")
	}
}

func TestFootprintCost(t *testing.T) {
	// 8×8 mesh, 16 VCs: owner registers 16×6=96 bits + 5-bit idle counter.
	c := FootprintCost(64, 16)
	if c.OwnerBitsPerVC != 6 {
		t.Errorf("owner bits = %d, want 6", c.OwnerBitsPerVC)
	}
	if c.IdleCounterBits != 5 {
		t.Errorf("idle counter bits = %d, want 5 (counts 0..16)", c.IdleCounterBits)
	}
	if c.TotalBitsPerPort != 101 {
		t.Errorf("total bits = %d, want 101", c.TotalBitsPerPort)
	}
	if log2ceil(1) != 0 || log2ceil(2) != 1 || log2ceil(3) != 2 {
		t.Error("log2ceil broken")
	}
}

func TestAdaptiveVCRange(t *testing.T) {
	if adaptiveVCRange(true) != 1 || adaptiveVCRange(false) != 0 {
		t.Error("adaptiveVCRange wrong")
	}
}

func TestVOQSWNextHopClass(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	v := MustNew("dor+voqsw")
	// 0 -> 27 = (3,3): DOR goes East; at node 1 DOR still goes East.
	reqs := v.Route(testCtx(m, 0, 27, fv), nil)
	if len(reqs) != 1 {
		t.Fatalf("dor+voqsw requests = %v, want one", reqs)
	}
	if want := int(topo.East) % 10; reqs[0].VC != want {
		t.Errorf("VC class = %d, want %d (next hop continues East)", reqs[0].VC, want)
	}
	// 0 -> 1: next router IS the destination: Local class.
	reqs = v.Route(testCtx(m, 0, 1, fv), nil)
	if want := int(topo.Local) % 10; reqs[0].VC != want {
		t.Errorf("VC class = %d, want %d (ejection next hop)", reqs[0].VC, want)
	}
}

func TestVOQSWWithEscapeBase(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	v := MustNew("dbar+voqsw")
	reqs := v.Route(testCtx(m, 9, 27, fv), nil)
	var adaptive, escape int
	for _, r := range reqs {
		if r.VC == 0 && r.Pri == alloc.Lowest {
			escape++
		} else {
			adaptive++
			if r.VC == 0 {
				t.Errorf("adaptive request on escape VC: %v", r)
			}
		}
	}
	if adaptive != 1 || escape != 1 {
		t.Errorf("adaptive=%d escape=%d, want 1/1: %v", adaptive, escape, reqs)
	}
}

func TestVOQSWSeparatesDownstreamDirections(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	v := MustNew("dor+voqsw")
	// From node 1, both packets leave East, but at node 2 one continues
	// East and the other turns South: different classes.
	r1 := v.Route(testCtx(m, 1, 7, fv), nil)  // continues East at 2
	r2 := v.Route(testCtx(m, 1, 18, fv), nil) // turns South at 2
	if r1[0].Dir != r2[0].Dir {
		t.Fatalf("both should leave East: %v %v", r1, r2)
	}
	if r1[0].VC == r2[0].VC {
		t.Errorf("different downstream directions share VC class %d", r1[0].VC)
	}
}

func TestFootprintMaxFootprintVCsCap(t *testing.T) {
	m := topo.MustNew(8, 8)
	fv := newFakeView(10)
	dest := 27
	// Destination owns 2 VCs on East; port otherwise idle (uncongested).
	fv.owner[topo.East][3] = dest
	fv.owner[topo.East][5] = dest
	// Make South look worse so East is chosen.
	for v := 1; v < 10; v++ {
		fv.owner[topo.South][v] = 50
	}
	fp := &Footprint{MaxFootprintVCs: 2}
	reqs := fp.Route(testCtx(m, 9, dest, fv), nil)
	for _, r := range reqs {
		if r.Pri == alloc.Lowest {
			continue // escape
		}
		if r.Dir != topo.East || (r.VC != 3 && r.VC != 5) {
			t.Errorf("capped footprint leaked outside its VCs: %v", r)
		}
	}
	// Without the cap the uncongested branch would request all 9.
	plain := NewFootprint().Route(testCtx(m, 9, dest, fv), nil)
	if len(plain) <= len(reqs) {
		t.Errorf("cap did not restrict requests: %d vs %d", len(plain), len(reqs))
	}
}
