package routing

import (
	"fmt"
	"strings"

	"nocsim/internal/topo"
)

// This file implements the two-level routing adaptiveness of Section 3.1:
// port adaptiveness P_adapt (Equation 1) and VC adaptiveness VC_adapt
// (Equation 2), plus the qualitative comparison of Table 1.

// PortAdaptiveness returns P_adapt(src, dest) for alg on mesh m: the ratio
// of minimal paths the algorithm may use to all minimal paths, computed by
// dynamic programming over the minimal quadrant using the algorithm's
// allowed output ports at every intermediate hop. For src == dest it
// returns 1.
func PortAdaptiveness(m topo.Mesh, alg Algorithm, src, dest int) float64 {
	if src == dest {
		return 1
	}
	total := m.MinimalPathCount(src, dest)
	allowed := countAllowedPaths(m, alg, src, dest, topo.Local, map[pathKey]int{})
	return float64(allowed) / float64(total)
}

type pathKey struct {
	node  int
	inDir topo.Direction
}

// countAllowedPaths counts minimal paths from cur to dest that respect the
// algorithm's allowed-port function. The arrival direction matters for
// turn models, so memoization keys on (node, inDir).
func countAllowedPaths(m topo.Mesh, alg Algorithm, cur, dest int, inDir topo.Direction, memo map[pathKey]int) int {
	if cur == dest {
		return 1
	}
	key := pathKey{cur, inDir}
	if n, ok := memo[key]; ok {
		return n
	}
	n := 0
	for _, d := range allowedPorts(m, alg, cur, dest, inDir) {
		next, ok := m.Neighbor(cur, d)
		if !ok {
			continue
		}
		n += countAllowedPaths(m, alg, next, dest, d.Opposite(), memo)
	}
	memo[key] = n
	return n
}

// AllowedPorts returns the adaptive output ports alg permits at cur
// toward dest for a packet that arrived from inDir: the static per-hop
// choice set whose size bounds, at every router, how many ports a
// runtime decision can offer. The anatomy invariant tests compare the
// exercised adaptiveness aggregates against this bound.
func AllowedPorts(m topo.Mesh, alg Algorithm, cur, dest int, inDir topo.Direction) []topo.Direction {
	return allowedPorts(m, alg, cur, dest, inDir)
}

// allowedPorts returns the adaptive output ports alg permits at cur toward
// dest for a packet that arrived from inDir (escape-channel ports excluded
// unless they are also adaptive ports).
func allowedPorts(m topo.Mesh, alg Algorithm, cur, dest int, inDir topo.Direction) []topo.Direction {
	dx, hasX, dy, hasY := m.MinimalDirs(cur, dest)
	switch a := alg.(type) {
	case *DOR:
		return []topo.Direction{dorDir(m, cur, dest)}
	case *OddEven:
		dirs, n := a.allowedDirs(m, cur, dest, inDir)
		return dirs[:n]
	case *XORDET:
		return allowedPorts(m, a.base, cur, dest, inDir)
	default:
		// Fully adaptive (DBAR, Footprint): every minimal port.
		var out []topo.Direction
		if hasX {
			out = append(out, dx)
		}
		if hasY {
			out = append(out, dy)
		}
		return out
	}
}

// MeanPortAdaptiveness averages P_adapt over all ordered node pairs with
// at least one hop, as a network-wide adaptivity figure.
func MeanPortAdaptiveness(m topo.Mesh, alg Algorithm) float64 {
	sum, n := 0.0, 0
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			sum += PortAdaptiveness(m, alg, s, d)
			n++
		}
	}
	return sum / float64(n)
}

// VCAdaptiveness returns VC_adapt for a channel under alg with nVCs VCs
// per physical channel (Equation 2 and the Duato-specific case analysis of
// Section 3.1). escape reports whether the channel is an escape channel.
//
// Algorithms that pick VCs obliviously have zero VC adaptiveness: the
// packet cannot influence which VC it lands on. Footprint adapts over all
// adaptive VCs.
func VCAdaptiveness(alg Algorithm, nVCs int, escape bool) float64 {
	switch alg.(type) {
	case *Footprint:
		if escape {
			return 1
		}
		return float64(nVCs-1) / float64(nVCs)
	default:
		return 0
	}
}

// QualityRating is a qualitative grade in Table 1.
type QualityRating string

// Ratings used in Table 1.
const (
	Good QualityRating = "+"
	Fair QualityRating = "o"
	Poor QualityRating = "-"
	NA   QualityRating = "N/A"
)

// TableOneRow is one column of Table 1 (one algorithm's grades).
type TableOneRow struct {
	Algorithm          string
	PortAdapt          QualityRating
	VCAdapt            QualityRating
	NetworkCongestion  QualityRating
	EndpointCongestion QualityRating
	HoLBlocking        QualityRating
}

// TableOne reproduces the qualitative comparison of Table 1 for the
// algorithms implemented in this repository (DBAR, XORDET, Odd-Even,
// Footprint; RECN and CBCM are router-microarchitecture proposals outside
// a routing-algorithm library and are cited in the paper for context).
func TableOne() []TableOneRow {
	return []TableOneRow{
		{"dbar", Good, Poor, Good, Poor, Poor},
		{"xordet", NA, NA, Poor, Good, Fair},
		{"oddeven", Good, Poor, Fair, Poor, Poor},
		{"footprint", Good, Good, Fair, Fair, Good},
	}
}

// FormatTableOne renders TableOne as an aligned text table.
func FormatTableOne(rows []TableOneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-8s %-8s %-9s %-4s\n",
		"algorithm", "P_adapt", "VC_adapt", "network", "endpoint", "HoL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8s %-8s %-8s %-9s %-4s\n",
			r.Algorithm, r.PortAdapt, r.VCAdapt, r.NetworkCongestion, r.EndpointCongestion, r.HoLBlocking)
	}
	return b.String()
}
