package routing

import "math/bits"

// This file implements the hardware cost model of Section 4.4: Footprint
// needs only local state — an idle-VC counter per port and an owner
// register per VC — on top of a conventional fully-adaptive router.

// Cost summarizes Footprint's per-port storage overhead.
type Cost struct {
	NetworkSize int // nodes
	VCsPerPort  int
	// IdleCounterBits tracks the number of idle VCs: log2(#VCs) bits,
	// rounded up to count 0..#VCs.
	IdleCounterBits int
	// OwnerBitsPerVC identifies the destination owning a VC: log2(N).
	OwnerBitsPerVC int
	// TotalBitsPerPort is the headline figure; for the paper's 8×8 mesh
	// with 16 VCs it is on the order of one extra flit buffer entry.
	TotalBitsPerPort int
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// FootprintCost computes the Section 4.4 storage overhead for a network of
// nodes endpoints and vcs virtual channels per physical channel.
func FootprintCost(nodes, vcs int) Cost {
	idleBits := log2ceil(vcs + 1) // counter range 0..vcs
	ownerBits := log2ceil(nodes)
	return Cost{
		NetworkSize:      nodes,
		VCsPerPort:       vcs,
		IdleCounterBits:  idleBits,
		OwnerBitsPerVC:   ownerBits,
		TotalBitsPerPort: idleBits + vcs*ownerBits,
	}
}
