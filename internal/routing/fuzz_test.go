package routing

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nocsim/internal/topo"
)

// This file holds the native Go fuzz target for routing decisions. The
// randomized property tests in property_test.go draw scenarios from a
// fixed-seed RNG; the fuzzer instead derives every choice — mesh shape,
// algorithm, VC occupancy, and each hop of the packet's history — from
// the input bytes, so coverage-guided mutation can steer the walk into
// corner states (mesh edges, saturated ports, recycled footprint
// registers) that uniform sampling rarely hits. CI runs the target for a
// short smoke budget; the checked-in corpus below seeds it with the same
// golden shapes the deterministic tests pin.

// fuzzBytes deals the fuzz input out one byte at a time, yielding zeros
// once exhausted so every input decodes to a well-formed scenario.
type fuzzBytes struct {
	data []byte
	pos  int
}

func (fb *fuzzBytes) next() int {
	if fb.pos >= len(fb.data) {
		return 0
	}
	b := fb.data[fb.pos]
	fb.pos++
	return int(b)
}

// pick returns a value in [0, n).
func (fb *fuzzBytes) pick(n int) int { return fb.next() % n }

// fuzzView builds a fakeView whose occupancy, footprint registers and
// downstream congestion all come from the fuzz stream.
func fuzzView(fb *fuzzBytes, nodes, vcs int) *fakeView {
	fv := newFakeView(vcs)
	fv.regOwner = map[topo.Direction][]int{}
	for d := topo.East; d <= topo.Local; d++ {
		ro := make([]int, vcs)
		for v := 0; v < vcs; v++ {
			if fb.next()%2 == 0 {
				fv.owner[d][v] = fb.pick(nodes)
			}
			ro[v] = -1
			if fb.next()%2 == 0 {
				ro[v] = fb.pick(nodes)
			}
		}
		fv.regOwner[d] = ro
		fv.downstream[d] = fb.pick(vcs + 1)
	}
	return fv
}

// bitsFakeView layers the optional AggregateView and BitsView extensions
// over a fakeView, computing every aggregate independently by scanning
// the scalar arrays. Routing through it must produce byte-identical
// requests to routing through the bare fakeView: that equivalence is
// what keeps the router's O(1) bitmask fast paths honest.
type bitsFakeView struct{ *fakeView }

func (b bitsFakeView) IdleCount(d topo.Direction, lo int) int {
	n := 0
	for v := lo; v < b.VCs(); v++ {
		if b.VCIdle(d, v) {
			n++
		}
	}
	return n
}

func (b bitsFakeView) FootprintCount(d topo.Direction, dest, lo int) int {
	n := 0
	for v := lo; v < b.VCs(); v++ {
		if b.VCOwner(d, v) == dest {
			n++
		}
	}
	return n
}

func (b bitsFakeView) IdleBits(d topo.Direction) uint32 {
	var m uint32
	for v := 0; v < b.VCs(); v++ {
		if b.VCIdle(d, v) {
			m |= 1 << uint(v)
		}
	}
	return m
}

func (b bitsFakeView) OwnerBits(d topo.Direction, dest int) uint32 {
	var m uint32
	for v := 0; v < b.VCs(); v++ {
		if b.VCOwner(d, v) == dest {
			m |= 1 << uint(v)
		}
	}
	return m
}

func (b bitsFakeView) RegOwnerBits(d topo.Direction, dest int) uint32 {
	var m uint32
	for v := 0; v < b.VCs(); v++ {
		if b.VCRegOwner(d, v) == dest {
			m |= 1 << uint(v)
		}
	}
	return m
}

var (
	_ AggregateView = bitsFakeView{}
	_ BitsView      = bitsFakeView{}
)

// FuzzRouteAdmissible decodes a routing scenario from the fuzz input and
// checks that the decision is admissible: minimal, turn-legal, escape-
// correct, pure, and identical whether the algorithm reads the view
// scalar by scalar or through the aggregate/bitmask fast paths.
//
// The packet's arrival port is not decoded directly — turn models make
// some (position, inDir) pairs unreachable by construction, and inventing
// one would report phantom violations. Instead the packet is walked from
// injection, each hop choosing among the algorithm's own requests with a
// fuzz byte, exactly as walkScenario does with an RNG.
func FuzzRouteAdmissible(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	// One longer seed per registered algorithm so the initial corpus
	// exercises every Route implementation.
	for i, name := range Names() {
		seed := make([]byte, 48)
		for j := range seed {
			seed[j] = byte(i*37 + j*11 + len(name))
		}
		f.Add(seed)
	}

	names := Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		name := names[fb.pick(len(names))]
		alg := MustNew(name)

		m := topo.MustNew(3+fb.pick(6), 3+fb.pick(6))
		vcs := 2 + fb.pick(7)
		cur := fb.pick(m.Nodes())
		dest := fb.pick(m.Nodes())
		if dest == cur {
			dest = (dest + 1) % m.Nodes()
		}
		seed := int64(fb.next())

		// Walk the packet toward dest for a fuzz-chosen number of hops,
		// strictly short of arrival, so (cur, inDir) is reachable.
		inDir := topo.Local
		view := fuzzView(fb, m.Nodes(), vcs)
		steps := fb.pick(m.Hops(cur, dest))
		for i := 0; i < steps; i++ {
			ctx := &Context{
				Mesh: m, Cur: cur, Dest: dest, InDir: inDir,
				View: view, Rand: rand.New(rand.NewSource(seed)),
			}
			reqs := alg.Route(ctx, nil)
			if len(reqs) == 0 {
				break
			}
			r := reqs[fb.pick(len(reqs))]
			next, ok := m.Neighbor(cur, r.Dir)
			if !ok || next == dest {
				break
			}
			inDir = r.Dir.Opposite()
			cur = next
			view = fuzzView(fb, m.Nodes(), vcs)
		}

		ctx := func(v View) *Context {
			return &Context{
				Mesh: m, Cur: cur, Dest: dest, InDir: inDir,
				View: v, Rand: rand.New(rand.NewSource(seed)),
			}
		}
		snapshot := view.clone()
		reqs := alg.Route(ctx(view), nil)

		// Route must not mutate the view it inspects.
		if !reflect.DeepEqual(snapshot, view) {
			t.Fatalf("%s: Route mutated the view\nbefore: %+v\nafter:  %+v", name, snapshot, view)
		}

		// Admissibility of every request.
		minimal := minimalDirSet(m, cur, dest)
		dd := dorDir(m, cur, dest)
		for _, r := range reqs {
			if r.VC < 0 || r.VC >= vcs {
				t.Fatalf("%s: VC %d out of range [0,%d)", name, r.VC, vcs)
			}
			if !minimal[r.Dir] {
				t.Fatalf("%s: non-minimal request %v (cur %d dest %d quadrant %v)",
					name, r.Dir, cur, dest, minimal)
			}
			if r.Dir == inDir {
				t.Fatalf("%s: 180-degree turn back out of %v", name, r.Dir)
			}
			if alg.UsesEscape() && r.VC == 0 && r.Dir != dd {
				t.Fatalf("%s: escape VC 0 on %v, want DOR direction %v", name, r.Dir, dd)
			}
			if strings.HasPrefix(name, "oddeven") && inDir != topo.Local {
				if forbiddenTurn(inDir.Opposite(), r.Dir, m.Coord(cur).X) {
					t.Fatalf("%s: forbidden turn %v->%v at node %d col %d",
						name, inDir.Opposite(), r.Dir, cur, m.Coord(cur).X)
				}
			}
			if strings.HasPrefix(name, "dor") && r.Dir != dd {
				t.Fatalf("%s: DOR misroute %v, want %v", name, r.Dir, dd)
			}
		}
		if inDir == topo.Local && len(reqs) == 0 {
			t.Fatalf("%s: no requests for a freshly injected packet (cur %d dest %d)", name, cur, dest)
		}

		// Purity: the decision is a function of (state, seed).
		again := alg.Route(ctx(view), nil)
		if !reflect.DeepEqual(reqs, again) {
			t.Fatalf("%s: Route not deterministic\nfirst:  %v\nsecond: %v", name, reqs, again)
		}

		// Fast-path equivalence: the aggregate/bitmask extensions must be
		// observationally identical to scalar VC-by-VC reads.
		viaBits := alg.Route(ctx(bitsFakeView{view}), nil)
		if !reflect.DeepEqual(reqs, viaBits) {
			t.Fatalf("%s: BitsView fast path diverged from scalar view\nscalar: %v\nbits:   %v",
				name, reqs, viaBits)
		}
	})
}
