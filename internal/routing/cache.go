package routing

import (
	"fmt"

	"nocsim/internal/topo"
)

// This file implements the route-decision cache: congruent routing
// states — same destination offset, same arrival port, same view state
// on the productive ports — reuse one computed request list instead of
// re-running the algorithm, across routers, packets and blocked cycles.
//
// The cache is provably invisible to simulated results:
//
//   - Key completeness. An algorithm opts in by implementing
//     Fingerprinter, declaring which facets of the view its decision
//     reads (CacheSpec). The key packs the destination offset, the
//     arrival port, any position salts the algorithm needs (column
//     parity for turn models, the destination's XOR class for static VC
//     maps) and the declared per-productive-port idle/owner/reg-owner
//     bitmasks plus DownstreamIdle counts. Identical key therefore
//     implies the algorithm would take identical branches and produce
//     identical requests. The differential fuzz target cross-checks
//     cached against uncached decisions over reachable states.
//
//   - RNG-exact replay. Adaptive tie-breaks draw from the shared
//     per-router RNG (selectByCounts), so skipping a computation must
//     not skip its draw. The first computation runs under a recording
//     Rand that counts the draws consumed (0 or 1 today). A hit on an
//     entry that recorded a draw first draws the tie-break bit from the
//     live stream — keeping stream consumption identical to the
//     uncached run — and uses the bit to select among the entry's two
//     variants, computing a missing variant with the drawn bit preset.
//     Decisions with unsupported draw patterns mark their entry
//     uncacheable and always compute live.
//
//   - Epoch invalidation. Views that expose per-port state epochs
//     (EpochView; the router's SoA state bumps a port's epoch on every
//     idle/owner/reg-owner transition) let a blocked packet whose
//     relevant ports have not changed reuse its previous entry without
//     even hashing: the per-input-VC CacheSlot memo compares two epoch
//     words (plus the entry's overwrite generation) instead of building
//     a key.
//
// The storage budget is deliberately hard-bounded so the cache shows up
// in the perf gate's heap accounting as a fixed couple hundred KB, not
// a load-dependent leak: entries live inline in a fixed direct-mapped
// table (one cache line each), stored request lists live in a
// fixed-capacity arena addressed by (offset, len, cap) references that
// are reused in place when a colliding insert overwrites an entry, and
// decisions that cannot claim arena space simply stay uncached.
type (
	// CacheSpec declares which facets of the decision's input view an
	// algorithm's Route reads, so the cache keys on exactly that state.
	// Implementing Fingerprinter with a spec asserts that Route is a
	// pure function of (destination offset, arrival port, the declared
	// facets, and configuration fixed at construction) — instances from
	// the same constructor must be interchangeable.
	CacheSpec struct {
		// Idle keys on each productive port's idle-VC bitmask.
		Idle bool
		// Owner keys on each productive port's dest-owned-VC bitmask.
		Owner bool
		// RegOwner keys on each productive port's persistent footprint
		// register bitmask for dest.
		RegOwner bool
		// Downstream keys on the one-hop DownstreamIdle counts toward
		// dest. Downstream state has no local epoch, so it also disables
		// the per-slot epoch memo.
		Downstream bool
		// ColumnParity keys on the current router's column parity —
		// turn models (odd-even) permit different turns at odd and even
		// columns, which a pure offset key cannot see.
		ColumnParity bool
		// DestClass keys on the destination's folded XOR coordinate
		// class — static VC maps (XORDET) depend on absolute
		// destination coordinates, not offsets.
		DestClass bool
	}

	// Fingerprinter is the opt-in interface for cacheable algorithms.
	// Returning ok=false opts out dynamically (overlays whose base
	// algorithm is not fingerprintable do this).
	Fingerprinter interface {
		CacheSpec() (CacheSpec, bool)
	}

	// EpochView is an optional View extension exposing a per-output-port
	// state epoch: any change to the port's idle, owner or footprint
	// register state bumps the epoch. The cache's slot memo compares
	// epochs to serve blocked re-routes without hashing.
	EpochView interface {
		PortEpoch(d topo.Direction) uint32
	}
)

// CacheStats counts the cache's traffic. All counters are deterministic:
// they are a pure function of the simulated schedule.
type CacheStats struct {
	// Hits counts decisions served from a cached entry (MemoHits of
	// them via the epoch memo, without hashing).
	Hits     int64 `json:"hits"`
	MemoHits int64 `json:"memo_hits"`
	// Misses counts decisions computed by running the algorithm,
	// including bypassed decisions and congruent states whose entry is
	// marked uncacheable.
	Misses int64 `json:"misses"`
	// Evictions counts entries overwritten by colliding inserts in the
	// direct-mapped table.
	Evictions int64 `json:"evictions"`
	// DrawReplays counts hits that re-drew a recorded tie-break bit
	// from the live RNG stream to keep it bit-identical.
	DrawReplays int64 `json:"draw_replays"`
}

// HitRate returns the fraction of decisions served from cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// String formats the stats for status lines and the phase table.
func (s CacheStats) String() string {
	return fmt.Sprintf("%.1f%% hit (%d hits, %d memo, %d misses), %d draw-replays, %d evicted",
		100*s.HitRate(), s.Hits, s.MemoHits, s.Misses, s.DrawReplays, s.Evictions)
}

// fpKey is a packed route-decision fingerprint. meta holds the scalar
// inputs (offsets, arrival port, salts, downstream counts); the mask
// words hold the declared per-productive-port VC bitmasks (x = the
// productive X port, y = the productive Y port; which direction each is
// follows from the offset signs in meta, so the positional encoding is
// unambiguous).
type fpKey struct {
	meta       uint64
	ix, ox, rx uint32
	iy, oy, ry uint32
}

// meta bit layout.
const (
	metaOffXShift  = 0  // 8 bits, signed X offset
	metaOffYShift  = 8  // 8 bits, signed Y offset
	metaInDirShift = 16 // 3 bits
	metaParityBit  = 19 // 1 bit, current column parity
	metaClassShift = 20 // 8 bits, dest coordinate XOR class
	metaDownXShift = 28 // 8 bits, DownstreamIdle toward the X port
	metaDownYShift = 36 // 8 bits, DownstreamIdle toward the Y port
)

// arenaRef addresses one stored request list in the cache arena. cap is
// the span's capacity, which survives entry overwrites so a new decision
// landing in the same table slot reuses the span in place when it fits.
type arenaRef struct {
	off uint32
	n   uint16
	cap uint16
}

// entry flag bits.
const (
	entOccupied = 1 << iota // slot holds a live fingerprint
	entUncache              // replay unsupported: congruent states compute live
	entDrew                 // decision consumed one tie-break draw; refVar0/1 hold variants
	entHasVar0              // variant for drawn bit 0 is stored
	entHasVar1              // variant for drawn bit 1 is stored
)

// entry ref-slot roles.
const (
	refReqs = iota // draw-free decision
	refVar0        // decision after drawing tie-break bit 0
	refVar1        // decision after drawing tie-break bit 1
)

// entry is one cached decision, sized to a cache line and stored inline
// in the direct-mapped table. gen counts overwrites of this slot so the
// epoch memo can tell that a remembered entry still describes the state
// it memoized. The key is stored for the tag compare.
type entry struct {
	key   fpKey
	flags uint8
	_     [3]uint8
	gen   uint32
	refs  [3]arenaRef
}

// Table, arena and adaptive-gate sizing. The table is indexed by a mixed
// hash of the fingerprint; a colliding insert overwrites in place
// (counted as an eviction) rather than chaining, so lookups are one
// probe of one cache line. The arena is a fixed budget: decisions that
// cannot claim space stay uncached. The probe/bypass windows drive the
// adaptive gate: every probeWindow table decisions the hit rate is
// evaluated, and below bypassThreshold the table is bypassed for the
// current backoff length (computing live is cheaper than hashing when
// congruent states rarely recur — Footprint under congestion); each
// consecutive failed probe doubles the backoff up to bypassMax. All
// inputs to the gate are deterministic simulated counts, so runs stay
// bit-identical.
const (
	cacheTableSize  = 1 << 11 // 2048 line-sized entries = 128 KB
	arenaCap        = 4096    // requests; 96 KB
	probeWindow     = 2048
	bypassMin       = 1 << 17
	bypassMax       = 1 << 22
	bypassThreshold = 0.7
)

// CacheSlot is the per-input-VC memo a router embeds next to each
// requester: the last decision's key identity (destination, arrival
// port), the entry's overwrite generation, and the state epochs of its
// productive ports. While the generation and epochs stand still, a
// blocked packet's re-route replays the remembered entry without
// touching the fingerprint table. All fields are cache-internal;
// directions are stored as int8 so a router's slot array (one slot per
// input VC) stays at 32 bytes per requester.
type CacheSlot struct {
	ent    *entry
	gen    uint32
	dest   int32
	epochs [2]uint32
	inDir  int8
	nPorts uint8
	ports  [2]int8
}

// coord8 is a precomputed mesh coordinate; the lookup table replaces
// Mesh.Coord's two integer divisions on the hot path.
type coord8 struct {
	x, y int16
}

// Cache is one fabric's shared route-decision cache. Routers of one
// network step sequentially within a cycle, so no locking is needed;
// each parallel run owns its own Cache.
type Cache struct {
	spec    CacheSpec
	enabled bool
	// needMasks/needDirs/memoOK precompute which key facets the spec
	// reads, so scalar-only specs (DOR, XORDET overlays of it) skip the
	// BitsView assertion and the productive-direction computation
	// entirely, and Downstream specs skip the epoch memo.
	needMasks bool
	needDirs  bool
	memoOK    bool

	table []entry
	arena []Request
	stats CacheStats

	// coords caches Mesh.Coord for every node of the mesh seen on the
	// first decision (one cache serves one fabric, so the mesh never
	// changes; the width check guards test harnesses that reuse one).
	coords     []coord8
	coordWidth int

	// Adaptive gate state: winLookups/winHits count the current probe
	// window's table traffic; bypassLeft > 0 routes live without
	// touching the table for that many more decisions; bypassLen is the
	// next backoff length.
	winLookups int
	winHits    int
	bypassLeft int
	bypassLen  int

	// rec and pre are the reusable RNG interposers: pointing ctx.Rand at
	// a persistent field instead of a stack value keeps the interposer
	// from escaping to the heap on every miss.
	rec recordingRand
	pre presetRand
}

// Cacheable reports whether alg opted into fingerprint caching.
func Cacheable(alg Algorithm) bool {
	f, ok := alg.(Fingerprinter)
	if !ok {
		return false
	}
	_, ok = f.CacheSpec()
	return ok
}

// NewCache builds a cache for alg's fingerprint spec. The cache is
// disabled (Enabled returns false, Requests routes directly) when alg
// did not opt in.
func NewCache(alg Algorithm) *Cache {
	c := &Cache{}
	if f, ok := alg.(Fingerprinter); ok {
		if spec, ok := f.CacheSpec(); ok {
			c.spec = spec
			c.enabled = true
			c.needMasks = spec.Idle || spec.Owner || spec.RegOwner
			c.needDirs = c.needMasks || spec.Downstream
			c.memoOK = !spec.Downstream
			c.table = make([]entry, cacheTableSize)
			c.bypassLen = bypassMin
		}
	}
	return c
}

// Enabled reports whether the algorithm opted into caching.
func (c *Cache) Enabled() bool { return c.enabled }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// needsEpochs reports whether the slot memo must track port epochs: a
// spec reading no local port state (DOR) memoizes on identity alone.
func (c *Cache) needsEpochs() bool {
	return c.spec.Idle || c.spec.Owner || c.spec.RegOwner
}

// Requests returns alg's VC requests for ctx, serving congruent states
// from cache. It appends to reqs exactly as Route does (the cached list
// is copied, never aliased) and consumes the live RNG stream exactly as
// the uncached computation would. slot may be nil (no memo).
func (c *Cache) Requests(alg Algorithm, ctx *Context, slot *CacheSlot, reqs []Request) []Request {
	if !c.enabled {
		return alg.Route(ctx, reqs)
	}

	// Adaptive gate: when the last probe window showed congruent states
	// rarely recur, computing live is cheaper than hashing — skip the
	// table (and the memo, which bypassed workloads never hit) for a
	// while, then probe again. This is the steady-state path for
	// low-congruence algorithms, so it stays a branch and a decrement.
	if c.bypassLeft > 0 {
		c.bypassLeft--
		c.stats.Misses++
		return alg.Route(ctx, reqs)
	}

	// Epoch memo: the same packet re-routing while blocked, with no
	// state change on its productive ports and no overwrite of its
	// remembered entry, replays without hashing.
	ev, hasEpochs := ctx.View.(EpochView)
	if slot != nil && hasEpochs && c.memoOK && slot.ent != nil &&
		slot.gen == slot.ent.gen && slot.ent.flags&entUncache == 0 &&
		int(slot.dest) == ctx.Dest && topo.Direction(slot.inDir) == ctx.InDir &&
		c.slotFresh(slot, ev) {
		c.stats.Hits++
		c.stats.MemoHits++
		return c.replay(slot.ent, alg, ctx, reqs)
	}

	var bv BitsView
	if c.needMasks {
		var ok bool
		bv, ok = ctx.View.(BitsView)
		if !ok {
			// No bitmask access, no fingerprint: route live.
			c.stats.Misses++
			return alg.Route(ctx, reqs)
		}
	}
	key, dx, hasX, dy, hasY, ok := c.key(ctx, bv)
	if !ok {
		c.stats.Misses++
		return alg.Route(ctx, reqs)
	}

	c.winLookups++
	idx := key.hash() & (cacheTableSize - 1)
	e := &c.table[idx]
	if e.flags&entOccupied != 0 && e.key == key {
		if e.flags&entUncache != 0 {
			// Known-uncacheable decision shape: compute live every time.
			c.endWindow()
			c.stats.Misses++
			return alg.Route(ctx, reqs)
		}
		c.winHits++
		c.stats.Hits++
		reqs = c.replay(e, alg, ctx, reqs)
	} else {
		if e.flags&entOccupied != 0 {
			c.stats.Evictions++
		}
		e.gen++ // invalidates slot memos remembering the old occupant
		e.key = key
		e.flags = entOccupied
		base := len(reqs)
		c.rec = recordingRand{live: ctx.Rand}
		ctx.Rand = &c.rec
		reqs = alg.Route(ctx, reqs)
		ctx.Rand = c.rec.live
		c.stats.Misses++
		switch {
		case c.rec.bad:
			e.flags |= entUncache
		case c.rec.draws == 0:
			if !c.storeInto(e, refReqs, reqs[base:]) {
				e.flags |= entUncache
			}
		default:
			e.flags |= entDrew
			if c.storeInto(e, refVar0+c.rec.bit, reqs[base:]) {
				e.flags |= entHasVar0 << c.rec.bit
			} else {
				e.flags |= entUncache
			}
		}
	}
	c.endWindow()

	// Refresh the memo for the next blocked cycle.
	if slot != nil && hasEpochs && c.memoOK && e.flags&entUncache == 0 {
		slot.ent = e
		slot.gen = e.gen
		slot.dest = int32(ctx.Dest)
		slot.inDir = int8(ctx.InDir)
		slot.nPorts = 0
		if c.needsEpochs() {
			if hasX {
				slot.ports[slot.nPorts] = int8(dx)
				slot.epochs[slot.nPorts] = ev.PortEpoch(dx)
				slot.nPorts++
			}
			if hasY {
				slot.ports[slot.nPorts] = int8(dy)
				slot.epochs[slot.nPorts] = ev.PortEpoch(dy)
				slot.nPorts++
			}
		}
	}
	return reqs
}

// slotFresh reports that none of the slot's tracked ports changed state
// since the memoized decision.
func (c *Cache) slotFresh(slot *CacheSlot, ev EpochView) bool {
	for i := uint8(0); i < slot.nPorts; i++ {
		if ev.PortEpoch(topo.Direction(slot.ports[i])) != slot.epochs[i] {
			return false
		}
	}
	return true
}

// key packs the decision fingerprint. ok is false when the offsets
// exceed the key's 8-bit fields (meshes wider than 127 hops bypass the
// cache rather than alias). The productive directions fall out of the
// offset signs, mirroring Mesh.MinimalDirs without its coordinate
// divisions.
func (c *Cache) key(ctx *Context, bv BitsView) (k fpKey, dx topo.Direction, hasX bool, dy topo.Direction, hasY bool, ok bool) {
	if len(c.coords) != ctx.Mesh.Nodes() || c.coordWidth != ctx.Mesh.Width {
		c.buildCoords(ctx.Mesh)
	}
	cc, dc := c.coords[ctx.Cur], c.coords[ctx.Dest]
	offX, offY := int(dc.x-cc.x), int(dc.y-cc.y)
	if offX < -127 || offX > 127 || offY < -127 || offY > 127 {
		return fpKey{}, 0, false, 0, false, false
	}
	meta := uint64(uint8(int8(offX)))<<metaOffXShift |
		uint64(uint8(int8(offY)))<<metaOffYShift |
		uint64(ctx.InDir)<<metaInDirShift
	if c.spec.ColumnParity {
		meta |= uint64(cc.x&1) << metaParityBit
	}
	if c.spec.DestClass {
		meta |= uint64(uint8(dc.x^dc.y)) << metaClassShift
	}
	if !c.needDirs {
		// Scalar-only spec: the fingerprint is complete without the
		// productive directions (and the slot memo tracks no epochs).
		k.meta = meta
		return k, 0, false, 0, false, true
	}
	if offX > 0 {
		dx, hasX = topo.East, true
	} else if offX < 0 {
		dx, hasX = topo.West, true
	}
	if offY > 0 {
		dy, hasY = topo.South, true
	} else if offY < 0 {
		dy, hasY = topo.North, true
	}
	if c.spec.Downstream && hasX && hasY {
		// DownstreamIdle is at most ports*VCs <= 64, so uint8 holds it.
		meta |= uint64(uint8(ctx.View.DownstreamIdle(dx, ctx.Dest))) << metaDownXShift
		meta |= uint64(uint8(ctx.View.DownstreamIdle(dy, ctx.Dest))) << metaDownYShift
	}
	k.meta = meta
	if hasX {
		if c.spec.Idle {
			k.ix = bv.IdleBits(dx)
		}
		if c.spec.Owner {
			k.ox = bv.OwnerBits(dx, ctx.Dest)
		}
		if c.spec.RegOwner {
			k.rx = bv.RegOwnerBits(dx, ctx.Dest)
		}
	}
	if hasY {
		if c.spec.Idle {
			k.iy = bv.IdleBits(dy)
		}
		if c.spec.Owner {
			k.oy = bv.OwnerBits(dy, ctx.Dest)
		}
		if c.spec.RegOwner {
			k.ry = bv.RegOwnerBits(dy, ctx.Dest)
		}
	}
	return k, dx, hasX, dy, hasY, true
}

// buildCoords fills the per-node coordinate lookup table for m.
func (c *Cache) buildCoords(m topo.Mesh) {
	n := m.Nodes()
	if cap(c.coords) < n {
		c.coords = make([]coord8, n)
	}
	c.coords = c.coords[:n]
	for i := 0; i < n; i++ {
		cd := m.Coord(i)
		c.coords[i] = coord8{x: int16(cd.X), y: int16(cd.Y)}
	}
	c.coordWidth = m.Width
}

// replay serves a cached entry, consuming the live RNG exactly as the
// uncached computation would. The entry is not marked uncacheable.
func (c *Cache) replay(e *entry, alg Algorithm, ctx *Context, reqs []Request) []Request {
	if e.flags&entDrew == 0 {
		r := e.refs[refReqs]
		return append(reqs, c.arena[r.off:r.off+uint32(r.n)]...)
	}
	// The original computation consumed one tie-break draw; a congruent
	// state consumes the same one. Draw it from the live stream first —
	// bit-identical consumption — then use it to pick the variant.
	b := ctx.Rand.Intn(2)
	c.stats.DrawReplays++
	if e.flags&(entHasVar0<<b) != 0 {
		r := e.refs[refVar0+b]
		return append(reqs, c.arena[r.off:r.off+uint32(r.n)]...)
	}
	// First time this congruent state drew b: compute the variant with
	// the already-drawn bit preset.
	base := len(reqs)
	c.pre = presetRand{live: ctx.Rand, bit: b}
	ctx.Rand = &c.pre
	reqs = alg.Route(ctx, reqs)
	ctx.Rand = c.pre.live
	if c.pre.used && !c.pre.bad && c.storeInto(e, refVar0+b, reqs[base:]) {
		e.flags |= entHasVar0 << b
	} else {
		// Either the arena budget is spent, or the congruence contract
		// was violated (the replayed decision consumed a different draw
		// pattern — never expected; the differential fuzz target guards
		// it). Degrade safely: stop caching this shape.
		e.flags |= entUncache
	}
	return reqs
}

// storeInto copies a computed request list into the entry's ref slot i,
// reusing the slot's previous arena span in place when the list fits
// its capacity and claiming fresh arena space otherwise. It returns
// false when the arena budget is exhausted: the decision then stays
// uncached rather than growing the heap.
func (c *Cache) storeInto(e *entry, i int, rs []Request) bool {
	r := &e.refs[i]
	if len(rs) == 0 {
		r.n = 0
		return true
	}
	if len(rs) > int(r.cap) {
		if len(rs) > arenaCap-len(c.arena) {
			return false
		}
		if c.arena == nil {
			c.arena = make([]Request, 0, arenaCap)
		}
		r.off = uint32(len(c.arena))
		r.cap = uint16(len(rs))
		c.arena = c.arena[:len(c.arena)+len(rs)]
	}
	r.n = uint16(len(rs))
	copy(c.arena[r.off:int(r.off)+len(rs)], rs)
	return true
}

// endWindow closes a probe window when due: a hit rate below the
// bypass threshold turns the table off for the current backoff length
// (the slot memo stays on — it is cheaper than routing) and doubles the
// backoff; a passing window resets it.
func (c *Cache) endWindow() {
	if c.winLookups < probeWindow {
		return
	}
	if float64(c.winHits) < bypassThreshold*float64(c.winLookups) {
		c.bypassLeft = c.bypassLen
		if c.bypassLen < bypassMax {
			c.bypassLen *= 2
		}
	} else {
		c.bypassLen = bypassMin
	}
	c.winLookups, c.winHits = 0, 0
}

// hash mixes the fingerprint into a table index. The constants are the
// splitmix64 increments; the multiply-xor rounds spread every key word
// across the low bits.
func (k *fpKey) hash() uint64 {
	h := k.meta
	h ^= uint64(k.ix) | uint64(k.ox)<<32
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	h ^= uint64(k.rx) | uint64(k.iy)<<32
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	h ^= uint64(k.oy) | uint64(k.ry)<<32
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// recordingRand counts the tie-break draws a computation consumes while
// passing them through to the live stream. bad marks draw patterns the
// replay protocol does not support (more than one draw, or a draw with
// n != 2).
type recordingRand struct {
	live  Rand
	draws int
	bit   int
	bad   bool
}

// Intn implements Rand.
func (r *recordingRand) Intn(n int) int {
	v := r.live.Intn(n)
	r.draws++
	if n != 2 || r.draws > 1 {
		r.bad = true
	} else {
		r.bit = v
	}
	return v
}

// presetRand serves one already-drawn tie-break bit, falling through to
// the live stream (and flagging the violation) on any further draw.
type presetRand struct {
	live Rand
	bit  int
	used bool
	bad  bool
}

// Intn implements Rand.
func (p *presetRand) Intn(n int) int {
	if !p.used && n == 2 {
		p.used = true
		return p.bit
	}
	p.bad = true
	return p.live.Intn(n)
}
