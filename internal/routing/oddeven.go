package routing

import (
	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// OddEven is Chiu's odd-even turn model (IEEE TPDS 2000): a partially
// adaptive, minimal routing algorithm that is deadlock-free without
// virtual-channel escape paths by forbidding
//
//   - EN and ES turns (eastbound packets turning north/south) at even
//     columns, and
//   - NW and SW turns (packets turning west) at odd columns.
//
// As configured in the paper's evaluation, the number of idle VCs selects
// among the allowed output ports. VCs are requested obliviously.
type OddEven struct{}

// NewOddEven returns an odd-even turn model router.
func NewOddEven() *OddEven { return &OddEven{} }

// Name implements Algorithm.
func (*OddEven) Name() string { return "oddeven" }

// UsesEscape implements Algorithm; the turn model needs no escape VC.
func (*OddEven) UsesEscape() bool { return false }

// ConservativeRealloc implements Algorithm.
func (*OddEven) ConservativeRealloc() bool { return false }

// CacheSpec implements Fingerprinter: the port choice reads the
// productive ports' idle counts, and turn legality depends on the
// current column's parity (which an offset key cannot see).
func (*OddEven) CacheSpec() (CacheSpec, bool) {
	return CacheSpec{Idle: true, ColumnParity: true}, true
}

// allowedDirs returns the minimal directions the odd-even turn model
// permits from cur toward dest for a packet that arrived from inDir.
// At least one direction is always returned for cur != dest.
func (*OddEven) allowedDirs(m topo.Mesh, cur, dest int, inDir topo.Direction) (dirs [2]topo.Direction, n int) {
	cc, dc := m.Coord(cur), m.Coord(dest)
	e0 := dc.X - cc.X
	e1 := dc.Y - cc.Y
	var ns topo.Direction
	if e1 > 0 {
		ns = topo.South
	} else {
		ns = topo.North
	}
	switch {
	case e0 == 0:
		// Same column: head straight for the destination row.
		dirs[0], n = ns, 1
	case e0 > 0:
		// Destination is east.
		if e1 == 0 {
			dirs[0], n = topo.East, 1
			return dirs, n
		}
		// Turning off the east heading (EN/ES) is only legal at odd
		// columns; a packet not currently moving east (injected here or
		// moving vertically) is not turning and may always go vertical.
		if cc.X%2 == 1 || inDir != topo.West {
			dirs[n] = ns
			n++
		}
		// Continuing east is legal unless the destination column is even
		// and adjacent, which would force an illegal EN/ES turn there.
		if dc.X%2 == 1 || e0 != 1 {
			dirs[n] = topo.East
			n++
		}
	default:
		// Destination is west. West is always legal (WN/WS turns are
		// unrestricted); vertical moves are only legal at even columns
		// because the later turn into west (NW/SW) is illegal at odd
		// columns.
		dirs[0], n = topo.West, 1
		if e1 != 0 && cc.X%2 == 0 {
			dirs[n] = ns
			n++
		}
	}
	if n == 0 {
		// Unreachable for minimal odd-even routing; guard anyway.
		dirs[0], n = dorDir(m, cur, dest), 1
	}
	return dirs, n
}

// Route implements Algorithm: pick the allowed port with more idle VCs
// (random tie-break) and request all its VCs at Low priority.
func (oe *OddEven) Route(ctx *Context, reqs []Request) []Request {
	dirs, n := oe.allowedDirs(ctx.Mesh, ctx.Cur, ctx.Dest, ctx.InDir)
	var d topo.Direction
	if n == 1 {
		d = dirs[0]
	} else {
		i0 := countIdle(ctx.View, dirs[0], 0)
		i1 := countIdle(ctx.View, dirs[1], 0)
		d = selectByCounts(ctx, dirs[0], dirs[1], i0, i1, 0, 0)
	}
	for v := 0; v < ctx.View.VCs(); v++ {
		reqs = append(reqs, Request{Dir: d, VC: v, Pri: alloc.Low})
	}
	return reqs
}

var _ Algorithm = (*OddEven)(nil)

func init() {
	Register("oddeven", func() Algorithm { return NewOddEven() })
}
