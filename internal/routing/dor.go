package routing

import (
	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// DOR is deterministic dimension-order routing: packets exhaust the X
// dimension before moving in Y. DOR is deadlock-free without an escape
// channel, so all VCs are usable and requested obliviously at equal
// priority — this is the baseline that saturates all VCs of a congested
// link (Figure 2(a) of the paper).
type DOR struct{}

// NewDOR returns a dimension-order router.
func NewDOR() *DOR { return &DOR{} }

// Name implements Algorithm.
func (*DOR) Name() string { return "dor" }

// UsesEscape implements Algorithm; DOR needs no escape VC.
func (*DOR) UsesEscape() bool { return false }

// ConservativeRealloc implements Algorithm.
func (*DOR) ConservativeRealloc() bool { return false }

// CacheSpec implements Fingerprinter: DOR reads no view state, so the
// destination offset alone determines its decision.
func (*DOR) CacheSpec() (CacheSpec, bool) { return CacheSpec{}, true }

// Route implements Algorithm: all VCs of the single dimension-order port
// at Low priority.
func (*DOR) Route(ctx *Context, reqs []Request) []Request {
	d := dorDir(ctx.Mesh, ctx.Cur, ctx.Dest)
	for v := 0; v < ctx.View.VCs(); v++ {
		reqs = append(reqs, Request{Dir: d, VC: v, Pri: alloc.Low})
	}
	return reqs
}

var _ Algorithm = (*DOR)(nil)

func init() {
	Register("dor", func() Algorithm { return NewDOR() })
}

// selectByCounts implements the two-stage port comparison shared by the
// adaptive algorithms (Algorithm 1, step 2): the port with more primary
// credits wins; ties fall through to the secondary counts; remaining ties
// are broken randomly.
func selectByCounts(ctx *Context, dx, dy topo.Direction, prix, priy, secx, secy int) topo.Direction {
	switch {
	case prix > priy:
		return dx
	case prix < priy:
		return dy
	case secx > secy:
		return dx
	case secx < secy:
		return dy
	case ctx.Rand.Intn(2) == 0:
		return dx
	default:
		return dy
	}
}
