package routing

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nocsim/internal/topo"
)

// scenario is one randomized routing decision: a mesh, a (cur, dest)
// pair, the input port the packet arrived on, and a randomly occupied
// view.
type scenario struct {
	m     topo.Mesh
	cur   int
	dest  int
	inDir topo.Direction
	view  *fakeView
}

// randomView fills a fresh view with random VC occupancy and downstream
// congestion numbers.
func randomView(rng *rand.Rand, nodes, vcs int) *fakeView {
	fv := newFakeView(vcs)
	for d := topo.East; d <= topo.Local; d++ {
		for v := 0; v < vcs; v++ {
			if rng.Float64() < 0.5 {
				fv.owner[d][v] = rng.Intn(nodes)
			}
		}
		fv.downstream[d] = rng.Intn(vcs + 1)
	}
	return fv
}

// walkScenario draws a reachable routing state: it injects a packet at a
// random source and walks it toward a random destination for a random
// number of hops, each hop decided by the algorithm itself against a
// randomly occupied view. Turn-model algorithms restrict which (inDir,
// position) states can occur — inventing an arrival port out of thin air
// produces histories the model provably never creates — so reachability
// must come from the algorithm's own decisions.
func walkScenario(rng *rand.Rand, alg Algorithm) scenario {
	m := topo.MustNew(3+rng.Intn(6), 3+rng.Intn(6))
	vcs := 2 + rng.Intn(5)
	cur := rng.Intn(m.Nodes())
	dest := rng.Intn(m.Nodes())
	for dest == cur {
		dest = rng.Intn(m.Nodes())
	}
	inDir := topo.Local
	view := randomView(rng, m.Nodes(), vcs)
	steps := rng.Intn(m.Hops(cur, dest)) // strictly short of the destination
	for i := 0; i < steps; i++ {
		ctx := &Context{
			Mesh: m, Cur: cur, Dest: dest, InDir: inDir,
			View: view, Rand: rng,
		}
		reqs := alg.Route(ctx, nil)
		if len(reqs) == 0 {
			break
		}
		r := reqs[rng.Intn(len(reqs))]
		next, ok := m.Neighbor(cur, r.Dir)
		if !ok || next == dest {
			break
		}
		inDir = r.Dir.Opposite()
		cur = next
		view = randomView(rng, m.Nodes(), vcs)
	}
	return scenario{m: m, cur: cur, dest: dest, inDir: inDir, view: view}
}

func (s scenario) ctx(seed int64) *Context {
	return &Context{
		Mesh: s.m, Cur: s.cur, Dest: s.dest, InDir: s.inDir,
		View: s.view, Rand: rand.New(rand.NewSource(seed)),
	}
}

// minimalDirSet returns the productive quadrant from cur toward dest.
func minimalDirSet(m topo.Mesh, cur, dest int) map[topo.Direction]bool {
	set := map[topo.Direction]bool{}
	dx, hasX, dy, hasY := m.MinimalDirs(cur, dest)
	if hasX {
		set[dx] = true
	}
	if hasY {
		set[dy] = true
	}
	return set
}

// TestRoutingInvariantsRandomized drives every registered algorithm
// through randomized reachable decisions and holds the invariants that
// make the fabric minimal and deadlock-free:
//
//   - every request targets a VC in range and a productive (minimal)
//     direction — which also rules out 180° turns and off-mesh ports;
//   - escape-channel algorithms request VC 0 only on the dimension-order
//     direction (Duato's theory needs the escape layer to stay DOR);
//   - Odd-Even variants never request a turn the turn model forbids;
//   - DOR variants request exactly the dimension-order direction;
//   - a freshly injected packet always gets at least one request;
//   - a decision is a pure function of (state, seed): repeating it with
//     an identically seeded RNG yields identical requests — the local
//     form of the engine-level determinism guarantee.
func TestRoutingInvariantsRandomized(t *testing.T) {
	const trials = 500
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			alg := MustNew(name)
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < trials; trial++ {
				s := walkScenario(rng, alg)
				reqs := alg.Route(s.ctx(int64(trial)), nil)

				minimal := minimalDirSet(s.m, s.cur, s.dest)
				dd := dorDir(s.m, s.cur, s.dest)
				for _, r := range reqs {
					if r.VC < 0 || r.VC >= s.view.VCs() {
						t.Fatalf("trial %d: VC %d out of range [0,%d)", trial, r.VC, s.view.VCs())
					}
					if !minimal[r.Dir] {
						t.Fatalf("trial %d: non-minimal request %v (cur %d dest %d, quadrant %v)",
							trial, r.Dir, s.cur, s.dest, minimal)
					}
					if r.Dir == s.inDir {
						t.Fatalf("trial %d: 180-degree turn back out of input port %v", trial, r.Dir)
					}
					if alg.UsesEscape() && r.VC == 0 && r.Dir != dd {
						t.Fatalf("trial %d: escape VC 0 requested on %v, want DOR direction %v",
							trial, r.Dir, dd)
					}
					if strings.HasPrefix(name, "oddeven") && s.inDir != topo.Local {
						heading := s.inDir.Opposite()
						if forbiddenTurn(heading, r.Dir, s.m.Coord(s.cur).X) {
							t.Fatalf("trial %d: odd-even forbidden turn %v->%v at node %d col %d",
								trial, heading, r.Dir, s.cur, s.m.Coord(s.cur).X)
						}
					}
					if strings.HasPrefix(name, "dor") && r.Dir != dd {
						t.Fatalf("trial %d: DOR misroute %v, want %v", trial, r.Dir, dd)
					}
				}

				if s.inDir == topo.Local && len(reqs) == 0 {
					t.Fatalf("trial %d: no requests for a freshly injected packet (cur %d dest %d)",
						trial, s.cur, s.dest)
				}

				// Purity: an identical decision replayed with an equally
				// seeded RNG must produce identical requests.
				again := alg.Route(s.ctx(int64(trial)), nil)
				if !reflect.DeepEqual(reqs, again) {
					t.Fatalf("trial %d: Route is not deterministic:\nfirst:  %v\nsecond: %v",
						trial, reqs, again)
				}
			}
		})
	}
}

// TestRouteLeavesViewUntouched is the dynamic twin of noclint's
// routepurity rule: a routing decision reads the router's View but must
// not mutate it — the paired-seed comparisons only hold if routing
// cannot perturb the fabric it inspects. The view is deep-copied before
// every Route call and compared structurally after.
func TestRouteLeavesViewUntouched(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			alg := MustNew(name)
			rng := rand.New(rand.NewSource(23))
			for trial := 0; trial < 200; trial++ {
				s := walkScenario(rng, alg)
				snapshot := s.view.clone()
				alg.Route(s.ctx(int64(trial)), nil)
				if !reflect.DeepEqual(snapshot, s.view) {
					t.Fatalf("trial %d: Route mutated the view:\nbefore: %+v\nafter:  %+v",
						trial, snapshot, s.view)
				}
			}
		})
	}
}

// TestFootprintCandidatesWithinAdaptiveQuadrant pins Footprint's
// defining property: it regulates adaptiveness within the fully-adaptive
// minimal quadrant — candidates are a subset of the quadrant, never
// additional paths — and its escape layer is exactly DOR.
func TestFootprintCandidatesWithinAdaptiveQuadrant(t *testing.T) {
	fp := MustNew("footprint")
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		s := walkScenario(rng, fp)
		reqs := fp.Route(s.ctx(int64(trial)), nil)
		minimal := minimalDirSet(s.m, s.cur, s.dest)
		for _, r := range reqs {
			if r.VC == 0 {
				if dd := dorDir(s.m, s.cur, s.dest); r.Dir != dd {
					t.Fatalf("trial %d: escape request on %v, want %v", trial, r.Dir, dd)
				}
				continue
			}
			if !minimal[r.Dir] {
				t.Fatalf("trial %d: adaptive candidate %v outside minimal quadrant %v",
					trial, r.Dir, minimal)
			}
		}
	}
}
