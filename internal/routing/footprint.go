package routing

import (
	"math/bits"

	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// Footprint implements the paper's contribution (Algorithm 1): a minimal
// fully-adaptive routing algorithm under Duato's theory that regulates its
// own adaptiveness when the network is congested by making packets follow
// the "footprints" of earlier packets to the same destination.
//
// A footprint VC is a virtual channel currently occupied by packets headed
// to the same destination as the packet being routed. Footprint keeps the
// congestion tree slim by steering congested packets onto footprint VCs —
// forming virtual set-aside queues — instead of forking new branches, while
// uncongested packets keep full port and VC adaptiveness.
//
// The three steps of Algorithm 1:
//
//  1. determine the legal output ports (at most one per dimension, with
//     the dimension-order port doubling as the escape port) and classify
//     each port's adaptive VCs as idle, footprint, or busy;
//  2. pick the output port with more idle VCs, falling back to more
//     footprint VCs, falling back to a random choice;
//  3. translate the port's congestion state into prioritized VC requests:
//     uncongested (idle ≥ threshold) → all adaptive VCs at Low;
//     saturated (no idle) → footprint VCs at High if any, else all
//     adaptive at Low; in between → idle at Highest, footprint at High,
//     busy at Low. The escape VC is always requested at Lowest.
type Footprint struct {
	// Threshold is the idle-VC count at or above which the port is
	// treated as uncongested. Zero means the paper's default of half the
	// VCs per physical channel.
	Threshold int
	// DisablePriorities flattens the Highest/High/Low ladder of step 3 to
	// a single Low priority, for the ablation study; the footprint-vs-busy
	// distinction (which VCs get requested) is preserved.
	DisablePriorities bool
	// DisableRegulation removes the core mechanism for the ablation
	// study: at saturated ports the packet requests every adaptive VC
	// instead of waiting on its footprint VCs, degenerating Footprint
	// into a locally-informed fully-adaptive router.
	DisableRegulation bool
	// MaxFootprintVCs, when positive, caps how many VCs per port a
	// single destination may occupy: once a destination owns that many
	// VCs of a port, its packets only request those VCs (at any load),
	// isolating congested traffic to a bounded number of VCs. This is
	// the Section 4.2.5 / Section 5 future-work extension ("an upper
	// bound on the number of adaptive VCs can be set for Footprint VCs
	// to isolate congested traffic to a fixed number of VCs").
	MaxFootprintVCs int
}

// NewFootprint returns a Footprint router with the paper's parameters.
func NewFootprint() *Footprint { return &Footprint{} }

// Name implements Algorithm.
func (*Footprint) Name() string { return "footprint" }

// UsesEscape implements Algorithm; Footprint relies on Duato's theory.
func (*Footprint) UsesEscape() bool { return true }

// ConservativeRealloc implements Algorithm.
func (*Footprint) ConservativeRealloc() bool { return true }

// CacheSpec implements Fingerprinter: steps 2 and 3 read the productive
// ports' idle, owner and footprint-register bitmasks (the idle and
// footprint counts derive from the masks), and nothing else.
func (*Footprint) CacheSpec() (CacheSpec, bool) {
	return CacheSpec{Idle: true, Owner: true, RegOwner: true}, true
}

// threshold returns the congestion threshold for a port with nVCs VCs.
func (f *Footprint) threshold(nVCs int) int {
	if f.Threshold > 0 {
		return f.Threshold
	}
	return nVCs / 2
}

// pri returns p, or Low when the priority ladder is disabled.
func (f *Footprint) pri(p alloc.Priority) alloc.Priority {
	if f.DisablePriorities {
		return alloc.Low
	}
	return p
}

// Route implements Algorithm 1 of the paper.
func (f *Footprint) Route(ctx *Context, reqs []Request) []Request {
	m, v := ctx.Mesh, ctx.View
	nVCs := v.VCs()

	// STEP 1: legal output ports and VC classification.
	dx, hasX, dy, hasY := m.MinimalDirs(ctx.Cur, ctx.Dest)
	esc := dorDir(m, ctx.Cur, ctx.Dest)

	var d topo.Direction
	switch {
	case hasX && hasY:
		// STEP 2: the port with more idle VCs wins; ties fall to the
		// port with more footprint VCs; remaining ties break randomly.
		ix, iy := countIdle(v, dx, 1), countIdle(v, dy, 1)
		fx, fy := countFootprint(v, dx, ctx.Dest, 1), countFootprint(v, dy, ctx.Dest, 1)
		d = selectByCounts(ctx, dx, dy, ix, iy, fx, fy)
	case hasX:
		d = dx
	default:
		d = dy
	}

	// STEP 3: VC requests by congestion state of the chosen port.
	idle := countIdle(v, d, 1)
	fp := countFootprint(v, d, ctx.Dest, 1)

	// Views exposing per-port bitmasks (the router's SoA state does) let
	// the per-VC classification below read three masks instead of making
	// three interface calls per VC; the scalar fallback is identical and
	// the property tests cross-check the two paths.
	bv, fast := v.(BitsView)

	// Future-work extension: once the destination owns MaxFootprintVCs
	// VCs of the port, confine its packets to them regardless of load,
	// giving the stronger isolation of Section 4.2.5.
	if f.MaxFootprintVCs > 0 && fp >= f.MaxFootprintVCs {
		reqs = f.appendFootprintVCs(reqs, v, bv, fast, d, ctx.Dest, nVCs)
		reqs = append(reqs, Request{Dir: esc, VC: 0, Pri: alloc.Lowest})
		return reqs
	}

	switch {
	case idle >= f.threshold(nVCs):
		// No congestion: use all adaptive VCs; waiting on footprint
		// channels would only add latency.
		for vc := 1; vc < nVCs; vc++ {
			reqs = append(reqs, Request{Dir: d, VC: vc, Pri: alloc.Low})
		}
	case idle == 0:
		if fp != 0 && !f.DisableRegulation {
			// Saturated port: wait on the footprint channels only.
			reqs = f.appendFootprintVCs(reqs, v, bv, fast, d, ctx.Dest, nVCs)
		} else {
			// No footprint to follow: request all adaptive VCs.
			for vc := 1; vc < nVCs; vc++ {
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: alloc.Low})
			}
		}
	default:
		// Between zero-load and saturation the ladder regulates which
		// packets take which VCs. A packet that already has footprints
		// on this port is likely heading into congestion: it reclaims
		// its own just-drained registered VCs first (Highest), waits on
		// its occupied footprint VCs next (Medium), and ranks fresh idle
		// VCs low so it does not widen its congestion tree. A packet
		// with no footprints keeps full adaptiveness: idle VCs at High.
		// Contests therefore resolve exactly as Section 3.3's example:
		// congested flows keep their channels, other flows get the idle
		// capacity.
		hasFP := fp > 0
		var idleM, regM, ownM uint32
		if fast {
			idleM = bv.IdleBits(d)
			regM = bv.RegOwnerBits(d, ctx.Dest)
			ownM = bv.OwnerBits(d, ctx.Dest)
		}
		for vc := 1; vc < nVCs; vc++ {
			var idleVC, regOwn, own bool
			if fast {
				bit := uint32(1) << uint(vc)
				idleVC, regOwn, own = idleM&bit != 0, regM&bit != 0, ownM&bit != 0
			} else {
				idleVC = v.VCIdle(d, vc)
				regOwn = v.VCRegOwner(d, vc) == ctx.Dest
				own = v.VCOwner(d, vc) == ctx.Dest
			}
			switch {
			case idleVC && regOwn:
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: f.pri(alloc.Highest)})
			case idleVC && !hasFP:
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: f.pri(alloc.High)})
			case idleVC:
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: alloc.Low})
			case own:
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: f.pri(alloc.Medium)})
			default:
				reqs = append(reqs, Request{Dir: d, VC: vc, Pri: alloc.Low})
			}
		}
	}

	// The escape channel is always requested at the lowest priority.
	reqs = append(reqs, Request{Dir: esc, VC: 0, Pri: alloc.Lowest})
	return reqs
}

// appendFootprintVCs requests every adaptive VC of port d owned by dest at
// High priority, in ascending VC order.
func (f *Footprint) appendFootprintVCs(reqs []Request, v View, bv BitsView, fast bool, d topo.Direction, dest, nVCs int) []Request {
	if fast {
		m := bv.OwnerBits(d, dest) &^ 1 // adaptive VCs only
		for ; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros32(m)
			reqs = append(reqs, Request{Dir: d, VC: vc, Pri: f.pri(alloc.High)})
		}
		return reqs
	}
	for vc := 1; vc < nVCs; vc++ {
		if v.VCOwner(d, vc) == dest {
			reqs = append(reqs, Request{Dir: d, VC: vc, Pri: f.pri(alloc.High)})
		}
	}
	return reqs
}

var _ Algorithm = (*Footprint)(nil)

func init() {
	Register("footprint", func() Algorithm { return NewFootprint() })
}
