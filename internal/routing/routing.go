// Package routing implements the routing algorithms evaluated in the
// Footprint paper (ISCA'17): dimension-order routing (DOR), the Odd-Even
// turn model, DBAR-style fully-adaptive routing, the proposed Footprint
// algorithm, and the XORDET static VC-mapping overlay. It also provides
// the paper's two-level adaptiveness metrics and hardware cost model.
//
// A routing algorithm sees only local router state — per-VC idleness and
// ownership at each output port, plus the one-hop-downstream status that
// DBAR-class algorithms exchange — and produces a set of prioritized
// virtual-channel requests that the router feeds to its VC allocator.
package routing

import (
	"fmt"
	"sort"
	"sync"

	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// Rand is the tie-break randomness a routing decision may consume. It is
// the minimal slice of *math/rand.Rand the algorithms use (a single
// Intn(2) on full ties in selectByCounts), narrowed to an interface so
// the route cache can interpose a recording source: the cache counts how
// many draws a computed decision consumed and replays exactly that many
// from the live stream on every hit, keeping the shared per-router RNG
// stream bit-identical whether or not caching is enabled.
type Rand interface {
	// Intn returns a uniform value in [0, n). n must be > 0.
	Intn(n int) int
}

// View is the routing-visible state of one router, provided by the router
// microarchitecture. All information is local except DownstreamIdle, which
// models the neighbour status exchange used by DBAR.
type View interface {
	// VCs returns the number of virtual channels per physical channel.
	VCs() int
	// VCIdle reports whether VC v of output port d holds no flits and is
	// not allocated: the VC has no owner.
	VCIdle(d topo.Direction, v int) bool
	// VCOwner returns the destination of the packets currently occupying
	// VC v of output port d, or -1 when the VC is idle.
	VCOwner(d topo.Direction, v int) int
	// VCRegOwner returns the persistent footprint register of VC v of
	// output port d: the destination of the last packet allocated to
	// it, surviving drains until overwritten (-1 before first use).
	// Footprint uses it to re-grant a just-drained footprint VC to its
	// own flow first.
	VCRegOwner(d topo.Direction, v int) int
	// DownstreamIdle returns the number of idle adaptive VCs on the
	// productive output ports toward dest at the neighbouring router
	// reached through output port d. This is the one-hop-ahead,
	// destination-sliced congestion information DBAR routers exchange.
	DownstreamIdle(d topo.Direction, dest int) int
}

// Context carries one routing decision's inputs.
type Context struct {
	Mesh topo.Mesh
	Cur  int // current router
	Dest int // packet destination
	// InDir is the input port the packet arrived on; Local for freshly
	// injected packets. Turn-model algorithms need it to identify turns.
	InDir topo.Direction
	View  View
	Rand  Rand
}

// Request asks for virtual channel VC of output port Dir at priority Pri.
type Request struct {
	Dir topo.Direction
	VC  int
	Pri alloc.Priority
}

// Algorithm computes VC requests for the head flit of a packet.
type Algorithm interface {
	// Name returns the algorithm's identifier, e.g. "footprint".
	Name() string
	// UsesEscape reports whether VC 0 is reserved as a dimension-order
	// escape channel (Duato's theory). When true, adaptive VCs are
	// 1..V-1; when false all V VCs are usable by any packet.
	UsesEscape() bool
	// ConservativeRealloc reports Duato-style VC reallocation: an output
	// VC may be re-allocated only after the tail flit's credit has
	// returned (Section 4.2.1 of the paper attributes Odd-Even's uniform
	// -random edge over DBAR to DBAR having this restriction).
	ConservativeRealloc() bool
	// Route appends the VC requests for the packet described by ctx to
	// reqs and returns the extended slice. ctx.Cur != ctx.Dest.
	Route(ctx *Context, reqs []Request) []Request
}

// adaptiveVCRange returns the usable VC index range [lo, V) for non-escape
// requests of an algorithm.
func adaptiveVCRange(usesEscape bool) (lo int) {
	if usesEscape {
		return 1
	}
	return 0
}

// AggregateView is an optional View extension for views that maintain
// O(1) per-port aggregates (the router's struct-of-arrays state does, by
// updating a per-port idle bitmask and per-destination owner counts on
// every state transition). The counting helpers prefer it over scanning
// VC by VC, because routes are re-evaluated every cycle a packet waits
// and the scans dominated the cycle loop.
type AggregateView interface {
	View
	// IdleCount returns the number of idle VCs of port d in [lo, VCs).
	IdleCount(d topo.Direction, lo int) int
	// FootprintCount returns the number of VCs of port d in [lo, VCs)
	// currently owned by dest.
	FootprintCount(d topo.Direction, dest, lo int) int
}

// BitsView is a further optional extension for views that can expose one
// port's VC state as bitmasks (bit v describes VC v). Algorithms whose
// request-building step inspects every VC of the chosen port (Footprint's
// step 3) read three masks instead of making three interface calls per
// VC. Implementations must agree with the scalar View methods; the
// routing property tests cross-check the two paths.
type BitsView interface {
	AggregateView
	// IdleBits returns the idle-VC bitmask of port d.
	IdleBits(d topo.Direction) uint32
	// OwnerBits returns the bitmask of port d's VCs owned by dest.
	OwnerBits(d topo.Direction, dest int) uint32
	// RegOwnerBits returns the bitmask of port d's VCs whose persistent
	// footprint register names dest.
	RegOwnerBits(d topo.Direction, dest int) uint32
}

// countIdle counts idle VCs of port d in [lo, V).
func countIdle(v View, d topo.Direction, lo int) int {
	if av, ok := v.(AggregateView); ok {
		return av.IdleCount(d, lo)
	}
	n := 0
	for i := lo; i < v.VCs(); i++ {
		if v.VCIdle(d, i) {
			n++
		}
	}
	return n
}

// countFootprint counts VCs of port d in [lo, V) owned by dest.
func countFootprint(v View, d topo.Direction, dest, lo int) int {
	if av, ok := v.(AggregateView); ok {
		return av.FootprintCount(d, dest, lo)
	}
	n := 0
	for i := lo; i < v.VCs(); i++ {
		if v.VCOwner(d, i) == dest {
			n++
		}
	}
	return n
}

// dorDir returns the dimension-order (X then Y) productive direction.
// It panics when cur == dest; routers eject such packets before routing.
func dorDir(m topo.Mesh, cur, dest int) topo.Direction {
	dx, hasX, dy, hasY := m.MinimalDirs(cur, dest)
	switch {
	case hasX:
		return dx
	case hasY:
		return dy
	default:
		panic(fmt.Sprintf("routing: dorDir(%d, %d) at destination", cur, dest))
	}
}

// Registry of algorithm constructors, keyed by name. Constructors receive
// no arguments; XORDET overlays are registered as composite names such as
// "dor+xordet".
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Algorithm{}
)

// Register adds a constructor under name; it panics on duplicates.
// Packages register their algorithms in init.
func Register(name string, ctor func() Algorithm) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("routing: duplicate algorithm " + name)
	}
	registry[name] = ctor
}

// New returns a fresh instance of the named algorithm.
func New(name string) (Algorithm, error) {
	registryMu.RLock()
	ctor, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("routing: unknown algorithm %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// MustNew is New but panics on unknown names.
func MustNew(name string) Algorithm {
	a, err := New(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the registered algorithm names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
