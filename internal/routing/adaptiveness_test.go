package routing

import (
	"math"
	"testing"

	"nocsim/internal/topo"
)

// mustAlg builds the named algorithm or fails the test.
func mustAlg(t *testing.T, name string) Algorithm {
	t.Helper()
	a, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestPortAdaptivenessGoldens pins Equation 1 on hand-computed 4×4-mesh
// pairs. Node numbering is row-major: node 5 is (1,1), node 15 is (3,3).
func TestPortAdaptivenessGoldens(t *testing.T) {
	m := topo.MustNew(4, 4)

	// Sanity: the minimal-quadrant path counts behind every ratio.
	if got := m.MinimalPathCount(0, 5); got != 2 {
		t.Fatalf("MinimalPathCount(0,5) = %d, want 2", got)
	}
	if got := m.MinimalPathCount(0, 15); got != 20 {
		t.Fatalf("MinimalPathCount(0,15) = %d, want 20", got)
	}

	cases := []struct {
		alg       string
		src, dest int
		want      float64
	}{
		// DOR follows exactly one of the minimal paths.
		{"dor", 0, 5, 1.0 / 2},   // one diagonal hop: 2 paths, 1 allowed
		{"dor", 0, 15, 1.0 / 20}, // full diagonal: C(6,3)=20 paths, 1 allowed
		{"dor", 0, 3, 1},         // aligned pair: the single path is DOR's
		{"dor", 0, 12, 1},
		// Fully adaptive algorithms may take every minimal path.
		{"footprint", 0, 5, 1},
		{"footprint", 0, 15, 1},
		{"footprint", 12, 3, 1},
		{"dbar", 0, 15, 1},
		{"dbar", 15, 0, 1},
		// Degenerate pair.
		{"footprint", 7, 7, 1},
	}
	for _, c := range cases {
		got := PortAdaptiveness(m, mustAlg(t, c.alg), c.src, c.dest)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PortAdaptiveness(%s, %d->%d) = %v, want %v", c.alg, c.src, c.dest, got, c.want)
		}
	}
}

// TestPortAdaptivenessOddEven pins the turn model's partial adaptiveness:
// strictly between DOR's single path and full adaptiveness on unaligned
// pairs, and never above the fully adaptive bound anywhere.
func TestPortAdaptivenessOddEven(t *testing.T) {
	m := topo.MustNew(4, 4)
	oe := mustAlg(t, "oddeven")
	full := mustAlg(t, "footprint")

	got := PortAdaptiveness(m, oe, 0, 15)
	if got <= 1.0/20 || got > 1 {
		t.Errorf("odd-even PortAdaptiveness(0->15) = %v, want in (1/20, 1]", got)
	}
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			po, pf := PortAdaptiveness(m, oe, s, d), PortAdaptiveness(m, full, s, d)
			if po <= 0 || po > pf+1e-12 {
				t.Fatalf("odd-even PortAdaptiveness(%d->%d) = %v outside (0, %v]", s, d, po, pf)
			}
		}
	}
}

// TestAllowedPortsBound checks the exported static choice set: at every
// (node, dest, arrival) triple the allowed ports are a subset of the
// minimal ports, and fully adaptive algorithms allow all of them.
func TestAllowedPortsBound(t *testing.T) {
	m := topo.MustNew(4, 4)
	for _, name := range []string{"dor", "oddeven", "dbar", "footprint"} {
		alg := mustAlg(t, name)
		for s := 0; s < m.Nodes(); s++ {
			for d := 0; d < m.Nodes(); d++ {
				if s == d {
					continue
				}
				dx, hasX, dy, hasY := m.MinimalDirs(s, d)
				minimal := 0
				if hasX {
					minimal++
				}
				if hasY {
					minimal++
				}
				ports := AllowedPorts(m, alg, s, d, topo.Local)
				if len(ports) == 0 || len(ports) > minimal {
					t.Fatalf("%s: AllowedPorts(%d->%d) = %v, want 1..%d ports", name, s, d, ports, minimal)
				}
				for _, p := range ports {
					if !((hasX && p == dx) || (hasY && p == dy)) {
						t.Fatalf("%s: AllowedPorts(%d->%d) offers non-minimal port %v", name, s, d, p)
					}
				}
				if name == "footprint" || name == "dbar" {
					if len(ports) != minimal {
						t.Fatalf("%s: AllowedPorts(%d->%d) = %v, fully adaptive should allow all %d minimal ports",
							name, s, d, ports, minimal)
					}
				}
			}
		}
	}
}

// TestVCAdaptivenessGoldens pins Equation 2's case analysis: Footprint
// adapts over the n−1 adaptive VCs (escape channels score 1 under the
// Duato-specific reading), oblivious VC selection scores 0.
func TestVCAdaptivenessGoldens(t *testing.T) {
	cases := []struct {
		alg    string
		nVCs   int
		escape bool
		want   float64
	}{
		{"footprint", 10, false, 0.9},
		{"footprint", 10, true, 1},
		{"footprint", 2, false, 0.5},
		{"dbar", 10, false, 0},
		{"oddeven", 10, false, 0},
		{"dor", 10, false, 0},
	}
	for _, c := range cases {
		got := VCAdaptiveness(mustAlg(t, c.alg), c.nVCs, c.escape)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("VCAdaptiveness(%s, %d, escape=%v) = %v, want %v", c.alg, c.nVCs, c.escape, got, c.want)
		}
	}
}
