package routing

import (
	"math/rand"
	"testing"

	"nocsim/internal/topo"
)

// Micro-benchmarks for the route-decision cache's three service paths —
// epoch memo, table hit, and miss (insert) — against the uncached Route
// baseline of the same algorithm. The root package's
// BenchmarkRouteCache* pair measures the same trade end to end inside a
// full simulation; these isolate the per-decision costs.

// epochFakeView layers EpochView over bitsFakeView with manually bumped
// per-port epochs, standing in for the router's SoA state.
type epochFakeView struct {
	bitsFakeView
	epochs [topo.NumPorts]uint32
}

func (e *epochFakeView) PortEpoch(d topo.Direction) uint32 { return e.epochs[d] }

// benchView builds a deterministic occupancy pattern: every port has a
// mix of idle, foreign-owned and dest-owned VCs.
func benchView(vcs, dest int) *epochFakeView {
	fv := newFakeView(vcs)
	fv.regOwner = map[topo.Direction][]int{}
	for d := topo.East; d <= topo.Local; d++ {
		ro := make([]int, vcs)
		for v := 0; v < vcs; v++ {
			ro[v] = -1
			switch v % 3 {
			case 1:
				fv.owner[d][v] = dest
				ro[v] = dest
			case 2:
				fv.owner[d][v] = (dest + 1) % 64
			}
		}
		fv.regOwner[d] = ro
		fv.downstream[d] = vcs / 2
	}
	return &epochFakeView{bitsFakeView: bitsFakeView{fv}}
}

func benchCachePaths(b *testing.B, name string) {
	m := topo.MustNew(8, 8)
	alg := MustNew(name)
	view := benchView(8, 27)
	ctx := &Context{
		Mesh: m, Cur: 9, Dest: 27, InDir: topo.West,
		View: view, Rand: rand.New(rand.NewSource(1)),
	}

	b.Run("route-uncached", func(b *testing.B) {
		b.ReportAllocs()
		var reqs []Request
		for i := 0; i < b.N; i++ {
			reqs = alg.Route(ctx, reqs[:0])
		}
	})

	b.Run("table-hit", func(b *testing.B) {
		c := NewCache(alg)
		var reqs []Request
		reqs = c.Requests(alg, ctx, nil, reqs[:0]) // warm the entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reqs = c.Requests(alg, ctx, nil, reqs[:0])
		}
		_ = reqs
	})

	b.Run("memo-hit", func(b *testing.B) {
		c := NewCache(alg)
		var slot CacheSlot
		var reqs []Request
		reqs = c.Requests(alg, ctx, &slot, reqs[:0]) // warm the slot
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reqs = c.Requests(alg, ctx, &slot, reqs[:0])
		}
		_ = reqs
	})

	b.Run("miss-insert", func(b *testing.B) {
		c := NewCache(alg)
		b.ReportAllocs()
		b.ResetTimer()
		var reqs []Request
		for i := 0; i < b.N; i++ {
			// A fresh idle pattern per iteration defeats the fingerprint
			// (and, for scalar specs, a fresh destination), so every
			// decision inserts. The adaptive gate is reset so the bypass
			// path does not absorb the misses being measured.
			view.epochs[topo.East]++
			for d := topo.East; d <= topo.South; d++ {
				for v := 0; v < 8; v++ {
					view.owner[d][v] = -1
					if i>>((int(d)*8+v)%20)&1 == 1 {
						view.owner[d][v] = 27
					}
				}
			}
			ctx.Dest = 1 + (i % 62)
			if ctx.Dest == ctx.Cur {
				ctx.Dest = 63
			}
			c.bypassLeft, c.winLookups, c.winHits = 0, 0, 0
			reqs = c.Requests(alg, ctx, nil, reqs[:0])
		}
		ctx.Dest = 27
	})
}

func BenchmarkCachePathsDOR(b *testing.B)       { benchCachePaths(b, "dor") }
func BenchmarkCachePathsFootprint(b *testing.B) { benchCachePaths(b, "footprint") }
