package routing

import (
	"nocsim/internal/alloc"
	"nocsim/internal/topo"
)

// DBAR is the fully-adaptive baseline of the paper, modelled on
// "DBAR: an efficient routing algorithm to support multiple concurrent
// applications in networks-on-chip" (Ma, Enright Jerger, Wang; ISCA'11).
//
// DBAR routes minimally and fully adaptively under Duato's theory (VC 0 is
// a dimension-order escape channel) and selects the output port using
// destination-sliced congestion information from the next-hop router in
// addition to local free-VC counts. As in the paper's configuration, a
// port is predicted congested when fewer than half of its VCs are idle.
// VC selection is oblivious: DBAR requests every adaptive VC at equal
// priority, which is precisely the behaviour Footprint regulates.
type DBAR struct{}

// NewDBAR returns a DBAR router.
func NewDBAR() *DBAR { return &DBAR{} }

// Name implements Algorithm.
func (*DBAR) Name() string { return "dbar" }

// UsesEscape implements Algorithm; DBAR relies on Duato's theory.
func (*DBAR) UsesEscape() bool { return true }

// ConservativeRealloc implements Algorithm: Duato-based algorithms cannot
// reallocate a VC before the tail flit's credit returns (Section 4.2.1).
func (*DBAR) ConservativeRealloc() bool { return true }

// CacheSpec implements Fingerprinter: the port choice reads local idle
// counts plus the neighbour status exchange. Downstream state has no
// local epoch, so DBAR decisions always take the hashed path.
func (*DBAR) CacheSpec() (CacheSpec, bool) {
	return CacheSpec{Idle: true, Downstream: true}, true
}

// Route implements Algorithm.
func (*DBAR) Route(ctx *Context, reqs []Request) []Request {
	m, v := ctx.Mesh, ctx.View
	dx, hasX, dy, hasY := m.MinimalDirs(ctx.Cur, ctx.Dest)
	esc := dorDir(m, ctx.Cur, ctx.Dest)

	var d topo.Direction
	switch {
	case hasX && hasY:
		half := (v.VCs() + 1) / 2
		ix, iy := countIdle(v, dx, 1), countIdle(v, dy, 1)
		nx, ny := v.DownstreamIdle(dx, ctx.Dest), v.DownstreamIdle(dy, ctx.Dest)
		congX, congY := ix < half, iy < half
		switch {
		case congX != congY && congY:
			// Only Y congested locally: go X.
			d = dx
		case congX != congY && congX:
			d = dy
		default:
			// Neither (or both) congested locally: let the next-hop,
			// destination-sliced occupancy decide; local idles break ties.
			d = selectByCounts(ctx, dx, dy, nx, ny, ix, iy)
		}
	case hasX:
		d = dx
	default:
		d = dy
	}

	for vc := 1; vc < v.VCs(); vc++ {
		reqs = append(reqs, Request{Dir: d, VC: vc, Pri: alloc.Low})
	}
	reqs = append(reqs, Request{Dir: esc, VC: 0, Pri: alloc.Lowest})
	return reqs
}

var _ Algorithm = (*DBAR)(nil)

func init() {
	Register("dbar", func() Algorithm { return NewDBAR() })
}
