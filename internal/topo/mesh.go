// Package topo models the 2D mesh topology used throughout the simulator:
// node coordinates, router port directions, and minimal-path enumeration.
//
// Nodes are numbered row-major: node = y*Width + x, matching the figures in
// the Footprint paper (ISCA'17), where n0 is the top-left corner of the mesh.
package topo

import "fmt"

// Direction identifies a router port. The four cardinal directions connect
// to neighbouring routers; Local connects to the endpoint (NIC).
type Direction int

// Router port directions.
const (
	East Direction = iota
	West
	North
	South
	Local
	numDirections
)

// NumPorts is the number of ports on a mesh router, including the local port.
const NumPorts = int(numDirections)

// String returns the conventional one-letter compass name.
func (d Direction) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the direction a flit arrives from when it was sent
// toward d: a flit leaving a router's East port enters the neighbour's
// West port.
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	case Local:
		return Local
	default:
		panic(fmt.Sprintf("topo: Opposite of invalid direction %d", int(d)))
	}
}

// Coord is a node position on the mesh. X grows eastward, Y grows southward
// (row-major node numbering as in the paper's figures).
type Coord struct {
	X, Y int
}

// Mesh is a Width×Height 2D mesh. The zero value is not usable; construct
// with New.
type Mesh struct {
	Width  int
	Height int
	// recipW is ⌈2^32/Width⌉, precomputed by New so Coord can turn its
	// node/Width division — on the route-computation hot path for every
	// algorithm — into a multiply and shift. The quotient
	// (node*recipW)>>32 is exact for node < 2^16 and Width < 2^16
	// (Granlund–Montgomery round-up invariant: node*Width < 2^32), which
	// New guarantees by bounding the node count. Zero (a Mesh built
	// without New) falls back to plain division.
	recipW uint64
}

// maxNodes bounds the mesh size so the reciprocal-multiply Coord stays
// exact. 65535 routers is more than an order of magnitude beyond the
// largest mesh in the paper's experiments (32×32).
const maxNodes = 1<<16 - 1

// New returns a Width×Height mesh. Width and Height must be positive.
func New(width, height int) (Mesh, error) {
	if width <= 0 || height <= 0 {
		return Mesh{}, fmt.Errorf("topo: invalid mesh dimensions %dx%d", width, height)
	}
	if width*height > maxNodes {
		return Mesh{}, fmt.Errorf("topo: mesh %dx%d exceeds %d nodes", width, height, maxNodes)
	}
	return Mesh{
		Width:  width,
		Height: height,
		recipW: (1<<32 + uint64(width) - 1) / uint64(width),
	}, nil
}

// MustNew is New but panics on invalid dimensions; intended for tests and
// literals with constant dimensions.
func MustNew(width, height int) Mesh {
	m, err := New(width, height)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes returns the number of nodes (= routers = endpoints) in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the coordinates of node id.
func (m Mesh) Coord(node int) Coord {
	if m.recipW != 0 {
		y := int(uint64(uint32(node)) * m.recipW >> 32)
		return Coord{X: node - y*m.Width, Y: y}
	}
	return Coord{X: node % m.Width, Y: node / m.Width}
}

// Node returns the node id at coordinate c.
func (m Mesh) Node(c Coord) int { return c.Y*m.Width + c.X }

// Contains reports whether c lies on the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// Neighbor returns the node adjacent to node in direction d and true, or
// -1 and false when the port faces the mesh edge (or d is Local).
func (m Mesh) Neighbor(node int, d Direction) (int, bool) {
	c := m.Coord(node)
	switch d {
	case East:
		c.X++
	case West:
		c.X--
	case North:
		c.Y--
	case South:
		c.Y++
	case Local:
		return -1, false
	default:
		panic(fmt.Sprintf("topo: Neighbor of invalid direction %d", int(d)))
	}
	if !m.Contains(c) {
		return -1, false
	}
	return m.Node(c), true
}

// MinimalDirs returns the productive directions from cur toward dest:
// at most one X-dimension direction and one Y-dimension direction.
// Both returned booleans are false when cur == dest.
func (m Mesh) MinimalDirs(cur, dest int) (dx Direction, hasX bool, dy Direction, hasY bool) {
	cc, dc := m.Coord(cur), m.Coord(dest)
	if dc.X > cc.X {
		dx, hasX = East, true
	} else if dc.X < cc.X {
		dx, hasX = West, true
	}
	if dc.Y > cc.Y {
		dy, hasY = South, true
	} else if dc.Y < cc.Y {
		dy, hasY = North, true
	}
	return dx, hasX, dy, hasY
}

// Hops returns the minimal hop count between two nodes.
func (m Mesh) Hops(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// MinimalPathCount returns the number of distinct minimal paths between two
// nodes: C(dx+dy, dx). Used by the adaptiveness metrics.
func (m Mesh) MinimalPathCount(a, b int) int {
	ca, cb := m.Coord(a), m.Coord(b)
	dx, dy := abs(ca.X-cb.X), abs(ca.Y-cb.Y)
	return binomial(dx+dy, dx)
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
