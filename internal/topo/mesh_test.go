package topo

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{0, 4}, {4, 0}, {-1, 4}, {4, -1}, {0, 0}} {
		if _, err := New(tc.w, tc.h); err == nil {
			t.Errorf("New(%d,%d): want error", tc.w, tc.h)
		}
	}
	m, err := New(8, 8)
	if err != nil {
		t.Fatalf("New(8,8): %v", err)
	}
	if m.Nodes() != 64 {
		t.Errorf("Nodes() = %d, want 64", m.Nodes())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestCoordNodeRoundTrip(t *testing.T) {
	m := MustNew(5, 3)
	for n := 0; n < m.Nodes(); n++ {
		if got := m.Node(m.Coord(n)); got != n {
			t.Errorf("Node(Coord(%d)) = %d", n, got)
		}
	}
}

func TestCoordRowMajor(t *testing.T) {
	m := MustNew(4, 4)
	// Paper numbering: n1 is (1,0), n4 is (0,1), n13 is (1,3).
	cases := []struct {
		node int
		want Coord
	}{{0, Coord{0, 0}}, {1, Coord{1, 0}}, {4, Coord{0, 1}}, {13, Coord{1, 3}}, {15, Coord{3, 3}}}
	for _, tc := range cases {
		if got := m.Coord(tc.node); got != tc.want {
			t.Errorf("Coord(%d) = %v, want %v", tc.node, got, tc.want)
		}
	}
}

func TestNeighbor(t *testing.T) {
	m := MustNew(4, 4)
	cases := []struct {
		node int
		dir  Direction
		want int
		ok   bool
	}{
		{5, East, 6, true},
		{5, West, 4, true},
		{5, North, 1, true},
		{5, South, 9, true},
		{0, West, -1, false},
		{0, North, -1, false},
		{3, East, -1, false},
		{15, South, -1, false},
		{5, Local, -1, false},
	}
	for _, tc := range cases {
		got, ok := m.Neighbor(tc.node, tc.dir)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Neighbor(%d,%v) = (%d,%v), want (%d,%v)", tc.node, tc.dir, got, ok, tc.want, tc.ok)
		}
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]Direction{{East, West}, {North, South}}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Errorf("Opposite broken for %v/%v", p[0], p[1])
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite() != Local")
	}
}

func TestDirectionString(t *testing.T) {
	want := map[Direction]string{East: "E", West: "W", North: "N", South: "S", Local: "L"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if Direction(99).String() != "Direction(99)" {
		t.Errorf("unknown direction String() = %q", Direction(99).String())
	}
}

func TestMinimalDirs(t *testing.T) {
	m := MustNew(4, 4)
	// 5 = (1,1). 10 = (2,2): need East and South.
	dx, hasX, dy, hasY := m.MinimalDirs(5, 10)
	if !hasX || dx != East || !hasY || dy != South {
		t.Errorf("MinimalDirs(5,10) = %v,%v,%v,%v", dx, hasX, dy, hasY)
	}
	// 5 -> 4: West only.
	dx, hasX, _, hasY = m.MinimalDirs(5, 4)
	if !hasX || dx != West || hasY {
		t.Errorf("MinimalDirs(5,4) = %v,%v hasY=%v", dx, hasX, hasY)
	}
	// 5 -> 1: North only.
	_, hasX, dy, hasY = m.MinimalDirs(5, 1)
	if hasX || !hasY || dy != North {
		t.Errorf("MinimalDirs(5,1) hasX=%v dy=%v hasY=%v", hasX, dy, hasY)
	}
	// Same node: nothing.
	_, hasX, _, hasY = m.MinimalDirs(5, 5)
	if hasX || hasY {
		t.Error("MinimalDirs(5,5) should have no productive directions")
	}
}

func TestHops(t *testing.T) {
	m := MustNew(8, 8)
	if got := m.Hops(0, 63); got != 14 {
		t.Errorf("Hops(0,63) = %d, want 14", got)
	}
	if got := m.Hops(9, 9); got != 0 {
		t.Errorf("Hops(9,9) = %d, want 0", got)
	}
}

func TestMinimalPathCount(t *testing.T) {
	m := MustNew(8, 8)
	cases := []struct{ a, b, want int }{
		{0, 0, 1},   // zero hops: one (empty) path
		{0, 1, 1},   // straight line
		{0, 9, 2},   // 1x1 rectangle
		{0, 18, 6},  // 2x2 -> C(4,2)
		{0, 27, 20}, // 3x3 -> C(6,3)
	}
	for _, tc := range cases {
		if got := m.MinimalPathCount(tc.a, tc.b); got != tc.want {
			t.Errorf("MinimalPathCount(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: walking from any node in the productive directions always
// reaches the destination in exactly Hops(a,b) steps.
func TestMinimalDirsReachDestination(t *testing.T) {
	m := MustNew(6, 7)
	f := func(a, b uint8) bool {
		src := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		cur, steps := src, 0
		for cur != dst {
			dx, hasX, dy, hasY := m.MinimalDirs(cur, dst)
			var d Direction
			switch {
			case hasX:
				d = dx
			case hasY:
				d = dy
			default:
				return false
			}
			next, ok := m.Neighbor(cur, d)
			if !ok {
				return false
			}
			cur = next
			steps++
			if steps > m.Nodes() {
				return false
			}
		}
		return steps == m.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neighbor is symmetric: if b is a's neighbour toward d then a is
// b's neighbour toward d.Opposite().
func TestNeighborSymmetry(t *testing.T) {
	m := MustNew(5, 4)
	for n := 0; n < m.Nodes(); n++ {
		for d := East; d <= South; d++ {
			nb, ok := m.Neighbor(n, d)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(nb, d.Opposite())
			if !ok2 || back != n {
				t.Errorf("Neighbor symmetry broken at %d dir %v", n, d)
			}
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {14, 7, 3432}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tc := range cases {
		if got := binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

// TestCoordReciprocalExact exhaustively checks the reciprocal-multiply
// Coord against plain division for every node of every mesh shape up to
// 300 wide/tall plus the widest shapes the node bound admits, so the
// strength reduction can never change a routing decision.
func TestCoordReciprocalExact(t *testing.T) {
	shapes := [][2]int{{1, 1}, {255, 257}, {257, 255}, {65535, 1}, {1, 65535}}
	for w := 1; w <= 300; w++ {
		shapes = append(shapes, [2]int{w, (maxNodes / w) / 2}, [2]int{w, maxNodes / w})
	}
	for _, s := range shapes {
		m, err := New(s[0], s[1])
		if err != nil {
			t.Fatalf("New(%d, %d): %v", s[0], s[1], err)
		}
		for n := 0; n < m.Nodes(); n++ {
			got := m.Coord(n)
			want := Coord{X: n % m.Width, Y: n / m.Width}
			if got != want {
				t.Fatalf("Coord(%d) on %dx%d = %+v, want %+v", n, m.Width, m.Height, got, want)
			}
		}
	}
}
