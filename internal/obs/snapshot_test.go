package obs_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// wedgedNet floods a 2x2 fabric toward node 3, whose endpoint never
// consumes, and steps until the backpressure freezes everything.
func wedgedNet(t *testing.T) *network.Network {
	t.Helper()
	n := network.New(network.Config{
		Mesh:          topo.MustNew(2, 2),
		VCs:           2,
		BufDepth:      4,
		Speedup:       2,
		NewAlg:        func() routing.Algorithm { return routing.MustNew("footprint") },
		Rand:          rand.New(rand.NewSource(1)),
		SlowEndpoints: map[int]int{3: 1 << 30},
	})
	n.Sink = func(p *flit.Packet) {}
	id := uint64(0)
	for cycle := 0; cycle < 500; cycle++ {
		for _, src := range []int{0, 1, 2} {
			id++
			n.Offer(&flit.Packet{ID: id, Src: src, Dest: 3, Size: 1, Born: n.Now()})
		}
		n.Step()
	}
	return n
}

func TestSnapshotCapturesWedgedFabric(t *testing.T) {
	n := wedgedNet(t)
	snap := obs.Capture(n)
	if snap.Cycle != n.Now() || snap.Width != 2 || snap.Height != 2 {
		t.Errorf("header = %+v", snap)
	}
	if snap.InFlight == 0 {
		t.Fatal("wedged fabric shows no in-flight packets")
	}
	if len(snap.Routers) != 4 {
		t.Fatalf("captured %d routers, want 4", len(snap.Routers))
	}
	if snap.BlockedVCs == 0 {
		t.Error("no blocked VCs in a wedged fabric")
	}
	if len(snap.Chains) == 0 {
		t.Fatal("no blocked-on chains in a wedged fabric")
	}
	// Node 3's endpoint holds a full ejection buffer.
	if got := snap.Routers[3].EjectionBacklog; got == 0 {
		t.Error("frozen endpoint shows no ejection backlog")
	}
	// Footprint channels toward the single hot destination must be marked.
	foot := 0
	for _, rs := range snap.Routers {
		for _, ov := range rs.OutputVCs {
			if ov.Footprint {
				foot++
			}
		}
	}
	if foot == 0 {
		t.Error("no footprint output VCs captured for a single-destination flood")
	}
	if s := snap.Summary(); !strings.Contains(s, "blocked") || !strings.Contains(s, "chain") {
		t.Errorf("summary misses headline facts:\n%s", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	n := wedgedNet(t)
	snap := obs.Capture(n)
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got obs.FabricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if !reflect.DeepEqual(&got, snap) {
		t.Errorf("snapshot did not survive the JSON round trip:\nin:  %+v\nout: %+v", snap, &got)
	}
}
