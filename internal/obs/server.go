package obs

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// Server is the embedded live-observability HTTP server: /metrics in
// Prometheus text exposition format, /status as JSON run progress, and
// /snapshot as an on-demand structured fabric dump. It is stdlib-only;
// every payload is rendered by hand from the Hub's published state, so
// serving never touches the simulation's data structures directly.
type Server struct {
	Hub  *Hub
	Addr string // the bound address (resolves ":0" requests)

	ln  net.Listener
	srv *http.Server
}

// snapshotTimeout bounds how long /snapshot waits for the stepping
// goroutine's next heartbeat before falling back to the latest dump.
const snapshotTimeout = 3 * time.Second

// Handler returns the server's routes; tests drive it via httptest.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.WriteMetrics(w); err != nil {
			// Headers are out; all we can do is log.
			fmt.Fprintln(os.Stderr, "obs: /metrics:", err)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := h.WriteStatus(w); err != nil {
			fmt.Fprintln(os.Stderr, "obs: /status:", err)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap := h.RequestSnapshot(snapshotTimeout)
		if snap == nil {
			http.Error(w, "no fabric snapshot available yet (no simulation heartbeat seen)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := snap.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "obs: /snapshot:", err)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "nocsim live observability\n\n  /metrics   Prometheus text exposition\n  /status    JSON run + sweep progress\n  /snapshot  on-demand structured fabric dump")
	})
	return mux
}

// StartServer binds addr (e.g. "localhost:9090") and serves the hub's
// endpoints in a background goroutine until Close.
func StartServer(addr string, h *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		Hub:  h,
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: Handler(h)},
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "obs: server:", err)
		}
	}()
	return s, nil
}

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
