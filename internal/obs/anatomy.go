package obs

import (
	"fmt"
	"io"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/router"
	"nocsim/internal/topo"
)

// DefaultAnatomyPeriod is the footprint-occupancy sampling period in
// cycles when the caller does not choose one.
const DefaultAnatomyPeriod = 256

// DefaultAnatomySamples bounds the occupancy time series when the caller
// does not choose a limit.
const DefaultAnatomySamples = 4096

// Component is one named slice of the latency decomposition.
type Component struct {
	Name   string
	Cycles int64
}

// Anatomy is the aggregated latency anatomy and exercised adaptiveness
// of one run's measured packets. It rides on sim.Result (scrubbed by the
// determinism goldens like the other observability payloads) and is the
// runtime counterpart of the paper's static Eq-1 adaptiveness: instead
// of what the algorithm *could* offer, it records what each routing
// decision *did* offer and where every latency cycle went.
//
// The per-packet decomposition telescopes exactly:
//
//	SrcQueue + RouteWait + ΣVCWait + SwitchWait + Link + Serialization
//	  == LatencyCycles  (== Σ per-packet Eject-Born)
//
// so component shares always sum to 1 over the measured population.
type Anatomy struct {
	// Packets is the number of measured packets fully decomposed
	// (born in the measurement window and ejected before the run ended).
	Packets int64 `json:"packets"`
	// Hops is the total router traversals of those packets, including
	// the final ejection-port hop.
	Hops int64 `json:"hops"`

	// The latency components, in end-to-end cycle totals over all
	// measured packets. VCWaitCycles is split by the class of the VC the
	// wait ended on (indexed by router.VCClass).
	SrcQueueCycles      int64                      `json:"src_queue_cycles"`
	RouteWaitCycles     int64                      `json:"route_wait_cycles"`
	VCWaitCycles        [router.NumVCClasses]int64 `json:"vc_wait_cycles"`
	SwitchWaitCycles    int64                      `json:"switch_wait_cycles"`
	LinkCycles          int64                      `json:"link_cycles"`
	SerializationCycles int64                      `json:"serialization_cycles"`
	// LatencyCycles is the summed end-to-end (Born→Eject) latency; the
	// components above partition it exactly.
	LatencyCycles int64 `json:"latency_cycles"`

	// Grants counts VC-allocation wins by the granted VC's class at
	// grant time (all hops of measured packets, ejection included).
	Grants [router.NumVCClasses]int64 `json:"grants"`

	// Decision aggregates: one routing decision per measured packet per
	// router visited (ejection decisions excluded — they exercise no
	// routing freedom).
	Decisions int64 `json:"decisions"`
	// MinimalPortsSum / OfferedPortsSum accumulate the per-decision
	// minimal-path port ceiling and the ports actually offered;
	// their ratio is the run's exercised port adaptiveness.
	MinimalPortsSum int64 `json:"minimal_ports_sum"`
	OfferedPortsSum int64 `json:"offered_ports_sum"`
	// AdmissibleVCsSum / OfferedVCsSum do the same for VCs.
	AdmissibleVCsSum int64 `json:"admissible_vcs_sum"`
	OfferedVCsSum    int64 `json:"offered_vcs_sum"`
	// FootprintVCsSum and IdleVCsSum classify the offered VCs by live
	// state at decision time (the remainder were busy).
	FootprintVCsSum int64 `json:"footprint_vcs_sum"`
	IdleVCsSum      int64 `json:"idle_vcs_sum"`
	// EscapeDecisions counts decisions whose request set included the
	// escape VC; MinimalDecisions counts decisions that offered only
	// minimal-path ports.
	EscapeDecisions  int64 `json:"escape_decisions"`
	MinimalDecisions int64 `json:"minimal_decisions"`
}

// Components returns the latency decomposition as a fixed-order slice
// (the shared vocabulary of the CSV, Prometheus and table exporters).
func (a *Anatomy) Components() []Component {
	out := []Component{
		{"src-queue", a.SrcQueueCycles},
		{"route-wait", a.RouteWaitCycles},
	}
	for c := router.VCClassIdle; c < router.VCClass(router.NumVCClasses); c++ {
		out = append(out, Component{"vc-wait-" + c.String(), a.VCWaitCycles[c]})
	}
	out = append(out,
		Component{"switch-wait", a.SwitchWaitCycles},
		Component{"link", a.LinkCycles},
		Component{"serialization", a.SerializationCycles},
	)
	return out
}

// TotalGrants returns the grant count summed over classes.
func (a *Anatomy) TotalGrants() int64 {
	var n int64
	for _, g := range a.Grants {
		n += g
	}
	return n
}

// PortAdaptivenessExercised is the run-level exercised port
// adaptiveness: offered ports over the minimal-path ceiling, in [0, 1].
// NaN-free: returns 0 when no decisions were recorded.
func (a *Anatomy) PortAdaptivenessExercised() float64 {
	if a.MinimalPortsSum == 0 {
		return 0
	}
	return float64(a.OfferedPortsSum) / float64(a.MinimalPortsSum)
}

// VCAdaptivenessExercised is the run-level exercised VC adaptiveness:
// offered VCs over the admissible ceiling, in [0, 1].
func (a *Anatomy) VCAdaptivenessExercised() float64 {
	if a.AdmissibleVCsSum == 0 {
		return 0
	}
	return float64(a.OfferedVCsSum) / float64(a.AdmissibleVCsSum)
}

// GrantShare returns class's fraction of all grants (0 when none).
func (a *Anatomy) GrantShare(c router.VCClass) float64 {
	total := a.TotalGrants()
	if total == 0 {
		return 0
	}
	return float64(a.Grants[c]) / float64(total)
}

// Format renders the anatomy as the -anatomy table: the latency
// composition with per-packet means and shares, the grant split by VC
// class, and the exercised-adaptiveness summary.
func (a *Anatomy) Format(w io.Writer) {
	if a.Packets == 0 {
		fmt.Fprintln(w, "latency anatomy: no measured packets")
		return
	}
	mean := float64(a.LatencyCycles) / float64(a.Packets)
	fmt.Fprintf(w, "latency anatomy: %d packets, %d hops, mean latency %.2f cycles\n",
		a.Packets, a.Hops, mean)
	fmt.Fprintf(w, "  %-18s %12s %8s\n", "component", "cycles/pkt", "share")
	for _, c := range a.Components() {
		share := 0.0
		if a.LatencyCycles > 0 {
			share = float64(c.Cycles) / float64(a.LatencyCycles)
		}
		fmt.Fprintf(w, "  %-18s %12.2f %7.1f%%\n",
			c.Name, float64(c.Cycles)/float64(a.Packets), 100*share)
	}
	fmt.Fprintf(w, "  vc grants by class:")
	for c := router.VCClassIdle; c < router.VCClass(router.NumVCClasses); c++ {
		fmt.Fprintf(w, " %s %.1f%%", c, 100*a.GrantShare(c))
	}
	fmt.Fprintln(w)
	if a.Decisions > 0 {
		fmt.Fprintf(w, "  adaptiveness exercised: ports %.3f, vcs %.3f over %d decisions (escape offered %.1f%%, minimal progress %.1f%%)\n",
			a.PortAdaptivenessExercised(), a.VCAdaptivenessExercised(), a.Decisions,
			100*float64(a.EscapeDecisions)/float64(a.Decisions),
			100*float64(a.MinimalDecisions)/float64(a.Decisions))
	}
}

// WriteCSV writes the aggregate as long-format metric,value rows — one
// file per run, schema documented in EXPERIMENTS.md.
func (a *Anatomy) WriteCSV(w io.Writer) error {
	type pair struct {
		name string
		v    any
	}
	pairs := []pair{
		{"packets", a.Packets},
		{"hops", a.Hops},
		{"latency_cycles", a.LatencyCycles},
	}
	for _, c := range a.Components() {
		pairs = append(pairs, pair{"component_" + c.Name + "_cycles", c.Cycles})
	}
	for c := router.VCClassIdle; c < router.VCClass(router.NumVCClasses); c++ {
		pairs = append(pairs, pair{"grants_" + c.String(), a.Grants[c]})
	}
	pairs = append(pairs,
		pair{"decisions", a.Decisions},
		pair{"minimal_ports_sum", a.MinimalPortsSum},
		pair{"offered_ports_sum", a.OfferedPortsSum},
		pair{"admissible_vcs_sum", a.AdmissibleVCsSum},
		pair{"offered_vcs_sum", a.OfferedVCsSum},
		pair{"footprint_vcs_sum", a.FootprintVCsSum},
		pair{"idle_vcs_sum", a.IdleVCsSum},
		pair{"escape_decisions", a.EscapeDecisions},
		pair{"minimal_decisions", a.MinimalDecisions},
		pair{"port_adaptiveness_exercised", fmt.Sprintf("%.6f", a.PortAdaptivenessExercised())},
		pair{"vc_adaptiveness_exercised", fmt.Sprintf("%.6f", a.VCAdaptivenessExercised())},
	)
	if _, err := fmt.Fprintln(w, "metric,value"); err != nil {
		return err
	}
	for _, p := range pairs {
		if _, err := fmt.Fprintf(w, "%s,%v\n", p.name, p.v); err != nil {
			return err
		}
	}
	return nil
}

// AnatomySample is one point of the footprint-occupancy time series: the
// state of every network-port output VC in the fabric at one cycle.
type AnatomySample struct {
	Cycle int64 `json:"cycle"`
	// AllocatedVCs counts VCs currently held by a packet.
	AllocatedVCs int `json:"allocated_vcs"`
	// OwnedVCs counts VCs whose downstream buffer holds packets to some
	// destination (the live footprint state; owner set, possibly no
	// longer allocated).
	OwnedVCs int `json:"owned_vcs"`
	// IdleVCs counts fully drained, unallocated VCs.
	IdleVCs int `json:"idle_vcs"`
	// Trees is the number of distinct destinations owning at least one
	// VC — the count of live congestion trees; LargestTree is the VC
	// count of the biggest one (the paper's congestion-tree extent).
	Trees       int `json:"trees"`
	LargestTree int `json:"largest_tree"`
}

// packetAnatomy is the in-flight decomposition state of one packet.
type packetAnatomy struct {
	// lastMark is the inject cycle, then the cycle of the last head
	// traversal — the reference point the next route-wait measures from.
	lastMark int64
	// grantAt is the cycle of the most recent VC-allocation grant.
	grantAt int64
}

// AnatomyCollector accumulates the latency anatomy. All event callbacks
// run on the single stepping goroutine, so it needs no locking; the Hub
// snapshots aggregates under its own mutex.
type AnatomyCollector struct {
	period     int64
	maxSamples int

	windowSet  bool
	start, end int64

	// inflight holds only measured packets (born inside the measurement
	// window); events for unknown packet IDs are ignored.
	inflight map[uint64]packetAnatomy

	agg     Anatomy
	samples []AnatomySample
	// sampleDropped counts occupancy samples discarded at the bound.
	sampleDropped int64
	// treeCounts is the per-destination owned-VC scratch counter for
	// sampling (slice-indexed: no map iteration anywhere near results).
	treeCounts []int
	treeTouch  []int
}

// NewAnatomyCollector returns a collector sampling occupancy every
// period cycles (DefaultAnatomyPeriod when <= 0), keeping at most
// maxSamples points (DefaultAnatomySamples when <= 0).
func NewAnatomyCollector(period int64, maxSamples int) *AnatomyCollector {
	if period <= 0 {
		period = DefaultAnatomyPeriod
	}
	if maxSamples <= 0 {
		maxSamples = DefaultAnatomySamples
	}
	return &AnatomyCollector{
		period:     period,
		maxSamples: maxSamples,
		inflight:   make(map[uint64]packetAnatomy),
	}
}

// Period returns the occupancy sampling period in cycles.
func (a *AnatomyCollector) Period() int64 { return a.period }

// OpenWindow arms measurement for packets born in [start, end).
func (a *AnatomyCollector) OpenWindow(start, end int64) {
	a.windowSet = true
	a.start, a.end = start, end
}

// Aggregate returns a copy of the accumulated anatomy.
func (a *AnatomyCollector) Aggregate() *Anatomy {
	out := a.agg
	return &out
}

// Samples returns the occupancy time series, oldest first.
func (a *AnatomyCollector) Samples() []AnatomySample { return a.samples }

// SamplesDropped returns occupancy samples discarded at the row bound.
func (a *AnatomyCollector) SamplesDropped() int64 { return a.sampleDropped }

// onInject starts tracking a packet if it is measured: born inside the
// measurement window. The source-queue component is Inject - Born.
func (a *AnatomyCollector) onInject(now int64, p *flit.Packet) {
	if !a.windowSet || p.Born < a.start || p.Born >= a.end {
		return
	}
	a.inflight[p.ID] = packetAnatomy{lastMark: now}
	a.agg.SrcQueueCycles += now - p.Born
}

// onRoute charges the buffered wait before this router's route
// computation (route-wait) and the one-cycle link hop that delivered the
// head flit here.
func (a *AnatomyCollector) onRoute(now int64, p *flit.Packet) {
	st, ok := a.inflight[p.ID]
	if !ok {
		return
	}
	a.agg.RouteWaitCycles += now - st.lastMark - 1
	a.agg.LinkCycles++
}

// onGrant charges the allocation wait to the class of the VC that ended
// it.
func (a *AnatomyCollector) onGrant(now int64, p *flit.Packet, class router.VCClass, waited int64) {
	st, ok := a.inflight[p.ID]
	if !ok {
		return
	}
	a.agg.VCWaitCycles[class] += waited
	a.agg.Grants[class]++
	st.grantAt = now
	a.inflight[p.ID] = st
}

// onHeadTraverse charges the switch wait (grant → crossbar) and advances
// the packet's reference mark.
func (a *AnatomyCollector) onHeadTraverse(now int64, p *flit.Packet) {
	st, ok := a.inflight[p.ID]
	if !ok {
		return
	}
	a.agg.SwitchWaitCycles += now - st.grantAt
	st.lastMark = now
	a.inflight[p.ID] = st
	a.agg.Hops++
}

// onEject closes the packet: the tail drain after the head's final
// traversal is serialization, and the components now telescope to
// Eject - Born exactly.
func (a *AnatomyCollector) onEject(now int64, p *flit.Packet) {
	st, ok := a.inflight[p.ID]
	if !ok {
		return
	}
	a.agg.SerializationCycles += now - st.lastMark
	a.agg.LatencyCycles += now - p.Born
	a.agg.Packets++
	delete(a.inflight, p.ID)
}

// onDecision accumulates one routing decision's exercised adaptiveness.
// Only decisions of measured (in-flight tracked) packets count, so the
// aggregate describes the same population as the latency components.
func (a *AnatomyCollector) onDecision(p *flit.Packet, d router.Decision) {
	if _, ok := a.inflight[p.ID]; !ok {
		return
	}
	a.agg.Decisions++
	a.agg.MinimalPortsSum += int64(d.MinimalPorts)
	a.agg.OfferedPortsSum += int64(d.OfferedPorts)
	a.agg.AdmissibleVCsSum += int64(d.AdmissibleVCs)
	a.agg.OfferedVCsSum += int64(d.OfferedVCs)
	a.agg.FootprintVCsSum += int64(d.FootprintVCs)
	a.agg.IdleVCsSum += int64(d.IdleVCs)
	if d.EscapeRequested {
		a.agg.EscapeDecisions++
	}
	if d.MinimalProgress {
		a.agg.MinimalDecisions++
	}
}

// sample records one occupancy point: every network-port output VC in
// the fabric, classified idle / owned / allocated, plus the
// congestion-tree census (destinations owning VCs).
func (a *AnatomyCollector) sample(now int64, net *network.Network) {
	if len(a.samples) >= a.maxSamples {
		a.sampleDropped++
		return
	}
	if a.treeCounts == nil {
		a.treeCounts = make([]int, net.Nodes())
	}
	s := AnatomySample{Cycle: now}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d < topo.Local; d++ {
			for v := 0; v < r.VCs(); v++ {
				if r.OutVCAllocated(d, v) {
					s.AllocatedVCs++
				}
				if r.VCIdle(d, v) {
					s.IdleVCs++
					continue
				}
				owner := r.VCOwner(d, v)
				if owner < 0 {
					continue
				}
				s.OwnedVCs++
				if a.treeCounts[owner] == 0 {
					a.treeTouch = append(a.treeTouch, owner)
				}
				a.treeCounts[owner]++
			}
		}
	}
	for _, dest := range a.treeTouch {
		s.Trees++
		if a.treeCounts[dest] > s.LargestTree {
			s.LargestTree = a.treeCounts[dest]
		}
		a.treeCounts[dest] = 0
	}
	a.treeTouch = a.treeTouch[:0]
	a.samples = append(a.samples, s)
}

// WriteSeriesCSV writes the occupancy time series:
//
//	cycle,allocated_vcs,owned_vcs,idle_vcs,trees,largest_tree
func (a *AnatomyCollector) WriteSeriesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,allocated_vcs,owned_vcs,idle_vcs,trees,largest_tree"); err != nil {
		return err
	}
	for _, s := range a.samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.AllocatedVCs, s.OwnedVCs, s.IdleVCs, s.Trees, s.LargestTree); err != nil {
			return err
		}
	}
	return nil
}
