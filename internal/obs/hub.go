package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// Hub aggregates the live state of one or more simulation runs for the
// observability server: per-run progress, the latest per-router gauge
// sample, watchdog stalls and on-demand fabric snapshots. Simulations
// publish into it from their stepping goroutine; HTTP handlers read from
// it concurrently. All state is guarded by one mutex — updates are
// heartbeat-paced (hundreds of cycles apart), so contention is nil.
type Hub struct {
	mu        sync.Mutex
	runs      map[int64]*RunStatus
	order     []int64 // registration order; last is the newest run
	nextID    int64
	plan      int
	completed int64
	stalls    int64
	started   time.Time

	gauges *FabricGauges

	snapshot   *FabricSnapshot
	snapWanted bool
	snapDone   chan struct{}

	lastStall *StallReport
}

// maxRetainedRuns bounds the finished-run history kept for /status.
const maxRetainedRuns = 256

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{runs: map[int64]*RunStatus{}, started: time.Now()}
}

// RunStatus is the live progress of one simulation run as shown by
// /status and /metrics.
type RunStatus struct {
	ID        int64   `json:"id"`
	Label     string  `json:"label"`
	Algorithm string  `json:"algorithm,omitempty"`
	Phase     string  `json:"phase"`
	Cycle     int64   `json:"cycle"`
	Total     int64   `json:"total_cycles"`
	Percent   float64 `json:"percent"`
	InFlight  int     `json:"in_flight"`
	// OfferedFlits/EjectedFlits are whole-run totals; FlitHops is the
	// fabric's cumulative transport work.
	OfferedFlits int64 `json:"offered_flits"`
	EjectedFlits int64 `json:"ejected_flits"`
	FlitHops     int64 `json:"flit_hops"`
	// AcceptedRate is the live accepted throughput in flits/node/cycle
	// over the measurement window (0 before it opens).
	AcceptedRate float64 `json:"accepted_rate"`
	// LatencyP50/LatencyP99 are live quantiles of measured background
	// packet latency (0 until packets complete in the window).
	LatencyP50   float64 `json:"latency_p50"`
	LatencyP99   float64 `json:"latency_p99"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Phases is the run's live phase profile (nil unless the cycle-loop
	// profiler is enabled): per-phase sampled time and allocation
	// deltas, in pipeline order.
	Phases []PhaseStats `json:"phases,omitempty"`
	// TraceEvents/TraceDropped report the lifecycle tracer's totals:
	// events observed and events lost to ring overwrite (both 0 when
	// tracing is off). A nonzero TraceDropped means trace-derived
	// analyses only see a suffix of the run.
	TraceEvents  uint64 `json:"trace_events,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// Anatomy is the run's live latency anatomy and exercised
	// adaptiveness (nil unless the anatomy collector is enabled);
	// Occupancy is the latest footprint-occupancy sample.
	Anatomy   *Anatomy       `json:"anatomy,omitempty"`
	Occupancy *AnatomySample `json:"occupancy,omitempty"`
	// Arena is the latest flit/packet arena account of the run's fabric:
	// live/free/high-water slots and the allocated-vs-reused split.
	Arena *flit.ArenaStats `json:"arena,omitempty"`
	// RouteCache is the latest route-decision cache account (nil when the
	// cache is off or the algorithm opted out of fingerprinting).
	RouteCache *routing.CacheStats `json:"route_cache,omitempty"`
	Stalled    bool                `json:"stalled,omitempty"`
	Done       bool                `json:"done"`
	Started    time.Time           `json:"started"`
	Updated    time.Time           `json:"updated"`
}

// FabricGauges is the latest per-router counter sample published by a
// heartbeat, reusing the sampler's row type.
type FabricGauges struct {
	Cycle   int64
	Samples []RouterSample
}

// RunHandle is a simulation's writer end of its RunStatus.
type RunHandle struct {
	hub *Hub
	id  int64
}

// StartRun registers a run and returns its handle.
func (h *Hub) StartRun(label, algorithm string, totalCycles int64) *RunHandle {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	id := h.nextID
	h.runs[id] = &RunStatus{
		ID: id, Label: label, Algorithm: algorithm, Phase: "warmup",
		Total: totalCycles, Started: time.Now(), Updated: time.Now(),
	}
	h.order = append(h.order, id)
	// Evict the oldest finished runs beyond the retention bound.
	for len(h.order) > maxRetainedRuns {
		oldest := h.order[0]
		if r := h.runs[oldest]; r != nil && !r.Done {
			break
		}
		delete(h.runs, oldest)
		h.order = h.order[1:]
	}
	return &RunHandle{hub: h, id: id}
}

// RunUpdate carries one heartbeat's progress numbers.
type RunUpdate struct {
	Phase        string
	Cycle        int64
	InFlight     int
	OfferedFlits int64
	EjectedFlits int64
	FlitHops     int64
	AcceptedRate float64
	LatencyP50   float64
	LatencyP99   float64
	CyclesPerSec float64
	// Phases carries the profiler's live per-phase aggregates (nil when
	// profiling is off).
	Phases []PhaseStats
	// TraceEvents/TraceDropped carry the tracer's totals (0 when off).
	TraceEvents  uint64
	TraceDropped uint64
	// Anatomy carries the anatomy collector's live aggregate (nil when
	// off); Occupancy the latest footprint-occupancy sample.
	Anatomy   *Anatomy
	Occupancy *AnatomySample
	// Arena carries the fabric's flit/packet arena account.
	Arena *flit.ArenaStats
	// RouteCache carries the route-decision cache account (nil when the
	// cache is off).
	RouteCache *routing.CacheStats
}

// Update publishes a heartbeat.
func (rh *RunHandle) Update(u RunUpdate) {
	if rh == nil {
		return
	}
	h := rh.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.runs[rh.id]
	if !ok {
		return
	}
	r.Phase = u.Phase
	r.Cycle = u.Cycle
	r.InFlight = u.InFlight
	r.OfferedFlits = u.OfferedFlits
	r.EjectedFlits = u.EjectedFlits
	r.FlitHops = u.FlitHops
	r.AcceptedRate = u.AcceptedRate
	r.LatencyP50 = u.LatencyP50
	r.LatencyP99 = u.LatencyP99
	r.CyclesPerSec = u.CyclesPerSec
	if u.Phases != nil {
		r.Phases = u.Phases
	}
	r.TraceEvents = u.TraceEvents
	r.TraceDropped = u.TraceDropped
	if u.Anatomy != nil {
		r.Anatomy = u.Anatomy
	}
	if u.Occupancy != nil {
		r.Occupancy = u.Occupancy
	}
	if u.Arena != nil {
		r.Arena = u.Arena
	}
	if u.RouteCache != nil {
		r.RouteCache = u.RouteCache
	}
	if r.Total > 0 {
		r.Percent = 100 * float64(r.Cycle) / float64(r.Total)
		if r.Percent > 100 {
			r.Percent = 100
		}
	}
	r.Updated = time.Now()
}

// Finish marks the run complete.
func (rh *RunHandle) Finish() {
	if rh == nil {
		return
	}
	h := rh.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.runs[rh.id]; ok && !r.Done {
		r.Done = true
		r.Phase = "done"
		r.Percent = 100
		r.Updated = time.Now()
		h.completed++
	}
}

// MarkStalled flags the run as stalled (watchdog fired).
func (rh *RunHandle) MarkStalled() {
	if rh == nil {
		return
	}
	h := rh.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.runs[rh.id]; ok {
		r.Stalled = true
	}
}

// AddPlan raises the planned-run count shown by /status; experiment
// harnesses call it before fanning out a grid of runs.
func (h *Hub) AddPlan(n int) {
	h.mu.Lock()
	h.plan += n
	h.mu.Unlock()
}

// PublishGauges stores the latest per-router counter sample.
func (h *Hub) PublishGauges(now int64, net *network.Network) {
	g := &FabricGauges{Cycle: now, Samples: make([]RouterSample, 0, net.Nodes())}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		rs := RouterSample{Cycle: now, Node: id, VCAllocFails: r.VCAllocFailures()}
		for d := topo.East; d <= topo.Local; d++ {
			rs.Ports[d] = PortCounters{
				BufferOcc:    r.InputBufferOccupancy(d),
				CreditStalls: r.CreditStalls(d),
				XbarGrants:   r.CrossbarGrants(d),
				LinkFlits:    r.OutputFlits(d),
			}
		}
		g.Samples = append(g.Samples, rs)
	}
	h.mu.Lock()
	h.gauges = g
	h.mu.Unlock()
}

// ReportStall records a watchdog stall and publishes its snapshot.
func (h *Hub) ReportStall(rep *StallReport) {
	h.mu.Lock()
	h.stalls++
	h.lastStall = rep
	h.publishSnapshotLocked(rep.Snapshot)
	h.mu.Unlock()
}

// Stalls returns the number of watchdog stalls recorded.
func (h *Hub) Stalls() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stalls
}

// SnapshotWanted reports whether a /snapshot request is pending; the
// simulation's heartbeat answers it with PublishSnapshot.
func (h *Hub) SnapshotWanted() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapWanted
}

// PublishSnapshot stores a fresh fabric snapshot and releases any waiting
// /snapshot requests.
func (h *Hub) PublishSnapshot(s *FabricSnapshot) {
	h.mu.Lock()
	h.publishSnapshotLocked(s)
	h.mu.Unlock()
}

func (h *Hub) publishSnapshotLocked(s *FabricSnapshot) {
	if s == nil {
		return
	}
	h.snapshot = s
	h.snapWanted = false
	if h.snapDone != nil {
		close(h.snapDone)
		h.snapDone = nil
	}
}

// RequestSnapshot asks the stepping goroutine for a fresh fabric dump and
// waits up to timeout for it, falling back to the latest published
// snapshot (possibly nil when nothing ever ran).
func (h *Hub) RequestSnapshot(timeout time.Duration) *FabricSnapshot {
	h.mu.Lock()
	h.snapWanted = true
	if h.snapDone == nil {
		h.snapDone = make(chan struct{})
	}
	done := h.snapDone
	h.mu.Unlock()

	select {
	case <-done:
	case <-time.After(timeout):
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshot
}

// StatusReport is the /status payload.
type StatusReport struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Planned       int          `json:"runs_planned"`
	Completed     int64        `json:"runs_completed"`
	Active        int          `json:"runs_active"`
	GridPercent   float64      `json:"grid_percent"`
	Stalls        int64        `json:"watchdog_stalls"`
	Runs          []*RunStatus `json:"runs"`
}

// Status snapshots the hub state for /status: newest runs first.
func (h *Hub) Status() StatusReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := StatusReport{
		UptimeSeconds: time.Since(h.started).Seconds(),
		Planned:       h.plan,
		Completed:     h.completed,
		Stalls:        h.stalls,
	}
	var fractional float64
	for i := len(h.order) - 1; i >= 0; i-- {
		r, ok := h.runs[h.order[i]]
		if !ok {
			continue
		}
		cp := *r
		rep.Runs = append(rep.Runs, &cp)
		if !r.Done {
			rep.Active++
			fractional += r.Percent / 100
		}
	}
	if h.plan > 0 {
		rep.GridPercent = 100 * (float64(h.completed) + fractional) / float64(h.plan)
		if rep.GridPercent > 100 {
			rep.GridPercent = 100
		}
	}
	return rep
}

// WriteStatus writes the /status JSON.
func (h *Hub) WriteStatus(w io.Writer) error {
	rep := h.Status()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteMetrics writes the /metrics exposition.
func (h *Hub) WriteMetrics(w io.Writer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.writeMetrics(w)
}
