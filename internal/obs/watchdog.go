package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Watchdog detects stalled fabrics: windows of N cycles in which packets
// are in flight but no flit crosses any router output port. The driver
// (simulation or test harness) beats it periodically with the fabric's
// progress counters; on a zero-progress window the watchdog captures a
// structured fabric snapshot and returns a StallReport, turning
// "deadlock?" hangs into actionable post-mortems.
//
// Progress is defined as growth of the total-output-flit counter. A
// saturated-but-live network keeps moving flits and never triggers; a
// wedged one (deadlock, livelocked overlay, dead endpoint) freezes the
// counter while InFlight stays positive.
type Watchdog struct {
	window int64
	snap   func() *FabricSnapshot

	lastWork     int64
	lastProgress int64
	primed       bool
	tripped      bool
	stalls       int64
}

// NewWatchdog builds a watchdog that trips after window cycles without
// forward progress. snap captures the fabric dump at trip time; it runs
// on the beating goroutine.
func NewWatchdog(window int64, snap func() *FabricSnapshot) *Watchdog {
	if window < 1 {
		window = 1
	}
	return &Watchdog{window: window, snap: snap}
}

// Window returns the configured no-progress window in cycles.
func (w *Watchdog) Window() int64 { return w.window }

// Stalls returns the number of stall windows flagged so far.
func (w *Watchdog) Stalls() int64 { return w.stalls }

// Beat feeds the watchdog the fabric's progress counters at cycle now:
// inFlight packets and workDone, the cumulative flits sent through all
// router output ports. It returns a StallReport on the beat that
// completes a zero-progress window (once per stall; the watchdog re-arms
// when progress resumes), else nil.
func (w *Watchdog) Beat(now int64, inFlight int, workDone int64) *StallReport {
	if !w.primed || workDone != w.lastWork || inFlight == 0 {
		w.lastWork = workDone
		w.lastProgress = now
		w.primed = true
		w.tripped = false
		return nil
	}
	if w.tripped || now-w.lastProgress < w.window {
		return nil
	}
	w.tripped = true
	w.stalls++
	rep := &StallReport{
		Cycle:      now,
		SinceCycle: w.lastProgress,
		Window:     w.window,
		InFlight:   inFlight,
	}
	if w.snap != nil {
		rep.Snapshot = w.snap()
	}
	return rep
}

// StallReport is the watchdog's post-mortem: when the fabric stopped
// moving and what it looked like.
type StallReport struct {
	// Cycle is when the stall was flagged; SinceCycle is the last cycle
	// with observed forward progress.
	Cycle      int64           `json:"cycle"`
	SinceCycle int64           `json:"since_cycle"`
	Window     int64           `json:"window"`
	InFlight   int             `json:"in_flight"`
	Snapshot   *FabricSnapshot `json:"snapshot,omitempty"`
}

// Summary renders the stall for stderr: the headline plus the snapshot's
// longest blocked-on chains.
func (r *StallReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WATCHDOG: no forward progress for %d cycles (cycle %d, last progress at %d, %d packets in flight)\n",
		r.Cycle-r.SinceCycle, r.Cycle, r.SinceCycle, r.InFlight)
	if r.Snapshot != nil {
		b.WriteString(r.Snapshot.Summary())
	}
	return strings.TrimRight(b.String(), "\n")
}

// Dump writes the report (snapshot included) as indented JSON to path.
func (r *StallReport) Dump(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
