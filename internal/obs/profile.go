package obs

import (
	"fmt"
	"runtime/metrics"
	"strings"
	"time"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/prof"
	"nocsim/internal/routing"
)

// This file is the cycle-loop performance profiler: a sampled phase
// probe that attributes wall time and heap-allocation deltas to the
// fabric's pipeline phases (route-compute, VC-alloc, switch-alloc,
// link-traversal, inject-eject). It instruments every Kth cycle, so the
// disabled path costs one nil check per cycle and the enabled path
// amortizes its clock and allocation-counter reads over the sampling
// period. Profiles are host-side self-metrics like RuntimeStats: they
// ride on the Result but never feed a simulated quantity, and the
// determinism goldens scrub them exactly like Runtime.

// DefaultProfileEvery is the default sampling period in cycles: small
// enough that a quick-profile run still lands tens of samples, large
// enough that the per-sample cost (a dozen clock reads and two
// runtime/metrics reads) amortizes below a percent of the loop.
const DefaultProfileEvery = 64

// PhaseStats aggregates one pipeline phase over all sampled cycles.
type PhaseStats struct {
	// Phase is the network.Phase name ("route-compute", ...).
	Phase string `json:"phase"`
	// Nanos is wall time spent in the phase across sampled cycles.
	Nanos int64 `json:"nanos"`
	// AllocBytes / Allocs are the heap-allocation deltas attributed to
	// the phase across sampled cycles (runtime/metrics /gc/heap/allocs).
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	// TimeShare is Nanos over the total sampled-cycle time (0-1).
	TimeShare float64 `json:"time_share"`
}

// GCStats is the run-level garbage-collection and heap-growth account,
// deltas of runtime.MemStats between run start and end.
type GCStats struct {
	// NumGC is the number of completed GC cycles during the run.
	NumGC uint32 `json:"num_gc"`
	// PauseTotalNanos is the stop-the-world pause time accumulated
	// during the run.
	PauseTotalNanos uint64 `json:"pause_total_nanos"`
	// HeapSysGrowthBytes is the growth of heap memory obtained from the
	// OS over the run (0 when the heap did not grow).
	HeapSysGrowthBytes uint64 `json:"heap_sys_growth_bytes"`
	// TotalAllocBytes / Mallocs mirror RuntimeStats' whole-run
	// allocation deltas so a profile is self-contained.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
}

// PerfProfile is one run's cycle-loop performance profile, attached to
// sim.Result when profiling is enabled. Like RuntimeStats it describes
// the host, not the fabric: determinism tests scrub it.
type PerfProfile struct {
	// SampleEvery is the sampling period in cycles.
	SampleEvery int64 `json:"sample_every"`
	// SampledCycles counts instrumented cycles; SampledNanos is their
	// total wall time.
	SampledCycles int64 `json:"sampled_cycles"`
	SampledNanos  int64 `json:"sampled_nanos"`
	// Phases holds one entry per pipeline phase, in pipeline order.
	Phases []PhaseStats `json:"phases"`
	// GC is the run-level collector account (filled by the simulation
	// from its run-boundary MemStats reads).
	GC GCStats `json:"gc"`
	// Arena is the fabric's flit/packet arena account at run end (filled
	// by the simulation): live/free/high-water slots and the
	// allocated-vs-reused split. Unlike the host metrics above it is
	// deterministic — the counters move only on fabric events.
	Arena *flit.ArenaStats `json:"arena,omitempty"`
	// RouteCache is the route-decision cache account at run end (filled
	// by the simulation; nil when the cache is off or the algorithm opted
	// out). Like Arena it is deterministic — the counters move only on
	// route computations, never on host state.
	RouteCache *routing.CacheStats `json:"route_cache,omitempty"`
}

// String renders the profile as a one-line phase breakdown.
func (p *PerfProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sampled cycles (every %d):", p.SampledCycles, p.SampleEvery)
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, " %s %.1f%%", ph.Phase, 100*ph.TimeShare)
	}
	return b.String()
}

// heapAllocMetrics are the runtime/metrics samples the profiler reads at
// each phase boundary of a sampled cycle. Unlike runtime.ReadMemStats
// they do not stop the world, so per-phase reads stay cheap.
var heapAllocMetrics = [...]string{"/gc/heap/allocs:bytes", "/gc/heap/allocs:objects"}

// PhaseProfiler implements network.PhaseProbe: it samples every Kth
// cycle and accumulates per-phase wall time and allocation deltas. It is
// driven from the simulation's stepping goroutine only; Snapshot and
// Profile are safe from that same goroutine (the heartbeat).
type PhaseProfiler struct {
	every int64
	clock prof.Clock

	// Span state within the current sampled cycle.
	open       bool
	cur        network.Phase
	spanStart  time.Time
	spanBytes  uint64
	spanAllocs uint64

	sampled int64
	nanos   [network.NumPhases]int64
	bytes   [network.NumPhases]uint64
	allocs  [network.NumPhases]uint64

	samples    []metrics.Sample
	allocsOK   bool
	cycleStart time.Time
	totalNanos int64
}

// NewPhaseProfiler returns a profiler sampling every `every` cycles
// (DefaultProfileEvery when <= 0) using clock (prof.Now when nil).
func NewPhaseProfiler(every int64, clock prof.Clock) *PhaseProfiler {
	if every <= 0 {
		every = DefaultProfileEvery
	}
	p := &PhaseProfiler{every: every, clock: prof.Or(clock)}
	p.samples = make([]metrics.Sample, len(heapAllocMetrics))
	for i, name := range heapAllocMetrics {
		p.samples[i].Name = name
	}
	metrics.Read(p.samples)
	p.allocsOK = p.samples[0].Value.Kind() == metrics.KindUint64 &&
		p.samples[1].Value.Kind() == metrics.KindUint64
	return p
}

// readAllocs reads the cumulative heap allocation counters.
func (p *PhaseProfiler) readAllocs() (bytes, objects uint64) {
	if !p.allocsOK {
		return 0, 0
	}
	metrics.Read(p.samples)
	return p.samples[0].Value.Uint64(), p.samples[1].Value.Uint64()
}

// BeginCycle implements network.PhaseProbe: true every Kth cycle.
func (p *PhaseProfiler) BeginCycle(now int64) bool {
	if now%p.every != 0 {
		return false
	}
	p.cycleStart = p.clock()
	p.open = false
	return true
}

// BeginPhase implements network.PhaseProbe: closes the span of the
// previous phase and opens one for ph.
func (p *PhaseProfiler) BeginPhase(ph network.Phase) {
	t := p.clock()
	bytes, objects := p.readAllocs()
	if p.open {
		p.nanos[p.cur] += t.Sub(p.spanStart).Nanoseconds()
		p.bytes[p.cur] += bytes - p.spanBytes
		p.allocs[p.cur] += objects - p.spanAllocs
	}
	p.open = true
	p.cur = ph
	p.spanStart = t
	p.spanBytes = bytes
	p.spanAllocs = objects
}

// EndCycle implements network.PhaseProbe: closes the last span and
// finishes the sampled cycle.
func (p *PhaseProfiler) EndCycle() {
	t := p.clock()
	if p.open {
		bytes, objects := p.readAllocs()
		p.nanos[p.cur] += t.Sub(p.spanStart).Nanoseconds()
		p.bytes[p.cur] += bytes - p.spanBytes
		p.allocs[p.cur] += objects - p.spanAllocs
		p.open = false
	}
	p.totalNanos += t.Sub(p.cycleStart).Nanoseconds()
	p.sampled++
}

// SampleEvery returns the sampling period in cycles.
func (p *PhaseProfiler) SampleEvery() int64 { return p.every }

// Snapshot returns the per-phase aggregates so far, in pipeline order —
// the heartbeat publishes it to the hub while the run executes.
func (p *PhaseProfiler) Snapshot() []PhaseStats {
	out := make([]PhaseStats, network.NumPhases)
	var total int64
	for i := 0; i < network.NumPhases; i++ {
		total += p.nanos[i]
	}
	for i := 0; i < network.NumPhases; i++ {
		out[i] = PhaseStats{
			Phase:      network.Phase(i).String(),
			Nanos:      p.nanos[i],
			AllocBytes: p.bytes[i],
			Allocs:     p.allocs[i],
		}
		if total > 0 {
			out[i].TimeShare = float64(p.nanos[i]) / float64(total)
		}
	}
	return out
}

// Profile freezes the profiler into a PerfProfile (GC is filled by the
// caller from its run-boundary MemStats deltas).
func (p *PhaseProfiler) Profile() *PerfProfile {
	return &PerfProfile{
		SampleEvery:   p.every,
		SampledCycles: p.sampled,
		SampledNanos:  p.totalNanos,
		Phases:        p.Snapshot(),
	}
}

// compile-time seam check.
var _ network.PhaseProbe = (*PhaseProfiler)(nil)
