package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"nocsim/internal/flit"
	"nocsim/internal/router"
	"nocsim/internal/routing"
)

// The Prometheus text exposition format (version 0.0.4) is hand-rolled
// here so the live observability server stays free of third-party
// dependencies. A PromWriter renders metric families in declaration
// order: one # HELP and # TYPE line per family followed by its samples,
// with full label-value escaping.

// PromLabel is one label pair of a sample.
type PromLabel struct {
	Name, Value string
}

// PromWriter streams Prometheus text format to an io.Writer. Errors are
// sticky: the first write failure is retained and subsequent calls are
// no-ops, so callers check Err once at the end.
type PromWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: map[string]bool{}}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Family declares a metric family: its # HELP and # TYPE header. typ is
// "gauge" or "counter". Declaring the same family twice is a programming
// error surfaced through Err, since Prometheus rejects duplicate headers.
func (p *PromWriter) Family(name, help, typ string) {
	if p.err != nil {
		return
	}
	if p.seen[name] {
		p.err = fmt.Errorf("obs: duplicate metric family %q", name)
		return
	}
	p.seen[name] = true
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample of the most recently declared family. NaN is
// skipped (a gauge with no observation yet has no sample, rather than a
// literal NaN that trips alerting rules).
func (p *PromWriter) Sample(name string, labels []PromLabel, value float64) {
	if p.err != nil || math.IsNaN(value) {
		return
	}
	if !p.seen[name] {
		p.err = fmt.Errorf("obs: sample for undeclared family %q", name)
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
	_, p.err = io.WriteString(p.w, b.String())
}

// formatValue renders a sample value: integers without an exponent,
// everything else in Go's shortest-round-trip form, and infinities in
// Prometheus' +Inf/-Inf spelling.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeMetrics renders the hub's full state in exposition format. Called
// with h.mu held.
func (h *Hub) writeMetrics(w io.Writer) error {
	p := NewPromWriter(w)

	p.Family("nocsim_runs_planned", "Simulation runs the experiment plans to execute (0 when unknown).", "gauge")
	p.Sample("nocsim_runs_planned", nil, float64(h.plan))
	p.Family("nocsim_runs_completed_total", "Simulation runs completed since the hub started.", "counter")
	p.Sample("nocsim_runs_completed_total", nil, float64(h.completed))
	p.Family("nocsim_runs_active", "Simulation runs currently executing.", "gauge")
	active := 0
	for _, id := range h.order {
		if r, ok := h.runs[id]; ok && !r.Done {
			active++
		}
	}
	p.Sample("nocsim_runs_active", nil, float64(active))
	p.Family("nocsim_watchdog_stalls_total", "Stall windows flagged by the progress watchdog.", "counter")
	p.Sample("nocsim_watchdog_stalls_total", nil, float64(h.stalls))

	// Per-run series for the runs still executing, or the most recently
	// finished run when idle, so scrapes between sweep points still see
	// the last state.
	runs := h.exposedRuns()
	perRun := func(name, help, typ string, get func(r *RunStatus) float64) {
		p.Family(name, help, typ)
		for _, r := range runs {
			p.Sample(name, []PromLabel{{"run", r.Label}}, get(r))
		}
	}
	perRun("nocsim_cycles_total", "Fabric cycles simulated by the run.", "counter",
		func(r *RunStatus) float64 { return float64(r.Cycle) })
	perRun("nocsim_flits_offered_total", "Flits offered to the fabric by the run's injectors.", "counter",
		func(r *RunStatus) float64 { return float64(r.OfferedFlits) })
	perRun("nocsim_flits_ejected_total", "Flits consumed at destination endpoints.", "counter",
		func(r *RunStatus) float64 { return float64(r.EjectedFlits) })
	perRun("nocsim_flit_hops_total", "Flits sent through router output ports (fabric transport work).", "counter",
		func(r *RunStatus) float64 { return float64(r.FlitHops) })
	perRun("nocsim_packets_in_flight", "Packets offered but not yet fully ejected.", "gauge",
		func(r *RunStatus) float64 { return float64(r.InFlight) })
	perRun("nocsim_run_progress_ratio", "Run progress through its cycle budget (0-1).", "gauge",
		func(r *RunStatus) float64 { return r.Percent / 100 })
	perRun("nocsim_accepted_rate", "Live accepted throughput in flits/node/cycle over the measurement window.", "gauge",
		func(r *RunStatus) float64 { return r.AcceptedRate })
	perRun("nocsim_sim_cycles_per_second", "Host simulation speed in fabric cycles per wall second.", "gauge",
		func(r *RunStatus) float64 { return r.CyclesPerSec })
	perRun("nocsim_trace_events_total", "Packet lifecycle events observed by the tracer (0 when tracing is off).", "counter",
		func(r *RunStatus) float64 { return float64(r.TraceEvents) })
	perRun("nocsim_trace_dropped_events_total", "Lifecycle events lost to trace-ring overwrite; nonzero means the trace only covers a suffix of the run.", "counter",
		func(r *RunStatus) float64 { return float64(r.TraceDropped) })

	// Arena families, labeled by run and pool (flits/packets), for runs
	// whose fabric published an arena account.
	perArena := func(name, help, typ string, get func(p *flit.PoolStats) float64) {
		p.Family(name, help, typ)
		for _, r := range runs {
			if r.Arena == nil {
				continue
			}
			p.Sample(name, []PromLabel{{"run", r.Label}, {"pool", "flits"}}, get(&r.Arena.Flits))
			p.Sample(name, []PromLabel{{"run", r.Label}, {"pool", "packets"}}, get(&r.Arena.Packets))
		}
	}
	perArena("nocsim_arena_live", "Arena slots currently allocated to the fabric.", "gauge",
		func(p *flit.PoolStats) float64 { return float64(p.Live) })
	perArena("nocsim_arena_free", "Recycled arena slots awaiting reuse.", "gauge",
		func(p *flit.PoolStats) float64 { return float64(p.Free) })
	perArena("nocsim_arena_high_water", "Maximum live arena slots observed (working-set size).", "gauge",
		func(p *flit.PoolStats) float64 { return float64(p.HighWater) })
	perArena("nocsim_arena_allocs_total", "Arena allocations served since run start.", "counter",
		func(p *flit.PoolStats) float64 { return float64(p.Allocs) })
	perArena("nocsim_arena_reused_total", "Arena allocations served from the free-list rather than by growing a slab.", "counter",
		func(p *flit.PoolStats) float64 { return float64(p.Reused) })

	// Route-decision cache families, for the runs whose network runs the
	// cache (absent when -routecache=off or the algorithm opted out).
	perRouteCache := func(name, help string, get func(s *routing.CacheStats) float64) {
		p.Family(name, help, "counter")
		for _, r := range runs {
			if r.RouteCache != nil {
				p.Sample(name, []PromLabel{{"run", r.Label}}, get(r.RouteCache))
			}
		}
	}
	perRouteCache("nocsim_routecache_hits_total", "Route computations served from the route-decision cache by fingerprint lookup.",
		func(s *routing.CacheStats) float64 { return float64(s.Hits) })
	perRouteCache("nocsim_routecache_memo_hits_total", "Cache hits served by the per-requester epoch memo without hashing.",
		func(s *routing.CacheStats) float64 { return float64(s.MemoHits) })
	perRouteCache("nocsim_routecache_misses_total", "Route computations executed live (cache miss, bypass, or uncacheable entry).",
		func(s *routing.CacheStats) float64 { return float64(s.Misses) })
	perRouteCache("nocsim_routecache_evictions_total", "Entries overwritten by a colliding fingerprint in the direct-mapped table.",
		func(s *routing.CacheStats) float64 { return float64(s.Evictions) })
	perRouteCache("nocsim_routecache_draw_replays_total", "Cache hits that consumed one live RNG draw to stay stream-identical.",
		func(s *routing.CacheStats) float64 { return float64(s.DrawReplays) })

	// Latency-anatomy families, for the runs whose anatomy collector is
	// enabled. Labels: run (+ component or vc_class).
	perAnatomy := func(name, help, typ string, get func(a *Anatomy) float64) {
		p.Family(name, help, typ)
		for _, r := range runs {
			if r.Anatomy != nil {
				p.Sample(name, []PromLabel{{"run", r.Label}}, get(r.Anatomy))
			}
		}
	}
	perAnatomy("nocsim_anatomy_packets_total", "Measured packets fully decomposed by the latency-anatomy collector.", "counter",
		func(a *Anatomy) float64 { return float64(a.Packets) })
	perAnatomy("nocsim_anatomy_decisions_total", "Routing decisions recorded for measured packets (ejection excluded).", "counter",
		func(a *Anatomy) float64 { return float64(a.Decisions) })
	perAnatomy("nocsim_anatomy_port_adaptiveness_exercised", "Offered ports over the minimal-path ceiling, aggregated over decisions (0-1).", "gauge",
		func(a *Anatomy) float64 { return a.PortAdaptivenessExercised() })
	perAnatomy("nocsim_anatomy_vc_adaptiveness_exercised", "Offered VCs over the admissible ceiling, aggregated over decisions (0-1).", "gauge",
		func(a *Anatomy) float64 { return a.VCAdaptivenessExercised() })
	p.Family("nocsim_anatomy_latency_cycles_total", "End-to-end latency cycles of measured packets by component; components partition the total exactly.", "counter")
	for _, r := range runs {
		if r.Anatomy == nil {
			continue
		}
		for _, c := range r.Anatomy.Components() {
			p.Sample("nocsim_anatomy_latency_cycles_total",
				[]PromLabel{{"run", r.Label}, {"component", c.Name}}, float64(c.Cycles))
		}
	}
	p.Family("nocsim_anatomy_grants_total", "VC-allocation grants by the granted VC's class at grant time.", "counter")
	for _, r := range runs {
		if r.Anatomy == nil {
			continue
		}
		for class, n := range r.Anatomy.Grants {
			p.Sample("nocsim_anatomy_grants_total",
				[]PromLabel{{"run", r.Label}, {"vc_class", router.VCClass(class).String()}}, float64(n))
		}
	}
	perOcc := func(name, help string, get func(s *AnatomySample) float64) {
		p.Family(name, help, "gauge")
		for _, r := range runs {
			if r.Occupancy != nil {
				p.Sample(name, []PromLabel{{"run", r.Label}}, get(r.Occupancy))
			}
		}
	}
	perOcc("nocsim_anatomy_owned_vcs", "Network-port output VCs whose buffers hold packets to some destination (latest occupancy sample).",
		func(s *AnatomySample) float64 { return float64(s.OwnedVCs) })
	perOcc("nocsim_anatomy_idle_vcs", "Fully drained, unallocated network-port output VCs (latest occupancy sample).",
		func(s *AnatomySample) float64 { return float64(s.IdleVCs) })
	perOcc("nocsim_anatomy_congestion_trees", "Distinct destinations owning at least one VC — live congestion-tree count (latest occupancy sample).",
		func(s *AnatomySample) float64 { return float64(s.Trees) })
	perOcc("nocsim_anatomy_largest_tree_vcs", "VCs owned by the largest congestion tree (latest occupancy sample).",
		func(s *AnatomySample) float64 { return float64(s.LargestTree) })

	// Per-phase series from the cycle-loop profiler, for the runs that
	// carry one. Labels: run + pipeline phase.
	perPhase := func(name, help, typ string, get func(ph PhaseStats) float64) {
		p.Family(name, help, typ)
		for _, r := range runs {
			for _, ph := range r.Phases {
				p.Sample(name, []PromLabel{{"run", r.Label}, {"phase", ph.Phase}}, get(ph))
			}
		}
	}
	perPhase("nocsim_phase_sampled_nanos_total", "Wall nanoseconds attributed to the pipeline phase over sampled cycles.", "counter",
		func(ph PhaseStats) float64 { return float64(ph.Nanos) })
	perPhase("nocsim_phase_alloc_bytes_total", "Heap bytes allocated in the pipeline phase over sampled cycles.", "counter",
		func(ph PhaseStats) float64 { return float64(ph.AllocBytes) })
	perPhase("nocsim_phase_allocs_total", "Heap allocations in the pipeline phase over sampled cycles.", "counter",
		func(ph PhaseStats) float64 { return float64(ph.Allocs) })
	perPhase("nocsim_phase_time_share", "Fraction of sampled cycle time spent in the pipeline phase (0-1).", "gauge",
		func(ph PhaseStats) float64 { return ph.TimeShare })

	// Per-router gauges from the latest fabric sample.
	if g := h.gauges; g != nil {
		node := func(id int) string { return strconv.Itoa(id) }
		p.Family("nocsim_router_buffer_occupancy", "Flits buffered at the router input port (instantaneous).", "gauge")
		for _, rs := range g.Samples {
			for d := 0; d < len(rs.Ports); d++ {
				p.Sample("nocsim_router_buffer_occupancy",
					[]PromLabel{{"node", node(rs.Node)}, {"port", portName(d)}},
					float64(rs.Ports[d].BufferOcc))
			}
		}
		p.Family("nocsim_router_credit_stalls_total", "VC-cycles the output port stalled upstream VCs for lack of credits.", "counter")
		for _, rs := range g.Samples {
			for d := 0; d < len(rs.Ports); d++ {
				p.Sample("nocsim_router_credit_stalls_total",
					[]PromLabel{{"node", node(rs.Node)}, {"port", portName(d)}},
					float64(rs.Ports[d].CreditStalls))
			}
		}
		p.Family("nocsim_router_link_flits_total", "Flits sent through the router output port.", "counter")
		for _, rs := range g.Samples {
			for d := 0; d < len(rs.Ports); d++ {
				p.Sample("nocsim_router_link_flits_total",
					[]PromLabel{{"node", node(rs.Node)}, {"port", portName(d)}},
					float64(rs.Ports[d].LinkFlits))
			}
		}
		p.Family("nocsim_router_vc_alloc_failures_total", "Head packets denied VC allocation, summed over cycles.", "counter")
		for _, rs := range g.Samples {
			p.Sample("nocsim_router_vc_alloc_failures_total",
				[]PromLabel{{"node", node(rs.Node)}}, float64(rs.VCAllocFails))
		}
	}
	return p.Err()
}

// portName maps a port index to its compass letter without importing
// topo's Direction into the exposition path.
func portName(d int) string {
	names := [...]string{"E", "W", "N", "S", "L"}
	if d < len(names) {
		return names[d]
	}
	return strconv.Itoa(d)
}

// exposedRuns returns the runs to expose as per-run series: all active
// runs, or the most recently finished one when idle. Sorted by label for
// deterministic output. Called with h.mu held.
func (h *Hub) exposedRuns() []*RunStatus {
	var out []*RunStatus
	for _, r := range h.runs {
		if !r.Done {
			out = append(out, r)
		}
	}
	if len(out) == 0 && len(h.order) > 0 {
		if r, ok := h.runs[h.order[len(h.order)-1]]; ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
