// Package obs is the fabric's observability subsystem: a bounded-ring
// packet lifecycle tracer with JSONL and Chrome-trace (Perfetto)
// exporters, per-router/per-port time-series counters with a CSV
// exporter, and per-link/per-node heatmaps reconciled against the
// simulation's accepted throughput. Everything plugs into the
// router.MetricsSink seam; a disabled collector costs nothing because
// routers and endpoints gate the per-packet callbacks on
// WantPacketEvents.
package obs

import (
	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/prof"
	"nocsim/internal/router"
	"nocsim/internal/topo"
)

// Options selects which collectors a simulation attaches. The zero value
// disables observability entirely.
type Options struct {
	// Trace enables the packet lifecycle tracer. TraceCapacity bounds its
	// ring buffer (DefaultTraceCapacity when 0).
	Trace         bool
	TraceCapacity int
	// SamplePeriod, when > 0, enables per-router/per-port counter
	// sampling every SamplePeriod cycles. MaxSamples bounds the retained
	// router-samples (DefaultSampleRows when 0).
	SamplePeriod int64
	MaxSamples   int
	// Heatmap enables per-link/per-node accounting over the measurement
	// window.
	Heatmap bool
	// Profile enables the sampled cycle-loop phase profiler (see
	// PhaseProfiler); the run's Result then carries a PerfProfile.
	// ProfileEvery is the sampling period in cycles (DefaultProfileEvery
	// when 0). ProfileClock overrides the profiler's clock — tests
	// inject deterministic fakes; nil means prof.Now.
	Profile      bool
	ProfileEvery int64
	ProfileClock prof.Clock
	// Anatomy enables the latency-anatomy collector: per-packet latency
	// decomposition, exercised-adaptiveness decision records and the
	// footprint-occupancy time series; the run's Result then carries an
	// Anatomy aggregate. AnatomyPeriod is the occupancy sampling period
	// in cycles (DefaultAnatomyPeriod when 0); AnatomySamples bounds the
	// retained series points (DefaultAnatomySamples when 0).
	Anatomy        bool
	AnatomyPeriod  int64
	AnatomySamples int
}

// Enabled reports whether any collector is selected. The phase profiler
// is deliberately excluded: it is a network probe, not a MetricsSink
// collector, and is wired separately by the simulation.
func (o Options) Enabled() bool {
	return o.Trace || o.SamplePeriod > 0 || o.Heatmap || o.Anatomy
}

// Collector owns the selected observability components and implements
// router.MetricsSink by dispatching to them. The simulation drives
// Tick every cycle and OpenWindow/CloseWindow around its measurement
// phase.
type Collector struct {
	// Tracer is non-nil when lifecycle tracing is enabled.
	Tracer *Tracer
	// Sampler is non-nil when counter sampling is enabled.
	Sampler *Sampler
	// Heatmap is non-nil when link heatmaps are enabled.
	Heatmap *Heatmap
	// Anatomy is non-nil when the latency-anatomy collector is enabled.
	Anatomy *AnatomyCollector
}

// NewCollector builds the collectors o selects; it returns nil when o is
// entirely disabled so callers can pass the result straight to
// router.Tee.
func NewCollector(o Options) *Collector {
	if !o.Enabled() {
		return nil
	}
	c := &Collector{}
	if o.Trace {
		c.Tracer = NewTracer(o.TraceCapacity)
	}
	if o.SamplePeriod > 0 {
		c.Sampler = NewSampler(o.SamplePeriod, o.MaxSamples)
	}
	if o.Heatmap {
		c.Heatmap = NewHeatmap()
	}
	if o.Anatomy {
		c.Anatomy = NewAnatomyCollector(o.AnatomyPeriod, o.AnatomySamples)
	}
	return c
}

// Tick is called once per simulated cycle before the fabric steps; it
// drives periodic counter and occupancy sampling.
func (c *Collector) Tick(now int64, net *network.Network) {
	if c.Sampler != nil && now%c.Sampler.period == 0 {
		c.Sampler.Sample(now, net)
	}
	if c.Anatomy != nil && now%c.Anatomy.period == 0 {
		c.Anatomy.sample(now, net)
	}
}

// OpenWindow arms the heatmap and the anatomy collector for the
// measurement window [start, end).
func (c *Collector) OpenWindow(net *network.Network, mesh topo.Mesh, start, end int64) {
	if c.Heatmap != nil {
		c.Heatmap.OpenWindow(net, mesh, start, end)
	}
	if c.Anatomy != nil {
		c.Anatomy.OpenWindow(start, end)
	}
}

// CloseWindow freezes the heatmap's link counters at the end of the
// measurement window.
func (c *Collector) CloseWindow(net *network.Network) {
	if c.Heatmap != nil {
		c.Heatmap.CloseWindow(net)
	}
}

// --- router.MetricsSink ----------------------------------------------------

// WantPacketEvents implements router.MetricsSink: the per-packet
// lifecycle callbacks are consumed when tracing, heatmapping or
// collecting the latency anatomy.
func (c *Collector) WantPacketEvents() bool {
	return c.Tracer != nil || c.Heatmap != nil || c.Anatomy != nil
}

// OnInject implements router.MetricsSink.
func (c *Collector) OnInject(now int64, p *flit.Packet) {
	if c.Tracer != nil {
		c.Tracer.add(Event{Cycle: now, Kind: EventInject, Node: p.Src,
			Packet: p.ID, Src: p.Src, Dest: p.Dest})
	}
	if c.Anatomy != nil {
		c.Anatomy.onInject(now, p)
	}
}

// OnRoute implements router.MetricsSink.
func (c *Collector) OnRoute(now int64, node int, p *flit.Packet, in topo.Direction) {
	if c.Tracer != nil {
		c.Tracer.add(Event{Cycle: now, Kind: EventRoute, Node: node,
			Packet: p.ID, Src: p.Src, Dest: p.Dest, Dir: in})
	}
	if c.Anatomy != nil {
		c.Anatomy.onRoute(now, p)
	}
}

// OnVCAllocFailure implements router.MetricsSink: only the first failed
// cycle of a blocking span is recorded, so saturated runs do not flush
// the ring with repeats.
func (c *Collector) OnVCAllocFailure(now int64, node int, p *flit.Packet, out topo.Direction, fp, busy int, waited int64) {
	if c.Tracer != nil && waited == 1 {
		c.Tracer.add(Event{Cycle: now, Kind: EventBlock, Node: node,
			Packet: p.ID, Src: p.Src, Dest: p.Dest, Dir: out, FootprintVCs: fp, BusyVCs: busy})
	}
}

// OnVCAllocGrant implements router.MetricsSink.
func (c *Collector) OnVCAllocGrant(now int64, node int, p *flit.Packet, out topo.Direction, outVC int, class router.VCClass, waited int64) {
	if c.Tracer != nil {
		c.Tracer.add(Event{Cycle: now, Kind: EventGrant, Node: node,
			Packet: p.ID, Src: p.Src, Dest: p.Dest, Dir: out, VC: outVC, Class: class, Waited: waited})
	}
	if c.Anatomy != nil {
		c.Anatomy.onGrant(now, p, class, waited)
	}
}

// OnHeadTraverse implements router.MetricsSink.
func (c *Collector) OnHeadTraverse(now int64, node int, p *flit.Packet, out topo.Direction, outVC int) {
	if c.Tracer != nil {
		c.Tracer.add(Event{Cycle: now, Kind: EventHop, Node: node,
			Packet: p.ID, Src: p.Src, Dest: p.Dest, Dir: out, VC: outVC})
	}
	if c.Anatomy != nil {
		c.Anatomy.onHeadTraverse(now, p)
	}
}

// OnEject implements router.MetricsSink.
func (c *Collector) OnEject(now int64, p *flit.Packet) {
	if c.Tracer != nil {
		c.Tracer.add(Event{Cycle: now, Kind: EventEject, Node: p.Dest,
			Packet: p.ID, Src: p.Src, Dest: p.Dest})
	}
	if c.Heatmap != nil {
		c.Heatmap.onEject(now, p)
	}
	if c.Anatomy != nil {
		c.Anatomy.onEject(now, p)
	}
}

// WantRouteDecisions implements router.MetricsSink: decision records are
// consumed only by the anatomy collector.
func (c *Collector) WantRouteDecisions() bool { return c.Anatomy != nil }

// OnRouteDecision implements router.MetricsSink.
func (c *Collector) OnRouteDecision(now int64, node int, p *flit.Packet, d router.Decision) {
	if c.Anatomy != nil {
		c.Anatomy.onDecision(p, d)
	}
}

// compile-time seam check.
var _ router.MetricsSink = (*Collector)(nil)
