package obs

import (
	"path/filepath"
	"strings"
)

// Slug reduces a run identity to a filename-safe token: lower-case
// letters, digits and dots, with every other character run collapsed to
// a single dash.
func Slug(s string) string {
	var b strings.Builder
	lastDash := true // trims leading dashes
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// SuffixPath inserts _Slug(id) before the extension: base.csv ->
// base_id.csv. Per-run output files (counter CSVs, heatmaps, watchdog
// snapshots) use it so concurrent runs never share a path.
func SuffixPath(base, id string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "_" + Slug(id) + ext
}
