package obs_test

import (
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// liveNet builds a small fabric with some traffic in flight so that
// PublishGauges and Capture read non-trivial counters.
func liveNet(t *testing.T) *network.Network {
	t.Helper()
	n := network.New(network.Config{
		Mesh:     topo.MustNew(2, 2),
		VCs:      2,
		BufDepth: 4,
		Speedup:  2,
		NewAlg:   func() routing.Algorithm { return routing.MustNew("footprint") },
		Rand:     rand.New(rand.NewSource(1)),
	})
	n.Sink = func(p *flit.Packet) {}
	id := uint64(0)
	for cycle := 0; cycle < 50; cycle++ {
		for _, src := range []int{0, 1, 2} {
			id++
			n.Offer(&flit.Packet{ID: id, Src: src, Dest: 3, Size: 1, Born: n.Now()})
		}
		n.Step()
	}
	return n
}

// TestHubConcurrentRunsAndScrapes hammers one hub the way a parallel
// sweep does — many runs registering, heartbeating and finishing at once
// — while scraper goroutines read /status and /metrics and request
// snapshots throughout. Run under -race, the test proves the hub is a
// safe meeting point for the worker pool and the HTTP server.
func TestHubConcurrentRunsAndScrapes(t *testing.T) {
	hub := obs.NewHub()
	net := liveNet(t)

	const (
		writers    = 8
		runsPer    = 25
		heartbeats = 20
		scrapers   = 4
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: read everything the HTTP handlers read, as fast as
	// possible, until the writers are done.
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := hub.WriteStatus(io.Discard); err != nil {
					t.Errorf("WriteStatus: %v", err)
					return
				}
				if err := hub.WriteMetrics(io.Discard); err != nil {
					t.Errorf("WriteMetrics: %v", err)
					return
				}
				hub.Status()
				hub.Stalls()
				hub.RequestSnapshot(time.Millisecond)
			}
		}()
	}

	// Writers: each behaves like a worker of the pool running a grid
	// slice — plan, register, heartbeat (with gauge and snapshot
	// publishes, as the simulation heartbeat does), stall, finish.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			hub.AddPlan(runsPer)
			for r := 0; r < runsPer; r++ {
				rh := hub.StartRun("race run", "footprint", heartbeats)
				for hb := 0; hb < heartbeats; hb++ {
					rh.Update(obs.RunUpdate{Phase: "measure", Cycle: int64(hb), InFlight: 3})
					if hb%5 == 0 {
						hub.PublishGauges(int64(hb), net)
					}
					if hub.SnapshotWanted() {
						hub.PublishSnapshot(obs.Capture(net))
					}
				}
				if r%7 == 0 {
					rh.MarkStalled()
				}
				rh.Finish()
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	wg.Wait()

	st := hub.Status()
	if want := int64(writers * runsPer); st.Completed != want {
		t.Errorf("completed = %d, want %d", st.Completed, want)
	}
	if st.Planned != writers*runsPer {
		t.Errorf("planned = %d, want %d", st.Planned, writers*runsPer)
	}
	if st.Active != 0 {
		t.Errorf("active = %d after all runs finished", st.Active)
	}
	if st.GridPercent != 100 {
		t.Errorf("grid percent = %.1f, want 100", st.GridPercent)
	}
}
