package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/topo"
	"nocsim/internal/traffic"
)

// runObserved runs a short 4x4 uniform-traffic simulation with every
// collector enabled and returns the result plus the collector.
func runObserved(t *testing.T) (*sim.Result, *obs.Collector, sim.Config) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.VCs = 4
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 600
	cfg.DrainCycles = 4000
	cfg.Obs = obs.Options{Trace: true, SamplePeriod: 50, Heatmap: true}
	gen := &traffic.Generator{Pattern: traffic.Uniform{Nodes: cfg.Mesh().Nodes()},
		Rate: 0.2, Size: traffic.UniformSize(1, 4)}
	s := sim.MustNew(cfg, gen)
	col := s.Observability()
	if col == nil {
		t.Fatal("Observability() nil with collectors enabled")
	}
	res := s.Run()
	return res, col, cfg
}

// TestSeamSharedBySimMetricsAndTracer checks that the simulator's own
// metrics and the tracer both consume the same MetricsSink seam in one
// run: blocking statistics (fed by sim.metrics) and lifecycle events
// (fed by the Collector) must both be populated.
func TestSeamSharedBySimMetricsAndTracer(t *testing.T) {
	res, col, _ := runObserved(t)
	if !res.Stable {
		t.Fatal("test load should be stable")
	}
	if res.Measured == 0 {
		t.Fatal("no packets measured")
	}
	// sim.metrics side of the tee: purity needs VC-alloc failure events.
	if res.BlockEvents == 0 {
		t.Error("sim metrics saw no block events through the tee")
	}
	// Collector side of the tee.
	if col.Tracer.Total() == 0 {
		t.Error("tracer saw no events through the tee")
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range col.Tracer.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{obs.EventInject, obs.EventRoute, obs.EventGrant, obs.EventHop, obs.EventEject} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
}

// TestChromeTraceFromSimulation validates the Chrome-trace export of a
// real run: well-formed JSON with a traceEvents array of events that all
// carry the required fields, loadable by Perfetto.
func TestChromeTraceFromSimulation(t *testing.T) {
	_, col, _ := runObserved(t)
	var buf bytes.Buffer
	if err := col.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	phases := map[string]bool{}
	for i, ce := range f.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ce[key]; !ok {
				t.Fatalf("event %d missing %q", i, key)
			}
		}
		ph := ce["ph"].(string)
		phases[ph] = true
		if ph != "i" && ph != "X" {
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
		if ph == "X" {
			if dur, ok := ce["dur"].(float64); !ok || dur < 1 {
				t.Errorf("event %d: X slice needs dur >= 1, got %v", i, ce["dur"])
			}
		}
	}
	if !phases["i"] || !phases["X"] {
		t.Errorf("want both instant and slice events, got %v", phases)
	}
}

// TestJSONLFromSimulation checks the JSONL export line by line.
func TestJSONLFromSimulation(t *testing.T) {
	_, col, _ := runObserved(t)
	var buf bytes.Buffer
	if err := col.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if _, ok := m["kind"]; !ok {
			t.Fatalf("line %d missing kind", n)
		}
		n++
	}
	if n != col.Tracer.Len() {
		t.Errorf("wrote %d lines, tracer retains %d", n, col.Tracer.Len())
	}
}

// TestHeatmapReconcilesWithAccepted checks the acceptance criterion: the
// heatmap's per-node ejection grid must total exactly Accepted x nodes x
// measurement cycles.
func TestHeatmapReconcilesWithAccepted(t *testing.T) {
	res, col, cfg := runObserved(t)
	nodes := int64(cfg.Mesh().Nodes())
	wantFlits := int64(res.Accepted*float64(nodes)*float64(cfg.MeasureCycles) + 0.5)
	if got := col.Heatmap.TotalEjected(); got != wantFlits {
		t.Errorf("heatmap total %d, want %d (Accepted=%v over %d nodes x %d cycles)",
			got, wantFlits, res.Accepted, nodes, cfg.MeasureCycles)
	}
	if col.Heatmap.TotalEjected() == 0 {
		t.Fatal("heatmap counted nothing")
	}

	// The CSV grid section must re-total to the same number.
	var buf bytes.Buffer
	if err := col.Heatmap.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var gridTotal int64
	rows := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != cfg.Width {
			break // link section reached
		}
		for _, c := range cells {
			v, err := strconv.ParseInt(c, 10, 64)
			if err != nil {
				t.Fatalf("bad grid cell %q: %v", c, err)
			}
			gridTotal += v
		}
		rows++
	}
	if rows != cfg.Height {
		t.Errorf("grid has %d rows, want %d", rows, cfg.Height)
	}
	if gridTotal != wantFlits {
		t.Errorf("CSV grid total %d, want %d", gridTotal, wantFlits)
	}
	if !strings.Contains(buf.String(), "# directed links:") {
		t.Error("CSV missing link section")
	}
}

// TestHeatmapLinkFlowConservation sanity-checks the link section: every
// flit ejected somewhere must have crossed at least the ejection link, so
// total link flits >= total ejected flits.
func TestHeatmapLinkFlowConservation(t *testing.T) {
	_, col, cfg := runObserved(t)
	m := cfg.Mesh()
	var linkTotal, ejectLinks int64
	for id := 0; id < m.Nodes(); id++ {
		for d := topo.East; d <= topo.Local; d++ {
			f := col.Heatmap.LinkFlits(id, d)
			if f < 0 {
				t.Fatalf("negative link count at node %d dir %v", id, d)
			}
			linkTotal += f
			if d == topo.Local {
				ejectLinks += f
			}
		}
	}
	if linkTotal < col.Heatmap.TotalEjected() {
		t.Errorf("link total %d below ejected total %d", linkTotal, col.Heatmap.TotalEjected())
	}
	// Ejection-link traffic covers at least the window's ejected flits
	// (it also sees warmup-born packets draining through the window).
	if ejectLinks < col.Heatmap.TotalEjected() {
		t.Errorf("ejection links carried %d flits, below window ejections %d",
			ejectLinks, col.Heatmap.TotalEjected())
	}
}

// TestSamplerSeries checks the time-series counters: correct cadence,
// monotone cumulative counters, and a parseable CSV.
func TestSamplerSeries(t *testing.T) {
	_, col, cfg := runObserved(t)
	samples := col.Sampler.Samples()
	if len(samples) == 0 {
		t.Fatal("sampler recorded nothing")
	}
	nodes := cfg.Mesh().Nodes()
	if len(samples)%nodes != 0 {
		t.Errorf("%d samples not a multiple of %d routers", len(samples), nodes)
	}
	// Per (node) the cumulative counters never decrease over time.
	last := map[int]obs.RouterSample{}
	for _, s := range samples {
		if prev, ok := last[s.Node]; ok {
			if s.Cycle <= prev.Cycle {
				t.Fatalf("node %d: cycle went backwards %d -> %d", s.Node, prev.Cycle, s.Cycle)
			}
			if s.VCAllocFails < prev.VCAllocFails {
				t.Errorf("node %d: vc_alloc_fails decreased", s.Node)
			}
			for d := topo.East; d <= topo.Local; d++ {
				if s.Ports[d].LinkFlits < prev.Ports[d].LinkFlits {
					t.Errorf("node %d port %v: link_flits decreased", s.Node, d)
				}
				if s.Ports[d].XbarGrants < prev.Ports[d].XbarGrants {
					t.Errorf("node %d port %v: xbar_grants decreased", s.Node, d)
				}
			}
		}
		last[s.Node] = s
	}

	var buf bytes.Buffer
	if err := col.Sampler.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,node,port,buffer_occ,credit_stalls,xbar_grants,link_flits,vc_alloc_fails" {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	if want := len(samples)*int(topo.NumPorts) + 1; len(lines) != want {
		t.Errorf("CSV has %d lines, want %d", len(lines), want)
	}
}

// TestRuntimeStatsPopulated checks the simulator's self-metrics.
func TestRuntimeStatsPopulated(t *testing.T) {
	res, _, _ := runObserved(t)
	rt := res.Runtime
	if rt.Cycles <= 0 || rt.WallSeconds <= 0 {
		t.Fatalf("runtime stats empty: %+v", rt)
	}
	if rt.CyclesPerSec <= 0 || rt.FlitHops <= 0 || rt.FlitHopsPerSec <= 0 {
		t.Errorf("derived rates empty: %+v", rt)
	}
	if rt.String() == "" {
		t.Error("empty RuntimeStats.String")
	}
}

// TestDisabledObservability checks the zero-cost path wiring: no
// collector, and results identical to an observed run with the same seed.
func TestDisabledObservability(t *testing.T) {
	base := sim.DefaultConfig()
	base.Width, base.Height = 4, 4
	base.VCs = 4
	base.WarmupCycles = 200
	base.MeasureCycles = 400
	base.DrainCycles = 3000

	run := func(o obs.Options) *sim.Result {
		cfg := base
		cfg.Obs = o
		gen := &traffic.Generator{Pattern: traffic.Uniform{Nodes: cfg.Mesh().Nodes()},
			Rate: 0.2, Size: traffic.FixedSize(2)}
		s := sim.MustNew(cfg, gen)
		if o.Enabled() && s.Observability() == nil {
			t.Fatal("collector missing")
		}
		if !o.Enabled() && s.Observability() != nil {
			t.Fatal("collector present when disabled")
		}
		return s.Run()
	}
	off := run(obs.Options{})
	on := run(obs.Options{Trace: true, SamplePeriod: 25, Heatmap: true})
	// Observability must not perturb simulation behavior.
	if off.Accepted != on.Accepted || off.Measured != on.Measured ||
		off.P99 != on.P99 || off.BlockEvents != on.BlockEvents {
		t.Errorf("observability changed results:\noff: %v\non:  %v", off, on)
	}
}
