package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"nocsim/internal/router"
	"nocsim/internal/topo"
)

// EventKind labels one packet lifecycle stage transition.
type EventKind uint8

// Lifecycle event kinds, in the order a packet experiences them.
const (
	// EventInject: the head flit entered the network at the source
	// endpoint.
	EventInject EventKind = iota
	// EventRoute: the head flit reached the front of an input VC and its
	// route was computed (once per router).
	EventRoute
	// EventBlock: the packet failed VC allocation for the first
	// consecutive cycle at this router — the start of a blocking span.
	// FootprintVCs/BusyVCs snapshot the requested port's occupancy.
	EventBlock
	// EventGrant: the packet won output VC (Dir, VC); Waited is the
	// blocking-span length in cycles (0 = granted on the first attempt).
	EventGrant
	// EventHop: the head flit crossed the crossbar into output port Dir
	// on VC VC — one per hop, including the final ejection-port hop.
	EventHop
	// EventEject: the tail flit was consumed at the destination endpoint.
	EventEject
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInject:
		return "inject"
	case EventRoute:
		return "route"
	case EventBlock:
		return "vc-block"
	case EventGrant:
		return "vc-grant"
	case EventHop:
		return "hop"
	case EventEject:
		return "eject"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle transition. Dir, VC, Waited,
// FootprintVCs and BusyVCs are meaningful only for the kinds that set
// them (see the kind docs).
type Event struct {
	Cycle  int64          `json:"cycle"`
	Kind   EventKind      `json:"-"`
	Node   int            `json:"node"`
	Packet uint64         `json:"packet"`
	Src    int            `json:"src"`
	Dest   int            `json:"dest"`
	Dir    topo.Direction `json:"-"`
	VC     int            `json:"vc"`
	// Class is the granted VC's class at grant time (EventGrant only).
	Class        router.VCClass `json:"-"`
	Waited       int64          `json:"waited,omitempty"`
	FootprintVCs int            `json:"footprint_vcs,omitempty"`
	BusyVCs      int            `json:"busy_vcs,omitempty"`
}

// jsonEvent is Event with the enums rendered as strings for the JSONL
// exporter.
type jsonEvent struct {
	Kind string `json:"kind"`
	Event
	Dir     string `json:"dir"`
	VCClass string `json:"vc_class,omitempty"`
}

// Tracer records packet lifecycle events into a bounded ring buffer.
// When the buffer is full the oldest events are overwritten; Dropped
// reports how many were lost. The zero value is not usable; construct
// with NewTracer.
type Tracer struct {
	ring  []Event
	total uint64
}

// DefaultTraceCapacity bounds the tracer's ring buffer when the caller
// does not choose one (≈3 MB of events).
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer retaining the most recent capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// add appends one event, overwriting the oldest when full.
func (t *Tracer) add(e Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = e
	}
	t.total++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.ring) }

// Total returns the number of events observed, including dropped ones.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns the number of events overwritten by newer ones.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.ring)) }

// Events returns the retained events in chronological order. The slice
// is freshly allocated.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.ring))
	if t.total > uint64(cap(t.ring)) {
		// Ring wrapped: the oldest retained event sits at total % cap.
		start := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
		return out
	}
	return append(out, t.ring...)
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		je := jsonEvent{Kind: e.Kind.String(), Event: e, Dir: e.Dir.String()}
		if e.Kind == EventGrant {
			je.VCClass = e.Class.String()
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto and chrome://tracing load the JSON object {"traceEvents":[...]}.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object form of the Chrome trace format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained events in Chrome trace event
// format: one process per router (pid = node id), one track per packet
// (tid = packet id), one timestamp unit per simulated cycle. Blocking
// spans and hops become complete ("X") slices; injection, route
// computation and ejection become instant ("i") events. The output
// loads directly in Perfetto or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, e := range events {
		args := map[string]any{"packet": e.Packet, "src": e.Src, "dest": e.Dest}
		ce := chromeEvent{TS: e.Cycle, PID: e.Node, TID: e.Packet, Args: args}
		switch e.Kind {
		case EventInject:
			ce.Name, ce.Phase, ce.Scope = "inject", "i", "t"
		case EventRoute:
			ce.Name, ce.Phase, ce.Scope = "route", "i", "t"
			args["in"] = e.Dir.String()
		case EventBlock:
			ce.Name, ce.Phase, ce.Scope = "vc-block", "i", "t"
			args["out"] = e.Dir.String()
			args["footprint_vcs"] = e.FootprintVCs
			args["busy_vcs"] = e.BusyVCs
		case EventGrant:
			// Render the whole allocation wait as a slice ending at the
			// grant cycle; zero-wait grants get a 1-cycle sliver.
			dur := e.Waited
			if dur < 1 {
				dur = 1
			}
			ce.Name, ce.Phase = "vc-alloc", "X"
			ce.TS, ce.Dur = e.Cycle-e.Waited, dur
			args["out"] = e.Dir.String()
			args["vc"] = e.VC
			args["vc_class"] = e.Class.String()
			args["waited"] = e.Waited
		case EventHop:
			ce.Name, ce.Phase, ce.Dur = "hop "+e.Dir.String(), "X", 1
			args["vc"] = e.VC
		case EventEject:
			ce.Name, ce.Phase, ce.Scope = "eject", "i", "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
