package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

func TestWatchdogPrimesTripsAndRearms(t *testing.T) {
	wd := obs.NewWatchdog(100, nil)
	if rep := wd.Beat(0, 5, 10); rep != nil {
		t.Fatal("tripped on priming beat")
	}
	if rep := wd.Beat(50, 5, 10); rep != nil {
		t.Fatal("tripped inside the window")
	}
	rep := wd.Beat(100, 5, 10)
	if rep == nil {
		t.Fatal("did not trip after a full zero-progress window")
	}
	if rep.Cycle != 100 || rep.SinceCycle != 0 || rep.InFlight != 5 {
		t.Errorf("report = %+v", rep)
	}
	if rep := wd.Beat(150, 5, 10); rep != nil {
		t.Fatal("tripped twice for the same stall")
	}
	// Progress re-arms it.
	if rep := wd.Beat(200, 5, 11); rep != nil {
		t.Fatal("tripped on a progress beat")
	}
	if rep := wd.Beat(350, 5, 11); rep == nil {
		t.Fatal("did not trip after re-arming")
	}
	if wd.Stalls() != 2 {
		t.Errorf("Stalls = %d, want 2", wd.Stalls())
	}
}

func TestWatchdogIgnoresEmptyFabric(t *testing.T) {
	wd := obs.NewWatchdog(10, nil)
	for now := int64(0); now < 1000; now += 10 {
		if rep := wd.Beat(now, 0, 7); rep != nil {
			t.Fatal("tripped with zero packets in flight")
		}
	}
}

// TestWatchdogWedgedNetwork wedges a 2x2 fabric — every node floods node
// 3, whose endpoint never consumes — and checks the full integration: the
// simulation's heartbeat trips the watchdog, marks the result stalled,
// reports to the hub, and dumps a stall snapshot whose blocked-on chains
// name at least one blocked VC.
func TestWatchdogWedgedNetwork(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stall.json")
	hub := obs.NewHub()
	cfg := sim.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCs = 2
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 200
	cfg.DrainCycles = 4000
	cfg.SlowEndpoints = map[int]int{3: 1 << 30} // consumes only at cycle 0
	cfg.Monitor = hub
	cfg.WatchdogCycles = 400
	cfg.WatchdogOut = out
	gen := &traffic.Generator{
		Nodes:   []int{0, 1, 2},
		Pattern: traffic.Permutation{Label: "wedge", Flows: map[int]int{0: 3, 1: 3, 2: 3}},
		Rate:    1,
	}
	res := sim.MustNew(cfg, gen).Run()

	if !res.Stalled {
		t.Fatal("wedged run not flagged as stalled")
	}
	if res.Stable {
		t.Error("wedged run reported stable")
	}
	if hub.Stalls() == 0 {
		t.Error("stall not reported to the hub")
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("stall snapshot not written: %v", err)
	}
	var rep obs.StallReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("stall snapshot not valid JSON: %v", err)
	}
	if rep.InFlight == 0 || rep.Cycle-rep.SinceCycle < rep.Window {
		t.Errorf("implausible report: %+v", rep)
	}
	snap := rep.Snapshot
	if snap == nil {
		t.Fatal("stall report carries no fabric snapshot")
	}
	if snap.BlockedVCs == 0 {
		t.Error("wedged fabric snapshot shows no blocked VCs")
	}
	if len(snap.Chains) == 0 {
		t.Fatal("wedged fabric snapshot names no blocked-on chains")
	}
	c := snap.Chains[0]
	if len(c.Links) == 0 {
		t.Fatal("first chain is empty")
	}
	for _, l := range c.Links {
		if l.Reason != "vc-alloc" && l.Reason != "no-credit" {
			t.Errorf("chain link has unknown reason %q", l.Reason)
		}
		if l.Dest != 3 {
			t.Errorf("chain link blocked on unexpected destination %d", l.Dest)
		}
	}
	switch c.Terminal {
	case "ejection-stalled", "cycle":
	default:
		t.Errorf("wedge chain terminal = %q, want ejection-stalled or cycle:\n%s",
			c.Terminal, snap.Summary())
	}
	// The stderr summary names the stall and its chains.
	if s := rep.Summary(); s == "" || !json.Valid(data) {
		t.Errorf("empty summary for %+v", rep)
	}
}
