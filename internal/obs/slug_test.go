package obs_test

import (
	"testing"

	"nocsim/internal/obs"
)

func TestSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Figure 5 uniform/footprint rate=0.300", "figure-5-uniform-footprint-rate-0.300"},
		{"dbar+xordet", "dbar-xordet"},
		{"---x---", "x"},
		{"", ""},
		{"UPPER lower 42", "upper-lower-42"},
	}
	for _, c := range cases {
		if got := obs.Slug(c.in); got != c.want {
			t.Errorf("Slug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSuffixPath(t *testing.T) {
	cases := []struct{ base, id, want string }{
		{"counters.csv", "uniform rate=0.30", "counters_uniform-rate-0.30.csv"},
		{"dumps/stall.json", "Figure 9 dbar", "dumps/stall_figure-9-dbar.json"},
		{"noext", "id", "noext_id"},
	}
	for _, c := range cases {
		if got := obs.SuffixPath(c.base, c.id); got != c.want {
			t.Errorf("SuffixPath(%q, %q) = %q, want %q", c.base, c.id, got, c.want)
		}
	}
}
