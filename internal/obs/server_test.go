package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

// monitoredSim builds a small uniform-traffic simulation publishing into
// hub, to be stepped manually between scrapes.
func monitoredSim(t *testing.T, hub *obs.Hub) *sim.Simulation {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.VCs = 4
	cfg.Monitor = hub
	cfg.RunLabel = "server-test"
	gen := &traffic.Generator{
		Pattern: traffic.Uniform{Nodes: 16},
		Rate:    0.3,
		Size:    traffic.FixedSize(1),
	}
	return sim.MustNew(cfg, gen)
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// metricValue extracts the first sample value of family name.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + name + `(?:\{[^}]*\})? (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestServerLiveScrapes drives a simulation between two /metrics scrapes
// and checks the gauges move — the "is it alive" property the endpoints
// exist for — then exercises /status and /snapshot against the same hub.
func TestServerLiveScrapes(t *testing.T) {
	hub := obs.NewHub()
	ts := httptest.NewServer(obs.Handler(hub))
	defer ts.Close()
	s := monitoredSim(t, hub)

	// Two heartbeats' worth of cycles (beat period 128).
	for i := 0; i < 260; i++ {
		s.Step()
	}
	code, body1, ctype := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Errorf("/metrics content type %q, want %q", ctype, want)
	}
	cycles1 := metricValue(t, body1, "nocsim_cycles_total")
	hops1 := metricValue(t, body1, "nocsim_flit_hops_total")
	if cycles1 == 0 || hops1 == 0 {
		t.Fatalf("no progress visible after 260 cycles: cycles=%v hops=%v", cycles1, hops1)
	}

	for i := 0; i < 512; i++ {
		s.Step()
	}
	_, body2, _ := get(t, ts.URL+"/metrics")
	cycles2 := metricValue(t, body2, "nocsim_cycles_total")
	hops2 := metricValue(t, body2, "nocsim_flit_hops_total")
	if cycles2 <= cycles1 || hops2 <= hops1 {
		t.Errorf("gauges frozen between scrapes: cycles %v -> %v, hops %v -> %v",
			cycles1, cycles2, hops1, hops2)
	}
	if inflight := metricValue(t, body2, "nocsim_packets_in_flight"); inflight < 0 {
		t.Errorf("negative in-flight gauge %v", inflight)
	}

	// /status carries the run, its label and live progress.
	code, body, ctype := get(t, ts.URL+"/status")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/status status %d type %q", code, ctype)
	}
	var st obs.StatusReport
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if st.Active != 1 || len(st.Runs) != 1 {
		t.Fatalf("status runs = %+v", st)
	}
	run := st.Runs[0]
	if run.Label != "server-test" || run.Cycle == 0 || run.InFlight < 0 {
		t.Errorf("run status = %+v", run)
	}

	// /snapshot serves the latest published fabric dump.
	hub.PublishSnapshot(obs.Capture(s.Network()))
	code, body, ctype = get(t, ts.URL+"/snapshot")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/snapshot status %d type %q", code, ctype)
	}
	var snap obs.FabricSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Width != 4 || snap.Height != 4 || len(snap.Routers) != 16 {
		t.Errorf("snapshot = %dx%d with %d routers", snap.Width, snap.Height, len(snap.Routers))
	}

	// Index and 404.
	if code, body, _ := get(t, ts.URL+"/"); code != http.StatusOK || body == "" {
		t.Errorf("index status %d", code)
	}
	if code, _, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

// TestSnapshotRequestAnsweredByHeartbeat checks the /snapshot handshake:
// a pending request is fulfilled by the stepping goroutine's next beat.
func TestSnapshotRequestAnsweredByHeartbeat(t *testing.T) {
	hub := obs.NewHub()
	s := monitoredSim(t, hub)
	for i := 0; i < 130; i++ {
		s.Step()
	}
	done := make(chan *obs.FabricSnapshot, 1)
	go func() { done <- hub.RequestSnapshot(10e9) }()
	// Step until the pending request is answered at a heartbeat.
	for i := 0; i < 4096; i++ {
		s.Step()
		select {
		case snap := <-done:
			if snap == nil {
				t.Error("RequestSnapshot returned nil despite heartbeat")
			}
			return
		default:
		}
	}
	t.Fatal("snapshot request never answered by the heartbeat")
}

func TestStartServerBindsAndServes(t *testing.T) {
	hub := obs.NewHub()
	srv, err := obs.StartServer("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, "http://"+srv.Addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if v := metricValue(t, body, "nocsim_runs_active"); v != 0 {
		t.Errorf("idle hub reports %v active runs", v)
	}
}
