package obs

import (
	"strings"
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/router"
)

// TestAnatomyDecomposition drives the collector with a hand-written event
// sequence and checks every component charge, the telescoping identity
// (components partition Eject−Born exactly), and the decision aggregates.
func TestAnatomyDecomposition(t *testing.T) {
	a := NewAnatomyCollector(0, 0)
	a.OpenWindow(100, 200)

	p := &flit.Packet{ID: 1, Born: 100, Dest: 5}

	// Source queue 100→103, then two hops and ejection at 115.
	a.onInject(103, p)
	a.onRoute(106, p)                             // route-wait 2, link 1
	a.onGrant(108, p, router.VCClassIdle, 2)      // vc-wait-idle 2
	a.onHeadTraverse(109, p)                      // switch-wait 1
	a.onRoute(111, p)                             // route-wait 1, link 1
	a.onGrant(111, p, router.VCClassFootprint, 0) // vc-wait-footprint 0
	a.onHeadTraverse(112, p)                      // switch-wait 1
	a.onDecision(p, router.Decision{
		MinimalPorts: 2, OfferedPorts: 1, AdmissibleVCs: 18, OfferedVCs: 9,
		FootprintVCs: 3, IdleVCs: 6, EscapeRequested: true, MinimalProgress: true,
	})
	a.onEject(115, p) // serialization 3, latency 15

	agg := a.Aggregate()
	want := Anatomy{
		Packets: 1, Hops: 2,
		SrcQueueCycles:      3,
		RouteWaitCycles:     3,
		SwitchWaitCycles:    2,
		LinkCycles:          2,
		SerializationCycles: 3,
		LatencyCycles:       15,
		Decisions:           1,
		MinimalPortsSum:     2, OfferedPortsSum: 1,
		AdmissibleVCsSum: 18, OfferedVCsSum: 9,
		FootprintVCsSum: 3, IdleVCsSum: 6,
		EscapeDecisions: 1, MinimalDecisions: 1,
	}
	want.VCWaitCycles[router.VCClassIdle] = 2
	want.VCWaitCycles[router.VCClassFootprint] = 0
	want.Grants[router.VCClassIdle] = 1
	want.Grants[router.VCClassFootprint] = 1
	if *agg != want {
		t.Errorf("aggregate mismatch:\ngot  %+v\nwant %+v", *agg, want)
	}

	var sum int64
	for _, c := range agg.Components() {
		sum += c.Cycles
	}
	if sum != agg.LatencyCycles {
		t.Errorf("components sum to %d, want LatencyCycles %d", sum, agg.LatencyCycles)
	}
	if got := agg.PortAdaptivenessExercised(); got != 0.5 {
		t.Errorf("PortAdaptivenessExercised = %v, want 0.5", got)
	}
	if got := agg.VCAdaptivenessExercised(); got != 0.5 {
		t.Errorf("VCAdaptivenessExercised = %v, want 0.5", got)
	}
}

// TestAnatomyMeasuredPopulationGate checks that packets born outside the
// measurement window — and events before the window opens — leave no
// trace in the aggregate, so the anatomy describes exactly the measured
// population.
func TestAnatomyMeasuredPopulationGate(t *testing.T) {
	a := NewAnatomyCollector(0, 0)

	early := &flit.Packet{ID: 1, Born: 10}
	a.onInject(12, early) // window not open yet
	a.OpenWindow(100, 200)
	late := &flit.Packet{ID: 2, Born: 250}
	a.onInject(252, late) // born after the window closes
	a.onRoute(255, late)
	a.onGrant(256, late, router.VCClassBusy, 1)
	a.onHeadTraverse(257, late)
	a.onDecision(late, router.Decision{MinimalPorts: 2, OfferedPorts: 2})
	a.onEject(260, late)

	if agg := a.Aggregate(); *agg != (Anatomy{}) {
		t.Errorf("unmeasured packets leaked into the aggregate: %+v", *agg)
	}
}

// TestAnatomyFormatAndCSV smoke-tests the exporters on a populated
// aggregate: the table carries the headline numbers and the CSV carries
// one metric,value row per field.
func TestAnatomyFormatAndCSV(t *testing.T) {
	a := NewAnatomyCollector(0, 0)
	a.OpenWindow(0, 1000)
	p := &flit.Packet{ID: 7, Born: 0}
	a.onInject(1, p)
	a.onRoute(3, p)
	a.onGrant(4, p, router.VCClassEscape, 1)
	a.onHeadTraverse(5, p)
	a.onEject(6, p)

	agg := a.Aggregate()
	var tbl strings.Builder
	agg.Format(&tbl)
	for _, want := range []string{"latency anatomy: 1 packets", "vc-wait-escape", "vc grants by class:"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("Format output missing %q:\n%s", want, tbl.String())
		}
	}

	var csv strings.Builder
	if err := agg.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"metric,value\n", "packets,1\n", "latency_cycles,6\n", "grants_escape,1\n"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("WriteCSV output missing %q:\n%s", want, csv.String())
		}
	}

	var series strings.Builder
	if err := a.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	if got := series.String(); got != "cycle,allocated_vcs,owned_vcs,idle_vcs,trees,largest_tree\n" {
		t.Errorf("WriteSeriesCSV with no samples = %q, want header only", got)
	}
}

// TestVCClassStrings pins the enum's exporter vocabulary (CSV columns,
// Prometheus label values) against accidental renames.
func TestVCClassStrings(t *testing.T) {
	want := map[router.VCClass]string{
		router.VCClassIdle:      "idle",
		router.VCClassFootprint: "footprint",
		router.VCClassBusy:      "busy",
		router.VCClassEscape:    "escape",
	}
	if len(want) != router.NumVCClasses {
		t.Fatalf("test covers %d classes, enum has %d", len(want), router.NumVCClasses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("VCClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
