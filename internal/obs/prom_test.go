package obs_test

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

func TestPromWriterLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := obs.NewPromWriter(&buf)
	p.Family("m_total", "help with \\ backslash\nand newline", "counter")
	p.Sample("m_total", []obs.PromLabel{{Name: "run", Value: "we\"ird\\label\nnl"}}, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP m_total help with \\ backslash\nand newline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `run="we\"ird\\label\nnl"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("raw newline leaked into exposition:\n%q", out)
	}
}

func TestPromWriterRejectsDuplicateFamily(t *testing.T) {
	p := obs.NewPromWriter(&bytes.Buffer{})
	p.Family("m", "a", "gauge")
	p.Family("m", "b", "gauge")
	if p.Err() == nil {
		t.Error("duplicate family not rejected")
	}
}

func TestPromWriterRejectsUndeclaredSample(t *testing.T) {
	p := obs.NewPromWriter(&bytes.Buffer{})
	p.Sample("never_declared", nil, 1)
	if p.Err() == nil {
		t.Error("sample without HELP/TYPE header not rejected")
	}
}

func TestPromWriterValueFormats(t *testing.T) {
	var buf bytes.Buffer
	p := obs.NewPromWriter(&buf)
	p.Family("m", "values", "gauge")
	p.Sample("m", []obs.PromLabel{{Name: "k", Value: "nan"}}, math.NaN())
	p.Sample("m", []obs.PromLabel{{Name: "k", Value: "inf"}}, math.Inf(1))
	p.Sample("m", []obs.PromLabel{{Name: "k", Value: "int"}}, 42)
	p.Sample("m", []obs.PromLabel{{Name: "k", Value: "frac"}}, 0.125)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "nan") {
		t.Errorf("NaN sample should be skipped:\n%s", out)
	}
	for _, want := range []string{`m{k="inf"} +Inf`, `m{k="int"} 42`, `m{k="frac"} 0.125`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	promLabelsRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*")*$`)
)

// TestMetricsExpositionLint renders a live hub's /metrics payload and
// lints it against the text exposition format: every sample belongs to a
// family declared by exactly one # HELP and one # TYPE line (HELP first),
// label syntax is well-formed, and every value parses.
func TestMetricsExpositionLint(t *testing.T) {
	hub := obs.NewHub()
	hub.AddPlan(1)
	cfg := sim.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.VCs = 4
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 300
	cfg.DrainCycles = 2000
	cfg.Monitor = hub
	cfg.RunLabel = `lint "run" with\specials` // exercised through label escaping
	gen := &traffic.Generator{
		Pattern: traffic.Uniform{Nodes: 16},
		Rate:    0.2,
		Size:    traffic.FixedSize(1),
	}
	s := sim.MustNew(cfg, gen)
	res := s.Run()
	if res.Stalled {
		t.Fatal("benign run flagged as stalled")
	}

	var buf bytes.Buffer
	if err := hub.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	helped := map[string]bool{}
	typed := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(buf.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed HELP %q", i+1, line)
			}
			if helped[parts[0]] {
				t.Fatalf("line %d: duplicate HELP for %s", i+1, parts[0])
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || (parts[1] != "gauge" && parts[1] != "counter") {
				t.Fatalf("line %d: malformed TYPE %q", i+1, line)
			}
			if !helped[parts[0]] {
				t.Fatalf("line %d: TYPE before HELP for %s", i+1, parts[0])
			}
			if typed[parts[0]] {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, parts[0])
			}
			typed[parts[0]] = true
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", i+1, line)
			}
			if !typed[m[1]] {
				t.Fatalf("line %d: sample for undeclared family %s", i+1, m[1])
			}
			if m[2] != "" && !promLabelsRe.MatchString(m[2]) {
				t.Fatalf("line %d: malformed labels %q", i+1, m[2])
			}
			if v := m[3]; v != "+Inf" && v != "-Inf" {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: unparsable value %q", i+1, v)
				}
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("exposition carried no samples")
	}
	for _, want := range []string{
		"nocsim_runs_completed_total", "nocsim_cycles_total",
		"nocsim_router_buffer_occupancy", "nocsim_router_link_flits_total",
	} {
		if !typed[want] {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}
