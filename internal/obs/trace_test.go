package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"nocsim/internal/topo"
)

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		tr.add(Event{Cycle: i, Kind: EventHop, Packet: uint64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Events()
	for i, e := range events {
		if want := int64(6 + i); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (chronological order after wrap)", i, e.Cycle, want)
		}
	}
}

func TestTracerNoWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := int64(0); i < 3; i++ {
		tr.add(Event{Cycle: i})
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("Events len = %d, want 3", len(events))
	}
	for i, e := range events {
		if e.Cycle != int64(i) {
			t.Errorf("event %d out of order: cycle %d", i, e.Cycle)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.ring) != DefaultTraceCapacity {
		t.Errorf("cap = %d, want %d", cap(tr.ring), DefaultTraceCapacity)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(16)
	tr.add(Event{Cycle: 5, Kind: EventInject, Node: 1, Packet: 42, Src: 1, Dest: 9})
	tr.add(Event{Cycle: 8, Kind: EventGrant, Node: 1, Packet: 42, Src: 1, Dest: 9,
		Dir: topo.East, VC: 3, Waited: 2})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "inject" || lines[1]["kind"] != "vc-grant" {
		t.Errorf("kinds = %v, %v", lines[0]["kind"], lines[1]["kind"])
	}
	if lines[1]["dir"] != topo.East.String() {
		t.Errorf("dir = %v, want %v", lines[1]["dir"], topo.East.String())
	}
	if lines[1]["waited"] != float64(2) {
		t.Errorf("waited = %v, want 2", lines[1]["waited"])
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	tr := NewTracer(16)
	tr.add(Event{Cycle: 5, Kind: EventInject, Node: 1, Packet: 42, Src: 1, Dest: 9})
	tr.add(Event{Cycle: 9, Kind: EventGrant, Node: 1, Packet: 42, Src: 1, Dest: 9,
		Dir: topo.East, VC: 3, Waited: 4})
	tr.add(Event{Cycle: 9, Kind: EventHop, Node: 1, Packet: 42, Src: 1, Dest: 9,
		Dir: topo.East, VC: 3})
	tr.add(Event{Cycle: 12, Kind: EventEject, Node: 9, Packet: 42, Src: 1, Dest: 9})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(f.TraceEvents))
	}
	for i, ce := range f.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ce[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, ce)
			}
		}
	}
	// The grant renders as a complete slice spanning the blocking wait.
	grant := f.TraceEvents[1]
	if grant["ph"] != "X" || grant["ts"] != float64(5) || grant["dur"] != float64(4) {
		t.Errorf("grant slice = ph %v ts %v dur %v, want X 5 4",
			grant["ph"], grant["ts"], grant["dur"])
	}
}

func TestSamplerBounds(t *testing.T) {
	s := NewSampler(0, 0)
	if s.Period() != 1 {
		t.Errorf("period clamped to %d, want 1", s.Period())
	}
	if s.maxRows != DefaultSampleRows {
		t.Errorf("maxRows = %d, want default", s.maxRows)
	}
}

func TestOptionsEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Error("zero Options must be disabled")
	}
	for _, o := range []Options{{Trace: true}, {SamplePeriod: 10}, {Heatmap: true}} {
		if !o.Enabled() {
			t.Errorf("%+v should be enabled", o)
		}
	}
	if NewCollector(Options{}) != nil {
		t.Error("disabled options must yield a nil collector")
	}
}
