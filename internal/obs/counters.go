package obs

import (
	"fmt"
	"io"

	"nocsim/internal/network"
	"nocsim/internal/topo"
)

// PortCounters is one port's slice of a RouterSample. The counters are
// cumulative since network construction; consumers diff consecutive
// samples of the same (node, port) for per-interval rates.
type PortCounters struct {
	// BufferOcc is the instantaneous flit count buffered at the input
	// port (a gauge, not cumulative).
	BufferOcc int
	// CreditStalls is the cumulative VC-cycles the output port stalled
	// active upstream VCs for lack of downstream credits.
	CreditStalls int64
	// XbarGrants is the cumulative crossbar grants won by the output
	// port.
	XbarGrants int64
	// LinkFlits is the cumulative flits sent through the output port.
	LinkFlits int64
}

// RouterSample is one router's counters at one sample point.
type RouterSample struct {
	Cycle int64
	Node  int
	// VCAllocFails is the router's cumulative VC-allocation failure
	// count (head packets denied per cycle).
	VCAllocFails int64
	Ports        [topo.NumPorts]PortCounters
}

// DefaultSampleRows bounds the sampler's memory when the caller does not
// choose a limit: at an 8×8 mesh this is ~1500 sample points per router.
const DefaultSampleRows = 100000

// Sampler collects per-router/per-port time-series counters on a fixed
// cycle period. Construct with NewSampler; the Collector drives Sample.
type Sampler struct {
	period  int64
	maxRows int
	samples []RouterSample
	// dropped counts samples discarded after the row bound was reached.
	dropped int64
}

// NewSampler returns a sampler recording every period cycles, retaining
// at most maxRows router-samples (DefaultSampleRows when maxRows <= 0).
func NewSampler(period int64, maxRows int) *Sampler {
	if period < 1 {
		period = 1
	}
	if maxRows <= 0 {
		maxRows = DefaultSampleRows
	}
	return &Sampler{period: period, maxRows: maxRows}
}

// Period returns the sampling period in cycles.
func (s *Sampler) Period() int64 { return s.period }

// Dropped returns the number of router-samples discarded after the row
// bound was exhausted (oldest samples are kept; sampling stops).
func (s *Sampler) Dropped() int64 { return s.dropped }

// Samples returns the collected rows, oldest first.
func (s *Sampler) Samples() []RouterSample { return s.samples }

// Sample records every router's counters at cycle now.
func (s *Sampler) Sample(now int64, net *network.Network) {
	for id := 0; id < net.Nodes(); id++ {
		if len(s.samples) >= s.maxRows {
			s.dropped++
			continue
		}
		r := net.Router(id)
		rs := RouterSample{Cycle: now, Node: id, VCAllocFails: r.VCAllocFailures()}
		for d := topo.East; d <= topo.Local; d++ {
			rs.Ports[d] = PortCounters{
				BufferOcc:    r.InputBufferOccupancy(d),
				CreditStalls: r.CreditStalls(d),
				XbarGrants:   r.CrossbarGrants(d),
				LinkFlits:    r.OutputFlits(d),
			}
		}
		s.samples = append(s.samples, rs)
	}
}

// WriteCSV writes the time series as one row per (cycle, node, port):
//
//	cycle,node,port,buffer_occ,credit_stalls,xbar_grants,link_flits,vc_alloc_fails
//
// The counter columns are cumulative; vc_alloc_fails is per-router and
// repeated on each of the router's port rows.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,node,port,buffer_occ,credit_stalls,xbar_grants,link_flits,vc_alloc_fails"); err != nil {
		return err
	}
	for _, rs := range s.samples {
		for d := topo.East; d <= topo.Local; d++ {
			pc := rs.Ports[d]
			if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d,%d,%d\n",
				rs.Cycle, rs.Node, d, pc.BufferOcc, pc.CreditStalls, pc.XbarGrants, pc.LinkFlits, rs.VCAllocFails); err != nil {
				return err
			}
		}
	}
	return nil
}
