package obs

import (
	"strings"
	"testing"
	"time"

	"nocsim/internal/network"
	"nocsim/internal/prof"
)

// tickClock returns a fake prof.Clock advancing step per call, making
// phase attribution exactly predictable.
func tickClock(step time.Duration) prof.Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestPhaseProfilerSampling(t *testing.T) {
	p := NewPhaseProfiler(4, tickClock(time.Nanosecond))
	for now := int64(0); now < 12; now++ {
		if got, want := p.BeginCycle(now), now%4 == 0; got != want {
			t.Fatalf("BeginCycle(%d) = %v, want %v", now, got, want)
		}
		if now%4 == 0 {
			p.BeginPhase(network.PhaseRouteCompute)
			p.EndCycle()
		}
	}
	if pp := p.Profile(); pp.SampledCycles != 3 || pp.SampleEvery != 4 {
		t.Fatalf("sampled %d cycles every %d, want 3 every 4", pp.SampledCycles, pp.SampleEvery)
	}
}

func TestPhaseProfilerDefaults(t *testing.T) {
	p := NewPhaseProfiler(0, nil)
	if p.SampleEvery() != DefaultProfileEvery {
		t.Fatalf("SampleEvery = %d, want %d", p.SampleEvery(), DefaultProfileEvery)
	}
}

// TestPhaseProfilerAttribution drives one sampled cycle by hand with a
// clock advancing 10ns per reading and checks each phase gets exactly
// the span between its begin and the next mark.
func TestPhaseProfilerAttribution(t *testing.T) {
	p := NewPhaseProfiler(2, tickClock(10*time.Nanosecond))
	if p.BeginCycle(1) {
		t.Fatal("cycle 1 should not be sampled at every=2")
	}
	if !p.BeginCycle(2) {
		t.Fatal("cycle 2 should be sampled at every=2")
	}
	p.BeginPhase(network.PhaseRouteCompute) // span opens at t+20
	p.BeginPhase(network.PhaseVCAlloc)      // route-compute gets 10ns
	p.BeginPhase(network.PhaseSwitchAlloc)  // vc-alloc gets 10ns
	p.EndCycle()                            // switch-alloc gets 10ns

	pp := p.Profile()
	if pp.SampledCycles != 1 {
		t.Fatalf("SampledCycles = %d, want 1", pp.SampledCycles)
	}
	if len(pp.Phases) != network.NumPhases {
		t.Fatalf("got %d phases, want %d", len(pp.Phases), network.NumPhases)
	}
	want := map[string]int64{
		"route-compute":  10,
		"vc-alloc":       10,
		"switch-alloc":   10,
		"link-traversal": 0,
		"inject-eject":   0,
	}
	var totalShare float64
	for _, ph := range pp.Phases {
		if ph.Nanos != want[ph.Phase] {
			t.Errorf("%s: %dns, want %dns", ph.Phase, ph.Nanos, want[ph.Phase])
		}
		totalShare += ph.TimeShare
	}
	if totalShare < 0.999 || totalShare > 1.001 {
		t.Errorf("time shares sum to %f, want 1", totalShare)
	}
	// Phases come back in pipeline order so displays never shuffle.
	if pp.Phases[0].Phase != "route-compute" || pp.Phases[4].Phase != "inject-eject" {
		t.Errorf("phases out of pipeline order: %v", pp.Phases)
	}
}

// TestPhaseProfilerReentersPhase checks the inject-eject pattern: the
// same phase begun twice in one cycle accumulates both spans.
func TestPhaseProfilerReentersPhase(t *testing.T) {
	p := NewPhaseProfiler(1, tickClock(10*time.Nanosecond))
	p.BeginCycle(0)
	p.BeginPhase(network.PhaseInjectEject)
	p.BeginPhase(network.PhaseInjectEject)
	p.EndCycle()
	for _, ph := range p.Snapshot() {
		if ph.Phase == "inject-eject" && ph.Nanos != 20 {
			t.Fatalf("re-entered phase accumulated %dns, want 20ns", ph.Nanos)
		}
	}
}

func TestPerfProfileString(t *testing.T) {
	pp := &PerfProfile{
		SampleEvery:   64,
		SampledCycles: 19,
		Phases:        []PhaseStats{{Phase: "vc-alloc", TimeShare: 0.5}},
	}
	got := pp.String()
	for _, want := range []string{"19 sampled", "every 64", "vc-alloc 50.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
