package obs

import (
	"fmt"
	"io"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/topo"
)

// Heatmap accumulates per-link flit counts and per-node ejected-flit
// counts over an observation window — the data behind the CSV link
// heatmaps. The window is opened and closed by the simulation around its
// measurement phase, so the node totals reconcile exactly with the
// run's Accepted throughput.
type Heatmap struct {
	start, end int64
	open       bool
	closed     bool

	// base/final snapshot per-port cumulative link flit counts at window
	// open/close, indexed [node*NumPorts + dir].
	base, final []int64
	// nodeEject counts flits of packets whose tail was consumed at each
	// node within the window — the same accounting the simulation uses
	// for Accepted.
	nodeEject []int64

	mesh topo.Mesh
}

// NewHeatmap returns an idle heatmap; OpenWindow arms it.
func NewHeatmap() *Heatmap { return &Heatmap{} }

// OpenWindow snapshots the fabric's link counters and starts counting
// ejections for cycles in [start, end).
func (h *Heatmap) OpenWindow(net *network.Network, mesh topo.Mesh, start, end int64) {
	P := topo.NumPorts
	h.mesh = mesh
	h.start, h.end = start, end
	h.open, h.closed = true, false
	h.base = make([]int64, net.Nodes()*P)
	h.nodeEject = make([]int64, net.Nodes())
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			h.base[id*P+int(d)] = r.OutputFlits(d)
		}
	}
}

// CloseWindow snapshots the link counters again; the per-link loads are
// the deltas against OpenWindow.
func (h *Heatmap) CloseWindow(net *network.Network) {
	if !h.open {
		return
	}
	P := topo.NumPorts
	h.final = make([]int64, len(h.base))
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			h.final[id*P+int(d)] = r.OutputFlits(d)
		}
	}
	h.closed = true
}

// onEject counts an ejected packet's flits when the ejection falls in
// the window.
func (h *Heatmap) onEject(now int64, p *flit.Packet) {
	if h.open && now >= h.start && now < h.end {
		h.nodeEject[p.Dest] += int64(p.Size)
	}
}

// Cycles returns the window length.
func (h *Heatmap) Cycles() int64 { return h.end - h.start }

// NodeEjected returns the flits ejected at node within the window.
func (h *Heatmap) NodeEjected(node int) int64 { return h.nodeEject[node] }

// TotalEjected returns the flits ejected fabric-wide within the window;
// it equals Result.Accepted × nodes × measurement cycles.
func (h *Heatmap) TotalEjected() int64 {
	var total int64
	for _, n := range h.nodeEject {
		total += n
	}
	return total
}

// LinkFlits returns the flits node sent through output port d during the
// window (0 before CloseWindow).
func (h *Heatmap) LinkFlits(node int, d topo.Direction) int64 {
	if !h.closed {
		return 0
	}
	i := node*topo.NumPorts + int(d)
	return h.final[i] - h.base[i]
}

// WriteCSV renders the heatmap. The file has two sections introduced by
// '#' comment lines:
//
//  1. a mesh_height × mesh_width grid of flits ejected per node
//     (row-major, matching the paper's node numbering) whose total
//     reconciles with Result.Accepted, and
//  2. one row per directed link — from,to,dir,flits,flits_per_cycle —
//     including each node's ejection link (dir L, to = the node itself).
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if !h.closed {
		return fmt.Errorf("obs: heatmap window not closed")
	}
	m := h.mesh
	cycles := h.Cycles()
	if _, err := fmt.Fprintf(w, "# nocsim heatmap, %dx%d mesh, window [%d,%d) = %d cycles\n",
		m.Width, m.Height, h.start, h.end, cycles); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# ejected flits per node, %d rows x %d cols (total %d)\n",
		m.Height, m.Width, h.TotalEjected()); err != nil {
		return err
	}
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			sep := ","
			if x == m.Width-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%d%s", h.nodeEject[m.Node(topo.Coord{X: x, Y: y})], sep); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, "# directed links: from,to,dir,flits,flits_per_cycle"); err != nil {
		return err
	}
	for id := 0; id < m.Nodes(); id++ {
		for d := topo.East; d <= topo.Local; d++ {
			to := id
			if d != topo.Local {
				nb, ok := m.Neighbor(id, d)
				if !ok {
					continue
				}
				to = nb
			}
			flits := h.LinkFlits(id, d)
			perCycle := 0.0
			if cycles > 0 {
				perCycle = float64(flits) / float64(cycles)
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%.4f\n", id, to, d, flits, perCycle); err != nil {
				return err
			}
		}
	}
	return nil
}
