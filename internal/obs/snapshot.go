package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"nocsim/internal/network"
	"nocsim/internal/router"
	"nocsim/internal/topo"
)

// InputVCSnap is one non-idle input virtual channel in a fabric snapshot.
type InputVCSnap struct {
	Port     string `json:"port"`
	VC       int    `json:"vc"`
	State    string `json:"state"` // routing | active
	Buffered int    `json:"buffered"`
	PacketID uint64 `json:"packet,omitempty"`
	Dest     int    `json:"dest"`
	// Blocked is the consecutive cycles the head packet has failed VC
	// allocation (routing state).
	Blocked int64 `json:"blocked,omitempty"`
	// ReqPort is the output port the blocked packet requested (routing
	// state, once routed).
	ReqPort string `json:"req_port,omitempty"`
	// OutPort/OutVC are the granted output VC (active state).
	OutPort string `json:"out_port,omitempty"`
	OutVC   int    `json:"out_vc,omitempty"`
	// CreditStalled marks an active VC with buffered flits whose output
	// VC has no downstream credits: backpressure from the next hop.
	CreditStalled bool `json:"credit_stalled,omitempty"`
}

// OutputVCSnap is one non-idle output virtual channel in a fabric
// snapshot. Footprint marks a VC currently occupied by packets of a
// single destination — the paper's footprint channel class.
type OutputVCSnap struct {
	Port            string `json:"port"`
	VC              int    `json:"vc"`
	Allocated       bool   `json:"allocated"`
	Credits         int    `json:"credits"`
	Owner           int    `json:"owner"`
	RegOwner        int    `json:"reg_owner"`
	AwaitTailCredit bool   `json:"await_tail_credit,omitempty"`
	Footprint       bool   `json:"footprint,omitempty"`
}

// RouterSnap is one router's non-idle VC state.
type RouterSnap struct {
	Node      int            `json:"node"`
	X         int            `json:"x"`
	Y         int            `json:"y"`
	InputVCs  []InputVCSnap  `json:"input_vcs,omitempty"`
	OutputVCs []OutputVCSnap `json:"output_vcs,omitempty"`
	// EjectionBacklog is the flit count buffered in the endpoint's
	// ejection unit (all VCs); a persistent backlog marks endpoint
	// congestion.
	EjectionBacklog int `json:"ejection_backlog,omitempty"`
	// SourceQueue is the endpoint's source-queue depth in packets.
	SourceQueue int `json:"source_queue,omitempty"`
}

// ChainLink is one hop of a head-flit blocked-on chain.
type ChainLink struct {
	Node   int    `json:"node"`
	Port   string `json:"port"`
	VC     int    `json:"vc"`
	Packet uint64 `json:"packet,omitempty"`
	Dest   int    `json:"dest"`
	// Reason explains what this link waits on: "vc-alloc" (no output VC
	// grant), "no-credit" (downstream buffer full).
	Reason string `json:"reason"`
}

// BlockChain is one blocked-on chain: the head link's packet waits on the
// second link's VC, and so on downstream. Terminal explains how the chain
// ends: "ejection-stalled" (endpoint backlog), "cycle" (the chain closed
// on itself — a deadlock signature), "moving" (the tail still has
// credits) or "end".
type BlockChain struct {
	Links    []ChainLink `json:"links"`
	Terminal string      `json:"terminal"`
}

// String renders the chain as a one-line arrow diagram.
func (c BlockChain) String() string {
	var b strings.Builder
	for i, l := range c.Links {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "n%d.%s%d(p%d>%d %s)", l.Node, l.Port, l.VC, l.Packet, l.Dest, l.Reason)
	}
	fmt.Fprintf(&b, " [%s]", c.Terminal)
	return b.String()
}

// FabricSnapshot is a structured dump of the whole fabric at one cycle:
// every non-idle VC plus the head-flit blocked-on chains. It is the
// watchdog's stall post-mortem and the /snapshot endpoint's payload.
type FabricSnapshot struct {
	Cycle      int64        `json:"cycle"`
	Width      int          `json:"width"`
	Height     int          `json:"height"`
	InFlight   int          `json:"in_flight"`
	Routers    []RouterSnap `json:"routers"`
	Chains     []BlockChain `json:"chains,omitempty"`
	BlockedVCs int          `json:"blocked_vcs"`
}

// maxChains bounds the number of reported blocked-on chains (the longest
// are kept); maxChainLen bounds each walk.
const (
	maxChains   = 16
	maxChainLen = 64
)

// Capture dumps the live state of net: per-router per-port per-VC input
// and output state (footprint class, credit levels) and the head-flit
// blocked-on chains. It must be called from the goroutine stepping the
// network.
func Capture(net *network.Network) *FabricSnapshot {
	mesh := net.Mesh()
	snap := &FabricSnapshot{
		Cycle:    net.Now(),
		Width:    mesh.Width,
		Height:   mesh.Height,
		InFlight: net.InFlight(),
	}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		ep := net.Endpoint(id)
		c := mesh.Coord(id)
		rs := RouterSnap{Node: id, X: c.X, Y: c.Y, SourceQueue: ep.QueueLen()}
		for v := 0; v < r.VCs(); v++ {
			rs.EjectionBacklog += ep.EjectionBacklog(v)
		}
		for d := topo.East; d <= topo.Local; d++ {
			for v := 0; v < r.VCs(); v++ {
				iv := r.InputVCSnapshot(d, v)
				if iv.State != router.VCStateIdle {
					is := InputVCSnap{
						Port:     d.String(),
						VC:       v,
						State:    iv.State,
						Buffered: iv.Buffered,
						PacketID: iv.PacketID,
						Dest:     iv.PacketDest,
					}
					switch iv.State {
					case router.VCStateRouting:
						is.Blocked = iv.Blocked
						if iv.Routed {
							is.ReqPort = iv.ReqDir.String()
						}
						if iv.Blocked > 0 {
							snap.BlockedVCs++
						}
					case router.VCStateActive:
						is.OutPort = iv.OutDir.String()
						is.OutVC = iv.OutVC
						ov := r.OutputVCSnapshot(iv.OutDir, iv.OutVC)
						if iv.Buffered > 0 && ov.Credits == 0 {
							is.CreditStalled = true
							snap.BlockedVCs++
						}
					}
					rs.InputVCs = append(rs.InputVCs, is)
				}
				ov := r.OutputVCSnapshot(d, v)
				if ov.Allocated || ov.AwaitTailCredit || ov.Credits != r.BufDepth() || ov.RegOwner >= 0 {
					rs.OutputVCs = append(rs.OutputVCs, OutputVCSnap{
						Port:            d.String(),
						VC:              v,
						Allocated:       ov.Allocated,
						Credits:         ov.Credits,
						Owner:           ov.Owner,
						RegOwner:        ov.RegOwner,
						AwaitTailCredit: ov.AwaitTailCredit,
						Footprint:       ov.Owner >= 0,
					})
				}
			}
		}
		snap.Routers = append(snap.Routers, rs)
	}
	snap.Chains = captureChains(net)
	return snap
}

// vcKey identifies one input VC fabric-wide for chain walks.
type vcKey struct {
	node int
	port topo.Direction
	vc   int
}

// captureChains walks the head-flit blocked-on relation: a routing-state
// VC waits on a VC grant at its requested output port; an active VC with
// no downstream credits waits on the downstream router's input VC. Chains
// that close on themselves are deadlock cycles.
func captureChains(net *network.Network) []BlockChain {
	mesh := net.Mesh()
	var starts []vcKey
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			for v := 0; v < r.VCs(); v++ {
				iv := r.InputVCSnapshot(d, v)
				switch iv.State {
				case router.VCStateRouting:
					if iv.Blocked > 0 {
						starts = append(starts, vcKey{id, d, v})
					}
				case router.VCStateActive:
					if iv.Buffered > 0 && r.OutputVCSnapshot(iv.OutDir, iv.OutVC).Credits == 0 {
						starts = append(starts, vcKey{id, d, v})
					}
				}
			}
		}
	}
	var chains []BlockChain
	for _, s := range starts {
		chain := walkChain(net, mesh, s)
		if len(chain.Links) > 0 {
			chains = append(chains, chain)
		}
	}
	// Longest chains first; they name the congestion tree's trunk.
	sort.SliceStable(chains, func(i, j int) bool { return len(chains[i].Links) > len(chains[j].Links) })
	if len(chains) > maxChains {
		chains = chains[:maxChains]
	}
	return chains
}

// walkChain follows the blocked-on relation from start until the chain
// moves, ends, cycles, or hits the length cap.
func walkChain(net *network.Network, mesh topo.Mesh, start vcKey) BlockChain {
	var chain BlockChain
	visited := map[vcKey]bool{}
	cur := start
	for len(chain.Links) < maxChainLen {
		if visited[cur] {
			chain.Terminal = "cycle"
			return chain
		}
		visited[cur] = true
		r := net.Router(cur.node)
		iv := r.InputVCSnapshot(cur.port, cur.vc)
		link := ChainLink{
			Node:   cur.node,
			Port:   cur.port.String(),
			VC:     cur.vc,
			Packet: iv.PacketID,
			Dest:   iv.PacketDest,
		}
		switch iv.State {
		case router.VCStateRouting:
			if iv.Blocked == 0 || !iv.Routed {
				chain.Terminal = "end"
				return chain
			}
			link.Reason = "vc-alloc"
			chain.Links = append(chain.Links, link)
			// The packet waits for a VC at its requested output port.
			// Follow the busy VC holding it up: its own footprint VC when
			// one exists (waiting on its own flow), else the first busy VC.
			next, ok := busyVCAt(r, iv.ReqDir, iv.PacketDest)
			if !ok {
				chain.Terminal = "end"
				return chain
			}
			nk, terminal := downstreamOf(net, mesh, cur.node, iv.ReqDir, next)
			if terminal != "" {
				chain.Terminal = terminal
				return chain
			}
			cur = nk
		case router.VCStateActive:
			ov := r.OutputVCSnapshot(iv.OutDir, iv.OutVC)
			if iv.Buffered == 0 || ov.Credits > 0 {
				chain.Terminal = "moving"
				return chain
			}
			link.Reason = "no-credit"
			chain.Links = append(chain.Links, link)
			nk, terminal := downstreamOf(net, mesh, cur.node, iv.OutDir, iv.OutVC)
			if terminal != "" {
				chain.Terminal = terminal
				return chain
			}
			cur = nk
		default:
			chain.Terminal = "end"
			return chain
		}
	}
	chain.Terminal = "end"
	return chain
}

// busyVCAt picks the output VC at port d that the blocked packet most
// plausibly waits on: a footprint VC owned by its destination when one
// exists, else the first non-idle VC.
func busyVCAt(r *router.Router, d topo.Direction, dest int) (int, bool) {
	first := -1
	for v := 0; v < r.VCs(); v++ {
		ov := r.OutputVCSnapshot(d, v)
		idle := !ov.Allocated && !ov.AwaitTailCredit && ov.Credits == r.BufDepth()
		if idle {
			continue
		}
		if ov.Owner == dest {
			return v, true
		}
		if first < 0 {
			first = v
		}
	}
	return first, first >= 0
}

// downstreamOf resolves the input VC fed by output VC (d, v) of node. A
// Local port terminates at the endpoint's ejection unit; a mesh edge
// (which cannot happen for allocated VCs) terminates the walk.
func downstreamOf(net *network.Network, mesh topo.Mesh, node int, d topo.Direction, v int) (vcKey, string) {
	if d == topo.Local {
		return vcKey{}, "ejection-stalled"
	}
	nb, ok := mesh.Neighbor(node, d)
	if !ok {
		return vcKey{}, "end"
	}
	return vcKey{nb, d.Opposite(), v}, ""
}

// Summary renders the snapshot's headline facts and its longest chains as
// a short multi-line report for stderr.
func (s *FabricSnapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric snapshot @ cycle %d: %dx%d mesh, %d packets in flight, %d blocked VCs, %d chains\n",
		s.Cycle, s.Width, s.Height, s.InFlight, s.BlockedVCs, len(s.Chains))
	n := len(s.Chains)
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  chain %d: %s\n", i+1, s.Chains[i].String())
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON.
func (s *FabricSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
