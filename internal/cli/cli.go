// Package cli carries the flag wiring shared by every command: the live
// observability server (-obs-addr), the stall watchdog
// (-watchdog-cycles, -watchdog-out), the pprof endpoint (-pprof), the
// per-run collector exports (-counters-out, -heatmap-out,
// -sample-period) of the experiment harnesses, and the latency-anatomy
// set (-anatomy, -anatomy-out, -anatomy-period).
package cli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"

	"nocsim/internal/exp"
	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/sim"
)

// NewJobs registers the -jobs flag shared by the grid-shaped experiment
// commands: how many independent simulation runs execute concurrently.
// Per-run seeds are derived deterministically (see sim.DeriveSeed), so
// equal base seeds give identical results at any -jobs value.
func NewJobs() *int {
	return flag.Int("jobs", 0,
		"parallel simulation runs across the experiment grid (0 = one worker per CPU); results are identical at any value")
}

// Obs is the shared observability flag set. Construct with NewObs before
// flag.Parse, Start after.
type Obs struct {
	Tool           string
	Addr           string
	WatchdogCycles int64
	WatchdogOut    string
	PprofAddr      string
	Profile        bool
	ProfileEvery   int64
	StepAll        bool

	Hub    *obs.Hub
	server *obs.Server
}

// NewObs registers -obs-addr, -watchdog-cycles, -watchdog-out and -pprof
// on the default flag set. tool names the command in diagnostics.
func NewObs(tool string) *Obs {
	o := &Obs{Tool: tool}
	flag.StringVar(&o.Addr, "obs-addr", "",
		"serve live observability (/metrics, /status, /snapshot) on this address (e.g. localhost:9090)")
	flag.Int64Var(&o.WatchdogCycles, "watchdog-cycles", 0,
		"flag windows of this many cycles with in-flight packets but zero forward progress, dumping a fabric snapshot (0 = off)")
	flag.StringVar(&o.WatchdogOut, "watchdog-out", "",
		"stall snapshot JSON path (default nocsim-stall.json)")
	flag.StringVar(&o.PprofAddr, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.BoolVar(&o.Profile, "phase-profile", false,
		"profile the cycle loop: attribute time and allocations to pipeline phases on sampled cycles; results are unchanged")
	flag.Int64Var(&o.ProfileEvery, "profile-every", 0,
		"phase-profiler sampling period in cycles (0 = default 64)")
	flag.BoolVar(&o.StepAll, "stepall", false,
		"debug: step every router and endpoint every cycle instead of only the active set; results are bit-identical, only slower")
	return o
}

// Start launches the servers the flags asked for: pprof on the default
// mux and the observability endpoints on their own hub. Call after
// flag.Parse; it returns the hub (nil when -obs-addr is unset).
func (o *Obs) Start() *obs.Hub {
	if o.PprofAddr != "" {
		addr := o.PprofAddr
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", o.Tool, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "%s: pprof http://%s/debug/pprof/\n", o.Tool, addr)
	}
	if o.Addr != "" {
		o.Hub = obs.NewHub()
		srv, err := obs.StartServer(o.Addr, o.Hub)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", o.Tool, err)
			os.Exit(1)
		}
		o.server = srv
		fmt.Fprintf(os.Stderr, "%s: observability http://%s/metrics /status /snapshot\n", o.Tool, srv.Addr)
	}
	return o.Hub
}

// Close stops the observability server (the pprof goroutine dies with the
// process).
func (o *Obs) Close() {
	if o.server != nil {
		o.server.Close()
	}
}

// ApplyProfile copies the monitoring, watchdog and phase-profiler flags
// onto an experiment profile.
func (o *Obs) ApplyProfile(p *exp.Profile) {
	p.Monitor = o.Hub
	p.WatchdogCycles = o.WatchdogCycles
	p.WatchdogOut = o.WatchdogOut
	p.StepAll = o.StepAll
	if o.Profile {
		p.Obs.Profile = true
		p.Obs.ProfileEvery = o.ProfileEvery
	}
}

// ApplyConfig copies the monitoring, watchdog and phase-profiler flags
// onto a single simulation config. Call it after the command has built
// cfg.Obs, so the profiler selection survives.
func (o *Obs) ApplyConfig(cfg *sim.Config) {
	cfg.Monitor = o.Hub
	cfg.WatchdogCycles = o.WatchdogCycles
	cfg.WatchdogOut = o.WatchdogOut
	cfg.StepAll = o.StepAll
	if o.Profile {
		cfg.Obs.Profile = true
		cfg.Obs.ProfileEvery = o.ProfileEvery
	}
}

// RouteCache is the shared -routecache flag: the route-decision cache
// is on by default and "-routecache=off" is the escape hatch. Results
// are bit-identical either way — the cache replays recorded decisions
// and RNG draws exactly — so the flag only trades speed.
type RouteCache struct {
	Mode string

	tool string
}

// NewRouteCache registers -routecache on the default flag set.
func NewRouteCache(tool string) *RouteCache {
	rc := &RouteCache{tool: tool}
	flag.StringVar(&rc.Mode, "routecache", "on",
		"route-decision cache: on or off; results are bit-identical either way, off is only slower")
	return rc
}

// Off reports whether the cache is disabled. An unknown flag value is a
// usage error.
func (rc *RouteCache) Off() bool {
	switch rc.Mode {
	case "", "on":
		return false
	case "off":
		return true
	default:
		fmt.Fprintf(os.Stderr, "%s: invalid -routecache value %q (want on or off)\n", rc.tool, rc.Mode)
		os.Exit(2)
		return false
	}
}

// ApplyProfile copies the flag onto an experiment profile.
func (rc *RouteCache) ApplyProfile(p *exp.Profile) { p.NoRouteCache = rc.Off() }

// ApplyConfig copies the flag onto a single simulation config.
func (rc *RouteCache) ApplyConfig(cfg *sim.Config) { cfg.NoRouteCache = rc.Off() }

// Warn prints a one-line notice when the cache is requested but the
// named algorithm opted out of fingerprinting, so a run that silently
// takes the uncached path is visible. Unknown names are left for the
// command's own validation to report.
func (rc *RouteCache) Warn(algorithm string) {
	if rc.Off() || algorithm == "" {
		return
	}
	alg, err := routing.New(algorithm)
	if err != nil {
		return
	}
	if !routing.Cacheable(alg) {
		fmt.Fprintf(os.Stderr, "%s: -routecache is on but algorithm %q does not publish a cache fingerprint; routes are computed uncached\n",
			rc.tool, algorithm)
	}
}

// RunExport is the per-run collector flag set of the experiment
// harnesses: each simulation of a sweep gets its own counter/heatmap
// files, suffixed with the run's identity.
type RunExport struct {
	CountersOut  string
	HeatmapOut   string
	SamplePeriod int64

	tool string

	mu      sync.Mutex // Write is called from parallel sweep workers
	written int
}

// NewRunExport registers -counters-out, -heatmap-out and -sample-period.
func NewRunExport(tool string) *RunExport {
	e := &RunExport{tool: tool}
	flag.StringVar(&e.CountersOut, "counters-out", "",
		"write per-router counter time series as CSV, one file per run, suffixed with the run identity")
	flag.StringVar(&e.HeatmapOut, "heatmap-out", "",
		"write measurement-window link heatmaps as CSV, one file per run, suffixed with the run identity")
	flag.Int64Var(&e.SamplePeriod, "sample-period", 0,
		"counter sampling period in cycles (0 = off; implied 100 by -counters-out)")
	return e
}

// Options translates the flags into collector options for the profile.
func (e *RunExport) Options() obs.Options {
	period := e.SamplePeriod
	if e.CountersOut != "" && period <= 0 {
		period = 100
	}
	return obs.Options{
		SamplePeriod: period,
		Heatmap:      e.HeatmapOut != "",
	}
}

// Enabled reports whether any per-run export was requested.
func (e *RunExport) Enabled() bool {
	return e.CountersOut != "" || e.HeatmapOut != ""
}

// Write exports one run's collector data under the configured base paths,
// suffixed with the run identity (e.g. counters.csv ->
// counters_uniform-footprint-0.30.csv).
func (e *RunExport) Write(runID string, col *obs.Collector) {
	if col == nil {
		return
	}
	if e.CountersOut != "" && col.Sampler != nil {
		e.writeFile(suffixPath(e.CountersOut, runID), col.Sampler.WriteCSV)
	}
	if e.HeatmapOut != "" && col.Heatmap != nil {
		e.writeFile(suffixPath(e.HeatmapOut, runID), col.Heatmap.WriteCSV)
	}
}

// Report prints how many files were written.
func (e *RunExport) Report() {
	e.mu.Lock()
	written := e.written
	e.mu.Unlock()
	if written > 0 {
		fmt.Fprintf(os.Stderr, "%s: wrote %d per-run export files\n", e.tool, written)
	}
}

func (e *RunExport) writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", e.tool, err)
		return
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "%s: write %s: %v\n", e.tool, path, err)
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: close %s: %v\n", e.tool, path, err)
		return
	}
	e.mu.Lock()
	e.written++
	e.mu.Unlock()
}

// Anatomy is the shared latency-anatomy flag set: -anatomy collects and
// prints the per-run latency composition and exercised-adaptiveness
// table, -anatomy-out additionally writes per-run CSVs (the aggregate
// plus a -occupancy time-series file), -anatomy-period tunes the
// footprint-occupancy sampling. Construct with NewAnatomy before
// flag.Parse.
type Anatomy struct {
	Print  bool
	Out    string
	Period int64

	tool string

	mu      sync.Mutex // Report may run from parallel sweep exporters
	written int
}

// NewAnatomy registers -anatomy, -anatomy-out and -anatomy-period.
func NewAnatomy(tool string) *Anatomy {
	a := &Anatomy{tool: tool}
	flag.BoolVar(&a.Print, "anatomy", false,
		"collect the latency anatomy (per-hop latency composition, VC-class grant split, exercised adaptiveness) and print it per run")
	flag.StringVar(&a.Out, "anatomy-out", "",
		"write the latency anatomy as CSV, one aggregate file plus one -occupancy time-series file per run, suffixed with the run identity")
	flag.Int64Var(&a.Period, "anatomy-period", 0,
		"footprint-occupancy sampling period in cycles (0 = default 256)")
	return a
}

// Enabled reports whether anatomy collection was requested.
func (a *Anatomy) Enabled() bool { return a.Print || a.Out != "" }

// Apply enables the anatomy collector on o when requested.
func (a *Anatomy) Apply(o *obs.Options) {
	if !a.Enabled() {
		return
	}
	o.Anatomy = true
	o.AnatomyPeriod = a.Period
}

// Report prints the run's anatomy table to w (under -anatomy) and writes
// its CSVs (under -anatomy-out). runID is the run identity used to
// suffix output files; res may be nil or anatomy-free, in which case
// Report is a no-op.
func (a *Anatomy) Report(w io.Writer, runID string, res *sim.Result) {
	if res == nil || res.Anatomy == nil {
		return
	}
	if a.Print {
		if runID != "" {
			fmt.Fprintf(w, "[%s] ", runID)
		}
		res.Anatomy.Format(w)
	}
	if a.Out == "" {
		return
	}
	a.writeFile(suffixPath(a.Out, runID), res.Anatomy.WriteCSV)
	if res.Obs != nil && res.Obs.Anatomy != nil {
		a.writeFile(suffixPath(a.Out, runID+"-occupancy"), res.Obs.Anatomy.WriteSeriesCSV)
	}
}

// Summary prints how many CSV files Report wrote.
func (a *Anatomy) Summary() {
	a.mu.Lock()
	written := a.written
	a.mu.Unlock()
	if written > 0 {
		fmt.Fprintf(os.Stderr, "%s: wrote %d anatomy CSV files\n", a.tool, written)
	}
}

func (a *Anatomy) writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", a.tool, err)
		return
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "%s: write %s: %v\n", a.tool, path, err)
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: close %s: %v\n", a.tool, path, err)
		return
	}
	a.mu.Lock()
	a.written++
	a.mu.Unlock()
}

// suffixPath inserts _id before the extension: base.csv -> base_id.csv.
func suffixPath(base, id string) string { return obs.SuffixPath(base, id) }

// Slug reduces a run identity to a filename-safe token.
func Slug(s string) string { return obs.Slug(s) }
