package router_test

import (
	"fmt"
	"math/bits"
	"testing"

	"nocsim/internal/router"
	"nocsim/internal/sim"
	"nocsim/internal/topo"
	"nocsim/internal/traffic"
)

// TestSnapshotMatchesSoAState cross-checks the two export surfaces of the
// router's struct-of-arrays VC state on a deliberately wedged fabric: the
// snapshot structs that stall post-mortems serialize, and the scalar +
// aggregate accessors (including the bitmask fast paths) that analyzers
// and routing algorithms read live. The allocation overhaul flattened
// per-VC state into parallel arrays indexed by (port, vc) and layered
// incremental aggregates (idle bitmask, footprint owner counts) on top;
// every exported field below reads a different slice of that layout, so
// any indexing slip or stale aggregate shows up as a disagreement between
// two views of the same VC.
//
// The wedged fixture — every node floods node 3, whose endpoint stops
// consuming — matters: it freezes the fabric mid-flight with buffered
// flits, blocked routing VCs, allocated output VCs and live footprint
// owners, so the comparison covers the populated states, not just the
// all-idle reset fabric.
func TestSnapshotMatchesSoAState(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCs = 2
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 200
	cfg.DrainCycles = 400
	cfg.SlowEndpoints = map[int]int{3: 1 << 30} // consumes only at cycle 0
	gen := &traffic.Generator{
		Nodes:   []int{0, 1, 2},
		Pattern: traffic.Permutation{Label: "wedge", Flows: map[int]int{0: 3, 1: 3, 2: 3}},
		Rate:    1,
	}
	s := sim.MustNew(cfg, gen)
	res := s.Run()
	if res.Stable {
		t.Fatal("fixture did not wedge; the comparison would only see idle VCs")
	}
	net := s.Network()

	inChecks := []struct {
		name string
		snap func(st router.InVCState) int
		live func(r *router.Router, d topo.Direction, v int) int
	}{
		{"buffered", func(st router.InVCState) int { return st.Buffered },
			func(r *router.Router, d topo.Direction, v int) int { return r.InputBufferUse(d, v) }},
		{"blocked", func(st router.InVCState) int {
			if st.State != router.VCStateRouting {
				return 0
			}
			return int(st.Blocked)
		},
			func(r *router.Router, d topo.Direction, v int) int { return int(r.InputVCBlocked(d, v)) }},
		{"packet-dest", func(st router.InVCState) int { return st.PacketDest },
			func(r *router.Router, d topo.Direction, v int) int { return r.InputVCDest(d, v) }},
	}
	outChecks := []struct {
		name string
		snap func(st router.OutVCState) int
		live func(r *router.Router, d topo.Direction, v int) int
	}{
		{"allocated", func(st router.OutVCState) int { return b2i(st.Allocated) },
			func(r *router.Router, d topo.Direction, v int) int { return b2i(r.OutVCAllocated(d, v)) }},
		{"credits", func(st router.OutVCState) int { return st.Credits },
			func(r *router.Router, d topo.Direction, v int) int { return r.OutVCCredits(d, v) }},
		{"owner", func(st router.OutVCState) int { return st.Owner },
			func(r *router.Router, d topo.Direction, v int) int { return r.VCOwner(d, v) }},
		{"reg-owner", func(st router.OutVCState) int { return st.RegOwner },
			func(r *router.Router, d topo.Direction, v int) int { return r.VCRegOwner(d, v) }},
		{"idle", func(st router.OutVCState) int {
			return b2i(!st.Allocated && !st.AwaitTailCredit && st.Credits == cfg.BufDepth)
		},
			func(r *router.Router, d topo.Direction, v int) int { return b2i(r.VCIdle(d, v)) }},
	}

	populated := false
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			for v := 0; v < cfg.VCs; v++ {
				at := fmt.Sprintf("node %d port %v vc %d", id, d, v)
				ist := r.InputVCSnapshot(d, v)
				for _, c := range inChecks {
					if got, want := c.live(r, d, v), c.snap(ist); got != want {
						t.Errorf("%s: input %s: accessor %d != snapshot %d", at, c.name, got, want)
					}
				}
				ost := r.OutputVCSnapshot(d, v)
				for _, c := range outChecks {
					if got, want := c.live(r, d, v), c.snap(ost); got != want {
						t.Errorf("%s: output %s: accessor %d != snapshot %d", at, c.name, got, want)
					}
				}
				if ist.State != router.VCStateIdle || ost.Allocated {
					populated = true
				}
			}

			// The incremental aggregates and bitmasks must agree with a
			// VC-by-VC recount of the snapshots they summarize.
			idleBits := uint32(0)
			for v := 0; v < cfg.VCs; v++ {
				if r.VCIdle(d, v) {
					idleBits |= 1 << uint(v)
				}
			}
			if got := r.IdleBits(d); got != idleBits {
				t.Errorf("node %d port %v: IdleBits %#x, recount %#x", id, d, got, idleBits)
			}
			for lo := 0; lo <= 1; lo++ {
				want := bits.OnesCount32(idleBits >> uint(lo))
				if got := r.IdleCount(d, lo); got != want {
					t.Errorf("node %d port %v: IdleCount(lo=%d) %d, recount %d", id, d, lo, got, want)
				}
			}
			for dest := 0; dest < net.Nodes(); dest++ {
				ownBits, regBits := uint32(0), uint32(0)
				n := 0
				for v := 0; v < cfg.VCs; v++ {
					if r.VCOwner(d, v) == dest {
						ownBits |= 1 << uint(v)
						n++
					}
					if r.VCRegOwner(d, v) == dest {
						regBits |= 1 << uint(v)
					}
				}
				if got := r.OwnerBits(d, dest); got != ownBits {
					t.Errorf("node %d port %v dest %d: OwnerBits %#x, recount %#x", id, d, dest, got, ownBits)
				}
				if got := r.RegOwnerBits(d, dest); got != regBits {
					t.Errorf("node %d port %v dest %d: RegOwnerBits %#x, recount %#x", id, d, dest, got, regBits)
				}
				if got := r.FootprintCount(d, dest, 0); got != n {
					t.Errorf("node %d port %v dest %d: FootprintCount %d, recount %d", id, d, dest, got, n)
				}
			}
		}
	}
	if !populated {
		t.Error("no VC left idle state; the wedged fixture regressed and the test lost its coverage")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
