package router

import (
	"nocsim/internal/topo"
)

// Input VC states as exported by InputVCSnapshot. These mirror the
// internal vcIdle/vcRouting/vcActive state machine.
const (
	VCStateIdle    = "idle"
	VCStateRouting = "routing"
	VCStateActive  = "active"
)

// InVCState is the externally visible state of one input virtual channel,
// captured for fabric snapshots and stall post-mortems.
type InVCState struct {
	// State is one of VCStateIdle, VCStateRouting, VCStateActive.
	State string
	// Buffered is the number of flits in the VC's buffer.
	Buffered int
	// PacketID and PacketDest describe the packet at the front of the
	// buffer (PacketDest is -1 when the buffer is empty).
	PacketID   uint64
	PacketDest int
	// Blocked is the number of consecutive cycles the head packet has
	// failed VC allocation (routing state only).
	Blocked int64
	// OutDir and OutVC are the granted output VC (active state only).
	OutDir topo.Direction
	OutVC  int
	// ReqDir is the output port the head packet's adaptive requests
	// targeted most recently; meaningful only when Routed is true
	// (routing state, after route computation).
	ReqDir topo.Direction
	Routed bool
}

// InputVCSnapshot exports the live state of input VC (d, v).
func (r *Router) InputVCSnapshot(d topo.Direction, v int) InVCState {
	i := r.idx(d, v)
	st := InVCState{
		Buffered:   int(r.bufLen[i]),
		PacketDest: -1,
	}
	switch r.inState[i] {
	case vcIdle:
		st.State = VCStateIdle
	case vcRouting:
		st.State = VCStateRouting
		st.Blocked = r.inBlocked[i]
		st.Routed = r.inRouted[i]
		if r.inRouted[i] {
			st.ReqDir = r.reqPort[i]
		}
	case vcActive:
		st.State = VCStateActive
		st.OutDir = r.inOutDir[i]
		st.OutVC = int(r.inOutVC[i])
	}
	if f := r.bufFront(i); f != nil {
		st.PacketID = f.Packet.ID
		st.PacketDest = f.Packet.Dest
	}
	return st
}

// OutVCState is the externally visible state of one output virtual
// channel: allocation, flow control and footprint registers.
type OutVCState struct {
	Allocated bool
	Credits   int
	// Owner is the live footprint owner (destination of the packets in
	// the downstream buffer, -1 when drained); RegOwner is the persistent
	// footprint register of Section 4.4.
	Owner    int
	RegOwner int
	// AwaitTailCredit marks a VC blocked from reallocation until its tail
	// credit returns (Duato-style conservative reallocation).
	AwaitTailCredit bool
}

// OutputVCSnapshot exports the live state of output VC (d, v).
func (r *Router) OutputVCSnapshot(d topo.Direction, v int) OutVCState {
	i := r.idx(d, v)
	return OutVCState{
		Allocated:       r.outAlloc[i],
		Credits:         int(r.outCredits[i]),
		Owner:           int(r.outOwner[i]),
		RegOwner:        int(r.outRegOwner[i]),
		AwaitTailCredit: r.outAwaitTail[i],
	}
}

// BufDepth returns the per-VC buffer depth the router was built with; a
// full-credit, unallocated output VC is idle.
func (r *Router) BufDepth() int { return r.cfg.BufDepth }

// EjectionBacklog returns the number of flits buffered in the endpoint's
// ejection unit for VC v — the terminal link of an endpoint-congestion
// blocking chain.
func (e *Endpoint) EjectionBacklog(v int) int { return len(e.ejBuf[v]) }
