package router

import (
	"nocsim/internal/flit"
	"nocsim/internal/topo"
)

// MetricsSink is the observability seam of the fabric: routers and
// endpoints report lifecycle events through it, and the simulator,
// tracer, heatmap collector and congestion analyzers aggregate them.
// A nil sink costs a single branch per event site.
//
// The per-packet lifecycle callbacks (OnInject, OnRoute, OnVCAllocGrant,
// OnHeadTraverse, OnEject) fire once per packet (per hop where
// applicable) and are additionally gated by WantPacketEvents, so a sink
// that only aggregates blocking statistics — like the simulator's
// built-in metrics — pays nothing for them. OnVCAllocFailure fires every
// cycle a routed head packet fails allocation and is gated only by the
// nil check, preserving the seed behaviour.
//
// Embed NopSink to implement the interface sparsely.
type MetricsSink interface {
	// WantPacketEvents reports whether the sink consumes the per-packet
	// lifecycle callbacks. Routers and endpoints cache the answer at
	// attach time; it must be constant over the sink's lifetime.
	WantPacketEvents() bool

	// OnInject fires at the source endpoint when a packet's head flit
	// enters the network (the packet's Inject cycle).
	OnInject(now int64, p *flit.Packet)

	// OnRoute fires at most once per packet per router, when the head
	// flit reaches the front of input port in and its route is first
	// computed.
	OnRoute(now int64, node int, p *flit.Packet, in topo.Direction)

	// OnVCAllocFailure fires when a routed head packet requested VCs but
	// received no grant this cycle. out is the requested output port;
	// footprintVCs and busyVCs describe its adaptive VCs at that moment —
	// the paper's "purity of blocking" is footprintVCs/busyVCs
	// (Figure 10b). waited is the number of consecutive failed cycles
	// including this one, so waited == 1 marks the start of a blocking
	// span.
	OnVCAllocFailure(now int64, node int, p *flit.Packet, out topo.Direction, footprintVCs, busyVCs int, waited int64)

	// OnVCAllocGrant fires when a head packet wins output VC (out, outVC).
	// class is the VC's state immediately before the grant claimed it
	// (idle / footprint / busy / escape); waited is the number of cycles
	// the packet previously failed allocation at this router (0 = granted
	// on the first attempt).
	OnVCAllocGrant(now int64, node int, p *flit.Packet, out topo.Direction, outVC int, class VCClass, waited int64)

	// WantRouteDecisions reports whether the sink consumes per-decision
	// adaptiveness records. Routers cache the answer at attach time; it
	// must be constant over the sink's lifetime. It is a separate
	// capability from WantPacketEvents because building a Decision walks
	// the request set — costlier than stamping a lifecycle event.
	WantRouteDecisions() bool

	// OnRouteDecision fires at most once per packet per router, right
	// after the packet's route is first computed, carrying the exercised
	// adaptiveness of that decision. Ejection decisions are not reported.
	OnRouteDecision(now int64, node int, p *flit.Packet, d Decision)

	// OnHeadTraverse fires when a packet's head flit crosses the crossbar
	// into output port out on VC outVC: one event per hop.
	OnHeadTraverse(now int64, node int, p *flit.Packet, out topo.Direction, outVC int)

	// OnEject fires at the destination endpoint when a packet's tail flit
	// is consumed (the packet's Eject cycle).
	OnEject(now int64, p *flit.Packet)
}

// NopSink implements MetricsSink with no-ops; embed it and override the
// events of interest.
type NopSink struct{}

// WantPacketEvents implements MetricsSink.
func (NopSink) WantPacketEvents() bool { return false }

// OnInject implements MetricsSink.
func (NopSink) OnInject(int64, *flit.Packet) {}

// OnRoute implements MetricsSink.
func (NopSink) OnRoute(int64, int, *flit.Packet, topo.Direction) {}

// OnVCAllocFailure implements MetricsSink.
func (NopSink) OnVCAllocFailure(int64, int, *flit.Packet, topo.Direction, int, int, int64) {}

// OnVCAllocGrant implements MetricsSink.
func (NopSink) OnVCAllocGrant(int64, int, *flit.Packet, topo.Direction, int, VCClass, int64) {}

// WantRouteDecisions implements MetricsSink.
func (NopSink) WantRouteDecisions() bool { return false }

// OnRouteDecision implements MetricsSink.
func (NopSink) OnRouteDecision(int64, int, *flit.Packet, Decision) {}

// OnHeadTraverse implements MetricsSink.
func (NopSink) OnHeadTraverse(int64, int, *flit.Packet, topo.Direction, int) {}

// OnEject implements MetricsSink.
func (NopSink) OnEject(int64, *flit.Packet) {}

// Tee fans events out to every non-nil sink. It returns nil when no sink
// remains and the sink itself when only one does, so the common
// single-consumer case keeps its direct dispatch.
func Tee(sinks ...MetricsSink) MetricsSink {
	var live teeSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type teeSink []MetricsSink

func (t teeSink) WantPacketEvents() bool {
	for _, s := range t {
		if s.WantPacketEvents() {
			return true
		}
	}
	return false
}

func (t teeSink) OnInject(now int64, p *flit.Packet) {
	for _, s := range t {
		s.OnInject(now, p)
	}
}

func (t teeSink) OnRoute(now int64, node int, p *flit.Packet, in topo.Direction) {
	for _, s := range t {
		s.OnRoute(now, node, p, in)
	}
}

func (t teeSink) OnVCAllocFailure(now int64, node int, p *flit.Packet, out topo.Direction, fp, busy int, waited int64) {
	for _, s := range t {
		s.OnVCAllocFailure(now, node, p, out, fp, busy, waited)
	}
}

func (t teeSink) OnVCAllocGrant(now int64, node int, p *flit.Packet, out topo.Direction, outVC int, class VCClass, waited int64) {
	for _, s := range t {
		s.OnVCAllocGrant(now, node, p, out, outVC, class, waited)
	}
}

func (t teeSink) WantRouteDecisions() bool {
	for _, s := range t {
		if s.WantRouteDecisions() {
			return true
		}
	}
	return false
}

func (t teeSink) OnRouteDecision(now int64, node int, p *flit.Packet, d Decision) {
	for _, s := range t {
		s.OnRouteDecision(now, node, p, d)
	}
}

func (t teeSink) OnHeadTraverse(now int64, node int, p *flit.Packet, out topo.Direction, outVC int) {
	for _, s := range t {
		s.OnHeadTraverse(now, node, p, out, outVC)
	}
}

func (t teeSink) OnEject(now int64, p *flit.Packet) {
	for _, s := range t {
		s.OnEject(now, p)
	}
}
