package router

import (
	"fmt"
	"math/rand"

	"nocsim/internal/alloc"
	"nocsim/internal/flit"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// Config parameterizes one router.
type Config struct {
	Mesh     topo.Mesh
	NodeID   int
	VCs      int // virtual channels per physical channel
	BufDepth int // flits of buffering per VC
	Speedup  int // switch-allocation iterations per cycle (Table 2: 2)
	Alg      routing.Algorithm
	Rand     *rand.Rand
	// Downstream provides the one-hop neighbour status DBAR-style
	// algorithms exchange; the network implements it. May be nil for
	// algorithms that never call Context.View.DownstreamIdle.
	Downstream DownstreamInfo
	// Metrics receives blocking events and may be nil.
	Metrics MetricsSink
	// StickyRouting freezes each packet's VC request set at route
	// computation time instead of re-evaluating it every cycle while the
	// packet waits. Off by default: re-evaluation reproduces the paper's
	// results (see DESIGN.md).
	StickyRouting bool
}

// DownstreamInfo answers the neighbour-status queries of adaptive routing:
// the number of idle adaptive VCs on the productive ports toward dest at
// the router reached through output port d of router node.
type DownstreamInfo interface {
	DownstreamIdle(node int, d topo.Direction, dest int) int
}

// input VC state machine states.
const (
	vcIdle    = iota // no packet at the head of the buffer
	vcRouting        // head flit at front, awaiting an output VC
	vcActive         // output VC granted; streaming flits
)

// inVC is one input virtual channel: a flit FIFO plus wormhole state.
type inVC struct {
	buf     []*flit.Flit
	state   int
	outDir  topo.Direction
	outVC   int
	blocked int64 // consecutive cycles the head flit failed allocation

	// reqs is the packet's VC request set, computed once per router when
	// the head flit reaches the front (BookSim-style sticky routing):
	// the VC allocator retries this fixed set until a grant. This is
	// what makes "waiting on footprint channels" effective — a packet
	// that found its port saturated keeps requesting only its footprint
	// VCs even as other VCs free up, and claims them on priority.
	reqs   []routing.Request
	routed bool
}

func (v *inVC) front() *flit.Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

func (v *inVC) pop() *flit.Flit {
	f := v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	return f
}

// outVC is the output-side state of one downstream virtual channel.
type outVC struct {
	allocated bool
	credits   int
	// owner is the destination of the packets currently occupying the
	// VC's downstream buffer, cleared when the buffer drains: the live
	// "footprint VC" state of Section 3.2.
	owner int
	// regOwner is the footprint register of Section 4.4: the
	// destination of the last packet allocated to this VC. As a
	// hardware register it persists across drains until overwritten, so
	// a just-drained footprint VC can be re-granted to its own flow
	// first — the "virtual set-aside queue" persistence of Section 3.3.
	regOwner int
	// awaitTailCredit blocks reallocation until the tail flit's credit
	// returns (Duato-style conservative reallocation).
	awaitTailCredit bool
}

// idle reports whether the VC is unoccupied: free for allocation with an
// empty downstream buffer.
func (ov *outVC) idle(bufDepth int) bool {
	return !ov.allocated && !ov.awaitTailCredit && ov.credits == bufDepth
}

// outPort is one output port: its VC state, the output stage that absorbs
// the internal speedup, and the attached channel.
type outPort struct {
	vcs   []outVC
	stage []*flit.Flit
	ch    *Channel
}

// stageCap bounds the output stage; with speedup s the stage can grow by
// s-1 flits per cycle, so a small FIFO suffices.
const stageCap = 4

// Router is one mesh router.
type Router struct {
	cfg  Config
	in   [][]inVC   // [port][vc]
	out  []*outPort // [port]
	inCh []*Channel // attached input channels, [port]

	va     *alloc.VCAllocator
	saIn   []*alloc.RoundRobin // per input port: VC chooser
	saOut  []*alloc.RoundRobin // per output port: input chooser
	vaReqs []alloc.VCRequest
	// reqPort maps requester index -> the output port its adaptive
	// requests targeted this cycle, for blocking metrics.
	reqPort []topo.Direction
	granted []bool // requester index -> granted this cycle
	saVec   []bool // scratch request vector for switch allocation

	// routingCount/activeCount track how many input VCs of each port are
	// in the routing/active state, so the per-cycle scans skip idle
	// ports.
	routingCount [topo.NumPorts]int
	activeCount  [topo.NumPorts]int

	// outFlits counts flits sent per output port, for link-utilization
	// analysis.
	outFlits [topo.NumPorts]int64
	// creditStalls counts VC-cycles an active input VC headed for the
	// output port could not traverse because its output VC had no
	// downstream credits (one count per stalled VC per cycle).
	creditStalls [topo.NumPorts]int64
	// xbarGrants counts crossbar grants won by each output port.
	xbarGrants [topo.NumPorts]int64
	// vcAllocFails counts head packets that requested VCs and received no
	// grant, summed over cycles.
	vcAllocFails int64

	// now is the router's cycle counter, advanced at the end of
	// SwitchAndTraverse so it matches the network's clock during every
	// phase. It stamps the events sent to the metrics sink.
	now int64
	// wantEvents caches Metrics.WantPacketEvents() so the per-packet
	// lifecycle callbacks cost one branch when no consumer wants them.
	wantEvents bool
	// wantDecisions caches Metrics.WantRouteDecisions() the same way for
	// the per-decision adaptiveness records.
	wantDecisions bool
}

// New constructs a router. Input and output channels are attached later by
// the network with AttachIn/AttachOut.
func New(cfg Config) *Router {
	if cfg.VCs < 1 {
		panic("router: need at least one VC")
	}
	if cfg.Alg.UsesEscape() && cfg.VCs < 2 {
		panic("router: Duato-based routing needs at least two VCs")
	}
	if cfg.BufDepth < 1 {
		panic("router: need buffer depth >= 1")
	}
	if cfg.Speedup < 1 {
		panic("router: need speedup >= 1")
	}
	P := topo.NumPorts
	r := &Router{
		cfg:     cfg,
		in:      make([][]inVC, P),
		out:     make([]*outPort, P),
		inCh:    make([]*Channel, P),
		va:      alloc.NewVCAllocator(P*cfg.VCs, P*cfg.VCs),
		saIn:    make([]*alloc.RoundRobin, P),
		saOut:   make([]*alloc.RoundRobin, P),
		reqPort: make([]topo.Direction, P*cfg.VCs),
		granted: make([]bool, P*cfg.VCs),
		saVec:   make([]bool, cfg.VCs),
	}
	for p := 0; p < P; p++ {
		r.in[p] = make([]inVC, cfg.VCs)
		for v := range r.in[p] {
			r.in[p][v].buf = make([]*flit.Flit, 0, cfg.BufDepth)
		}
		op := &outPort{vcs: make([]outVC, cfg.VCs)}
		for v := range op.vcs {
			op.vcs[v] = outVC{credits: cfg.BufDepth, owner: -1, regOwner: -1}
		}
		r.out[p] = op
		r.saIn[p] = alloc.NewRoundRobin(cfg.VCs)
		r.saOut[p] = alloc.NewRoundRobin(P)
	}
	if cfg.Metrics != nil {
		r.wantEvents = cfg.Metrics.WantPacketEvents()
		r.wantDecisions = cfg.Metrics.WantRouteDecisions()
	}
	return r
}

// AttachIn connects ch as the input channel arriving at port d.
func (r *Router) AttachIn(d topo.Direction, ch *Channel) { r.inCh[d] = ch }

// AttachOut connects ch as the output channel leaving port d.
func (r *Router) AttachOut(d topo.Direction, ch *Channel) { r.out[d].ch = ch }

// NodeID returns the router's node id.
func (r *Router) NodeID() int { return r.cfg.NodeID }

// --- routing.View ---------------------------------------------------------

// VCs implements routing.View.
func (r *Router) VCs() int { return r.cfg.VCs }

// VCIdle implements routing.View: a VC is idle when its downstream buffer
// is fully drained and no packet holds it. The footprint owner register
// is independent state and may still name a destination.
func (r *Router) VCIdle(d topo.Direction, v int) bool {
	return r.out[d].vcs[v].idle(r.cfg.BufDepth)
}

// VCOwner implements routing.View.
func (r *Router) VCOwner(d topo.Direction, v int) int { return r.out[d].vcs[v].owner }

// VCRegOwner implements routing.View: the persistent footprint register.
func (r *Router) VCRegOwner(d topo.Direction, v int) int { return r.out[d].vcs[v].regOwner }

// DownstreamIdle implements routing.View by delegating to the network.
func (r *Router) DownstreamIdle(d topo.Direction, dest int) int {
	if r.cfg.Downstream == nil {
		return 0
	}
	return r.cfg.Downstream.DownstreamIdle(r.cfg.NodeID, d, dest)
}

// IdleAdaptiveToward returns the number of idle adaptive VCs over the
// productive output ports of this router toward dest (ejection port when
// dest is this node). The network uses it to answer DownstreamIdle for
// neighbours.
func (r *Router) IdleAdaptiveToward(dest int) int {
	lo := 0
	if r.cfg.Alg.UsesEscape() {
		lo = 1
	}
	count := func(d topo.Direction) int {
		n := 0
		for v := lo; v < r.cfg.VCs; v++ {
			if r.out[d].vcs[v].idle(r.cfg.BufDepth) {
				n++
			}
		}
		return n
	}
	if dest == r.cfg.NodeID {
		return count(topo.Local)
	}
	dx, hasX, dy, hasY := r.cfg.Mesh.MinimalDirs(r.cfg.NodeID, dest)
	n := 0
	if hasX {
		n += count(dx)
	}
	if hasY {
		n += count(dy)
	}
	return n
}

// --- per-cycle phases ------------------------------------------------------

// Receive ingests flits and credits that arrived on the attached channels.
// Phase A; the network runs it for every router before any other phase.
func (r *Router) Receive() {
	for p := 0; p < topo.NumPorts; p++ {
		ch := r.inCh[p]
		if ch != nil {
			if f := ch.Recv(); f != nil {
				iv := &r.in[p][f.VC]
				if len(iv.buf) >= r.cfg.BufDepth {
					panic(fmt.Sprintf("router %d: input buffer overflow port %v vc %d",
						r.cfg.NodeID, topo.Direction(p), f.VC))
				}
				iv.buf = append(iv.buf, f)
				if f.Head {
					f.Packet.Hops++
				}
			}
		}
		if och := r.out[p].ch; och != nil {
			for _, cr := range och.RecvCredits() {
				ov := &r.out[p].vcs[cr.VC]
				ov.credits++
				if ov.credits > r.cfg.BufDepth {
					panic(fmt.Sprintf("router %d: credit overflow port %v vc %d",
						r.cfg.NodeID, topo.Direction(p), cr.VC))
				}
				if cr.Tail {
					ov.awaitTailCredit = false
				}
				if ov.idle(r.cfg.BufDepth) {
					// The footprint register clears once the VC fully
					// drains: a footprint VC is one currently occupied
					// by packets to its owner destination.
					ov.owner = -1
				}
			}
		}
	}
	// Promote idle input VCs with a buffered head flit to routing state.
	for p := range r.in {
		for v := range r.in[p] {
			iv := &r.in[p][v]
			if iv.state == vcIdle {
				if f := iv.front(); f != nil {
					if !f.Head {
						panic("router: non-head flit at front of idle VC")
					}
					iv.state = vcRouting
					iv.routed = false
					iv.blocked = 0
					r.routingCount[p]++
				}
			}
		}
	}
}

// resIndex flattens (port, vc) into a VC-allocator resource index.
func (r *Router) resIndex(d topo.Direction, vc int) int { return int(d)*r.cfg.VCs + vc }

// AllocateVCs runs route computation and VC allocation for every input VC
// in routing state. Phase B+C.
func (r *Router) AllocateVCs() {
	r.vaReqs = r.vaReqs[:0]
	for i := range r.granted {
		r.granted[i] = false
	}
	anyRouting := false
	for p := 0; p < topo.NumPorts; p++ {
		if r.routingCount[p] == 0 {
			continue
		}
		for v := 0; v < r.cfg.VCs; v++ {
			iv := &r.in[p][v]
			if iv.state != vcRouting {
				continue
			}
			anyRouting = true
			f := iv.front()
			requester := r.resIndex(topo.Direction(p), v)
			if !iv.routed || !r.cfg.StickyRouting {
				// By default the route (and its VC request set) is
				// re-evaluated every cycle while the packet waits, so
				// adaptive decisions track the live congestion state.
				// With Config.StickyRouting the set is computed once per
				// packet per router and retried until granted; see
				// DESIGN.md for why the default reproduces the paper's
				// results and stickiness does not.
				if r.wantEvents && !iv.routed {
					r.cfg.Metrics.OnRoute(r.now, r.cfg.NodeID, f.Packet, topo.Direction(p))
				}
				iv.reqs = iv.reqs[:0]
				if f.Packet.Dest == r.cfg.NodeID {
					// Ejection: request every local-port VC obliviously.
					for ev := 0; ev < r.cfg.VCs; ev++ {
						iv.reqs = append(iv.reqs, routing.Request{Dir: topo.Local, VC: ev, Pri: alloc.Low})
					}
					r.reqPort[requester] = topo.Local
				} else {
					ctx := routing.Context{
						Mesh:  r.cfg.Mesh,
						Cur:   r.cfg.NodeID,
						Dest:  f.Packet.Dest,
						InDir: topo.Direction(p),
						View:  r,
						Rand:  r.cfg.Rand,
					}
					iv.reqs = r.cfg.Alg.Route(&ctx, iv.reqs)
					if len(iv.reqs) > 0 {
						// The first request's port is the adaptive choice
						// (escape request is appended last by convention).
						r.reqPort[requester] = iv.reqs[0].Dir
					}
					if r.wantDecisions && !iv.routed {
						r.emitDecision(topo.Direction(p), f.Packet.Dest, iv.reqs, f.Packet)
					}
				}
				iv.routed = true
			}
			for _, rq := range iv.reqs {
				ov := &r.out[rq.Dir].vcs[rq.VC]
				if ov.allocated || ov.awaitTailCredit {
					continue // not allocatable this cycle
				}
				r.vaReqs = append(r.vaReqs, alloc.VCRequest{
					Requester: requester,
					Resource:  r.resIndex(rq.Dir, rq.VC),
					Pri:       rq.Pri,
				})
			}
		}
	}
	if !anyRouting {
		return
	}

	grants := r.va.Allocate(r.vaReqs)
	for _, g := range grants {
		r.granted[g.Requester] = true
		p := topo.Direction(g.Requester / r.cfg.VCs)
		v := g.Requester % r.cfg.VCs
		od := topo.Direction(g.Resource / r.cfg.VCs)
		ovc := g.Resource % r.cfg.VCs
		iv := &r.in[p][v]
		iv.state = vcActive
		iv.outDir = od
		iv.outVC = ovc
		r.routingCount[p]--
		r.activeCount[p]++
		ov := &r.out[od].vcs[ovc]
		var class VCClass
		if r.wantEvents {
			// Classify against the pre-grant state: the assignments below
			// mark the VC allocated/owned, which would read as busy.
			class = r.classifyVC(od, ovc, iv.front().Packet.Dest)
		}
		ov.allocated = true
		ov.owner = iv.front().Packet.Dest
		ov.regOwner = ov.owner
		if r.wantEvents {
			r.cfg.Metrics.OnVCAllocGrant(r.now, r.cfg.NodeID, iv.front().Packet, od, ovc, class, iv.blocked)
		}
	}

	// Blocking bookkeeping: every head packet that tried and failed.
	for p := 0; p < topo.NumPorts; p++ {
		if r.routingCount[p] == 0 {
			continue
		}
		for v := 0; v < r.cfg.VCs; v++ {
			requester := r.resIndex(topo.Direction(p), v)
			iv := &r.in[p][v]
			if iv.state != vcRouting || r.granted[requester] {
				continue
			}
			iv.blocked++
			r.vcAllocFails++
			if r.cfg.Metrics != nil {
				out := r.reqPort[requester]
				fp, busy := r.portOccupancy(out, iv.front().Packet.Dest)
				r.cfg.Metrics.OnVCAllocFailure(r.now, r.cfg.NodeID, iv.front().Packet, out, fp, busy, iv.blocked)
			}
		}
	}
}

// portOccupancy counts footprint and busy adaptive VCs of port d with
// respect to dest.
func (r *Router) portOccupancy(d topo.Direction, dest int) (fp, busy int) {
	lo := 0
	if r.cfg.Alg.UsesEscape() {
		lo = 1
	}
	for v := lo; v < r.cfg.VCs; v++ {
		ov := &r.out[d].vcs[v]
		if ov.idle(r.cfg.BufDepth) {
			continue
		}
		busy++
		if ov.owner == dest {
			fp++
		}
	}
	return fp, busy
}

// SwitchAndTraverse performs switch allocation and switch traversal for
// Speedup iterations, then drains one flit per output port onto its
// channel. Phase D+E.
func (r *Router) SwitchAndTraverse() {
	P := topo.NumPorts
	for iter := 0; iter < r.cfg.Speedup; iter++ {
		// Input stage: each input port nominates one ready VC.
		type nominee struct {
			vc int
			ok bool
		}
		var noms [topo.NumPorts]nominee
		var outReq [topo.NumPorts][topo.NumPorts]bool // [out][in]
		for p := 0; p < P; p++ {
			if r.activeCount[p] == 0 {
				continue
			}
			for v := range r.saVec {
				ready := r.vcReady(p, v)
				r.saVec[v] = ready
				if !ready && iter == 0 {
					// Diagnose the stall once per cycle: an active VC
					// with buffered flits whose output VC is out of
					// credits is backpressure from downstream.
					iv := &r.in[p][v]
					if iv.state == vcActive && len(iv.buf) > 0 &&
						r.out[iv.outDir].vcs[iv.outVC].credits == 0 {
						r.creditStalls[iv.outDir]++
					}
				}
			}
			if v := r.saIn[p].Arbitrate(r.saVec); v >= 0 {
				noms[p] = nominee{vc: v, ok: true}
				outReq[r.in[p][v].outDir][p] = true
			}
		}
		// Output stage: each output port grants one input port.
		for o := 0; o < P; o++ {
			in := r.saOut[o].Arbitrate(outReq[o][:])
			if in < 0 {
				continue
			}
			r.traverse(in, noms[in].vc)
		}
	}
	// Link traversal: one flit per output channel per cycle.
	for o := 0; o < P; o++ {
		op := r.out[o]
		if len(op.stage) == 0 || op.ch == nil || !op.ch.CanSend() {
			continue
		}
		f := op.stage[0]
		copy(op.stage, op.stage[1:])
		op.stage = op.stage[:len(op.stage)-1]
		op.ch.Send(f)
		r.outFlits[o]++
	}
	r.now++
}

// OutputFlits returns the number of flits the router has sent through
// output port d since construction, for utilization analysis.
func (r *Router) OutputFlits(d topo.Direction) int64 { return r.outFlits[d] }

// CreditStalls returns the cumulative VC-cycles in which an active input
// VC headed for output port d could not traverse the switch because its
// output VC had no downstream credits.
func (r *Router) CreditStalls(d topo.Direction) int64 { return r.creditStalls[d] }

// CrossbarGrants returns the cumulative crossbar grants won by output
// port d (one per flit crossing the switch, including speedup passes).
func (r *Router) CrossbarGrants(d topo.Direction) int64 { return r.xbarGrants[d] }

// VCAllocFailures returns the cumulative count of head packets that
// requested output VCs and received no grant, summed over cycles.
func (r *Router) VCAllocFailures() int64 { return r.vcAllocFails }

// InputBufferOccupancy returns the total flits buffered across the VCs of
// input port d.
func (r *Router) InputBufferOccupancy(d topo.Direction) int {
	n := 0
	for v := range r.in[d] {
		n += len(r.in[d][v].buf)
	}
	return n
}

// vcReady reports whether input VC (p, v) can traverse the switch now.
func (r *Router) vcReady(p, v int) bool {
	iv := &r.in[p][v]
	if iv.state != vcActive || len(iv.buf) == 0 {
		return false
	}
	op := r.out[iv.outDir]
	return op.vcs[iv.outVC].credits > 0 && len(op.stage) < stageCap
}

// traverse moves the front flit of input VC (p, v) into its output stage,
// returning a credit upstream and managing wormhole state.
func (r *Router) traverse(p, v int) {
	iv := &r.in[p][v]
	f := iv.pop()
	ov := &r.out[iv.outDir].vcs[iv.outVC]
	f.VC = iv.outVC
	ov.credits--
	r.out[iv.outDir].stage = append(r.out[iv.outDir].stage, f)
	r.xbarGrants[iv.outDir]++
	if r.wantEvents && f.Head {
		r.cfg.Metrics.OnHeadTraverse(r.now, r.cfg.NodeID, f.Packet, iv.outDir, iv.outVC)
	}

	// Return a credit for the freed input buffer slot.
	if ch := r.inCh[p]; ch != nil {
		ch.SendCredit(flit.Credit{VC: v, Tail: f.Tail})
	}

	if f.Tail {
		ov.allocated = false
		if r.cfg.Alg.ConservativeRealloc() {
			ov.awaitTailCredit = true
		}
		// Next packet (if already buffered) starts routing next cycle.
		r.activeCount[p]--
		iv.state = vcIdle
		if nf := iv.front(); nf != nil {
			if !nf.Head {
				panic("router: flit interleaving detected")
			}
			iv.state = vcRouting
			iv.routed = false
			iv.blocked = 0
			r.routingCount[p]++
		}
	}
}

// InputBufferUse returns the number of buffered flits at input port d,
// VC v; the congestion-tree analyzer reads it.
func (r *Router) InputBufferUse(d topo.Direction, v int) int {
	return len(r.in[d][v].buf)
}

// InputVCBlocked returns how many consecutive cycles the head packet of
// input VC (d, v) has failed VC allocation; 0 when not blocked.
func (r *Router) InputVCBlocked(d topo.Direction, v int) int64 {
	iv := &r.in[d][v]
	if iv.state != vcRouting {
		return 0
	}
	return iv.blocked
}

// InputVCDest returns the destination of the packet at the front of input
// VC (d, v), or -1 when empty.
func (r *Router) InputVCDest(d topo.Direction, v int) int {
	f := r.in[d][v].front()
	if f == nil {
		return -1
	}
	return f.Packet.Dest
}

// InputVCPurity inspects the buffer of input VC (d, v): occupied reports
// whether it holds any flits, and pure whether every buffered packet
// shares one destination. A pure VC blocks only its own flow (a footprint
// chain); an impure VC is head-of-line blocking unrelated packets. The
// paper's Figure 10(b) "purity of blocking" aggregates this.
func (r *Router) InputVCPurity(d topo.Direction, v int) (occupied, pure bool) {
	buf := r.in[d][v].buf
	if len(buf) == 0 {
		return false, false
	}
	dest := buf[0].Packet.Dest
	for _, f := range buf[1:] {
		if f.Packet.Dest != dest {
			return true, false
		}
	}
	return true, true
}

// OutVCAllocated reports whether output VC (d, v) is currently held by a
// packet.
func (r *Router) OutVCAllocated(d topo.Direction, v int) bool {
	return r.out[d].vcs[v].allocated
}

// OutVCCredits returns the available credits of output VC (d, v).
func (r *Router) OutVCCredits(d topo.Direction, v int) int {
	return r.out[d].vcs[v].credits
}
