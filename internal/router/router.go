package router

import (
	"fmt"
	"math/bits"
	"math/rand"

	"nocsim/internal/alloc"
	"nocsim/internal/flit"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// Config parameterizes one router.
type Config struct {
	Mesh     topo.Mesh
	NodeID   int
	VCs      int // virtual channels per physical channel
	BufDepth int // flits of buffering per VC
	Speedup  int // switch-allocation iterations per cycle (Table 2: 2)
	Alg      routing.Algorithm
	Rand     *rand.Rand
	// Downstream provides the one-hop neighbour status DBAR-style
	// algorithms exchange; the network implements it. May be nil for
	// algorithms that never call Context.View.DownstreamIdle.
	Downstream DownstreamInfo
	// Metrics receives blocking events and may be nil.
	Metrics MetricsSink
	// StickyRouting freezes each packet's VC request set at route
	// computation time instead of re-evaluating it every cycle while the
	// packet waits. Off by default: re-evaluation reproduces the paper's
	// results (see DESIGN.md).
	StickyRouting bool
	// Cache, when non-nil and enabled, serves route computations for
	// congruent states from a fingerprint cache (see routing.Cache). The
	// network shares one cache across its routers; results are
	// bit-identical with or without it.
	Cache *routing.Cache
}

// DownstreamInfo answers the neighbour-status queries of adaptive routing:
// the number of idle adaptive VCs on the productive ports toward dest at
// the router reached through output port d of router node.
type DownstreamInfo interface {
	DownstreamIdle(node int, d topo.Direction, dest int) int
}

// input VC state machine states.
const (
	vcIdle    uint8 = iota // no packet at the head of the buffer
	vcRouting              // head flit at front, awaiting an output VC
	vcActive               // output VC granted; streaming flits
)

// stageCap bounds the output stage; with speedup s the stage can grow by
// s-1 flits per cycle, so a small FIFO suffices.
const stageCap = 4

// Router is one mesh router. Its per-VC state is laid out as
// struct-of-arrays indexed by idx = int(port)*VCs + vc (the same dense
// index the VC allocator uses), so a cycle's scans walk contiguous
// arrays instead of chasing per-port/per-VC pointers, and the input
// buffers and output stages are fixed-capacity rings over single backing
// arrays — the steady-state cycle loop allocates nothing.
type Router struct {
	cfg Config
	vcs int // cfg.VCs, hot-path copy

	// Input VC state machine, SoA over idx.
	inState   []uint8
	inOutDir  []topo.Direction // granted output port (active state)
	inOutVC   []int32          // granted output VC (active state)
	inBlocked []int64          // consecutive failed-allocation cycles
	inRouted  []bool
	// inReqs is the packet's VC request set per input VC, computed at
	// route time. The slices retain their capacity across packets, so
	// re-evaluation does not allocate in steady state. This is what makes
	// "waiting on footprint channels" effective under StickyRouting — a
	// packet that found its port saturated keeps requesting only its
	// footprint VCs even as other VCs free up, and claims them on
	// priority.
	inReqs [][]routing.Request

	// Input buffers: per-VC rings of capacity BufDepth over one backing
	// array; slot i of VC idx is bufStore[idx*BufDepth+(bufHead[idx]+i)%BufDepth].
	bufStore []*flit.Flit
	bufHead  []int32
	bufLen   []int32

	// Output VC state, SoA over idx: allocation, flow-control credits,
	// the live footprint owner of Section 3.2 (destination of the packets
	// in the downstream buffer, -1 when drained), the persistent
	// footprint register of Section 4.4 (destination of the last packet
	// allocated, surviving drains until overwritten), and the Duato-style
	// conservative-reallocation latch awaiting the tail credit.
	outAlloc     []bool
	outCredits   []int32
	outOwner     []int32
	outRegOwner  []int32
	outAwaitTail []bool

	// Per-port aggregates of the output VC state, maintained on every
	// transition so the routing helpers (routing.AggregateView) answer
	// idle/footprint counts in O(1) instead of scanning every VC.
	// idleMask bit v is set while VC v of the port is idle; fpCnt counts,
	// per (port, destination), the VCs currently owned by that
	// destination.
	idleMask [topo.NumPorts]uint32
	fpCnt    []int16
	regCnt   []int16 // like fpCnt, for the persistent footprint registers
	nodes    int     // cfg.Mesh.Nodes(), fpCnt/regCnt stride

	// portEpoch counts, per output port, the idle/owner/reg-owner state
	// transitions since construction. The route cache's slot memo
	// (routing.EpochView) compares epochs to replay a blocked packet's
	// previous decision without hashing.
	portEpoch [topo.NumPorts]uint32
	// cache/routeSlots are the shared route-decision cache and this
	// router's per-input-VC memo slots; nil/empty when caching is off.
	cache      *routing.Cache
	routeSlots []routing.CacheSlot

	// Output stages: per-port rings of capacity stageCap over one backing
	// array, absorbing the internal speedup.
	stageStore []*flit.Flit
	stageHead  []int32
	stageLen   []int32

	inCh  []*Channel // attached input channels, [port]
	outCh []*Channel // attached output channels, [port]

	va     *alloc.VCAllocator
	saIn   []*alloc.RoundRobin // per input port: VC chooser
	saOut  []*alloc.RoundRobin // per output port: input chooser
	vaReqs []alloc.VCRequest
	// reqPort maps requester index -> the output port its adaptive
	// requests targeted this cycle, for blocking metrics.
	reqPort []topo.Direction
	saVec   []bool // scratch request vector for switch allocation

	// routeCtx is the reusable routing context: Route receives a pointer
	// to it every call, so route computation never heap-allocates. Safe
	// because Route is pure (the routepurity lint) and algorithms do not
	// retain the context.
	routeCtx routing.Context

	// routingMask/activeMask track, per input port, which VCs are in the
	// routing/active state, so the per-cycle scans iterate only occupied
	// VCs (bit twiddling over the mask); the *Total sums plus the
	// buffered-flit and staged-flit totals answer Quiescent for the
	// network's active-router worklist.
	routingMask  [topo.NumPorts]uint32
	activeMask   [topo.NumPorts]uint32
	routingTotal int
	activeTotal  int
	bufTotal     int
	stageTotal   int

	// outFlits counts flits sent per output port, for link-utilization
	// analysis.
	outFlits [topo.NumPorts]int64
	// creditStalls counts VC-cycles an active input VC headed for the
	// output port could not traverse because its output VC had no
	// downstream credits (one count per stalled VC per cycle).
	creditStalls [topo.NumPorts]int64
	// xbarGrants counts crossbar grants won by each output port.
	xbarGrants [topo.NumPorts]int64
	// vcAllocFails counts head packets that requested VCs and received no
	// grant, summed over cycles.
	vcAllocFails int64

	// now is the router's cycle counter. Standalone routers advance it at
	// the end of SwitchAndTraverse; inside a network the worklist may
	// skip idle routers, so the network re-syncs it via SyncClock before
	// each active cycle. It stamps the events sent to the metrics sink.
	now int64
	// wantEvents caches Metrics.WantPacketEvents() so the per-packet
	// lifecycle callbacks cost one branch when no consumer wants them.
	wantEvents bool
	// wantDecisions caches Metrics.WantRouteDecisions() the same way for
	// the per-decision adaptiveness records.
	wantDecisions bool
}

// New constructs a router. Input and output channels are attached later by
// the network with AttachIn/AttachOut.
func New(cfg Config) *Router {
	if cfg.VCs < 1 {
		panic("router: need at least one VC")
	}
	if cfg.VCs > 32 {
		panic("router: at most 32 VCs supported (per-port idle bitmask)")
	}
	if cfg.Alg.UsesEscape() && cfg.VCs < 2 {
		panic("router: Duato-based routing needs at least two VCs")
	}
	if cfg.BufDepth < 1 {
		panic("router: need buffer depth >= 1")
	}
	if cfg.Speedup < 1 {
		panic("router: need speedup >= 1")
	}
	P := topo.NumPorts
	n := P * cfg.VCs
	r := &Router{
		cfg: cfg,
		vcs: cfg.VCs,

		inState:   make([]uint8, n),
		inOutDir:  make([]topo.Direction, n),
		inOutVC:   make([]int32, n),
		inBlocked: make([]int64, n),
		inRouted:  make([]bool, n),
		inReqs:    make([][]routing.Request, n),

		bufStore: make([]*flit.Flit, n*cfg.BufDepth),
		bufHead:  make([]int32, n),
		bufLen:   make([]int32, n),

		outAlloc:     make([]bool, n),
		outCredits:   make([]int32, n),
		outOwner:     make([]int32, n),
		outRegOwner:  make([]int32, n),
		outAwaitTail: make([]bool, n),

		stageStore: make([]*flit.Flit, P*stageCap),
		stageHead:  make([]int32, P),
		stageLen:   make([]int32, P),

		inCh:  make([]*Channel, P),
		outCh: make([]*Channel, P),

		va:      alloc.NewVCAllocator(n, n),
		saIn:    make([]*alloc.RoundRobin, P),
		saOut:   make([]*alloc.RoundRobin, P),
		reqPort: make([]topo.Direction, n),
		saVec:   make([]bool, cfg.VCs),
	}
	for i := 0; i < n; i++ {
		r.outCredits[i] = int32(cfg.BufDepth)
		r.outOwner[i] = -1
		r.outRegOwner[i] = -1
	}
	r.nodes = cfg.Mesh.Nodes()
	r.fpCnt = make([]int16, P*r.nodes)
	r.regCnt = make([]int16, P*r.nodes)
	if cfg.Cache != nil && cfg.Cache.Enabled() {
		r.cache = cfg.Cache
		r.routeSlots = make([]routing.CacheSlot, n)
	}
	for p := 0; p < P; p++ {
		r.saIn[p] = alloc.NewRoundRobin(cfg.VCs)
		r.saOut[p] = alloc.NewRoundRobin(P)
		r.idleMask[p] = uint32(1)<<uint(cfg.VCs) - 1 // all VCs start idle
	}
	// The routing context is built once and reused: Route receives a
	// pointer to it every call (only Dest and InDir vary), so route
	// computation never heap-allocates. Safe because Route is pure (the
	// routepurity lint) and algorithms do not retain the context.
	r.routeCtx = routing.Context{
		Mesh: cfg.Mesh,
		Cur:  cfg.NodeID,
		View: r,
		Rand: cfg.Rand,
	}
	if cfg.Metrics != nil {
		r.wantEvents = cfg.Metrics.WantPacketEvents()
		r.wantDecisions = cfg.Metrics.WantRouteDecisions()
	}
	return r
}

// AttachIn connects ch as the input channel arriving at port d.
func (r *Router) AttachIn(d topo.Direction, ch *Channel) { r.inCh[d] = ch }

// AttachOut connects ch as the output channel leaving port d.
func (r *Router) AttachOut(d topo.Direction, ch *Channel) { r.outCh[d] = ch }

// NodeID returns the router's node id.
func (r *Router) NodeID() int { return r.cfg.NodeID }

// SyncClock sets the router's cycle counter. The network calls it before
// stepping an active router, so event timestamps stay correct even when
// the worklist skipped the router for any number of idle cycles.
func (r *Router) SyncClock(now int64) { r.now = now }

// Quiescent reports that the router holds no work at a cycle boundary:
// no input VC is routing or active, no flit is buffered, and no flit
// waits in an output stage. A quiescent router's cycle is a no-op (all
// remaining state transitions are driven by channel arrivals, which the
// network watches separately), so the active-router worklist may skip it
// without changing any simulated result.
func (r *Router) Quiescent() bool {
	return r.routingTotal == 0 && r.activeTotal == 0 && r.bufTotal == 0 && r.stageTotal == 0
}

// idx flattens (port, vc) into the dense SoA / VC-allocator index.
func (r *Router) idx(d topo.Direction, vc int) int { return int(d)*r.vcs + vc }

// outIdle reports whether output VC idx is unoccupied: free for
// allocation with an empty downstream buffer.
func (r *Router) outIdle(idx int) bool {
	return !r.outAlloc[idx] && !r.outAwaitTail[idx] && int(r.outCredits[idx]) == r.cfg.BufDepth
}

// refreshIdleBit re-derives output VC idx's bit of the per-port idle
// bitmask, bumping the port's state epoch on an actual flip. Call after
// any mutation of outAlloc, outCredits or outAwaitTail.
func (r *Router) refreshIdleBit(idx int) {
	p := idx / r.vcs
	bit := uint32(1) << uint(idx%r.vcs)
	old := r.idleMask[p]
	if r.outIdle(idx) {
		r.idleMask[p] = old | bit
	} else {
		r.idleMask[p] = old &^ bit
	}
	if r.idleMask[p] != old {
		r.portEpoch[p]++
	}
}

// setOwner moves output VC idx's footprint owner to dest (-1 on drain),
// keeping the per-(port, destination) owner counts and the port's state
// epoch in step.
func (r *Router) setOwner(idx, dest int) {
	old := int(r.outOwner[idx])
	if old == dest {
		return
	}
	p := idx / r.vcs
	if old >= 0 {
		r.fpCnt[p*r.nodes+old]--
	}
	if dest >= 0 {
		r.fpCnt[p*r.nodes+dest]++
	}
	r.outOwner[idx] = int32(dest)
	r.portEpoch[p]++
}

// setRegOwner moves output VC idx's persistent footprint register to
// dest, keeping the per-(port, destination) register counts and the
// port's state epoch in step.
func (r *Router) setRegOwner(idx, dest int) {
	old := int(r.outRegOwner[idx])
	if old == dest {
		return
	}
	p := idx / r.vcs
	if old >= 0 {
		r.regCnt[p*r.nodes+old]--
	}
	if dest >= 0 {
		r.regCnt[p*r.nodes+dest]++
	}
	r.outRegOwner[idx] = int32(dest)
	r.portEpoch[p]++
}

// --- input buffer rings ----------------------------------------------------

// bufFront returns the front flit of input VC idx, or nil.
func (r *Router) bufFront(idx int) *flit.Flit {
	if r.bufLen[idx] == 0 {
		return nil
	}
	return r.bufStore[idx*r.cfg.BufDepth+int(r.bufHead[idx])]
}

// bufAt returns the i-th buffered flit of input VC idx (0 = front).
func (r *Router) bufAt(idx, i int) *flit.Flit {
	depth := r.cfg.BufDepth
	return r.bufStore[idx*depth+(int(r.bufHead[idx])+i)%depth]
}

// bufPush appends f to input VC idx, panicking on overflow (credits
// guarantee space).
func (r *Router) bufPush(idx int, f *flit.Flit) {
	depth := r.cfg.BufDepth
	if int(r.bufLen[idx]) >= depth {
		panic(fmt.Sprintf("router %d: input buffer overflow port %v vc %d",
			r.cfg.NodeID, topo.Direction(idx/r.vcs), idx%r.vcs))
	}
	pos := (int(r.bufHead[idx]) + int(r.bufLen[idx])) % depth
	r.bufStore[idx*depth+pos] = f
	r.bufLen[idx]++
	r.bufTotal++
}

// bufPop removes and returns the front flit of input VC idx.
func (r *Router) bufPop(idx int) *flit.Flit {
	depth := r.cfg.BufDepth
	pos := idx*depth + int(r.bufHead[idx])
	f := r.bufStore[pos]
	r.bufStore[pos] = nil
	r.bufHead[idx] = int32((int(r.bufHead[idx]) + 1) % depth)
	r.bufLen[idx]--
	r.bufTotal--
	return f
}

// --- output stage rings ----------------------------------------------------

// stagePush appends f to output port o's stage.
func (r *Router) stagePush(o int, f *flit.Flit) {
	if int(r.stageLen[o]) >= stageCap {
		panic(fmt.Sprintf("router %d: output stage overflow port %v", r.cfg.NodeID, topo.Direction(o)))
	}
	pos := (int(r.stageHead[o]) + int(r.stageLen[o])) % stageCap
	r.stageStore[o*stageCap+pos] = f
	r.stageLen[o]++
	r.stageTotal++
}

// stagePop removes and returns the front flit of output port o's stage.
func (r *Router) stagePop(o int) *flit.Flit {
	pos := o*stageCap + int(r.stageHead[o])
	f := r.stageStore[pos]
	r.stageStore[pos] = nil
	r.stageHead[o] = int32((int(r.stageHead[o]) + 1) % stageCap)
	r.stageLen[o]--
	r.stageTotal--
	return f
}

// --- routing.View ---------------------------------------------------------

// VCs implements routing.View.
func (r *Router) VCs() int { return r.vcs }

// VCIdle implements routing.View: a VC is idle when its downstream buffer
// is fully drained and no packet holds it. The footprint owner register
// is independent state and may still name a destination.
func (r *Router) VCIdle(d topo.Direction, v int) bool {
	return r.outIdle(r.idx(d, v))
}

// VCOwner implements routing.View.
func (r *Router) VCOwner(d topo.Direction, v int) int { return int(r.outOwner[r.idx(d, v)]) }

// VCRegOwner implements routing.View: the persistent footprint register.
func (r *Router) VCRegOwner(d topo.Direction, v int) int { return int(r.outRegOwner[r.idx(d, v)]) }

// DownstreamIdle implements routing.View by delegating to the network.
func (r *Router) DownstreamIdle(d topo.Direction, dest int) int {
	if r.cfg.Downstream == nil {
		return 0
	}
	return r.cfg.Downstream.DownstreamIdle(r.cfg.NodeID, d, dest)
}

// IdleCount implements routing.AggregateView: the number of idle VCs of
// port d in [lo, VCs), read off the maintained idle bitmask.
func (r *Router) IdleCount(d topo.Direction, lo int) int {
	return bits.OnesCount32(r.idleMask[d] >> uint(lo))
}

// IdleBits implements routing.BitsView: the maintained idle bitmask of
// port d.
func (r *Router) IdleBits(d topo.Direction) uint32 { return r.idleMask[d] }

// OwnerBits implements routing.BitsView: the VCs of port d owned by dest,
// built from the owner array without per-VC interface dispatch. The
// maintained owner count short-circuits the common no-footprint case.
func (r *Router) OwnerBits(d topo.Direction, dest int) uint32 {
	if dest < 0 || r.fpCnt[int(d)*r.nodes+dest] == 0 {
		return 0
	}
	base := int(d) * r.vcs
	var m uint32
	for v := 0; v < r.vcs; v++ {
		if int(r.outOwner[base+v]) == dest {
			m |= uint32(1) << uint(v)
		}
	}
	return m
}

// RegOwnerBits implements routing.BitsView: the VCs of port d whose
// persistent footprint register names dest, with the same count-based
// short-circuit as OwnerBits.
func (r *Router) RegOwnerBits(d topo.Direction, dest int) uint32 {
	if dest < 0 || r.regCnt[int(d)*r.nodes+dest] == 0 {
		return 0
	}
	base := int(d) * r.vcs
	var m uint32
	for v := 0; v < r.vcs; v++ {
		if int(r.outRegOwner[base+v]) == dest {
			m |= uint32(1) << uint(v)
		}
	}
	return m
}

// PortEpoch implements routing.EpochView: the output port's cumulative
// idle/owner/reg-owner transition count. While a port's epoch stands
// still, every routing-visible bit of its state is unchanged.
func (r *Router) PortEpoch(d topo.Direction) uint32 { return r.portEpoch[d] }

// FootprintCount implements routing.AggregateView: the number of VCs of
// port d in [lo, VCs) currently owned by dest, read off the maintained
// owner counts (the escape VCs below lo are deducted by inspection; lo
// is 0 or 1 in practice).
func (r *Router) FootprintCount(d topo.Direction, dest, lo int) int {
	if dest < 0 {
		return 0
	}
	n := int(r.fpCnt[int(d)*r.nodes+dest])
	base := int(d) * r.vcs
	for v := 0; v < lo; v++ {
		if int(r.outOwner[base+v]) == dest {
			n--
		}
	}
	return n
}

// IdleAdaptiveToward returns the number of idle adaptive VCs over the
// productive output ports of this router toward dest (ejection port when
// dest is this node). The network uses it to answer DownstreamIdle for
// neighbours.
func (r *Router) IdleAdaptiveToward(dest int) int {
	lo := 0
	if r.cfg.Alg.UsesEscape() {
		lo = 1
	}
	if dest == r.cfg.NodeID {
		return r.IdleCount(topo.Local, lo)
	}
	dx, hasX, dy, hasY := r.cfg.Mesh.MinimalDirs(r.cfg.NodeID, dest)
	n := 0
	if hasX {
		n += r.IdleCount(dx, lo)
	}
	if hasY {
		n += r.IdleCount(dy, lo)
	}
	return n
}

// --- per-cycle phases ------------------------------------------------------

// Receive ingests flits and credits that arrived on the attached channels.
// Phase A; the network runs it for every active router before any other
// phase.
func (r *Router) Receive() {
	for p := 0; p < topo.NumPorts; p++ {
		ch := r.inCh[p]
		if ch != nil {
			if f := ch.Recv(); f != nil {
				i := r.idx(topo.Direction(p), f.VC)
				r.bufPush(i, f)
				if f.Head {
					f.Packet.Hops++
				}
				// Promote an idle input VC straight to routing: a VC is
				// idle only while its buffer is empty, so this flit is the
				// front and must be a head.
				if r.inState[i] == vcIdle {
					if !f.Head {
						panic("router: non-head flit at front of idle VC")
					}
					r.inState[i] = vcRouting
					r.inRouted[i] = false
					r.inBlocked[i] = 0
					r.routingMask[p] |= uint32(1) << uint(f.VC)
					r.routingTotal++
				}
			}
		}
		if och := r.outCh[p]; och != nil {
			for _, cr := range och.RecvCredits() {
				i := r.idx(topo.Direction(p), cr.VC)
				r.outCredits[i]++
				if int(r.outCredits[i]) > r.cfg.BufDepth {
					panic(fmt.Sprintf("router %d: credit overflow port %v vc %d",
						r.cfg.NodeID, topo.Direction(p), cr.VC))
				}
				if cr.Tail {
					r.outAwaitTail[i] = false
				}
				r.refreshIdleBit(i)
				if r.outIdle(i) {
					// The footprint register clears once the VC fully
					// drains: a footprint VC is one currently occupied
					// by packets to its owner destination.
					r.setOwner(i, -1)
				}
			}
		}
	}
}

// resIndex flattens (port, vc) into a VC-allocator resource index.
func (r *Router) resIndex(d topo.Direction, vc int) int { return int(d)*r.vcs + vc }

// AllocateVCs runs route computation and VC allocation for every input VC
// in routing state. Phase B+C.
func (r *Router) AllocateVCs() {
	if r.routingTotal == 0 {
		return
	}
	r.vaReqs = r.vaReqs[:0]
	for p := 0; p < topo.NumPorts; p++ {
		// Iterate only the VCs in routing state, lowest first (the same
		// order the dense scan visited them in).
		for m := r.routingMask[p]; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			requester := r.idx(topo.Direction(p), v)
			f := r.bufFront(requester)
			if !r.inRouted[requester] || !r.cfg.StickyRouting {
				// By default the route (and its VC request set) is
				// re-evaluated every cycle while the packet waits, so
				// adaptive decisions track the live congestion state.
				// With Config.StickyRouting the set is computed once per
				// packet per router and retried until granted; see
				// DESIGN.md for why the default reproduces the paper's
				// results and stickiness does not.
				if r.wantEvents && !r.inRouted[requester] {
					r.cfg.Metrics.OnRoute(r.now, r.cfg.NodeID, f.Packet, topo.Direction(p))
				}
				reqs := r.inReqs[requester][:0]
				if f.Packet.Dest == r.cfg.NodeID {
					// Ejection: request every local-port VC obliviously.
					for ev := 0; ev < r.vcs; ev++ {
						reqs = append(reqs, routing.Request{Dir: topo.Local, VC: ev, Pri: alloc.Low})
					}
					r.reqPort[requester] = topo.Local
				} else {
					// Only Dest and InDir vary per call; the rest of the
					// context was bound at construction.
					r.routeCtx.Dest = f.Packet.Dest
					r.routeCtx.InDir = topo.Direction(p)
					if r.cache != nil {
						reqs = r.cache.Requests(r.cfg.Alg, &r.routeCtx, &r.routeSlots[requester], reqs)
					} else {
						reqs = r.cfg.Alg.Route(&r.routeCtx, reqs)
					}
					if len(reqs) > 0 {
						// The first request's port is the adaptive choice
						// (escape request is appended last by convention).
						r.reqPort[requester] = reqs[0].Dir
					}
					if r.wantDecisions && !r.inRouted[requester] {
						r.emitDecision(topo.Direction(p), f.Packet.Dest, reqs, f.Packet)
					}
				}
				r.inReqs[requester] = reqs
				r.inRouted[requester] = true
			}
			for _, rq := range r.inReqs[requester] {
				res := r.resIndex(rq.Dir, rq.VC)
				if r.outAlloc[res] || r.outAwaitTail[res] {
					continue // not allocatable this cycle
				}
				r.vaReqs = append(r.vaReqs, alloc.VCRequest{
					Requester: requester,
					Resource:  res,
					Pri:       rq.Pri,
				})
			}
		}
	}

	grants := r.va.Allocate(r.vaReqs)
	for _, g := range grants {
		od := topo.Direction(g.Resource / r.vcs)
		ovc := g.Resource % r.vcs
		r.inState[g.Requester] = vcActive
		r.inOutDir[g.Requester] = od
		r.inOutVC[g.Requester] = int32(ovc)
		inBit := uint32(1) << uint(g.Requester%r.vcs)
		r.routingMask[g.Requester/r.vcs] &^= inBit
		r.routingTotal--
		r.activeMask[g.Requester/r.vcs] |= inBit
		r.activeTotal++
		dest := r.bufFront(g.Requester).Packet.Dest
		var class VCClass
		if r.wantEvents {
			// Classify against the pre-grant state: the assignments below
			// mark the VC allocated/owned, which would read as busy.
			class = r.classifyVC(od, ovc, dest)
		}
		r.outAlloc[g.Resource] = true
		r.refreshIdleBit(g.Resource)
		r.setOwner(g.Resource, dest)
		r.setRegOwner(g.Resource, dest)
		if r.wantEvents {
			r.cfg.Metrics.OnVCAllocGrant(r.now, r.cfg.NodeID, r.bufFront(g.Requester).Packet,
				od, ovc, class, r.inBlocked[g.Requester])
		}
	}

	// Blocking bookkeeping: every head packet that tried and failed. The
	// grant loop above removed granted VCs from the routing masks, so the
	// remaining bits are exactly the failures.
	for p := 0; p < topo.NumPorts; p++ {
		for m := r.routingMask[p]; m != 0; m &= m - 1 {
			requester := r.idx(topo.Direction(p), bits.TrailingZeros32(m))
			r.inBlocked[requester]++
			r.vcAllocFails++
			if r.cfg.Metrics != nil {
				out := r.reqPort[requester]
				fp, busy := r.portOccupancy(out, r.bufFront(requester).Packet.Dest)
				r.cfg.Metrics.OnVCAllocFailure(r.now, r.cfg.NodeID, r.bufFront(requester).Packet,
					out, fp, busy, r.inBlocked[requester])
			}
		}
	}
}

// portOccupancy counts footprint and busy adaptive VCs of port d with
// respect to dest.
func (r *Router) portOccupancy(d topo.Direction, dest int) (fp, busy int) {
	lo := 0
	if r.cfg.Alg.UsesEscape() {
		lo = 1
	}
	// An owned VC is never idle, so the footprint VCs are a subset of the
	// busy ones and both counts come from the aggregates.
	busy = (r.vcs - lo) - r.IdleCount(d, lo)
	fp = r.FootprintCount(d, dest, lo)
	return fp, busy
}

// SwitchAndTraverse performs switch allocation and switch traversal for
// Speedup iterations, then drains one flit per output port onto its
// channel. Phase D+E.
func (r *Router) SwitchAndTraverse() {
	P := topo.NumPorts
	if r.activeTotal > 0 || r.stageTotal > 0 {
		for iter := 0; iter < r.cfg.Speedup; iter++ {
			// Input stage: each input port nominates one ready VC.
			type nominee struct {
				vc int
				ok bool
			}
			var noms [topo.NumPorts]nominee
			var outReq [topo.NumPorts][topo.NumPorts]bool // [out][in]
			var outAny [topo.NumPorts]bool
			nominated := false
			for p := 0; p < P; p++ {
				if r.activeMask[p] == 0 {
					continue
				}
				for v := range r.saVec {
					r.saVec[v] = false
				}
				anyReady := false
				for m := r.activeMask[p]; m != 0; m &= m - 1 {
					v := bits.TrailingZeros32(m)
					ready := r.vcReady(p, v)
					r.saVec[v] = ready
					if ready {
						anyReady = true
					} else if iter == 0 {
						// Diagnose the stall once per cycle: an active VC
						// with buffered flits whose output VC is out of
						// credits is backpressure from downstream.
						i := r.idx(topo.Direction(p), v)
						if r.bufLen[i] > 0 &&
							r.outCredits[r.resIndex(r.inOutDir[i], int(r.inOutVC[i]))] == 0 {
							r.creditStalls[r.inOutDir[i]]++
						}
					}
				}
				if !anyReady {
					continue // arbitrating an all-false vector is a no-op
				}
				if v := r.saIn[p].Arbitrate(r.saVec); v >= 0 {
					noms[p] = nominee{vc: v, ok: true}
					od := r.inOutDir[r.idx(topo.Direction(p), v)]
					outReq[od][p] = true
					outAny[od] = true
					nominated = true
				}
			}
			// Output stage: each output port grants one input port.
			// Arbitrating an empty vector is a no-op that leaves the
			// round-robin pointer alone, so unrequested ports are skipped.
			for o := 0; o < P; o++ {
				if !outAny[o] {
					continue
				}
				in := r.saOut[o].Arbitrate(outReq[o][:])
				if in < 0 {
					continue
				}
				r.traverse(in, noms[in].vc)
			}
			if !nominated {
				// Nothing was ready and nothing moved, so every remaining
				// speedup iteration would be an identical no-op.
				break
			}
		}
		// Link traversal: one flit per output channel per cycle.
		for o := 0; o < P; o++ {
			if r.stageLen[o] == 0 {
				continue
			}
			ch := r.outCh[o]
			if ch == nil || !ch.CanSend() {
				continue
			}
			ch.Send(r.stagePop(o))
			r.outFlits[o]++
		}
	}
	r.now++
}

// OutputFlits returns the number of flits the router has sent through
// output port d since construction, for utilization analysis.
func (r *Router) OutputFlits(d topo.Direction) int64 { return r.outFlits[d] }

// CreditStalls returns the cumulative VC-cycles in which an active input
// VC headed for output port d could not traverse the switch because its
// output VC had no downstream credits.
func (r *Router) CreditStalls(d topo.Direction) int64 { return r.creditStalls[d] }

// CrossbarGrants returns the cumulative crossbar grants won by output
// port d (one per flit crossing the switch, including speedup passes).
func (r *Router) CrossbarGrants(d topo.Direction) int64 { return r.xbarGrants[d] }

// VCAllocFailures returns the cumulative count of head packets that
// requested output VCs and received no grant, summed over cycles.
func (r *Router) VCAllocFailures() int64 { return r.vcAllocFails }

// InputBufferOccupancy returns the total flits buffered across the VCs of
// input port d.
func (r *Router) InputBufferOccupancy(d topo.Direction) int {
	n := 0
	base := int(d) * r.vcs
	for v := 0; v < r.vcs; v++ {
		n += int(r.bufLen[base+v])
	}
	return n
}

// vcReady reports whether input VC (p, v) can traverse the switch now.
func (r *Router) vcReady(p, v int) bool {
	i := r.idx(topo.Direction(p), v)
	if r.inState[i] != vcActive || r.bufLen[i] == 0 {
		return false
	}
	return r.outCredits[r.resIndex(r.inOutDir[i], int(r.inOutVC[i]))] > 0 &&
		int(r.stageLen[r.inOutDir[i]]) < stageCap
}

// traverse moves the front flit of input VC (p, v) into its output stage,
// returning a credit upstream and managing wormhole state.
func (r *Router) traverse(p, v int) {
	i := r.idx(topo.Direction(p), v)
	f := r.bufPop(i)
	od := r.inOutDir[i]
	ovc := int(r.inOutVC[i])
	res := r.resIndex(od, ovc)
	f.VC = ovc
	r.outCredits[res]--
	r.refreshIdleBit(res)
	r.stagePush(int(od), f)
	r.xbarGrants[od]++
	if r.wantEvents && f.Head {
		r.cfg.Metrics.OnHeadTraverse(r.now, r.cfg.NodeID, f.Packet, od, ovc)
	}

	// Return a credit for the freed input buffer slot.
	if ch := r.inCh[p]; ch != nil {
		ch.SendCredit(flit.Credit{VC: v, Tail: f.Tail})
	}

	if f.Tail {
		r.outAlloc[res] = false
		if r.cfg.Alg.ConservativeRealloc() {
			r.outAwaitTail[res] = true
		}
		r.refreshIdleBit(res)
		// Next packet (if already buffered) starts routing next cycle.
		inBit := uint32(1) << uint(v)
		r.activeMask[p] &^= inBit
		r.activeTotal--
		r.inState[i] = vcIdle
		if nf := r.bufFront(i); nf != nil {
			if !nf.Head {
				panic("router: flit interleaving detected")
			}
			r.inState[i] = vcRouting
			r.inRouted[i] = false
			r.inBlocked[i] = 0
			r.routingMask[p] |= inBit
			r.routingTotal++
		}
	}
}

// InputBufferUse returns the number of buffered flits at input port d,
// VC v; the congestion-tree analyzer reads it.
func (r *Router) InputBufferUse(d topo.Direction, v int) int {
	return int(r.bufLen[r.idx(d, v)])
}

// InputVCBlocked returns how many consecutive cycles the head packet of
// input VC (d, v) has failed VC allocation; 0 when not blocked.
func (r *Router) InputVCBlocked(d topo.Direction, v int) int64 {
	i := r.idx(d, v)
	if r.inState[i] != vcRouting {
		return 0
	}
	return r.inBlocked[i]
}

// InputVCDest returns the destination of the packet at the front of input
// VC (d, v), or -1 when empty.
func (r *Router) InputVCDest(d topo.Direction, v int) int {
	f := r.bufFront(r.idx(d, v))
	if f == nil {
		return -1
	}
	return f.Packet.Dest
}

// InputVCPurity inspects the buffer of input VC (d, v): occupied reports
// whether it holds any flits, and pure whether every buffered packet
// shares one destination. A pure VC blocks only its own flow (a footprint
// chain); an impure VC is head-of-line blocking unrelated packets. The
// paper's Figure 10(b) "purity of blocking" aggregates this.
func (r *Router) InputVCPurity(d topo.Direction, v int) (occupied, pure bool) {
	i := r.idx(d, v)
	n := int(r.bufLen[i])
	if n == 0 {
		return false, false
	}
	dest := r.bufFront(i).Packet.Dest
	for j := 1; j < n; j++ {
		if r.bufAt(i, j).Packet.Dest != dest {
			return true, false
		}
	}
	return true, true
}

// OutVCAllocated reports whether output VC (d, v) is currently held by a
// packet.
func (r *Router) OutVCAllocated(d topo.Direction, v int) bool {
	return r.outAlloc[r.idx(d, v)]
}

// OutVCCredits returns the available credits of output VC (d, v).
func (r *Router) OutVCCredits(d topo.Direction, v int) int {
	return int(r.outCredits[r.idx(d, v)])
}
