package router

import (
	"math/rand"
	"testing"

	"nocsim/internal/alloc"
	"nocsim/internal/flit"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// scriptAlg issues fixed requests per destination, for microarchitecture
// unit tests.
type scriptAlg struct {
	reqs         map[int][]routing.Request
	escape       bool
	conservative bool
}

func (s *scriptAlg) Name() string              { return "script" }
func (s *scriptAlg) UsesEscape() bool          { return s.escape }
func (s *scriptAlg) ConservativeRealloc() bool { return s.conservative }
func (s *scriptAlg) Route(ctx *routing.Context, out []routing.Request) []routing.Request {
	return append(out, s.reqs[ctx.Dest]...)
}

func testRouter(t *testing.T, alg routing.Algorithm, vcs int) (*Router, map[topo.Direction]*Channel, map[topo.Direction]*Channel) {
	t.Helper()
	r := New(Config{
		Mesh: topo.MustNew(4, 4), NodeID: 5, VCs: vcs, BufDepth: 4,
		Speedup: 2, Alg: alg, Rand: rand.New(rand.NewSource(1)),
	})
	ins := map[topo.Direction]*Channel{}
	outs := map[topo.Direction]*Channel{}
	for d := topo.East; d <= topo.Local; d++ {
		ins[d] = NewChannel()
		outs[d] = NewChannel()
		r.AttachIn(d, ins[d])
		r.AttachOut(d, outs[d])
	}
	return r, ins, outs
}

func headFlit(id uint64, dest, size int) []*flit.Flit {
	return flit.Segment(&flit.Packet{ID: id, Src: 0, Dest: dest, Size: size})
}

func TestNewValidation(t *testing.T) {
	alg := &scriptAlg{}
	cases := []Config{
		{Mesh: topo.MustNew(2, 2), VCs: 0, BufDepth: 4, Speedup: 1, Alg: alg},
		{Mesh: topo.MustNew(2, 2), VCs: 2, BufDepth: 0, Speedup: 1, Alg: alg},
		{Mesh: topo.MustNew(2, 2), VCs: 2, BufDepth: 4, Speedup: 0, Alg: alg},
		{Mesh: topo.MustNew(2, 2), VCs: 1, BufDepth: 4, Speedup: 1, Alg: &scriptAlg{escape: true}},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSingleFlitTraversal(t *testing.T) {
	alg := &scriptAlg{reqs: map[int][]routing.Request{
		6: {{Dir: topo.East, VC: 1, Pri: alloc.Low}},
	}}
	r, ins, outs := testRouter(t, alg, 2)
	f := headFlit(1, 6, 1)[0]
	f.VC = 0
	ins[topo.West].Send(f)
	ins[topo.West].Tick()

	r.Receive()
	r.AllocateVCs()
	r.SwitchAndTraverse()
	outs[topo.East].Tick()

	got := outs[topo.East].Recv()
	if got == nil {
		t.Fatal("flit did not traverse in one cycle")
	}
	if got.VC != 1 {
		t.Errorf("output VC = %d, want 1 (rewritten by VA)", got.VC)
	}
	// Credit for the freed input slot goes back upstream.
	ins[topo.West].Tick()
	crs := ins[topo.West].RecvCredits()
	if len(crs) != 1 || crs[0].VC != 0 || !crs[0].Tail {
		t.Errorf("upstream credit = %v", crs)
	}
}

func TestOwnerRegisterLifecycle(t *testing.T) {
	alg := &scriptAlg{reqs: map[int][]routing.Request{
		6: {{Dir: topo.East, VC: 1, Pri: alloc.Low}},
	}}
	r, ins, outs := testRouter(t, alg, 2)
	f := headFlit(1, 6, 1)[0]
	f.VC = 0
	ins[topo.West].Send(f)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	if got := r.VCOwner(topo.East, 1); got != 6 {
		t.Fatalf("owner after allocation = %d, want 6", got)
	}
	if r.VCIdle(topo.East, 1) {
		t.Error("allocated VC reported idle")
	}
	r.SwitchAndTraverse()
	// Flit left; downstream must drain and return the credit before the
	// owner clears.
	if got := r.VCOwner(topo.East, 1); got != 6 {
		t.Error("owner cleared before downstream drained")
	}
	outs[topo.East].SendCredit(flit.Credit{VC: 1, Tail: true})
	outs[topo.East].Tick()
	r.Receive()
	if got := r.VCOwner(topo.East, 1); got != -1 {
		t.Errorf("owner after drain = %d, want -1", got)
	}
	if !r.VCIdle(topo.East, 1) {
		t.Error("drained VC not idle")
	}
}

func TestConservativeReallocWaitsForTailCredit(t *testing.T) {
	alg := &scriptAlg{
		reqs: map[int][]routing.Request{
			6: {{Dir: topo.East, VC: 1, Pri: alloc.Low}},
		},
		conservative: true,
	}
	r, ins, outs := testRouter(t, alg, 2)
	f1 := headFlit(1, 6, 1)[0]
	f1.VC = 0
	ins[topo.West].Send(f1)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	r.SwitchAndTraverse()

	// Second packet arrives wanting the same output VC.
	f2 := headFlit(2, 6, 1)[0]
	f2.VC = 1
	ins[topo.West].Send(f2)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	if r.OutVCAllocated(topo.East, 1) {
		t.Fatal("VC reallocated before tail credit (conservative realloc broken)")
	}
	// Tail credit arrives; now reallocation may happen.
	outs[topo.East].SendCredit(flit.Credit{VC: 1, Tail: true})
	outs[topo.East].Tick()
	r.Receive()
	r.AllocateVCs()
	if !r.OutVCAllocated(topo.East, 1) {
		t.Fatal("VC not reallocated after tail credit")
	}
}

func TestEagerReallocAfterTailSend(t *testing.T) {
	alg := &scriptAlg{
		reqs: map[int][]routing.Request{
			6: {{Dir: topo.East, VC: 1, Pri: alloc.Low}},
		},
		conservative: false,
	}
	r, ins, _ := testRouter(t, alg, 2)
	f1 := headFlit(1, 6, 1)[0]
	f1.VC = 0
	ins[topo.West].Send(f1)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	r.SwitchAndTraverse()

	f2 := headFlit(2, 6, 1)[0]
	f2.VC = 1
	ins[topo.West].Send(f2)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	if !r.OutVCAllocated(topo.East, 1) {
		t.Fatal("eager realloc should allow immediate reallocation after tail send")
	}
}

func TestWormholeHoldsVCForWholePacket(t *testing.T) {
	alg := &scriptAlg{reqs: map[int][]routing.Request{
		6: {{Dir: topo.East, VC: 0, Pri: alloc.Low}},
	}}
	r, ins, outs := testRouter(t, alg, 2)
	flits := headFlit(1, 6, 3)
	for i, f := range flits {
		f.VC = 0
		ins[topo.West].Send(f)
		ins[topo.West].Tick()
		r.Receive()
		r.AllocateVCs()
		r.SwitchAndTraverse()
		outs[topo.East].Tick()
		got := outs[topo.East].Recv()
		if got == nil {
			t.Fatalf("flit %d stalled", i)
		}
		if got.Seq != i {
			t.Fatalf("flit order broken: got seq %d at position %d", got.Seq, i)
		}
		midPacket := i < len(flits)-1
		if r.OutVCAllocated(topo.East, 0) != midPacket {
			t.Errorf("after flit %d: allocated=%v, want %v", i, !midPacket, midPacket)
		}
	}
}

func TestCreditsNeverExceedDepth(t *testing.T) {
	alg := &scriptAlg{}
	r, _, outs := testRouter(t, alg, 2)
	outs[topo.East].SendCredit(flit.Credit{VC: 0})
	outs[topo.East].Tick()
	defer func() {
		if recover() == nil {
			t.Error("credit overflow not detected")
		}
	}()
	r.Receive() // credits already at depth: must panic
}

func TestStickyRoutingFreezesRequests(t *testing.T) {
	// With sticky routing the algorithm must be consulted exactly once
	// per packet per router even while blocked.
	calls := 0
	alg := &countingScriptAlg{
		scriptAlg: scriptAlg{reqs: map[int][]routing.Request{
			6: {{Dir: topo.East, VC: 0, Pri: alloc.Low}},
		}},
		calls: &calls,
	}
	r := New(Config{
		Mesh: topo.MustNew(4, 4), NodeID: 5, VCs: 2, BufDepth: 4,
		Speedup: 2, Alg: alg, Rand: rand.New(rand.NewSource(1)),
		StickyRouting: true,
	})
	in := NewChannel()
	r.AttachIn(topo.West, in)
	out := NewChannel()
	r.AttachOut(topo.East, out)
	// Block the target VC by pre-allocating it.
	blocker := headFlit(9, 6, 2)[0]
	blocker.VC = 1
	in.Send(blocker)
	in.Tick()
	r.Receive()
	r.AllocateVCs() // blocker takes East VC0
	f := headFlit(1, 6, 1)[0]
	f.VC = 0
	in.Send(f)
	in.Tick()
	r.Receive()
	for i := 0; i < 5; i++ {
		r.AllocateVCs() // blocked: East VC0 is held
	}
	if calls != 2 { // once for the blocker, once for the blocked packet
		t.Errorf("route computed %d times under sticky routing, want 2", calls)
	}
}

type countingScriptAlg struct {
	scriptAlg
	calls *int
}

func (c *countingScriptAlg) Route(ctx *routing.Context, out []routing.Request) []routing.Request {
	*c.calls++
	return c.scriptAlg.Route(ctx, out)
}

func TestEjectionRequestsLocalPort(t *testing.T) {
	alg := &scriptAlg{}
	r, ins, outs := testRouter(t, alg, 2)
	f := headFlit(1, 5, 1)[0] // dest == NodeID
	f.VC = 0
	ins[topo.West].Send(f)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	r.SwitchAndTraverse()
	outs[topo.Local].Tick()
	if got := outs[topo.Local].Recv(); got == nil {
		t.Fatal("packet for this node not sent to the local port")
	}
}

func TestInputVCBlockedCounter(t *testing.T) {
	// A packet whose only requested VC is held must accumulate blocked
	// cycles.
	alg := &scriptAlg{reqs: map[int][]routing.Request{
		6: {{Dir: topo.East, VC: 0, Pri: alloc.Low}},
	}}
	r, ins, _ := testRouter(t, alg, 2)
	b := headFlit(9, 6, 2)[0] // multi-flit: holds the VC
	b.VC = 0
	ins[topo.West].Send(b)
	ins[topo.West].Tick()
	r.Receive()
	r.AllocateVCs()
	f := headFlit(1, 6, 1)[0]
	f.VC = 1
	ins[topo.West].Send(f)
	ins[topo.West].Tick()
	r.Receive()
	for i := 0; i < 3; i++ {
		r.AllocateVCs()
	}
	if got := r.InputVCBlocked(topo.West, 1); got != 3 {
		t.Errorf("blocked = %d, want 3", got)
	}
	if got := r.InputVCBlocked(topo.West, 0); got != 0 {
		t.Errorf("active VC blocked = %d, want 0", got)
	}
}

func TestInputVCPurity(t *testing.T) {
	alg := &scriptAlg{}
	r, ins, _ := testRouter(t, alg, 2)
	if occ, _ := r.InputVCPurity(topo.West, 0); occ {
		t.Error("empty VC reported occupied")
	}
	// Two single-flit packets to the same dest share VC0's buffer: pure.
	for _, id := range []uint64{1, 2} {
		f := headFlit(id, 6, 1)[0]
		f.VC = 0
		ins[topo.West].Send(f)
		ins[topo.West].Tick()
		r.Receive()
	}
	if occ, pure := r.InputVCPurity(topo.West, 0); !occ || !pure {
		t.Errorf("same-dest buffer: occ=%v pure=%v, want true,true", occ, pure)
	}
	// Mixed destinations in VC1: impure.
	for i, dest := range []int{6, 9} {
		f := headFlit(uint64(10+i), dest, 1)[0]
		f.VC = 1
		ins[topo.West].Send(f)
		ins[topo.West].Tick()
		r.Receive()
	}
	if occ, pure := r.InputVCPurity(topo.West, 1); !occ || pure {
		t.Errorf("mixed buffer: occ=%v pure=%v, want true,false", occ, pure)
	}
}

func TestSpeedupMovesTwoFlitsPerCycle(t *testing.T) {
	// Two packets on different input VCs to different output VCs: with
	// speedup 2 both traverse in one cycle.
	alg := &scriptAlg{reqs: map[int][]routing.Request{
		6: {{Dir: topo.East, VC: 0, Pri: alloc.Low}},
		9: {{Dir: topo.South, VC: 0, Pri: alloc.Low}},
	}}
	r, ins, outs := testRouter(t, alg, 2)
	fa := headFlit(1, 6, 1)[0]
	fa.VC = 0
	fb := headFlit(2, 9, 1)[0]
	fb.VC = 1
	ins[topo.West].Send(fa)
	ins[topo.North].Send(fb)
	ins[topo.West].Tick()
	ins[topo.North].Tick()
	r.Receive()
	r.AllocateVCs()
	r.SwitchAndTraverse()
	outs[topo.East].Tick()
	outs[topo.South].Tick()
	if outs[topo.East].Recv() == nil || outs[topo.South].Recv() == nil {
		t.Error("speedup-2 router failed to move two flits in one cycle")
	}
}
