package router

import (
	"fmt"

	"nocsim/internal/alloc"
	"nocsim/internal/flit"
)

// Endpoint is the network interface of one node: an infinite source queue
// feeding the router's local input port at one flit per cycle, and an
// ejection unit draining the router's local output port at one flit per
// cycle — the endpoint bandwidth whose oversubscription creates the
// paper's endpoint congestion.
type Endpoint struct {
	node     int
	vcs      int
	bufDepth int

	injCh *Channel // endpoint -> router local input port
	ejCh  *Channel // router local output port -> endpoint

	// Injection side.
	queue     []*flit.Packet
	nextSeq   int // next flit of the packet currently being injected
	injVC     int // local input VC held by the current packet
	curPacket *flit.Packet
	credits   []int // buffer credits per router local input VC
	vcBusy    []bool
	pickRR    int
	// Ejection side.
	ejBuf   [][]*flit.Flit
	ejCount int // total flits across ejBuf
	consume *alloc.RoundRobin
	reqVec  []bool // scratch for Consume

	// Sink is invoked when a packet's tail flit is consumed; the
	// simulator collects latency statistics here. May be nil.
	Sink func(p *flit.Packet)

	// metrics receives packet inject/eject lifecycle events; set with
	// SetMetrics. wantEvents caches its WantPacketEvents answer.
	metrics    MetricsSink
	wantEvents bool

	// arena, when set with UseArena, backs the flits the endpoint
	// segments packets into; consumed flits and fully-ejected packets are
	// recycled into it. Without an arena, flits are heap-allocated and
	// left to the garbage collector.
	arena *flit.Arena

	// ConsumeInterval throttles the ejection bandwidth: the endpoint
	// consumes at most one flit every ConsumeInterval cycles. 1 (the
	// default) matches the router port bandwidth; larger values model
	// the slow endpoints of Section 2 ("if the bandwidth (ejection
	// rate) of the endpoint node is lower than the router port
	// bandwidth"), a second source of endpoint congestion besides
	// oversubscription.
	ConsumeInterval int
}

// NewEndpoint creates the endpoint for node with the router's VC count and
// buffer depth. injCh carries flits to the router's local input port (and
// credits back); ejCh carries flits from the router's local output port
// (and credits back).
func NewEndpoint(node, vcs, bufDepth int, injCh, ejCh *Channel) *Endpoint {
	e := &Endpoint{
		node:     node,
		vcs:      vcs,
		bufDepth: bufDepth,
		injCh:    injCh,
		ejCh:     ejCh,
		injVC:    -1,
		credits:  make([]int, vcs),
		vcBusy:   make([]bool, vcs),
		ejBuf:    make([][]*flit.Flit, vcs),
		consume:  alloc.NewRoundRobin(vcs),
		reqVec:   make([]bool, vcs),
	}
	for v := range e.credits {
		e.credits[v] = bufDepth
	}
	return e
}

// SetMetrics attaches a metrics sink; the endpoint reports packet
// injection and ejection through it. Must be called before traffic flows.
func (e *Endpoint) SetMetrics(m MetricsSink) {
	e.metrics = m
	e.wantEvents = m != nil && m.WantPacketEvents()
}

// UseArena makes the endpoint segment packets into arena-backed flits
// and recycle flits (at consumption) and packets (after the Sink sees
// the tail) back into a. Packets not managed by a — heap packets from
// arena-unaware injectors — are left alone. Must be set before traffic
// flows.
func (e *Endpoint) UseArena(a *flit.Arena) { e.arena = a }

// Offer appends a packet to the source queue. The packet's Born cycle must
// already be set by the traffic generator.
func (e *Endpoint) Offer(p *flit.Packet) {
	if p.Src != e.node {
		panic(fmt.Sprintf("router: packet src %d offered to endpoint %d", p.Src, e.node))
	}
	e.queue = append(e.queue, p)
}

// QueueLen returns the number of packets waiting in the source queue,
// including the packet currently being injected.
func (e *Endpoint) QueueLen() int {
	n := len(e.queue)
	if e.curPacket != nil {
		n++
	}
	return n
}

// Receive ingests injection credits and ejected flits. Phase A.
func (e *Endpoint) Receive() {
	for _, cr := range e.injCh.RecvCredits() {
		e.credits[cr.VC]++
		if e.credits[cr.VC] > e.bufDepth {
			panic(fmt.Sprintf("router: endpoint %d credit overflow vc %d", e.node, cr.VC))
		}
	}
	if f := e.ejCh.Recv(); f != nil {
		if len(e.ejBuf[f.VC]) >= e.bufDepth {
			panic(fmt.Sprintf("router: endpoint %d ejection overflow vc %d", e.node, f.VC))
		}
		e.ejBuf[f.VC] = append(e.ejBuf[f.VC], f)
		e.ejCount++
	}
}

// Quiescent reports that the endpoint holds no work at a cycle boundary:
// nothing queued for injection, no packet mid-injection, and no ejected
// flit awaiting consumption. A quiescent endpoint's cycle is a no-op
// (credit arrivals are signalled by the injection channel, which the
// network's worklist watches separately), so it may be skipped without
// changing any simulated result.
func (e *Endpoint) Quiescent() bool {
	return len(e.queue) == 0 && e.curPacket == nil && e.ejCount == 0
}

// Consume drains at most one ejected flit (the endpoint's ejection
// bandwidth), returning its buffer credit to the router. now is the
// current cycle, recorded as the ejection time of completed packets.
// Phase D.
func (e *Endpoint) Consume(now int64) {
	if e.ConsumeInterval > 1 && now%int64(e.ConsumeInterval) != 0 {
		return
	}
	any := false
	for v := range e.ejBuf {
		e.reqVec[v] = len(e.ejBuf[v]) > 0
		any = any || e.reqVec[v]
	}
	if !any {
		return
	}
	v := e.consume.Arbitrate(e.reqVec)
	f := e.ejBuf[v][0]
	copy(e.ejBuf[v], e.ejBuf[v][1:])
	e.ejBuf[v] = e.ejBuf[v][:len(e.ejBuf[v])-1]
	e.ejCount--
	e.ejCh.SendCredit(flit.Credit{VC: v, Tail: f.Tail})
	if f.Tail {
		p := f.Packet
		p.Eject = now
		if p.Dest != e.node {
			panic(fmt.Sprintf("router: packet %d for %d ejected at %d", p.ID, p.Dest, e.node))
		}
		if e.wantEvents {
			e.metrics.OnEject(now, p)
		}
		if e.Sink != nil {
			e.Sink(p)
		}
		if e.arena != nil {
			// The packet's pointer identity was needed through the Sink
			// chain (trace players key in-flight state by it); now the
			// last observer has run, the slot can be recycled.
			e.arena.FreePacket(p)
		}
	}
	if e.arena != nil {
		e.arena.FreeFlit(f)
	}
}

// Inject sends at most one flit of the current packet into the router's
// local input port (the injection bandwidth). A new packet claims a free
// local input VC — the one with the most credits, round-robin on ties.
// Phase D.
func (e *Endpoint) Inject(now int64) {
	if e.curPacket == nil {
		if len(e.queue) == 0 {
			return
		}
		v := e.pickVC()
		if v < 0 {
			return // all local input VCs held by in-flight packets
		}
		e.curPacket = e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.nextSeq = 0
		e.injVC = v
		e.vcBusy[v] = true
	}
	if e.credits[e.injVC] == 0 || !e.injCh.CanSend() {
		return
	}
	// Flits are materialized one per cycle as they enter the network —
	// there is never a fully segmented copy of the packet waiting — from
	// the arena when one is attached.
	f := e.newFlit()
	f.VC = e.injVC
	e.credits[e.injVC]--
	e.injCh.Send(f)
	if f.Head {
		e.curPacket.Inject = now
		if e.wantEvents {
			e.metrics.OnInject(now, e.curPacket)
		}
	}
	if f.Tail {
		e.vcBusy[e.injVC] = false
		e.curPacket = nil
		e.injVC = -1
	}
}

// newFlit materializes the next flit of the packet under injection,
// arena-backed when an arena is attached.
func (e *Endpoint) newFlit() *flit.Flit {
	var f *flit.Flit
	if e.arena != nil {
		f = e.arena.NewFlit()
	} else {
		f = &flit.Flit{}
	}
	f.Packet = e.curPacket
	f.Seq = e.nextSeq
	f.Head = e.nextSeq == 0
	f.Tail = e.nextSeq == e.curPacket.Size-1
	e.nextSeq++
	return f
}

// pickVC selects a free local input VC for a new packet: unheld, with the
// most credits; round-robin among ties. Returns -1 when none is free.
func (e *Endpoint) pickVC() int {
	best, bestCr := -1, -1
	for i := 0; i < e.vcs; i++ {
		v := (e.pickRR + i) % e.vcs
		if e.vcBusy[v] {
			continue
		}
		if e.credits[v] > bestCr {
			best, bestCr = v, e.credits[v]
		}
	}
	if best >= 0 {
		e.pickRR = (best + 1) % e.vcs
	}
	return best
}
