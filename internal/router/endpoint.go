package router

import (
	"fmt"

	"nocsim/internal/alloc"
	"nocsim/internal/flit"
)

// Endpoint is the network interface of one node: an infinite source queue
// feeding the router's local input port at one flit per cycle, and an
// ejection unit draining the router's local output port at one flit per
// cycle — the endpoint bandwidth whose oversubscription creates the
// paper's endpoint congestion.
type Endpoint struct {
	node     int
	vcs      int
	bufDepth int

	injCh *Channel // endpoint -> router local input port
	ejCh  *Channel // router local output port -> endpoint

	// Injection side.
	queue     []*flit.Packet
	inFlight  []*flit.Flit // flits of the packet currently being injected
	injVC     int          // local input VC held by the current packet
	curPacket *flit.Packet
	credits   []int // buffer credits per router local input VC
	vcBusy    []bool
	pickRR    int
	// Ejection side.
	ejBuf   [][]*flit.Flit
	consume *alloc.RoundRobin
	reqVec  []bool // scratch for Consume

	// Sink is invoked when a packet's tail flit is consumed; the
	// simulator collects latency statistics here. May be nil.
	Sink func(p *flit.Packet)

	// metrics receives packet inject/eject lifecycle events; set with
	// SetMetrics. wantEvents caches its WantPacketEvents answer.
	metrics    MetricsSink
	wantEvents bool

	// ConsumeInterval throttles the ejection bandwidth: the endpoint
	// consumes at most one flit every ConsumeInterval cycles. 1 (the
	// default) matches the router port bandwidth; larger values model
	// the slow endpoints of Section 2 ("if the bandwidth (ejection
	// rate) of the endpoint node is lower than the router port
	// bandwidth"), a second source of endpoint congestion besides
	// oversubscription.
	ConsumeInterval int
}

// NewEndpoint creates the endpoint for node with the router's VC count and
// buffer depth. injCh carries flits to the router's local input port (and
// credits back); ejCh carries flits from the router's local output port
// (and credits back).
func NewEndpoint(node, vcs, bufDepth int, injCh, ejCh *Channel) *Endpoint {
	e := &Endpoint{
		node:     node,
		vcs:      vcs,
		bufDepth: bufDepth,
		injCh:    injCh,
		ejCh:     ejCh,
		injVC:    -1,
		credits:  make([]int, vcs),
		vcBusy:   make([]bool, vcs),
		ejBuf:    make([][]*flit.Flit, vcs),
		consume:  alloc.NewRoundRobin(vcs),
		reqVec:   make([]bool, vcs),
	}
	for v := range e.credits {
		e.credits[v] = bufDepth
	}
	return e
}

// SetMetrics attaches a metrics sink; the endpoint reports packet
// injection and ejection through it. Must be called before traffic flows.
func (e *Endpoint) SetMetrics(m MetricsSink) {
	e.metrics = m
	e.wantEvents = m != nil && m.WantPacketEvents()
}

// Offer appends a packet to the source queue. The packet's Born cycle must
// already be set by the traffic generator.
func (e *Endpoint) Offer(p *flit.Packet) {
	if p.Src != e.node {
		panic(fmt.Sprintf("router: packet src %d offered to endpoint %d", p.Src, e.node))
	}
	e.queue = append(e.queue, p)
}

// QueueLen returns the number of packets waiting in the source queue,
// including the packet currently being injected.
func (e *Endpoint) QueueLen() int {
	n := len(e.queue)
	if e.curPacket != nil {
		n++
	}
	return n
}

// Receive ingests injection credits and ejected flits. Phase A.
func (e *Endpoint) Receive() {
	for _, cr := range e.injCh.RecvCredits() {
		e.credits[cr.VC]++
		if e.credits[cr.VC] > e.bufDepth {
			panic(fmt.Sprintf("router: endpoint %d credit overflow vc %d", e.node, cr.VC))
		}
	}
	if f := e.ejCh.Recv(); f != nil {
		if len(e.ejBuf[f.VC]) >= e.bufDepth {
			panic(fmt.Sprintf("router: endpoint %d ejection overflow vc %d", e.node, f.VC))
		}
		e.ejBuf[f.VC] = append(e.ejBuf[f.VC], f)
	}
}

// Consume drains at most one ejected flit (the endpoint's ejection
// bandwidth), returning its buffer credit to the router. now is the
// current cycle, recorded as the ejection time of completed packets.
// Phase D.
func (e *Endpoint) Consume(now int64) {
	if e.ConsumeInterval > 1 && now%int64(e.ConsumeInterval) != 0 {
		return
	}
	any := false
	for v := range e.ejBuf {
		e.reqVec[v] = len(e.ejBuf[v]) > 0
		any = any || e.reqVec[v]
	}
	if !any {
		return
	}
	v := e.consume.Arbitrate(e.reqVec)
	f := e.ejBuf[v][0]
	copy(e.ejBuf[v], e.ejBuf[v][1:])
	e.ejBuf[v] = e.ejBuf[v][:len(e.ejBuf[v])-1]
	e.ejCh.SendCredit(flit.Credit{VC: v, Tail: f.Tail})
	if f.Tail {
		p := f.Packet
		p.Eject = now
		if p.Dest != e.node {
			panic(fmt.Sprintf("router: packet %d for %d ejected at %d", p.ID, p.Dest, e.node))
		}
		if e.wantEvents {
			e.metrics.OnEject(now, p)
		}
		if e.Sink != nil {
			e.Sink(p)
		}
	}
}

// Inject sends at most one flit of the current packet into the router's
// local input port (the injection bandwidth). A new packet claims a free
// local input VC — the one with the most credits, round-robin on ties.
// Phase D.
func (e *Endpoint) Inject(now int64) {
	if e.curPacket == nil {
		if len(e.queue) == 0 {
			return
		}
		v := e.pickVC()
		if v < 0 {
			return // all local input VCs held by in-flight packets
		}
		e.curPacket = e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.inFlight = flit.Segment(e.curPacket)
		e.injVC = v
		e.vcBusy[v] = true
	}
	if e.credits[e.injVC] == 0 || !e.injCh.CanSend() {
		return
	}
	f := e.inFlight[0]
	e.inFlight = e.inFlight[1:]
	f.VC = e.injVC
	e.credits[e.injVC]--
	e.injCh.Send(f)
	if f.Head {
		e.curPacket.Inject = now
		if e.wantEvents {
			e.metrics.OnInject(now, e.curPacket)
		}
	}
	if f.Tail {
		e.vcBusy[e.injVC] = false
		e.curPacket = nil
		e.injVC = -1
	}
}

// pickVC selects a free local input VC for a new packet: unheld, with the
// most credits; round-robin among ties. Returns -1 when none is free.
func (e *Endpoint) pickVC() int {
	best, bestCr := -1, -1
	for i := 0; i < e.vcs; i++ {
		v := (e.pickRR + i) % e.vcs
		if e.vcBusy[v] {
			continue
		}
		if e.credits[v] > bestCr {
			best, bestCr = v, e.credits[v]
		}
	}
	if best >= 0 {
		e.pickRR = (best + 1) % e.vcs
	}
	return best
}
