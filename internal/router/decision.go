package router

import (
	"fmt"

	"nocsim/internal/flit"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// VCClass classifies the live state of an output virtual channel at the
// moment it is offered to or granted for a packet, with respect to that
// packet's destination. The classes mirror the paper's Section 3
// taxonomy: an idle VC starts a fresh flow, a footprint VC already
// carries packets to the same destination (joining it extends the
// congestion tree harmlessly), a busy VC carries packets to a different
// destination (joining it couples unrelated flows — the HoL-blocking
// case Footprint regulates away), and the escape VC is the Duato
// deadlock-free fallback.
type VCClass uint8

const (
	// VCClassIdle is an unoccupied VC: unallocated with a fully drained
	// downstream buffer.
	VCClassIdle VCClass = iota
	// VCClassFootprint is a VC whose downstream buffer currently holds
	// packets to the same destination as the requester.
	VCClassFootprint
	// VCClassBusy is an occupied VC owned by a different destination.
	VCClassBusy
	// VCClassEscape is the Duato escape VC (VC 0 of a network port under
	// an escape-using algorithm), regardless of occupancy.
	VCClassEscape

	// numVCClasses is the cardinality sentinel (not an enum member; the
	// num* prefix exempts it from noclint's exhaustive rule).
	numVCClasses
)

// NumVCClasses is the number of VC classes, int-typed for sizing arrays
// indexed by VCClass.
const NumVCClasses = int(numVCClasses)

// String implements fmt.Stringer.
func (c VCClass) String() string {
	switch c {
	case VCClassIdle:
		return "idle"
	case VCClassFootprint:
		return "footprint"
	case VCClassBusy:
		return "busy"
	case VCClassEscape:
		return "escape"
	default:
		panic(fmt.Sprintf("router: unknown VCClass %d", uint8(c)))
	}
}

// Decision summarizes one routing decision — the first route computation
// for a packet at a router — as the adaptiveness it actually exercised:
// how many ports and VCs the algorithm offered versus the minimal-path
// ceiling it could have offered. The router (not the routing algorithm;
// the routepurity lint keeps Route side-effect free) derives it from the
// request set Route returned and reports it through
// MetricsSink.OnRouteDecision. Ejection decisions (dest == this node)
// are not reported: they exercise no routing freedom.
type Decision struct {
	// In is the input port the packet arrived on.
	In topo.Direction
	// MinimalPorts is the number of productive output ports on minimal
	// paths toward the destination (1 when aligned in a dimension, else
	// 2) — the Eq-1 per-hop port ceiling for a fully adaptive algorithm.
	MinimalPorts int
	// OfferedPorts is the number of distinct output ports carrying
	// adaptive (non-escape) requests. OfferedPorts/MinimalPorts is the
	// per-decision exercised port adaptiveness.
	OfferedPorts int
	// PortMask has bit 1<<Direction set for every port requested,
	// escape included.
	PortMask uint8
	// AdmissibleVCs is the static per-hop VC ceiling: adaptive VCs per
	// port times MinimalPorts.
	AdmissibleVCs int
	// OfferedVCs is the number of adaptive (non-escape) VC requests the
	// algorithm actually emitted. OfferedVCs/AdmissibleVCs is the
	// per-decision exercised VC adaptiveness.
	OfferedVCs int
	// FootprintVCs and IdleVCs classify the offered adaptive VCs by live
	// state at decision time; the remainder (OfferedVCs - FootprintVCs -
	// IdleVCs) were busy.
	FootprintVCs int
	IdleVCs      int
	// EscapeRequested reports whether the request set included the
	// escape VC (the Duato fallback was on the table this decision).
	EscapeRequested bool
	// MinimalProgress reports whether every offered port lies on a
	// minimal path (no misrouting offered).
	MinimalProgress bool
}

// emitDecision builds and reports the Decision record for a packet's
// first route computation at this router. Called only when
// r.wantDecisions and dest != NodeID.
func (r *Router) emitDecision(in topo.Direction, dest int, reqs []routing.Request, p *flit.Packet) {
	dx, hasX, dy, hasY := r.cfg.Mesh.MinimalDirs(r.cfg.NodeID, dest)
	d := Decision{In: in, MinimalProgress: true}
	if hasX {
		d.MinimalPorts++
	}
	if hasY {
		d.MinimalPorts++
	}
	escape := r.cfg.Alg.UsesEscape()
	adaptivePerPort := r.cfg.VCs
	if escape {
		adaptivePerPort--
	}
	d.AdmissibleVCs = d.MinimalPorts * adaptivePerPort
	var adaptiveMask uint8
	for _, rq := range reqs {
		d.PortMask |= 1 << uint(rq.Dir)
		if escape && rq.VC == 0 {
			d.EscapeRequested = true
			continue
		}
		if !((hasX && rq.Dir == dx) || (hasY && rq.Dir == dy)) {
			d.MinimalProgress = false
		}
		adaptiveMask |= 1 << uint(rq.Dir)
		d.OfferedVCs++
		i := r.idx(rq.Dir, rq.VC)
		if r.outIdle(i) {
			d.IdleVCs++
		} else if int(r.outOwner[i]) == dest {
			d.FootprintVCs++
		}
	}
	for m := adaptiveMask; m != 0; m &= m - 1 {
		d.OfferedPorts++
	}
	r.cfg.Metrics.OnRouteDecision(r.now, r.cfg.NodeID, p, d)
}

// classifyVC returns the VCClass of output VC (d, vc) for a packet to
// dest, read against the VC's pre-grant state. Local-port grants
// (ejection) are classified by occupancy only — the escape class applies
// to network ports.
func (r *Router) classifyVC(d topo.Direction, vc, dest int) VCClass {
	if vc == 0 && d != topo.Local && r.cfg.Alg.UsesEscape() {
		return VCClassEscape
	}
	i := r.idx(d, vc)
	if r.outIdle(i) {
		return VCClassIdle
	}
	if int(r.outOwner[i]) == dest {
		return VCClassFootprint
	}
	return VCClassBusy
}
