package router

import (
	"testing"

	"nocsim/internal/flit"
)

func TestChannelOneCycleLatency(t *testing.T) {
	ch := NewChannel()
	f := &flit.Flit{}
	if !ch.CanSend() {
		t.Fatal("fresh channel cannot send")
	}
	ch.Send(f)
	if ch.Recv() != nil {
		t.Error("flit visible before Tick")
	}
	ch.Tick()
	if got := ch.Recv(); got != f {
		t.Errorf("Recv = %v, want the sent flit", got)
	}
	if ch.Recv() != nil {
		t.Error("flit delivered twice")
	}
}

func TestChannelOverdrivePanics(t *testing.T) {
	ch := NewChannel()
	ch.Send(&flit.Flit{})
	defer func() {
		if recover() == nil {
			t.Error("double Send did not panic")
		}
	}()
	ch.Send(&flit.Flit{})
}

func TestChannelHoldsUndelivered(t *testing.T) {
	ch := NewChannel()
	f1 := &flit.Flit{Seq: 1}
	f2 := &flit.Flit{Seq: 2}
	ch.Send(f1)
	ch.Tick()
	// Receiver did not drain; sender may not overwrite.
	if ch.CanSend() {
		ch.Send(f2)
	}
	ch.Tick()
	if got := ch.Recv(); got != f1 {
		t.Fatalf("first flit lost: %v", got)
	}
	ch.Tick()
	if got := ch.Recv(); got != f2 {
		t.Fatalf("second flit lost: %v", got)
	}
}

func TestChannelCredits(t *testing.T) {
	ch := NewChannel()
	ch.SendCredit(flit.Credit{VC: 3})
	ch.SendCredit(flit.Credit{VC: 1, Tail: true})
	if crs := ch.RecvCredits(); len(crs) != 0 {
		t.Errorf("credits visible before Tick: %v", crs)
	}
	ch.Tick()
	crs := ch.RecvCredits()
	if len(crs) != 2 || crs[0].VC != 3 || !crs[1].Tail {
		t.Errorf("credits = %v", crs)
	}
	ch.Tick()
	if crs := ch.RecvCredits(); len(crs) != 0 {
		t.Errorf("credits delivered twice: %v", crs)
	}
}

func TestChannelCreditsAccumulateIfUnread(t *testing.T) {
	ch := NewChannel()
	ch.SendCredit(flit.Credit{VC: 0})
	ch.Tick()
	ch.SendCredit(flit.Credit{VC: 1})
	ch.Tick()
	crs := ch.RecvCredits()
	if len(crs) != 2 {
		t.Errorf("credits = %v, want 2 accumulated", crs)
	}
}
