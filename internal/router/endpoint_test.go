package router

import (
	"testing"

	"nocsim/internal/flit"
)

func newTestEndpoint() (*Endpoint, *Channel, *Channel) {
	inj := NewChannel()
	ej := NewChannel()
	return NewEndpoint(3, 2, 4, inj, ej), inj, ej
}

func TestEndpointInjectsOneFlitPerCycle(t *testing.T) {
	e, inj, _ := newTestEndpoint()
	e.Offer(&flit.Packet{ID: 1, Src: 3, Dest: 7, Size: 3})
	for i := 0; i < 3; i++ {
		e.Inject(int64(i))
		inj.Tick()
		f := inj.Recv()
		if f == nil {
			t.Fatalf("cycle %d: no flit injected", i)
		}
		if f.Seq != i {
			t.Fatalf("cycle %d: seq %d", i, f.Seq)
		}
	}
	e.Inject(3)
	inj.Tick()
	if inj.Recv() != nil {
		t.Error("injected beyond packet length")
	}
	if e.QueueLen() != 0 {
		t.Errorf("queue len = %d after full injection", e.QueueLen())
	}
}

func TestEndpointRespectsCredits(t *testing.T) {
	e, inj, _ := newTestEndpoint()
	e.Offer(&flit.Packet{ID: 1, Src: 3, Dest: 7, Size: 10})
	// Buffer depth 4: after 4 flits the chosen VC is out of credits.
	sent, usedVC := 0, -1
	for i := 0; i < 8; i++ {
		e.Inject(int64(i))
		inj.Tick()
		if f := inj.Recv(); f != nil {
			sent++
			usedVC = f.VC
		}
	}
	if sent != 4 {
		t.Errorf("sent %d flits with 4 credits", sent)
	}
	// Returning a credit for the held VC resumes injection.
	inj.SendCredit(flit.Credit{VC: usedVC})
	inj.Tick()
	e.Receive()
	e.Inject(100)
	inj.Tick()
	if inj.Recv() == nil {
		t.Error("injection did not resume after credits returned")
	}
}

func TestEndpointPacketHoldsOneVC(t *testing.T) {
	e, inj, _ := newTestEndpoint()
	e.Offer(&flit.Packet{ID: 1, Src: 3, Dest: 7, Size: 4})
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		e.Inject(int64(i))
		inj.Tick()
		if f := inj.Recv(); f != nil {
			seen[f.VC] = true
		}
	}
	if len(seen) != 1 {
		t.Errorf("packet used %d VCs, want 1 (wormhole)", len(seen))
	}
}

func TestEndpointEjectionAndSink(t *testing.T) {
	e, _, ej := newTestEndpoint()
	var done *flit.Packet
	e.Sink = func(p *flit.Packet) { done = p }
	p := &flit.Packet{ID: 1, Src: 0, Dest: 3, Size: 2}
	fs := flit.Segment(p)
	for i, f := range fs {
		f.VC = 0
		ej.Send(f)
		ej.Tick()
		e.Receive()
		e.Consume(int64(i))
	}
	if done == nil {
		t.Fatal("sink not called on tail consumption")
	}
	if done.Eject != 1 {
		t.Errorf("eject cycle = %d, want 1", done.Eject)
	}
	// Credits returned for both flits.
	ej.Tick()
	if crs := ej.RecvCredits(); len(crs) != 2 {
		t.Errorf("ejection credits = %d, want 2", len(crs))
	}
}

func TestEndpointConsumesOneFlitPerCycle(t *testing.T) {
	e, _, ej := newTestEndpoint()
	consumed := 0
	e.Sink = func(*flit.Packet) { consumed++ }
	// Two single-flit packets on different VCs, delivered same cycle is
	// impossible (1 flit/cycle link), but buffer both before consuming.
	for i, vc := range []int{0, 1} {
		p := &flit.Packet{ID: uint64(i + 1), Src: 0, Dest: 3, Size: 1}
		f := flit.Segment(p)[0]
		f.VC = vc
		ej.Send(f)
		ej.Tick()
		e.Receive()
	}
	e.Consume(10)
	if consumed != 1 {
		t.Fatalf("consumed %d packets in one cycle, want 1 (ejection bandwidth)", consumed)
	}
	e.Consume(11)
	if consumed != 2 {
		t.Fatalf("second packet not consumed: %d", consumed)
	}
}

func TestEndpointWrongDestPanics(t *testing.T) {
	e, _, ej := newTestEndpoint()
	p := &flit.Packet{ID: 1, Src: 0, Dest: 9, Size: 1} // not node 3
	f := flit.Segment(p)[0]
	f.VC = 0
	ej.Send(f)
	ej.Tick()
	e.Receive()
	defer func() {
		if recover() == nil {
			t.Error("misrouted packet not detected")
		}
	}()
	e.Consume(0)
}

func TestEndpointQueueLenCountsCurrentPacket(t *testing.T) {
	e, inj, _ := newTestEndpoint()
	e.Offer(&flit.Packet{ID: 1, Src: 3, Dest: 7, Size: 3})
	e.Offer(&flit.Packet{ID: 2, Src: 3, Dest: 7, Size: 1})
	if e.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2", e.QueueLen())
	}
	e.Inject(0) // starts packet 1
	inj.Tick()
	inj.Recv()
	if e.QueueLen() != 2 {
		t.Errorf("queue len after first flit = %d, want 2 (in-flight counts)", e.QueueLen())
	}
}

func TestEndpointSlowConsumeInterval(t *testing.T) {
	e, _, ej := newTestEndpoint()
	e.ConsumeInterval = 3 // one flit every 3 cycles
	consumed := 0
	e.Sink = func(*flit.Packet) { consumed++ }
	for i := 0; i < 4; i++ {
		p := &flit.Packet{ID: uint64(i + 1), Src: 0, Dest: 3, Size: 1}
		f := flit.Segment(p)[0]
		f.VC = i % 2
		ej.Send(f)
		ej.Tick()
		e.Receive()
	}
	for now := int64(0); now < 12; now++ {
		e.Consume(now)
	}
	if consumed != 4 {
		t.Fatalf("consumed %d, want all 4 over 12 cycles", consumed)
	}
	// Rate check: exactly ceil(12/3) = 4 consume opportunities.
	e2, _, ej2 := newTestEndpoint()
	e2.ConsumeInterval = 4
	got := 0
	e2.Sink = func(*flit.Packet) { got++ }
	for i := 0; i < 8; i++ {
		p := &flit.Packet{ID: uint64(100 + i), Src: 0, Dest: 3, Size: 1}
		f := flit.Segment(p)[0]
		f.VC = i % 2
		if ej2.CanSend() {
			ej2.Send(f)
		}
		ej2.Tick()
		e2.Receive()
	}
	for now := int64(0); now < 8; now++ {
		e2.Consume(now)
	}
	if got != 2 {
		t.Fatalf("slow endpoint consumed %d in 8 cycles at interval 4, want 2", got)
	}
}
