// Package router implements the cycle-accurate router microarchitecture of
// Table 2: an input-queued virtual-channel router with credit-based
// wormhole flow control, a priority-based VC allocator, round-robin switch
// arbitration, and internal speedup 2. It also tracks the per-VC "owner"
// registers that Footprint routing consumes.
package router

import "nocsim/internal/flit"

// Channel is a unidirectional link with one cycle of latency carrying one
// flit per cycle downstream and any number of credits per cycle upstream.
// The network calls Tick once per cycle, after all routers have run, to
// advance staged traffic to the deliverable position.
type Channel struct {
	// downstream flit pipeline
	staged  *flit.Flit
	arrived *flit.Flit
	// upstream credit pipeline
	stagedCredits  []flit.Credit
	arrivedCredits []flit.Credit
}

// NewChannel returns an empty channel.
func NewChannel() *Channel { return &Channel{} }

// CanSend reports whether the sender may stage a flit this cycle.
func (c *Channel) CanSend() bool { return c.staged == nil }

// Busy reports whether the channel carries any traffic in either
// pipeline: a flit staged or awaiting delivery, or credits in flight. An
// idle channel's Tick is a no-op and it cannot wake either endpoint, so
// the network's active-set worklist skips it.
func (c *Channel) Busy() bool {
	return c.staged != nil || c.arrived != nil ||
		len(c.stagedCredits) > 0 || len(c.arrivedCredits) > 0
}

// Send stages f for delivery next cycle. It panics when called twice in
// one cycle; the link carries one flit per cycle.
func (c *Channel) Send(f *flit.Flit) {
	if c.staged != nil {
		panic("router: channel overdriven")
	}
	c.staged = f
}

// Recv returns the flit that arrived this cycle, or nil. The flit is
// consumed.
func (c *Channel) Recv() *flit.Flit {
	f := c.arrived
	c.arrived = nil
	return f
}

// SendCredit stages a credit for upstream delivery next cycle.
func (c *Channel) SendCredit(cr flit.Credit) {
	c.stagedCredits = append(c.stagedCredits, cr)
}

// RecvCredits returns the credits that arrived this cycle. The returned
// slice is valid until the channel's next Tick.
func (c *Channel) RecvCredits() []flit.Credit {
	crs := c.arrivedCredits
	c.arrivedCredits = c.arrivedCredits[:0]
	return crs
}

// Tick advances the one-cycle pipelines. Undelivered flits stay in the
// arrival slot (the receiver is obliged to drain it, which routers do —
// buffer space is guaranteed by credits).
func (c *Channel) Tick() {
	if c.arrived == nil {
		c.arrived = c.staged
		c.staged = nil
	}
	// Credits are always consumed by receivers each cycle; swap buffers.
	c.arrivedCredits = append(c.arrivedCredits, c.stagedCredits...)
	c.stagedCredits = c.stagedCredits[:0]
}
