package alloc

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinFairness(t *testing.T) {
	a := NewRoundRobin(4)
	all := []bool{true, true, true, true}
	var order []int
	for i := 0; i < 8; i++ {
		order = append(order, a.Arbitrate(all))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant sequence %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	if got := a.Arbitrate([]bool{false, false, true, false}); got != 2 {
		t.Errorf("grant = %d, want 2", got)
	}
	// Pointer advanced past 2; only requester 0 active now.
	if got := a.Arbitrate([]bool{true, false, false, false}); got != 0 {
		t.Errorf("grant = %d, want 0", got)
	}
}

func TestRoundRobinNoRequest(t *testing.T) {
	a := NewRoundRobin(3)
	if got := a.Arbitrate([]bool{false, false, false}); got != -1 {
		t.Errorf("grant = %d, want -1", got)
	}
	// State unchanged: next grant starts from 0.
	if got := a.Arbitrate([]bool{true, true, true}); got != 0 {
		t.Errorf("grant = %d, want 0", got)
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	NewRoundRobin(2).Arbitrate([]bool{true})
}

func TestNewRoundRobinValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRoundRobin(0) did not panic")
		}
	}()
	NewRoundRobin(0)
}

func TestPriorityRoundRobinPicksHighest(t *testing.T) {
	a := NewPriorityRoundRobin(4)
	got := a.Arbitrate([]Priority{Low, Highest, High, Highest})
	if got != 1 {
		t.Errorf("grant = %d, want 1 (first Highest)", got)
	}
	// Round robin among equals: next Highest tie should go to 3.
	got = a.Arbitrate([]Priority{Low, Highest, High, Highest})
	if got != 3 {
		t.Errorf("grant = %d, want 3", got)
	}
}

func TestPriorityRoundRobinNone(t *testing.T) {
	a := NewPriorityRoundRobin(2)
	if got := a.Arbitrate([]Priority{None, None}); got != -1 {
		t.Errorf("grant = %d, want -1", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	if !(None < Lowest && Lowest < Low && Low < High && High < Highest) {
		t.Error("priority ordering broken")
	}
	names := map[Priority]string{None: "none", Lowest: "lowest", Low: "low", High: "high", Highest: "highest"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Priority(99).String() != "invalid" {
		t.Error("invalid priority string")
	}
}

// Property: round-robin always grants a requester that actually requested.
func TestRoundRobinGrantsRequester(t *testing.T) {
	a := NewRoundRobin(8)
	f := func(bits uint8) bool {
		reqs := make([]bool, 8)
		any := false
		for i := range reqs {
			reqs[i] = bits&(1<<i) != 0
			any = any || reqs[i]
		}
		g := a.Arbitrate(reqs)
		if !any {
			return g == -1
		}
		return g >= 0 && g < 8 && reqs[g]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: under persistent full load, every requester is granted exactly
// once per n cycles (strong fairness).
func TestRoundRobinStrongFairness(t *testing.T) {
	const n = 5
	a := NewRoundRobin(n)
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	counts := make([]int, n)
	for i := 0; i < 10*n; i++ {
		counts[a.Arbitrate(all)]++
	}
	for i, c := range counts {
		if c != 10 {
			t.Errorf("requester %d granted %d times, want 10", i, c)
		}
	}
}
