package alloc

import (
	"testing"
	"testing/quick"
)

// grantMap converts the sparse grant list into requester→resource for
// convenient assertions.
func grantMap(gs []Grant) map[int]int {
	m := make(map[int]int, len(gs))
	for _, g := range gs {
		m[g.Requester] = g.Resource
	}
	return m
}

func TestVCAllocatorSimpleGrant(t *testing.T) {
	a := NewVCAllocator(2, 2)
	g := grantMap(a.Allocate([]VCRequest{{Requester: 0, Resource: 1, Pri: Low}}))
	if len(g) != 1 || g[0] != 1 {
		t.Errorf("grants = %v, want {0:1}", g)
	}
}

func TestVCAllocatorPriorityWins(t *testing.T) {
	a := NewVCAllocator(2, 1)
	// Both want resource 0; requester 1 has higher priority.
	g := grantMap(a.Allocate([]VCRequest{
		{Requester: 0, Resource: 0, Pri: Low},
		{Requester: 1, Resource: 0, Pri: Highest},
	}))
	if len(g) != 1 || g[1] != 0 {
		t.Errorf("grants = %v, want {1:0}", g)
	}
}

func TestVCAllocatorConflictResolution(t *testing.T) {
	a := NewVCAllocator(2, 2)
	// Both requesters want both resources at equal priority: no resource
	// may be granted twice and at least one requester must be served
	// (single-iteration separable allocators can leave one unmatched).
	reqs := []VCRequest{
		{0, 0, Low}, {0, 1, Low},
		{1, 0, Low}, {1, 1, Low},
	}
	g := grantMap(a.Allocate(reqs))
	if len(g) == 0 {
		t.Fatal("nobody granted")
	}
	if r0, ok0 := g[0]; ok0 {
		if r1, ok1 := g[1]; ok1 && r0 == r1 {
			t.Errorf("resource granted twice: %v", g)
		}
	}
}

func TestVCAllocatorIgnoresNone(t *testing.T) {
	a := NewVCAllocator(1, 1)
	if gs := a.Allocate([]VCRequest{{0, 0, None}}); len(gs) != 0 {
		t.Errorf("grants = %v, want empty", gs)
	}
}

func TestVCAllocatorDuplicateKeepsStrongest(t *testing.T) {
	a := NewVCAllocator(2, 1)
	g := grantMap(a.Allocate([]VCRequest{
		{0, 0, Low},
		{0, 0, Highest}, // duplicate, stronger
		{1, 0, High},
	}))
	if g[0] != 0 {
		t.Errorf("requester 0 should win with Highest, grants = %v", g)
	}
}

func TestVCAllocatorOutOfRangePanics(t *testing.T) {
	a := NewVCAllocator(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range request did not panic")
		}
	}()
	a.Allocate([]VCRequest{{5, 0, Low}})
}

func TestVCAllocatorFairnessOverTime(t *testing.T) {
	a := NewVCAllocator(3, 1)
	counts := make([]int, 3)
	reqs := []VCRequest{{0, 0, Low}, {1, 0, Low}, {2, 0, Low}}
	for i := 0; i < 30; i++ {
		for q := range grantMap(a.Allocate(reqs)) {
			counts[q]++
		}
	}
	for q, c := range counts {
		if c != 10 {
			t.Errorf("requester %d won %d/30, want 10", q, c)
		}
	}
}

func TestVCAllocatorScratchReset(t *testing.T) {
	a := NewVCAllocator(4, 4)
	// First call grants 0->0.
	a.Allocate([]VCRequest{{0, 0, Highest}})
	// Second call must not remember the first call's requests.
	g := grantMap(a.Allocate([]VCRequest{{1, 1, Low}}))
	if len(g) != 1 || g[1] != 1 {
		t.Errorf("stale state leaked: grants = %v", g)
	}
}

// Property: no resource is ever granted to two requesters and every grant
// corresponds to a submitted request.
func TestVCAllocatorInvariants(t *testing.T) {
	a := NewVCAllocator(4, 4)
	f := func(raw []uint16) bool {
		var reqs []VCRequest
		asked := map[[2]int]bool{}
		for _, r := range raw {
			rq := VCRequest{
				Requester: int(r) % 4,
				Resource:  int(r>>2) % 4,
				Pri:       Priority(int(r>>4)%4 + 1),
			}
			reqs = append(reqs, rq)
			asked[[2]int{rq.Requester, rq.Resource}] = true
		}
		grants := a.Allocate(reqs)
		seenRes := map[int]bool{}
		seenReq := map[int]bool{}
		for _, g := range grants {
			if seenRes[g.Resource] || seenReq[g.Requester] {
				return false // double grant
			}
			seenRes[g.Resource] = true
			seenReq[g.Requester] = true
			if !asked[[2]int{g.Requester, g.Resource}] {
				return false // phantom grant
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
