// Package alloc provides the arbiters and allocators used by the router
// microarchitecture: a round-robin arbiter for switch allocation and a
// separable priority-based allocator for virtual-channel allocation, as
// configured in Table 2 of the Footprint paper ("priority-based VC
// allocator, Round-Robin switch arbiter").
package alloc

// Arbiter selects one requester out of a set, implementing some fairness
// policy across successive invocations.
type Arbiter interface {
	// Arbitrate returns the granted index among requests[i]==true entries,
	// or -1 when nothing is requested. The arbiter updates its internal
	// fairness state only when a grant is made.
	Arbitrate(requests []bool) int
}

// RoundRobin is a classic round-robin arbiter over n requesters. The zero
// value is not usable; construct with NewRoundRobin.
type RoundRobin struct {
	n    int
	next int // index with the highest priority this round
}

// NewRoundRobin returns a round-robin arbiter for n requesters.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 {
		panic("alloc: round-robin arbiter needs at least one requester")
	}
	return &RoundRobin{n: n}
}

// Arbitrate grants the first requester at or after the round-robin pointer
// and advances the pointer past the winner. The wrap-around search is two
// linear scans so the hot path avoids a modulo per step.
func (a *RoundRobin) Arbitrate(requests []bool) int {
	if len(requests) != a.n {
		panic("alloc: request vector size mismatch")
	}
	for idx := a.next; idx < a.n; idx++ {
		if requests[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	for idx := 0; idx < a.next; idx++ {
		if requests[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// Priority orders virtual-channel requests as in Algorithm 1 of the paper.
// Higher values win allocation.
type Priority int

// Request priorities, lowest to highest (Algorithm 1, with one extra
// level for footprint register affinity): escape requests are Lowest,
// busy/adaptive requests Low, occupied footprint VCs Medium, idle VCs
// High, and idle VCs whose footprint register matches the requester's
// destination Highest.
const (
	None    Priority = iota // no request
	Lowest                  // escape VC
	Low                     // adaptive / busy VCs
	Medium                  // occupied footprint VCs
	High                    // idle VCs
	Highest                 // idle VCs with matching footprint register
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case None:
		return "none"
	case Lowest:
		return "lowest"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case Highest:
		return "highest"
	default:
		return "invalid"
	}
}

// PriorityRoundRobin arbitrates among prioritized requests: the highest
// priority level present wins, with round-robin fairness among equals.
type PriorityRoundRobin struct {
	n    int
	next int
	mask []bool // scratch
}

// NewPriorityRoundRobin returns a prioritized round-robin arbiter for n
// requesters.
func NewPriorityRoundRobin(n int) *PriorityRoundRobin {
	if n <= 0 {
		panic("alloc: priority arbiter needs at least one requester")
	}
	return &PriorityRoundRobin{n: n, mask: make([]bool, n)}
}

// Arbitrate returns the index of the winning request (priorities[i] > None)
// or -1. Ties at the top priority level are broken round-robin.
func (a *PriorityRoundRobin) Arbitrate(priorities []Priority) int {
	if len(priorities) != a.n {
		panic("alloc: priority vector size mismatch")
	}
	best := None
	for _, p := range priorities {
		if p > best {
			best = p
		}
	}
	if best == None {
		return -1
	}
	for i := range a.mask {
		a.mask[i] = priorities[i] == best
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if a.mask[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}
