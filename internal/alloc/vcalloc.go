package alloc

// VCRequest is one virtual-channel allocation request: requester (an input
// VC, identified by a dense index) asks for resource (an output VC, dense
// index) at the given priority.
type VCRequest struct {
	Requester int
	Resource  int
	Pri       Priority
}

// VCAllocator is a separable, priority-based allocator matching requesters
// (input VCs) to resources (output VCs). It implements the "priority-based
// VC allocator" of Table 2:
//
//  1. output stage: every requested resource picks its highest-priority
//     requester (round-robin among equals);
//  2. input stage: every requester that won several resources keeps the
//     highest-priority grant (round-robin among equals).
//
// A single iteration is performed per invocation, as in a single-cycle VA
// stage. The implementation is sparse: cost is proportional to the number
// of requests submitted, not requesters×resources, because the router
// invokes it every cycle.
type VCAllocator struct {
	numRequesters int
	numResources  int

	outNext []int // round-robin pointer per resource
	inNext  []int // round-robin pointer per requester

	// scratch, reused across calls; only touched entries are reset.
	resPri      []Priority // best priority seen per resource this call
	resWin      []int      // winning requester per resource this call
	reqPri      []Priority // best granted priority per requester
	reqWin      []int      // winning resource per requester
	touchedRes  []int
	touchedReqs []int
	grants      []Grant
}

// NewVCAllocator returns an allocator for numRequesters input VCs and
// numResources output VCs.
func NewVCAllocator(numRequesters, numResources int) *VCAllocator {
	if numRequesters <= 0 || numResources <= 0 {
		panic("alloc: VC allocator needs positive dimensions")
	}
	a := &VCAllocator{
		numRequesters: numRequesters,
		numResources:  numResources,
		outNext:       make([]int, numResources),
		inNext:        make([]int, numRequesters),
		resPri:        make([]Priority, numResources),
		resWin:        make([]int, numResources),
		reqPri:        make([]Priority, numRequesters),
		reqWin:        make([]int, numRequesters),
	}
	for i := range a.resWin {
		a.resWin[i] = -1
	}
	for i := range a.reqWin {
		a.reqWin[i] = -1
	}
	return a
}

// rrBetter reports whether candidate a beats candidate b for a resource
// whose round-robin pointer is next, given equal priority: the index
// closest at-or-after the pointer (mod n) wins.
func rrBetter(a, b, next, n int) bool {
	da := a - next
	if da < 0 {
		da += n
	}
	db := b - next
	if db < 0 {
		db += n
	}
	return da < db
}

// Grant is one requester→resource match produced by Allocate.
type Grant struct {
	Requester int
	Resource  int
}

// Allocate matches requesters to resources and returns the grants. Each
// requester receives at most one resource and each resource is granted to
// at most one requester. Requests with Pri == None are ignored. The
// returned slice is reused by the next call to Allocate.
func (a *VCAllocator) Allocate(reqs []VCRequest) []Grant {
	// Output stage: each resource picks its best requester.
	for _, rq := range reqs {
		if rq.Pri == None {
			continue
		}
		if rq.Requester < 0 || rq.Requester >= a.numRequesters ||
			rq.Resource < 0 || rq.Resource >= a.numResources {
			panic("alloc: VC request out of range")
		}
		r := rq.Resource
		if a.resWin[r] == -1 {
			a.touchedRes = append(a.touchedRes, r)
			a.resPri[r] = rq.Pri
			a.resWin[r] = rq.Requester
			continue
		}
		if rq.Pri > a.resPri[r] ||
			(rq.Pri == a.resPri[r] && rq.Requester != a.resWin[r] &&
				rrBetter(rq.Requester, a.resWin[r], a.outNext[r], a.numRequesters)) {
			a.resPri[r] = rq.Pri
			a.resWin[r] = rq.Requester
		}
	}

	// Input stage: each requester keeps its best resource grant.
	for _, r := range a.touchedRes {
		q, p := a.resWin[r], a.resPri[r]
		if a.reqWin[q] == -1 {
			a.touchedReqs = append(a.touchedReqs, q)
			a.reqPri[q] = p
			a.reqWin[q] = r
			continue
		}
		if p > a.reqPri[q] ||
			(p == a.reqPri[q] && r != a.reqWin[q] &&
				rrBetter(r, a.reqWin[q], a.inNext[q], a.numResources)) {
			a.reqPri[q] = p
			a.reqWin[q] = r
		}
	}

	grants := a.grants[:0]
	for _, q := range a.touchedReqs {
		r := a.reqWin[q]
		grants = append(grants, Grant{Requester: q, Resource: r})
		// Advance round-robin state past the winners.
		a.inNext[q] = (r + 1) % a.numResources
		a.outNext[r] = (q + 1) % a.numRequesters
	}
	a.grants = grants

	// Reset touched scratch.
	for _, r := range a.touchedRes {
		a.resWin[r] = -1
		a.resPri[r] = None
	}
	for _, q := range a.touchedReqs {
		a.reqWin[q] = -1
		a.reqPri[q] = None
	}
	a.touchedRes = a.touchedRes[:0]
	a.touchedReqs = a.touchedReqs[:0]
	return grants
}
