package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestJobsNormalization(t *testing.T) {
	if got := Jobs(0); got != DefaultJobs() {
		t.Errorf("Jobs(0) = %d, want DefaultJobs %d", got, DefaultJobs())
	}
	if got := Jobs(-3); got != DefaultJobs() {
		t.Errorf("Jobs(-3) = %d, want DefaultJobs %d", got, DefaultJobs())
	}
	if got := Jobs(5); got != 5 {
		t.Errorf("Jobs(5) = %d", got)
	}
	if DefaultJobs() < 1 {
		t.Errorf("DefaultJobs = %d", DefaultJobs())
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if out != nil || err != nil {
		t.Errorf("Map(n=0) = %v, %v", out, err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 200} {
		out, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(out) != 100 {
			t.Fatalf("jobs=%d: len = %d", jobs, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestMapBoundedConcurrency holds every worker at a barrier and checks
// that exactly jobs calls run at once — neither fewer (the pool must use
// all its workers) nor more (the bound must hold).
func TestMapBoundedConcurrency(t *testing.T) {
	const jobs, n = 4, 32
	var cur, peak atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	_, err := Map(jobs, n, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		if c == jobs {
			once.Do(func() { close(release) }) // all workers arrived once
		}
		<-release
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != jobs {
		t.Errorf("peak concurrency = %d, want %d", got, jobs)
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(1, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("serial Map ran %d calls after error at index 3", got)
	}
}

// TestMapReturnsLowestFailingIndex checks the deterministic error
// choice: among the calls that actually ran and failed, the error of the
// lowest index is returned.
func TestMapReturnsLowestFailingIndex(t *testing.T) {
	const jobs, n = 8, 64
	var mu sync.Mutex
	failedIdx := map[int]bool{}
	_, err := Map(jobs, n, func(i int) (int, error) {
		mu.Lock()
		failedIdx[i] = true
		mu.Unlock()
		return 0, fmt.Errorf("err-%d", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	min := -1
	for i := range failedIdx {
		if min < 0 || i < min {
			min = i
		}
	}
	if want := fmt.Sprintf("err-%d", min); err.Error() != want {
		t.Errorf("err = %v, want %s (lowest failing index that ran)", err, want)
	}
}

// TestMapDrainsInFlight checks that Map does not return while calls are
// still executing after a failure — every started call finishes first.
func TestMapDrainsInFlight(t *testing.T) {
	const jobs, n = 4, 16
	var started, finished atomic.Int64
	boom := errors.New("boom")
	_, err := Map(jobs, n, func(i int) (int, error) {
		started.Add(1)
		defer finished.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Errorf("Map returned with %d of %d started calls unfinished", s-f, s)
	}
}

func TestDeriveSeed(t *testing.T) {
	// Pinned values: changing the derivation silently invalidates every
	// recorded sweep, so it must fail a test first.
	golden := []struct {
		base int64
		key  string
		want int64
	}{
		{1, "load/uniform/rate=0.300000", 7431459433761795636},
		{1, "hotspot/bg=0.300000/hot=0.450000", -4593744453744409473},
		{42, "figure2", -6288767475748206889},
	}
	for _, g := range golden {
		if got := DeriveSeed(g.base, g.key); got != g.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", g.base, g.key, got, g.want)
		}
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("distinct identities collided")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("distinct base seeds collided")
	}
}

func TestIdentifyApply(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	id := Identify(cfg, "curve rate=0.300", "load/uniform/rate=0.300000")
	if id.Label != "curve rate=0.300" {
		t.Errorf("label = %q", id.Label)
	}
	if id.Seed != DeriveSeed(7, "load/uniform/rate=0.300000") {
		t.Errorf("seed = %d", id.Seed)
	}

	applied := id.Apply(cfg)
	if applied.RunLabel != id.Label || applied.Seed != id.Seed {
		t.Errorf("Apply: label %q seed %d", applied.RunLabel, applied.Seed)
	}
	// Apply works on a copy; the shared base config is untouched.
	if cfg.RunLabel != "" || cfg.Seed != 7 {
		t.Errorf("base config mutated: label %q seed %d", cfg.RunLabel, cfg.Seed)
	}
	// Watchdog disarmed: no snapshot path is invented.
	if applied.WatchdogOut != "" {
		t.Errorf("WatchdogOut = %q with watchdog off", applied.WatchdogOut)
	}

	cfg.WatchdogCycles = 1000
	armed := id.Apply(cfg)
	if armed.WatchdogOut != "nocsim-stall_curve-rate-0.300.json" {
		t.Errorf("default watchdog path = %q", armed.WatchdogOut)
	}
	cfg.WatchdogOut = "dumps/stall.json"
	custom := id.Apply(cfg)
	if custom.WatchdogOut != "dumps/stall_curve-rate-0.300.json" {
		t.Errorf("custom watchdog path = %q", custom.WatchdogOut)
	}
}
