package sim

import (
	"reflect"
	"testing"

	"nocsim/internal/traffic"
)

// TestActiveSetMatchesStepAll pins the worklist contract: Step visiting
// only active nodes must be bit-identical to stepping every node every
// cycle (Config.StepAll, the -stepall debug flag). The active-set
// admission rules are proved in network.computeActive — a skipped node's
// cycle is a no-op — and this test holds the proof against the
// implementation for every routing algorithm, over a sweep long enough
// to include warmup, saturated measurement and drain, where a wrongly
// skipped router would reorder arbitration or strand a flit and shift
// every downstream latency sample.
func TestActiveSetMatchesStepAll(t *testing.T) {
	rates := []float64{0.1, 0.3}
	for _, alg := range determinismAlgorithms {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig()
			cfg.Algorithm = alg
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000

			worklist, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.StepAll = true
			stepAll, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
			if err != nil {
				t.Fatal(err)
			}
			w, s := scrubPoints(worklist), scrubPoints(stepAll)
			if !reflect.DeepEqual(w, s) {
				t.Errorf("active-set worklist diverged from step-all:\nworklist: %+v\nstep-all: %+v",
					dump(w), dump(s))
			}
		})
	}
}

// TestActiveSetMatchesStepAllWedged repeats the comparison on the wedged
// fixture — a stalled fabric full of quiescent-but-blocked routers is
// exactly where an over-eager admission rule could skip a node that
// still owes a credit or a watchdog-visible state transition.
func TestActiveSetMatchesStepAllWedged(t *testing.T) {
	run := func(stepAll bool) *Result {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = 2, 2
		cfg.VCs = 2
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 200, 400
		cfg.SlowEndpoints = map[int]int{3: 1 << 30}
		cfg.StepAll = stepAll
		gen := &traffic.Generator{
			Nodes:   []int{0, 1, 2},
			Pattern: traffic.Permutation{Label: "wedge", Flows: map[int]int{0: 3, 1: 3, 2: 3}},
			Rate:    1,
		}
		res := MustNew(cfg, gen).Run()
		pts := scrubPoints([]SweepPoint{{Result: res}})
		return pts[0].Result
	}
	worklist, stepAll := run(false), run(true)
	if !reflect.DeepEqual(worklist, stepAll) {
		t.Errorf("wedged run diverged:\nworklist: %+v\nstep-all: %+v", *worklist, *stepAll)
	}
}
