package sim

import (
	"fmt"

	"nocsim/internal/flit"
	"nocsim/internal/traffic"
)

// SweepPoint is one injection rate of a latency-throughput curve.
type SweepPoint struct {
	Rate   float64
	Result *Result
}

// LatencyThroughput produces one latency-throughput curve (the building
// block of Figures 5, 6 and 7): cfg is run once per rate with the named
// synthetic pattern and packet-size distribution. The rates run in
// parallel on one worker per CPU; results are independent of the worker
// count (see LatencyThroughputJobs).
func LatencyThroughput(cfg Config, pattern string, size traffic.SizeFn, rates []float64) ([]SweepPoint, error) {
	return LatencyThroughputJobs(cfg, pattern, size, rates, 0)
}

// LatencyThroughputJobs is LatencyThroughput on up to jobs workers
// (0 = one per CPU). Every rate point is an independent simulation with
// its own Config copy and a seed derived from cfg.Seed and the point's
// identity, so the curve is bit-identical at any jobs value.
func LatencyThroughputJobs(cfg Config, pattern string, size traffic.SizeFn, rates []float64, jobs int) ([]SweepPoint, error) {
	return Map(jobs, len(rates), func(i int) (SweepPoint, error) {
		res, err := runLoad(cfg, pattern, size, rates[i])
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Rate: rates[i], Result: res}, nil
	})
}

// loadIdentity derives the identity of one rate point of a sweep: the
// monitored label is the harness's base label (or the algorithm name)
// tagged with the injection rate — bisection searches pick rates
// dynamically, so the rate part cannot be pre-assigned — while the seed
// key is the canonical (pattern, rate) traffic cell. The key is
// independent of display decoration, so monitoring never changes
// results, and deliberately excludes the routing algorithm, so the
// curves of a figure compare algorithms on identical offered traffic
// (each run still owns a private RNG seeded from the key).
func loadIdentity(cfg Config, pattern string, rate float64) RunIdentity {
	base := cfg.RunLabel
	if base == "" {
		base = algName(cfg)
	}
	return Identify(cfg,
		fmt.Sprintf("%s rate=%.3f", base, rate),
		fmt.Sprintf("load/%s/rate=%.6f", pattern, rate))
}

// runLoad runs one simulation at the given uniform-pattern-family load
// under the point's derived identity.
func runLoad(cfg Config, pattern string, size traffic.SizeFn, rate float64) (*Result, error) {
	return runLoadID(cfg, loadIdentity(cfg, pattern, rate), pattern, size, rate)
}

// runLoadID runs one simulation at the given load under an explicit run
// identity. The identity is applied to a private Config copy — the
// caller's cfg is never mutated, which is what makes the fan-out in
// LatencyThroughputJobs safe.
func runLoadID(cfg Config, id RunIdentity, pattern string, size traffic.SizeFn, rate float64) (*Result, error) {
	p, err := traffic.ByName(pattern, cfg.Mesh())
	if err != nil {
		return nil, err
	}
	cfg = id.Apply(cfg)
	cfg.PprofLabels = []string{"traffic", pattern, "rate", fmt.Sprintf("%.3f", rate)}
	gen := &traffic.Generator{Pattern: p, Rate: rate, Size: size}
	s, err := New(cfg, gen)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// SaturationCriterion decides whether a run is saturated given the
// zero-load latency reference.
type SaturationCriterion struct {
	// LatencyFactor: saturated when mean latency exceeds this multiple
	// of the zero-load latency (default 3).
	LatencyFactor float64
	// AcceptRatio: saturated when accepted/offered drops below this
	// (default 0.95).
	AcceptRatio float64
}

// DefaultCriterion returns the thresholds used throughout the repository.
func DefaultCriterion() SaturationCriterion {
	return SaturationCriterion{LatencyFactor: 3, AcceptRatio: 0.95}
}

// Saturated applies the criterion.
func (c SaturationCriterion) Saturated(res *Result, zeroLoadLatency float64) bool {
	if !res.Stable {
		return true
	}
	if res.Offered > 0 && res.Accepted < c.AcceptRatio*res.Offered {
		return true
	}
	return res.AvgLatency(flit.ClassBackground) > c.LatencyFactor*zeroLoadLatency
}

// SaturationResult reports a saturation-throughput search.
type SaturationResult struct {
	// Throughput is the highest stable offered load found, in
	// flits/node/cycle.
	Throughput float64
	// ZeroLoadLatency is the latency reference measured at low load.
	ZeroLoadLatency float64
	// Evaluations counts simulation runs performed.
	Evaluations int
}

// probeRate is the low load used to establish the zero-load latency.
const probeRate = 0.05

// SaturationThroughput bisects for the network saturation throughput of
// cfg under the named pattern: the largest offered load that stays stable
// under the default criterion, resolved to within tol flits/node/cycle
// (the figures use 0.01). A bisection is inherently sequential — each
// probe's rate depends on the previous verdict — so grids of searches
// parallelize across cells (see exp.Figure7/Figure8), not within one.
func SaturationThroughput(cfg Config, pattern string, size traffic.SizeFn, tol float64) (*SaturationResult, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("sim: tolerance must be positive")
	}
	crit := DefaultCriterion()
	sr := &SaturationResult{}

	probe, err := runLoad(cfg, pattern, size, probeRate)
	if err != nil {
		return nil, err
	}
	sr.Evaluations++
	sr.ZeroLoadLatency = probe.AvgLatency(flit.ClassBackground)
	if crit.Saturated(probe, sr.ZeroLoadLatency) {
		// Even the probe load saturates (cannot happen in practice for
		// the evaluated configurations; be defensive).
		sr.Throughput = 0
		return sr, nil
	}

	lo, hi := probeRate, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		res, err := runLoad(cfg, pattern, size, mid)
		if err != nil {
			return nil, err
		}
		sr.Evaluations++
		if crit.Saturated(res, sr.ZeroLoadLatency) {
			hi = mid
		} else {
			lo = mid
		}
	}
	sr.Throughput = lo
	return sr, nil
}
