package sim

import (
	"fmt"

	"nocsim/internal/flit"
	"nocsim/internal/traffic"
)

// SweepPoint is one injection rate of a latency-throughput curve.
type SweepPoint struct {
	Rate   float64
	Result *Result
}

// LatencyThroughput produces one latency-throughput curve (the building
// block of Figures 5, 6 and 7): cfg is run once per rate with the named
// synthetic pattern and packet-size distribution.
func LatencyThroughput(cfg Config, pattern string, size traffic.SizeFn, rates []float64) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(rates))
	for _, rate := range rates {
		res, err := runLoad(cfg, pattern, size, rate)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Rate: rate, Result: res})
	}
	return points, nil
}

// runLoad runs one simulation at the given uniform-pattern-family load.
func runLoad(cfg Config, pattern string, size traffic.SizeFn, rate float64) (*Result, error) {
	p, err := traffic.ByName(pattern, cfg.Mesh())
	if err != nil {
		return nil, err
	}
	if cfg.Monitor != nil {
		// Tag the monitored run with its injection rate; harnesses set the
		// figure/pattern/algorithm part and leave the rate to us, since
		// bisection searches pick rates dynamically.
		base := cfg.RunLabel
		if base == "" {
			base = cfg.Algorithm
		}
		cfg.RunLabel = fmt.Sprintf("%s rate=%.3f", base, rate)
	}
	gen := &traffic.Generator{Pattern: p, Rate: rate, Size: size}
	s, err := New(cfg, gen)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// SaturationCriterion decides whether a run is saturated given the
// zero-load latency reference.
type SaturationCriterion struct {
	// LatencyFactor: saturated when mean latency exceeds this multiple
	// of the zero-load latency (default 3).
	LatencyFactor float64
	// AcceptRatio: saturated when accepted/offered drops below this
	// (default 0.95).
	AcceptRatio float64
}

// DefaultCriterion returns the thresholds used throughout the repository.
func DefaultCriterion() SaturationCriterion {
	return SaturationCriterion{LatencyFactor: 3, AcceptRatio: 0.95}
}

// Saturated applies the criterion.
func (c SaturationCriterion) Saturated(res *Result, zeroLoadLatency float64) bool {
	if !res.Stable {
		return true
	}
	if res.Offered > 0 && res.Accepted < c.AcceptRatio*res.Offered {
		return true
	}
	return res.AvgLatency(flit.ClassBackground) > c.LatencyFactor*zeroLoadLatency
}

// SaturationResult reports a saturation-throughput search.
type SaturationResult struct {
	// Throughput is the highest stable offered load found, in
	// flits/node/cycle.
	Throughput float64
	// ZeroLoadLatency is the latency reference measured at low load.
	ZeroLoadLatency float64
	// Evaluations counts simulation runs performed.
	Evaluations int
}

// probeRate is the low load used to establish the zero-load latency.
const probeRate = 0.05

// SaturationThroughput bisects for the network saturation throughput of
// cfg under the named pattern: the largest offered load that stays stable
// under the default criterion, resolved to within tol flits/node/cycle
// (the figures use 0.01).
func SaturationThroughput(cfg Config, pattern string, size traffic.SizeFn, tol float64) (*SaturationResult, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("sim: tolerance must be positive")
	}
	crit := DefaultCriterion()
	sr := &SaturationResult{}

	probe, err := runLoad(cfg, pattern, size, probeRate)
	if err != nil {
		return nil, err
	}
	sr.Evaluations++
	sr.ZeroLoadLatency = probe.AvgLatency(flit.ClassBackground)
	if crit.Saturated(probe, sr.ZeroLoadLatency) {
		// Even the probe load saturates (cannot happen in practice for
		// the evaluated configurations; be defensive).
		sr.Throughput = 0
		return sr, nil
	}

	lo, hi := probeRate, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		res, err := runLoad(cfg, pattern, size, mid)
		if err != nil {
			return nil, err
		}
		sr.Evaluations++
		if crit.Saturated(res, sr.ZeroLoadLatency) {
			hi = mid
		} else {
			lo = mid
		}
	}
	sr.Throughput = lo
	return sr, nil
}
