// Package sim is the experiment engine: it assembles a network, drives
// traffic generators or traces through warmup/measurement/drain phases,
// collects latency, throughput and blocking statistics, searches for
// saturation throughput, and analyzes congestion trees. Every table and
// figure of the paper is regenerated through this package.
package sim

import (
	"fmt"

	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// Config holds the network parameters of one simulation, mirroring
// Table 2. The zero value is not usable; start from DefaultConfig.
type Config struct {
	Width, Height int
	// VCs per physical channel (Table 2 default: 10).
	VCs int
	// BufDepth is the per-VC buffer size in flits (Table 2: 4).
	BufDepth int
	// Speedup is the router's internal speedup (Table 2: 2).
	Speedup int
	// Algorithm names the routing algorithm (see routing.Names).
	Algorithm string
	// AlgFactory, when non-nil, overrides Algorithm with a custom
	// constructor — used by ablation studies to run parameterized
	// variants (e.g. a Footprint with a non-default threshold) that are
	// not in the registry.
	AlgFactory func() routing.Algorithm
	// Seed drives every stochastic choice; equal seeds give identical
	// runs.
	Seed int64
	// StickyRouting freezes per-packet VC request sets at route
	// computation time (see router.Config.StickyRouting). Off by
	// default; the default reproduces the paper's results.
	StickyRouting bool
	// SlowEndpoints maps node id -> consume interval for endpoints whose
	// ejection bandwidth is below port bandwidth, the second source of
	// endpoint congestion in Section 2 of the paper.
	SlowEndpoints map[int]int
	// StepAll disables the network's active-set worklist so every router
	// and endpoint is visited every cycle (see network.Config.StepAll). A
	// debug mode: results are bit-identical either way, only slower.
	StepAll bool
	// NoRouteCache disables the route-decision cache (see
	// network.Config.NoRouteCache). An escape hatch: results are
	// bit-identical either way, only slower.
	NoRouteCache bool
	// Obs selects the observability collectors (lifecycle tracer,
	// counter sampler, link heatmap) attached to the run. The zero value
	// disables them all; see Simulation.Observability.
	Obs obs.Options
	// Monitor, when non-nil, receives the run's live progress: phase,
	// percent complete, in-flight packets, accepted rate and per-router
	// gauges, published on a heartbeat cadence for the /metrics and
	// /status endpoints. Runs sharing one hub (a sweep) aggregate there.
	Monitor *obs.Hub
	// RunLabel names the run in the monitor's output; defaults to the
	// algorithm name.
	RunLabel string
	// PprofLabels are extra (key, value) pairs attached to the run's
	// stepping goroutine as runtime/pprof labels, on top of the implicit
	// alg and run labels. Harnesses set the traffic pattern and
	// injection rate here so CPU/heap profiles attribute samples per
	// run. Display-only: never feeds results.
	PprofLabels []string
	// WatchdogCycles, when > 0, arms the stall watchdog: a window of
	// that many cycles with packets in flight but zero forward progress
	// captures a fabric snapshot (written to WatchdogOut) and summarizes
	// it to stderr.
	WatchdogCycles int64
	// WatchdogOut is the stall snapshot JSON path (default
	// "nocsim-stall.json").
	WatchdogOut string

	// WarmupCycles run before measurement starts.
	WarmupCycles int64
	// MeasureCycles is the measurement window length.
	MeasureCycles int64
	// DrainCycles bounds the post-measurement drain phase in which
	// measured packets still in flight are awaited (traffic keeps
	// flowing). A saturated network will exhaust this bound.
	DrainCycles int64
}

// DefaultConfig returns the paper's baseline configuration: 8×8 mesh,
// 10 VCs with 4-flit buffers, speedup 2, Footprint routing.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 8,
		VCs:       10,
		BufDepth:  4,
		Speedup:   2,
		Algorithm: "footprint",
		Seed:      1,

		WarmupCycles:  10000,
		MeasureCycles: 10000,
		DrainCycles:   50000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("sim: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.VCs < 1 {
		return fmt.Errorf("sim: need at least 1 VC, have %d", c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("sim: need buffer depth >= 1, have %d", c.BufDepth)
	}
	if c.Speedup < 1 {
		return fmt.Errorf("sim: need speedup >= 1, have %d", c.Speedup)
	}
	if c.Algorithm == "" && c.AlgFactory == nil {
		return fmt.Errorf("sim: no routing algorithm configured")
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 || c.DrainCycles < 0 {
		return fmt.Errorf("sim: invalid phase lengths")
	}
	if c.WatchdogCycles < 0 {
		return fmt.Errorf("sim: negative watchdog window %d", c.WatchdogCycles)
	}
	return nil
}

// Mesh returns the configured topology.
func (c Config) Mesh() topo.Mesh { return topo.MustNew(c.Width, c.Height) }
