package sim

import (
	"fmt"
	"strings"

	"nocsim/internal/network"
	"nocsim/internal/topo"
)

// LinkLoad is one directed link's utilization over an observation window.
type LinkLoad struct {
	From, To    int
	Dir         topo.Direction
	Utilization float64 // flits per cycle, 0..1
}

// UtilizationSnapshot captures per-link utilization of the fabric.
type UtilizationSnapshot struct {
	Links  []LinkLoad
	Cycles int64
}

// UtilizationProbe measures link utilization between two observation
// points.
type UtilizationProbe struct {
	net   *network.Network
	start int64
	base  map[[2]int]int64 // (node, dir) -> flit count at Start
}

// NewUtilizationProbe starts observing net.
func NewUtilizationProbe(net *network.Network) *UtilizationProbe {
	p := &UtilizationProbe{net: net, start: net.Now(), base: map[[2]int]int64{}}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			p.base[[2]int{id, int(d)}] = r.OutputFlits(d)
		}
	}
	return p
}

// Snapshot returns the utilization of every inter-router link since the
// probe was created.
func (p *UtilizationProbe) Snapshot(m topo.Mesh) UtilizationSnapshot {
	cycles := p.net.Now() - p.start
	snap := UtilizationSnapshot{Cycles: cycles}
	if cycles <= 0 {
		return snap
	}
	for id := 0; id < p.net.Nodes(); id++ {
		r := p.net.Router(id)
		for d := topo.East; d <= topo.South; d++ {
			to, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			sent := r.OutputFlits(d) - p.base[[2]int{id, int(d)}]
			snap.Links = append(snap.Links, LinkLoad{
				From: id, To: to, Dir: d,
				Utilization: float64(sent) / float64(cycles),
			})
		}
	}
	return snap
}

// Hottest returns the n most utilized links, most loaded first.
func (s UtilizationSnapshot) Hottest(n int) []LinkLoad {
	links := make([]LinkLoad, len(s.Links))
	copy(links, s.Links)
	// Insertion sort by utilization descending; link counts are small.
	for i := 1; i < len(links); i++ {
		for j := i; j > 0 && links[j].Utilization > links[j-1].Utilization; j-- {
			links[j], links[j-1] = links[j-1], links[j]
		}
	}
	if n > len(links) {
		n = len(links)
	}
	return links[:n]
}

// Mean returns the average utilization over all links.
func (s UtilizationSnapshot) Mean() float64 {
	if len(s.Links) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range s.Links {
		sum += l.Utilization
	}
	return sum / float64(len(s.Links))
}

// heatRunes maps utilization deciles to ASCII shades.
var heatRunes = []byte(" .:-=+*#%@")

func heatRune(u float64) byte {
	i := int(u * float64(len(heatRunes)))
	if i >= len(heatRunes) {
		i = len(heatRunes) - 1
	}
	if i < 0 {
		i = 0
	}
	return heatRunes[i]
}

// Heatmap renders per-node egress load (the mean utilization of a node's
// outgoing links) as an ASCII grid — a quick visual of where congestion
// sits on the mesh.
func (s UtilizationSnapshot) Heatmap(m topo.Mesh) string {
	load := make([]float64, m.Nodes())
	cnt := make([]int, m.Nodes())
	for _, l := range s.Links {
		load[l.From] += l.Utilization
		cnt[l.From]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "egress load heatmap (%s = 0%% ... %s = 100%%)\n",
		string(heatRunes[0:1]), string(heatRunes[len(heatRunes)-1:]))
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			n := m.Node(topo.Coord{X: x, Y: y})
			u := 0.0
			if cnt[n] > 0 {
				u = load[n] / float64(cnt[n])
			}
			b.WriteByte(heatRune(u))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
