package sim

import (
	"fmt"
	"sort"

	"nocsim/internal/flit"
	"nocsim/internal/traffic"
)

// HotspotPoint is one x-axis position of Figure 9: the hotspot flows of
// Table 3 inject at Rate while background nodes inject uniform traffic at
// a fixed rate; only the background latency is reported.
type HotspotPoint struct {
	Rate              float64 // hotspot injection rate, flits/node/cycle
	BackgroundLatency float64
	BackgroundP99     float64
	Stable            bool
	Result            *Result
}

// HotspotCurve reproduces Figure 9 for one algorithm: background latency
// as a function of the hotspot injection rate. cfg must describe an 8×8
// mesh, since Table 3's flows are defined on it. bgRate is the constant
// background load (the paper uses 0.30). The rates run in parallel on
// one worker per CPU; see HotspotCurveJobs.
func HotspotCurve(cfg Config, bgRate float64, hotspotRates []float64) ([]HotspotPoint, error) {
	return HotspotCurveJobs(cfg, bgRate, hotspotRates, 0)
}

// HotspotCurveJobs is HotspotCurve on up to jobs workers (0 = one per
// CPU). Every rate is an independent simulation with its own Config
// copy and derived seed, so the curve is identical at any jobs value.
func HotspotCurveJobs(cfg Config, bgRate float64, hotspotRates []float64, jobs int) ([]HotspotPoint, error) {
	return Map(jobs, len(hotspotRates), func(i int) (HotspotPoint, error) {
		return HotspotRun(cfg, bgRate, hotspotRates[i])
	})
}

// HotspotRun simulates one hotspot rate point: Table 3's flows at rate
// over uniform background traffic at bgRate. Experiment harnesses that
// flatten whole (algorithm × rate) grids call it directly.
func HotspotRun(cfg Config, bgRate, rate float64) (HotspotPoint, error) {
	if cfg.Width != 8 || cfg.Height != 8 {
		return HotspotPoint{}, fmt.Errorf("sim: Table 3 hotspot flows require an 8x8 mesh, have %dx%d", cfg.Width, cfg.Height)
	}
	base := cfg.RunLabel
	if base == "" {
		base = algName(cfg)
	}
	// The seed key names the traffic cell only — like loadIdentity, it
	// excludes the algorithm so Figure 9's curves face identical traffic.
	id := Identify(cfg,
		fmt.Sprintf("%s hot=%.2f", base, rate),
		fmt.Sprintf("hotspot/bg=%.6f/hot=%.6f", bgRate, rate))
	cfg = id.Apply(cfg)
	cfg.PprofLabels = []string{"traffic", "hotspot", "rate", fmt.Sprintf("%.3f", rate)}

	flows := traffic.HotspotFlows()
	sources := make([]int, 0, len(flows.Flows))
	for s := range flows.Flows {
		sources = append(sources, s)
	}
	// Deterministic source order for reproducibility.
	sort.Ints(sources)

	hot := &traffic.Generator{
		Nodes:   sources,
		Pattern: flows,
		Rate:    rate,
		Class:   flit.ClassHotspot,
	}
	bg := &traffic.Generator{
		Nodes:   traffic.BackgroundNodes(cfg.Mesh()),
		Pattern: traffic.Uniform{Nodes: cfg.Mesh().Nodes()},
		Rate:    bgRate,
		Class:   flit.ClassBackground,
	}
	s, err := New(cfg, hot, bg)
	if err != nil {
		return HotspotPoint{}, err
	}
	res := s.Run()
	return HotspotPoint{
		Rate:              rate,
		BackgroundLatency: res.AvgLatency(flit.ClassBackground),
		BackgroundP99:     res.P99,
		Stable:            res.Stable,
		Result:            res,
	}, nil
}

// HotspotSaturation returns the lowest tested hotspot rate at which the
// background traffic saturates (latency beyond factor× the first point's
// latency, or unstable), or the last rate + step when none saturates.
func HotspotSaturation(points []HotspotPoint, factor float64) float64 {
	if len(points) == 0 {
		return 0
	}
	base := points[0].BackgroundLatency
	for _, p := range points {
		if !p.Stable || p.BackgroundLatency > factor*base {
			return p.Rate
		}
	}
	return points[len(points)-1].Rate
}
