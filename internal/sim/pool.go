package sim

import (
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"nocsim/internal/obs"
)

// This file is the parallel run-execution engine. Every grid-shaped
// experiment of the paper — a latency-throughput curve, a saturation
// bisection per cell, a hotspot ramp, a trace pair — is a set of
// independent simulations, so the harnesses fan them out through Map
// onto a bounded worker pool and collect results in submission order.
//
// Parallelism is only safe because run identity is explicit: each run
// gets its own Config copy carrying a per-run label, a per-run seed
// derived by DeriveSeed (never shared RNG state), and a per-run
// watchdog snapshot path. Equal base seeds therefore give bit-identical
// results at any worker count; the determinism tests in
// determinism_test.go hold this invariant for every routing algorithm.

// DefaultJobs is the worker count used when a harness is handed a
// non-positive jobs value: one worker per CPU.
func DefaultJobs() int { return runtime.NumCPU() }

// Jobs normalizes a -jobs flag value: n if positive, else DefaultJobs.
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return DefaultJobs()
}

// Map runs f(0), …, f(n-1) on up to jobs workers (Jobs-normalized) and
// returns the results in index order. On failure it returns the error
// of the lowest-indexed failing call — a deterministic choice — after
// draining the calls already in flight; calls not yet started are
// skipped. f must be safe for concurrent invocation with distinct
// indices.
func Map[T any](jobs, n int, f func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	out := make([]T, n)
	if jobs == 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := f(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DeriveSeed hashes a base seed and a run-identity string into a
// per-run seed (FNV-1a). Runs of a grid never share RNG state or a raw
// seed: each cell's stream is independent, yet fully determined by the
// base seed and the cell's identity — the foundation of the engine's
// "equal seeds give identical results at any -jobs" guarantee.
func DeriveSeed(base int64, identity string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(identity))
	return int64(h.Sum64())
}

// RunIdentity pins one run of an experiment grid: the label shown by
// the monitor and the derived seed driving its RNG. Harnesses compute
// it per cell before fanning out, so a shared base Config is never
// mutated across goroutines.
type RunIdentity struct {
	Label string
	Seed  int64
}

// Identify builds a run identity under base config cfg: label names the
// run for the monitor; seedKey is the canonical cell identity fed to
// DeriveSeed (kept separate from the label so display decoration never
// changes results).
func Identify(cfg Config, label, seedKey string) RunIdentity {
	return RunIdentity{Label: label, Seed: DeriveSeed(cfg.Seed, seedKey)}
}

// Apply stamps the identity onto its own copy of cfg: run label, derived
// seed, and — when the watchdog is armed — a per-run snapshot path, so
// concurrent runs never clobber one another's stall dumps.
func (id RunIdentity) Apply(cfg Config) Config {
	cfg.RunLabel = id.Label
	cfg.Seed = id.Seed
	if cfg.WatchdogCycles > 0 {
		base := cfg.WatchdogOut
		if base == "" {
			base = "nocsim-stall.json"
		}
		cfg.WatchdogOut = obs.SuffixPath(base, id.Label)
	}
	return cfg
}

// algName returns the config's algorithm identity for seed derivation;
// AlgFactory-only configs (ablation variants outside the registry) fall
// back to a fixed token.
func algName(cfg Config) string {
	if cfg.Algorithm != "" {
		return cfg.Algorithm
	}
	return "custom"
}
