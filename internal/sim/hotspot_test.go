package sim

import (
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/traffic"
)

// hotspotTestConfig is a reduced-cycle 8×8 configuration (Table 3 flows
// are defined on 8×8).
func hotspotTestConfig(alg string) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.VCs = 4
	cfg.WarmupCycles = 800
	cfg.MeasureCycles = 1200
	cfg.DrainCycles = 4000
	return cfg
}

func TestHotspotCurveRequires8x8(t *testing.T) {
	cfg := testConfig() // 4x4
	if _, err := HotspotCurve(cfg, 0.3, []float64{0.1}); err == nil {
		t.Error("want error on non-8x8 mesh")
	}
}

func TestHotspotCurveShape(t *testing.T) {
	cfg := hotspotTestConfig("footprint")
	pts, err := HotspotCurve(cfg, 0.3, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.BackgroundLatency <= 0 {
			t.Errorf("rate %v: no background latency measured", p.Rate)
		}
		// Hotspot packets must be excluded from background latency but
		// present in the per-class map at nonzero hotspot rate.
		if p.Result.AvgLatency(flit.ClassHotspot) <= 0 {
			t.Errorf("rate %v: hotspot class not measured", p.Rate)
		}
	}
	if pts[1].BackgroundLatency < pts[0].BackgroundLatency {
		t.Errorf("background latency should not improve as hotspot load grows: %v -> %v",
			pts[0].BackgroundLatency, pts[1].BackgroundLatency)
	}
}

// TestFootprintBeatsDBARUnderHotspot is the headline result (Figure 9):
// with the Table 3 hotspot flows plus 30% background, DBAR's background
// latency degrades far more than Footprint's at the same hotspot rate.
func TestFootprintBeatsDBARUnderHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	curve := func(alg string) HotspotPoint {
		cfg := hotspotTestConfig(alg)
		cfg.VCs = 10 // the Figure 9 gap needs the paper's VC count
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 1500, 2000, 6000
		pts, err := HotspotCurve(cfg, 0.3, []float64{0.45})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}
	fp, db := curve("footprint"), curve("dbar")
	t.Logf("hotspot rate 0.45: footprint bg lat %.1f (stable=%v), dbar bg lat %.1f (stable=%v)",
		fp.BackgroundLatency, fp.Stable, db.BackgroundLatency, db.Stable)
	// The paper's Figure 9: DBAR's background traffic saturates near rate
	// 0.39 while Footprint survives well past it. At 0.45 Footprint must
	// be clearly ahead of DBAR on background latency.
	if db.Stable && !fp.Stable {
		t.Fatal("inverted: Footprint saturated while DBAR stable at 0.45")
	}
	if fp.BackgroundLatency >= db.BackgroundLatency {
		t.Errorf("no Footprint advantage under endpoint congestion: fp=%.1f dbar=%.1f",
			fp.BackgroundLatency, db.BackgroundLatency)
	}
}

func TestHotspotSaturation(t *testing.T) {
	pts := []HotspotPoint{
		{Rate: 0.1, BackgroundLatency: 20, Stable: true},
		{Rate: 0.2, BackgroundLatency: 22, Stable: true},
		{Rate: 0.3, BackgroundLatency: 90, Stable: true},
		{Rate: 0.4, BackgroundLatency: 500, Stable: false},
	}
	if got := HotspotSaturation(pts, 3); got != 0.3 {
		t.Errorf("saturation = %v, want 0.3 (first point over 3x base)", got)
	}
	if got := HotspotSaturation(pts[:2], 3); got != 0.2 {
		t.Errorf("no-saturation case = %v, want last rate", got)
	}
	if got := HotspotSaturation(nil, 3); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestCongestionTreeAnalysis(t *testing.T) {
	// Drive the Section 2 permutation on a 4x4 mesh with DOR and verify
	// the analyzer sees a congestion tree at the oversubscribed endpoint
	// n13 with thick branches.
	cfg := testConfig()
	cfg.Algorithm = "dor"
	flows := traffic.Permutation{Flows: map[int]int{4: 13, 12: 13}}
	gen := &traffic.Generator{Nodes: []int{4, 12}, Pattern: flows, Rate: 1.0}
	s := MustNew(cfg, gen)
	for i := 0; i < 400; i++ {
		s.step()
	}
	ct := AnalyzeCongestionTree(s.Network(), 13)
	if ct.Links == 0 || ct.VCs == 0 {
		t.Fatalf("no congestion tree found: %+v", ct)
	}
	if ct.MaxThickness < 2 {
		t.Errorf("DOR should create thick branches, max thickness = %d", ct.MaxThickness)
	}
	// No tree for an idle destination.
	idle := AnalyzeCongestionTree(s.Network(), 0)
	if idle.VCs != 0 {
		t.Errorf("phantom congestion tree at idle node: %+v", idle)
	}
}

func TestTreeSampler(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = "dor"
	flows := traffic.Permutation{Flows: map[int]int{4: 13, 12: 13}}
	gen := &traffic.Generator{Nodes: []int{4, 12}, Pattern: flows, Rate: 1.0}
	s := MustNew(cfg, gen)
	ts := NewTreeSampler(13)
	for i := 0; i < 300; i++ {
		s.step()
		if i >= 200 {
			ts.Sample(s.Network())
		}
	}
	avg := ts.Average()
	if avg.Samples != 100 {
		t.Errorf("samples = %d", avg.Samples)
	}
	if avg.VCs <= 0 || avg.Links <= 0 {
		t.Errorf("empty average tree: %+v", avg)
	}
	empty := NewTreeSampler(5).Average()
	if empty.Samples != 0 || empty.VCs != 0 {
		t.Error("empty sampler should average to zero")
	}
}

// TestFootprintTreeSlimmerThanDBAR checks the core mechanism: with
// endpoint congestion competing against background traffic, Footprint's
// congestion tree occupies fewer VCs than DBAR's (Figure 2's ideal vs
// Figure 2(b)). Pure hotspot traffic alone would fill every path VC with
// hotspot packets under any algorithm; the slimness shows precisely when
// other traffic shares the routers.
func TestFootprintTreeSlimmerThanDBAR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	run := func(alg string) AverageTree {
		cfg := hotspotTestConfig(alg)
		flows := traffic.HotspotFlows()
		hot := &traffic.Generator{
			Nodes: []int{0, 7, 24, 31, 32, 39, 56, 63}, Pattern: flows,
			Rate: 0.8, Class: flit.ClassHotspot,
		}
		bg := &traffic.Generator{
			Nodes:   traffic.BackgroundNodes(cfg.Mesh()),
			Pattern: traffic.Uniform{Nodes: 64},
			Rate:    0.3,
		}
		s := MustNew(cfg, hot, bg)
		ts := NewTreeSampler(63)
		for i := 0; i < 3000; i++ {
			s.step()
			if i >= 1500 {
				ts.Sample(s.Network())
			}
		}
		return ts.Average()
	}
	fp, db := run("footprint"), run("dbar")
	t.Logf("avg tree: footprint links=%.1f vcs=%.1f maxthick=%.1f; dbar links=%.1f vcs=%.1f maxthick=%.1f",
		fp.Links, fp.VCs, fp.MaxThickness, db.Links, db.VCs, db.MaxThickness)
	// "Slim" in the paper means thin branches: fewer VCs per
	// participating link. (Footprint may touch more links than DBAR —
	// full port adaptiveness is retained — but each branch stays thin.)
	fpThick := fp.VCs / fp.Links
	dbThick := db.VCs / db.Links
	if fpThick >= dbThick {
		t.Errorf("footprint branches (%.2f VCs/link) not thinner than DBAR (%.2f VCs/link)",
			fpThick, dbThick)
	}
}
