package sim

import (
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/traffic"
)

// testConfig returns a fast configuration for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	cfg.VCs = 4
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 1000
	cfg.DrainCycles = 5000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Height = -1 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.Speedup = 0 },
		func(c *Config) { c.Algorithm = "" },
		func(c *Config) { c.MeasureCycles = 0 },
		func(c *Config) { c.WarmupCycles = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestNewRejectsUnknownAlgorithm(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = "bogus"
	if _, err := New(cfg); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestLowLoadAccounting(t *testing.T) {
	cfg := testConfig()
	res, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("low load must be stable")
	}
	if res.Offered < 0.07 || res.Offered > 0.13 {
		t.Errorf("offered = %v, want ~0.1", res.Offered)
	}
	// At low load accepted tracks offered.
	if res.Accepted < 0.8*res.Offered {
		t.Errorf("accepted %v far below offered %v", res.Accepted, res.Offered)
	}
	if res.MeasuredEjected != res.Measured {
		t.Errorf("ejected %d of %d measured", res.MeasuredEjected, res.Measured)
	}
	lat := res.AvgLatency(flit.ClassBackground)
	if lat < 3 || lat > 30 {
		t.Errorf("zero-ish-load latency %v implausible on 4x4", lat)
	}
	if res.P99 < lat {
		t.Errorf("p99 %v below mean %v", res.P99, lat)
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	cfg := testConfig()
	low, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	high, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatency(flit.ClassBackground) <= low.AvgLatency(flit.ClassBackground) {
		t.Errorf("latency did not grow with load: %v -> %v",
			low.AvgLatency(flit.ClassBackground), high.AvgLatency(flit.ClassBackground))
	}
}

func TestOverloadDetected(t *testing.T) {
	cfg := testConfig()
	cfg.DrainCycles = 2000
	// Bit-complement sends every flit across the bisection: a 4x4 mesh
	// has 4 bisection links per direction shared by 8 sources, so the
	// capacity bound is 0.5 flits/node/cycle and rate 0.95 must saturate.
	res, err := runLoad(cfg, "bitcomp", traffic.FixedSize(1), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	crit := DefaultCriterion()
	if !crit.Saturated(res, 10) {
		t.Errorf("rate 0.95 bitcomp should saturate a 4x4 mesh: %v", res)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := testConfig()
	a, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency(flit.ClassBackground) != b.AvgLatency(flit.ClassBackground) ||
		a.Accepted != b.Accepted || a.Measured != b.Measured {
		t.Errorf("same seed, different results:\n%v\n%v", a, b)
	}
	cfg.Seed = 2
	c, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measured == c.Measured && a.AvgLatency(flit.ClassBackground) == c.AvgLatency(flit.ClassBackground) {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestLatencyThroughputCurve(t *testing.T) {
	cfg := testConfig()
	pts, err := LatencyThroughput(cfg, "uniform", traffic.FixedSize(1), []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Rate != 0.05 || pts[1].Rate != 0.2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[1].Result.AvgLatency(flit.ClassBackground) < pts[0].Result.AvgLatency(flit.ClassBackground) {
		t.Error("curve not monotone at these loads")
	}
}

func TestSaturationCriterion(t *testing.T) {
	crit := DefaultCriterion()
	// Unstable is always saturated.
	r := &Result{Stable: false}
	if !crit.Saturated(r, 10) {
		t.Error("unstable must be saturated")
	}
	// Throughput collapse.
	r = &Result{Stable: true, Offered: 0.5, Accepted: 0.4}
	if !crit.Saturated(r, 1e9) {
		t.Error("accepted << offered must be saturated")
	}
	// Healthy point.
	r = &Result{Stable: true, Offered: 0.2, Accepted: 0.2}
	if crit.Saturated(r, 10) {
		t.Error("healthy point misclassified")
	}
}

func TestSaturationThroughputSearch(t *testing.T) {
	cfg := testConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 600, 2000
	sr, err := SaturationThroughput(cfg, "uniform", traffic.FixedSize(1), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput < 0.1 || sr.Throughput > 0.9 {
		t.Errorf("4x4 uniform saturation throughput %v implausible", sr.Throughput)
	}
	if sr.ZeroLoadLatency <= 0 {
		t.Error("no zero-load latency")
	}
	if sr.Evaluations < 3 {
		t.Errorf("bisection did too little work: %d evals", sr.Evaluations)
	}
}

func TestSaturationThroughputBadTolerance(t *testing.T) {
	if _, err := SaturationThroughput(testConfig(), "uniform", traffic.FixedSize(1), 0); err == nil {
		t.Error("want error for zero tolerance")
	}
}

// TestSlowEndpointCreatesEndpointCongestion models Section 2's second
// endpoint-congestion source: an endpoint whose ejection rate is half the
// port bandwidth saturates under load a normal endpoint absorbs.
func TestSlowEndpointCreatesEndpointCongestion(t *testing.T) {
	base := testConfig()
	run := func(slow map[int]int) *Result {
		cfg := base
		cfg.SlowEndpoints = slow
		gen := &traffic.Generator{
			Nodes:   []int{4, 12},
			Pattern: traffic.Permutation{Flows: map[int]int{4: 13, 12: 13}},
			Rate:    0.35,
		}
		s := MustNew(cfg, gen)
		return s.Run()
	}
	fast := run(nil)
	slow := run(map[int]int{13: 2}) // node 13 drains every other cycle
	if !fast.Stable {
		t.Fatal("baseline should sustain 0.7 flits/cycle at the endpoint")
	}
	// 2 flows x 0.35 = 0.7 flits/cycle > 0.5 ejection rate: must saturate.
	crit := DefaultCriterion()
	if !crit.Saturated(slow, fast.AvgLatency(flit.ClassBackground)) {
		t.Errorf("slow endpoint did not congest: %v", slow)
	}
}

// TestStickyRoutingRuns exercises the StickyRouting configuration end to
// end (the DESIGN.md matrix shows it degrades throughput; here we only
// require correct, deadlock-free operation).
func TestStickyRoutingRuns(t *testing.T) {
	cfg := testConfig()
	cfg.StickyRouting = true
	res, err := runLoad(cfg, "uniform", traffic.FixedSize(1), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Error("sticky routing unstable at light load")
	}
	if res.MeasuredEjected != res.Measured {
		t.Errorf("lost packets under sticky routing: %d/%d", res.MeasuredEjected, res.Measured)
	}
}
