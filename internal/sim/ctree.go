package sim

import (
	"nocsim/internal/network"
	"nocsim/internal/topo"
)

// CongestionTree describes the congestion tree rooted at one destination
// at a moment in time, in the paper's terms: the number of branches
// (inter-router links carrying blocked traffic to the destination) and
// their total thickness (the number of VCs participating). Section 2's
// Figure 2 compares these across routing algorithms.
type CongestionTree struct {
	Dest int
	// Links is the number of distinct inter-router links with at least
	// one VC occupied by traffic to Dest.
	Links int
	// VCs is the total number of input VCs holding traffic to Dest —
	// the summed branch thickness.
	VCs int
	// MaxThickness is the largest number of VCs any single link
	// contributes.
	MaxThickness int
}

// AnalyzeCongestionTree inspects the fabric's input buffers and returns
// the congestion tree of dest. A VC participates when it currently
// buffers traffic whose head packet is destined to dest. Injection and
// ejection links are excluded: the tree is made of network links.
func AnalyzeCongestionTree(net *network.Network, dest int) CongestionTree {
	ct := CongestionTree{Dest: dest}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.South; d++ {
			linkVCs := 0
			for v := 0; v < r.VCs(); v++ {
				if r.InputBufferUse(d, v) > 0 && r.InputVCDest(d, v) == dest {
					linkVCs++
				}
			}
			if linkVCs > 0 {
				ct.Links++
				ct.VCs += linkVCs
				if linkVCs > ct.MaxThickness {
					ct.MaxThickness = linkVCs
				}
			}
		}
	}
	return ct
}

// AverageTree is a congestion tree time-average over repeated snapshots.
type AverageTree struct {
	Dest         int
	Links        float64
	VCs          float64
	MaxThickness float64
	Samples      int
}

// TreeSampler accumulates congestion-tree snapshots for a destination.
type TreeSampler struct {
	dest    int
	sumL    int
	sumV    int
	sumT    int
	samples int
}

// NewTreeSampler returns a sampler for dest.
func NewTreeSampler(dest int) *TreeSampler { return &TreeSampler{dest: dest} }

// Sample records the current congestion tree of the fabric.
func (t *TreeSampler) Sample(net *network.Network) {
	ct := AnalyzeCongestionTree(net, t.dest)
	t.sumL += ct.Links
	t.sumV += ct.VCs
	t.sumT += ct.MaxThickness
	t.samples++
}

// Average returns the time-averaged tree.
func (t *TreeSampler) Average() AverageTree {
	if t.samples == 0 {
		return AverageTree{Dest: t.dest}
	}
	n := float64(t.samples)
	return AverageTree{
		Dest:         t.dest,
		Links:        float64(t.sumL) / n,
		VCs:          float64(t.sumV) / n,
		MaxThickness: float64(t.sumT) / n,
		Samples:      t.samples,
	}
}
