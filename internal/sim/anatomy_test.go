package sim

import (
	"reflect"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
	"nocsim/internal/traffic"
)

// anatomyRun runs one short simulation with the anatomy collector on and
// returns its result.
func anatomyRun(t *testing.T, alg string, rate float64) *Result {
	t.Helper()
	cfg := testConfig()
	cfg.Algorithm = alg
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000
	cfg.Obs = obs.Options{Anatomy: true}
	pts, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), []float64{rate}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pts[0].Result
}

// TestAnatomyDoesNotChangeResults pins the anatomy collector's contract:
// like the profiler and the monitor, enabling it must not alter a single
// simulated bit. The scrubbed sweeps must be bit-identical, and every
// anatomy-enabled run must actually carry a populated aggregate.
func TestAnatomyDoesNotChangeResults(t *testing.T) {
	rates := []float64{0.1, 0.3}
	for _, alg := range []string{"footprint", "dbar"} {
		cfg := testConfig()
		cfg.Algorithm = alg
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000

		bare, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Obs = obs.Options{Anatomy: true}
		anat, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range anat {
			if p.Result.Anatomy == nil || p.Result.Anatomy.Packets == 0 {
				t.Fatalf("%s: anatomy enabled but no aggregate attached", alg)
			}
		}
		if !reflect.DeepEqual(scrubPoints(bare), scrubPoints(anat)) {
			t.Errorf("%s: enabling the anatomy collector changed simulation results", alg)
		}
	}
}

// TestAnatomyDeterministicAcrossJobs extends the jobs-identity guarantee
// to the telemetry itself: the anatomy aggregate and the occupancy time
// series are simulated state, so they must be bit-identical at any -jobs
// value.
func TestAnatomyDeterministicAcrossJobs(t *testing.T) {
	rates := []float64{0.1, 0.3}
	cfg := testConfig()
	cfg.Algorithm = "footprint"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000
	cfg.Obs = obs.Options{Anatomy: true}

	serial, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		s, p := serial[i].Result, par[i].Result
		if !reflect.DeepEqual(s.Anatomy, p.Anatomy) {
			t.Errorf("rate %.2f: anatomy differs across jobs:\nserial:   %+v\nparallel: %+v",
				serial[i].Rate, s.Anatomy, p.Anatomy)
		}
		if !reflect.DeepEqual(s.Obs.Anatomy.Samples(), p.Obs.Anatomy.Samples()) {
			t.Errorf("rate %.2f: occupancy series differs across jobs", serial[i].Rate)
		}
	}
}

// TestAnatomyLatencyClosure checks the telescoping identity on real runs:
// the component cycles partition the summed end-to-end latency exactly,
// and the decomposed population is exactly the measured-and-delivered
// packets.
func TestAnatomyLatencyClosure(t *testing.T) {
	for _, alg := range []string{"footprint", "dbar", "oddeven", "dor"} {
		res := anatomyRun(t, alg, 0.3)
		a := res.Anatomy
		if a == nil || a.Packets == 0 {
			t.Fatalf("%s: no anatomy", alg)
		}
		var sum int64
		for _, c := range a.Components() {
			sum += c.Cycles
		}
		if sum != a.LatencyCycles {
			t.Errorf("%s: components sum to %d cycles, want LatencyCycles %d (delta %d)",
				alg, sum, a.LatencyCycles, sum-a.LatencyCycles)
		}
		if a.Packets != res.MeasuredEjected {
			t.Errorf("%s: anatomy decomposed %d packets, run measured %d delivered",
				alg, a.Packets, res.MeasuredEjected)
		}
		if a.Hops == 0 || a.TotalGrants() < a.Hops {
			t.Errorf("%s: %d grants for %d hops — every traversal needs a prior grant",
				alg, a.TotalGrants(), a.Hops)
		}
	}
}

// maxStaticPorts returns the Eq-1 static ceiling on a single decision's
// offered ports: the largest AllowedPorts set over every (node, dest,
// arrival) triple of the mesh.
func maxStaticPorts(t *testing.T, m topo.Mesh, alg string) int {
	t.Helper()
	a, err := routing.New(alg)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for s := 0; s < m.Nodes(); s++ {
		for d := 0; d < m.Nodes(); d++ {
			if s == d {
				continue
			}
			for in := topo.East; in <= topo.Local; in++ {
				if n := len(routing.AllowedPorts(m, a, s, d, in)); n > max {
					max = n
				}
			}
		}
	}
	return max
}

// TestAnatomyExercisedWithinStaticBound is the run-level invariant tying
// the runtime telemetry back to the paper's Equation 1: what a run
// exercised can never exceed what the algorithm statically allows. All
// implemented algorithms route minimally, so every decision must also
// make minimal progress.
func TestAnatomyExercisedWithinStaticBound(t *testing.T) {
	mesh := topo.MustNew(4, 4) // testConfig's fabric
	for _, alg := range []string{"footprint", "dbar", "oddeven", "dor"} {
		res := anatomyRun(t, alg, 0.3)
		a := res.Anatomy
		if a.Decisions == 0 {
			t.Fatalf("%s: no routing decisions recorded", alg)
		}
		if a.OfferedPortsSum > a.MinimalPortsSum {
			t.Errorf("%s: offered %d ports over a minimal ceiling of %d",
				alg, a.OfferedPortsSum, a.MinimalPortsSum)
		}
		if a.OfferedVCsSum > a.AdmissibleVCsSum {
			t.Errorf("%s: offered %d VCs over an admissible ceiling of %d",
				alg, a.OfferedVCsSum, a.AdmissibleVCsSum)
		}
		if a.MinimalDecisions != a.Decisions {
			t.Errorf("%s: %d of %d decisions offered a non-minimal port",
				alg, a.Decisions-a.MinimalDecisions, a.Decisions)
		}
		if bound := a.Decisions * int64(maxStaticPorts(t, mesh, alg)); a.OfferedPortsSum > bound {
			t.Errorf("%s: offered %d ports over the static Eq-1 bound %d",
				alg, a.OfferedPortsSum, bound)
		}
		if pa := a.PortAdaptivenessExercised(); pa <= 0 || pa > 1 {
			t.Errorf("%s: exercised port adaptiveness %v outside (0, 1]", alg, pa)
		}
		if va := a.VCAdaptivenessExercised(); va < 0 || va > 1 {
			t.Errorf("%s: exercised VC adaptiveness %v outside [0, 1]", alg, va)
		}
	}
}
