package sim

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nocsim/internal/obs"
	"nocsim/internal/traffic"
)

// determinismAlgorithms is every routing configuration of Figures 5-7:
// the engine's "identical at any -jobs" guarantee must hold for each.
var determinismAlgorithms = []string{
	"footprint", "dbar", "oddeven", "dor",
	"dbar+xordet", "oddeven+xordet", "dor+xordet",
}

// scrubPoints normalizes a sweep for bit-identity comparison: host-side
// fields (wall-clock runtime, phase profiles, collectors) are cleared,
// and a NaN P99 (empty histogram) becomes a sentinel because NaN != NaN
// under reflect.DeepEqual. Everything else — latency summaries down to
// their unexported sums, throughput, blocking counters — must match
// exactly.
func scrubPoints(pts []SweepPoint) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	for i, p := range pts {
		r := *p.Result
		r.Runtime = RuntimeStats{}
		r.PerfProfile = nil
		r.Obs = nil
		r.Anatomy = nil
		r.Config = Config{}
		if math.IsNaN(r.P99) {
			r.P99 = -1
		}
		out[i] = SweepPoint{Rate: p.Rate, Result: &r}
	}
	return out
}

func scrubHotspot(pts []HotspotPoint) []HotspotPoint {
	out := make([]HotspotPoint, len(pts))
	for i, p := range pts {
		r := *p.Result
		r.Runtime = RuntimeStats{}
		r.PerfProfile = nil
		r.Obs = nil
		r.Anatomy = nil
		r.Config = Config{}
		if math.IsNaN(r.P99) {
			r.P99 = -1
		}
		p.Result = &r
		if math.IsNaN(p.BackgroundP99) {
			p.BackgroundP99 = -1
		}
		out[i] = p
	}
	return out
}

// TestSweepDeterministicAcrossJobs is the engine's golden test: the same
// latency-throughput sweep at -jobs=1 and -jobs=8 — and twice at 8, to
// catch scheduling-order leaks — produces bit-identical Result fields
// for every routing algorithm.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	rates := []float64{0.1, 0.3}
	for _, alg := range determinismAlgorithms {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig()
			cfg.Algorithm = alg
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000

			serial, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 8)
			if err != nil {
				t.Fatal(err)
			}
			again, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 8)
			if err != nil {
				t.Fatal(err)
			}
			s, p, a := scrubPoints(serial), scrubPoints(par), scrubPoints(again)
			if !reflect.DeepEqual(s, p) {
				t.Errorf("jobs=1 vs jobs=8 differ:\nserial:   %+v\nparallel: %+v", dump(s), dump(p))
			}
			if !reflect.DeepEqual(p, a) {
				t.Errorf("two jobs=8 sweeps differ:\nfirst:  %+v\nsecond: %+v", dump(p), dump(a))
			}
		})
	}
}

// dump renders scrubbed points with their Results dereferenced so test
// failures show values, not pointers.
func dump(pts []SweepPoint) []Result {
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = *p.Result
	}
	return out
}

// TestSweepSeedSensitivity guards against the degenerate way to pass the
// determinism test: if every run collapsed onto one seed or ignored the
// base seed, jobs-identity would hold trivially. Distinct base seeds
// must produce different sweeps.
func TestSweepSeedSensitivity(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = "footprint"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000
	rates := []float64{0.3}

	a, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed += 1
	b, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(scrubPoints(a), scrubPoints(b)) {
		t.Error("different base seeds produced identical sweeps — seed derivation is ignoring the base seed")
	}
}

// TestHotspotDeterministicAcrossJobs extends the golden guarantee to the
// Figure 9 harness (distinct generators, traffic classes and an 8x8
// mesh).
func TestHotspotDeterministicAcrossJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = "footprint"
	cfg.VCs = 4
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 200, 800
	rates := []float64{0.1, 0.3}

	serial, err := HotspotCurveJobs(cfg, 0.2, rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := HotspotCurveJobs(cfg, 0.2, rates, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubHotspot(serial), scrubHotspot(par)) {
		t.Errorf("hotspot curve differs across jobs:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// TestMonitoringDoesNotChangeResults pins the rule that made label and
// seed-key separate identities: attaching a monitor (which decorates run
// labels) must not alter a single simulated bit.
func TestMonitoringDoesNotChangeResults(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = "oddeven"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000
	rates := []float64{0.1, 0.3}

	bare, err := LatencyThroughputJobs(cfg, "transpose", traffic.FixedSize(1), rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Monitor = obs.NewHub()
	cfg.RunLabel = "decorated label"
	monitored, err := LatencyThroughputJobs(cfg, "transpose", traffic.FixedSize(1), rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubPoints(bare), scrubPoints(monitored)) {
		t.Error("attaching a monitor changed simulation results")
	}
}

// TestProfilerDoesNotChangeResults pins the phase profiler's contract:
// the probed cycle loop (stepProbed) must be behaviorally identical to
// the plain one, so enabling profiling — even at every=1, instrumenting
// every cycle — changes no Result field. The profiler runs on a fake
// clock here, proving its wall-clock reads never leak into the fabric.
func TestProfilerDoesNotChangeResults(t *testing.T) {
	var ticks atomic.Int64 // the clock is shared by parallel workers
	clock := func() time.Time {
		return time.Unix(0, ticks.Add(1000))
	}
	rates := []float64{0.1, 0.3}
	for _, alg := range []string{"footprint", "dbar"} {
		cfg := testConfig()
		cfg.Algorithm = alg
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 1000

		bare, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Obs = obs.Options{Profile: true, ProfileEvery: 1, ProfileClock: clock}
		profiled, err := LatencyThroughputJobs(cfg, "uniform", traffic.FixedSize(1), rates, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range profiled {
			if p.Result.PerfProfile == nil || p.Result.PerfProfile.SampledCycles == 0 {
				t.Fatalf("%s: profiler enabled but no profile attached", alg)
			}
		}
		if !reflect.DeepEqual(scrubPoints(bare), scrubPoints(profiled)) {
			t.Errorf("%s: enabling the phase profiler changed simulation results", alg)
		}
	}
}
