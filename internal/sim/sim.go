package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/obs"
	"nocsim/internal/prof"
	"nocsim/internal/router"
	"nocsim/internal/routing"
	"nocsim/internal/stats"
	"nocsim/internal/topo"
)

// Result summarizes one simulation run.
type Result struct {
	Config Config
	// Offered is the measured offered load in flits/node/cycle over the
	// measurement window.
	Offered float64
	// Accepted is the ejected-flit rate in flits/node/cycle over the
	// measurement window (all classes).
	Accepted float64
	// Latency aggregates packet latency (creation to tail ejection) of
	// measured packets, per traffic class.
	Latency map[flit.Class]*stats.Summary
	// P99 is the 99th-percentile latency of measured background packets.
	P99 float64
	// MeasuredEjected counts measured packets that completed; Measured
	// counts packets born in the window. Their gap indicates saturation.
	Measured, MeasuredEjected int64
	// Stable reports that every measured packet drained within the
	// drain budget — false means the network was saturated.
	Stable bool
	// Purity is the paper's purity of blocking (Figure 10b): per
	// VC-allocation failure, the footprint share of the busy VCs at the
	// requested port, averaged over failures. HoLDegree is impurity ×
	// blocking events per thousand measured packets (Figure 10c).
	// BlockEvents is the raw VC-allocation failure count. BufferPurity
	// is a secondary diagnostic: the fraction of occupied input VC
	// buffers holding packets of a single destination.
	Purity       float64
	HoLDegree    float64
	BlockEvents  int64
	BufferPurity float64
	// Runtime reports the simulator's own performance over the whole run
	// (warmup + measurement + drain).
	Runtime RuntimeStats
	// PerfProfile is the sampled cycle-loop phase profile (nil unless
	// Config.Obs.Profile is set). Like Runtime it describes the host,
	// never the fabric: determinism goldens scrub it.
	PerfProfile *obs.PerfProfile
	// RouteCache is the route-decision cache's traffic counters (nil
	// when caching is off). Deterministic — a pure function of the
	// simulated schedule — but a self-metric, not a fabric result.
	RouteCache *routing.CacheStats
	// Stalled reports that the run's watchdog flagged at least one
	// zero-progress window (see Config.WatchdogCycles).
	Stalled bool
	// Obs is the run's observability collector (nil when Config.Obs is
	// disabled); experiment harnesses export its data per run.
	Obs *obs.Collector
	// Anatomy is the run's latency anatomy and exercised adaptiveness
	// (nil unless Config.Obs.Anatomy). Like PerfProfile it is a
	// telemetry payload: determinism goldens scrub it, and it must never
	// feed back into fabric behaviour.
	Anatomy *obs.Anatomy
}

// RuntimeStats are the simulator's self-metrics: how fast the host
// machine simulated the fabric, and how much it allocated doing so.
type RuntimeStats struct {
	// WallSeconds is the host wall-clock time of the run.
	WallSeconds float64
	// Cycles is the number of fabric cycles stepped.
	Cycles int64
	// CyclesPerSec is Cycles / WallSeconds.
	CyclesPerSec float64
	// FlitHops counts every flit sent through every router output port
	// (cardinal links and ejection links) — the fabric's total transport
	// work.
	FlitHops int64
	// FlitHopsPerSec is FlitHops / WallSeconds.
	FlitHopsPerSec float64
	// HeapAllocBytes and HeapAllocs are the heap allocation deltas over
	// the run (runtime.MemStats TotalAlloc / Mallocs).
	HeapAllocBytes uint64
	HeapAllocs     uint64
}

// String renders the self-metrics as a one-line report.
func (rs RuntimeStats) String() string {
	return fmt.Sprintf("%d cycles in %.2fs (%.0f cycles/s, %.0f flit-hops/s, %.1f MB allocated)",
		rs.Cycles, rs.WallSeconds, rs.CyclesPerSec, rs.FlitHopsPerSec,
		float64(rs.HeapAllocBytes)/(1<<20))
}

// AvgLatency returns the mean latency of measured packets of class c.
func (r *Result) AvgLatency(c flit.Class) float64 {
	s, ok := r.Latency[c]
	if !ok || s.N() == 0 {
		return 0
	}
	return s.Mean()
}

// Injector produces traffic cycle by cycle. traffic.Generator is the
// synthetic implementation; trace players implement it too.
type Injector interface {
	// Init prepares the injector for mesh m with the simulation's RNG.
	Init(m topo.Mesh, rng *rand.Rand)
	// Tick emits this cycle's packets through offer, with Born set to
	// now.
	Tick(now int64, offer func(*flit.Packet))
}

// EjectObserver is implemented by injectors that need packet completion
// notifications (e.g. dependency-tracking trace players).
type EjectObserver interface {
	OnEject(p *flit.Packet)
}

// ArenaUser is implemented by injectors that can allocate their packets
// from the network's arena instead of the heap (traffic.Generator and
// trace.Player do); the simulation hands them the arena at construction
// and the endpoints recycle the packets at ejection.
type ArenaUser interface {
	UseArena(a *flit.Arena)
}

// Simulation drives one network through the measurement phases.
type Simulation struct {
	cfg  Config
	net  *network.Network
	gens []Injector
	rng  *rand.Rand
	met  *metrics
	col  *obs.Collector     // nil unless cfg.Obs selects collectors
	prof *obs.PhaseProfiler // nil unless cfg.Obs.Profile

	nextID    uint64
	measuring bool
	measStart int64
	measEnd   int64

	measured        int64
	measuredEjected int64
	offeredFlits    int64 // flits offered during the measurement window
	ejectedFlits    int64 // flits ejected during the measurement window

	// Live-observability state: the heartbeat (every beatEvery cycles,
	// 0 = off) feeds the watchdog and publishes progress to the hub.
	beatEvery     int64
	runh          *obs.RunHandle
	wd            *obs.Watchdog
	phase         string
	runStartCycle int64
	wallStart     time.Time
	totalOffered  int64 // whole-run offered flits
	totalEjected  int64 // whole-run ejected flits
	stalled       bool

	latency map[flit.Class]*stats.Summary
	hist    *stats.Histogram

	observers []EjectObserver

	// PacketHook, when set, observes every ejected packet (measured or
	// not); congestion analyzers use it.
	PacketHook func(p *flit.Packet)
}

// New assembles a simulation from a validated config and its traffic
// injectors. Injectors must not be shared between simulations.
func New(cfg Config, gens ...Injector) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	newAlg := cfg.AlgFactory
	if newAlg == nil {
		if _, err := routing.New(cfg.Algorithm); err != nil {
			return nil, err
		}
		newAlg = func() routing.Algorithm { return routing.MustNew(cfg.Algorithm) }
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulation{
		cfg:     cfg,
		rng:     rng,
		met:     &metrics{},
		col:     obs.NewCollector(cfg.Obs),
		latency: map[flit.Class]*stats.Summary{},
		hist:    stats.NewHistogram(4096),
	}
	// The simulator's own metrics and the observability collectors share
	// the router.MetricsSink seam; Tee keeps direct dispatch when the
	// collectors are disabled.
	var sink router.MetricsSink = s.met
	if s.col != nil {
		sink = router.Tee(s.met, s.col)
	}
	s.net = network.New(network.Config{
		Mesh:          cfg.Mesh(),
		VCs:           cfg.VCs,
		BufDepth:      cfg.BufDepth,
		Speedup:       cfg.Speedup,
		NewAlg:        newAlg,
		Rand:          rng,
		Metrics:       sink,
		StickyRouting: cfg.StickyRouting,
		SlowEndpoints: cfg.SlowEndpoints,
		StepAll:       cfg.StepAll,
		NoRouteCache:  cfg.NoRouteCache,
	})
	s.net.Sink = s.onEject
	if cfg.Obs.Profile {
		s.prof = obs.NewPhaseProfiler(cfg.Obs.ProfileEvery, cfg.Obs.ProfileClock)
		s.net.Probe = s.prof
	}
	if cfg.Monitor != nil || cfg.WatchdogCycles > 0 {
		s.beatEvery = 128
		if cfg.WatchdogCycles > 0 && cfg.WatchdogCycles/4 < s.beatEvery {
			s.beatEvery = max(1, cfg.WatchdogCycles/4)
		}
	}
	if cfg.WatchdogCycles > 0 {
		s.wd = obs.NewWatchdog(cfg.WatchdogCycles, func() *obs.FabricSnapshot {
			return obs.Capture(s.net)
		})
	}
	s.phase = "manual" // replaced by Run's phase bookkeeping
	mesh := cfg.Mesh()
	for _, g := range gens {
		g.Init(mesh, rng)
		if au, ok := g.(ArenaUser); ok {
			au.UseArena(s.net.Arena())
		}
		s.gens = append(s.gens, g)
		if obs, ok := g.(EjectObserver); ok {
			s.observers = append(s.observers, obs)
		}
	}
	return s, nil
}

// MustNew is New but panics on error; for tests and fixed-config tools.
func MustNew(cfg Config, gens ...Injector) *Simulation {
	s, err := New(cfg, gens...)
	if err != nil {
		panic(err)
	}
	return s
}

// Network exposes the underlying fabric for analyzers.
func (s *Simulation) Network() *network.Network { return s.net }

// Observability returns the run's collector — tracer, sampler and
// heatmap as selected by Config.Obs — or nil when observability is
// disabled. Export its data after Run.
func (s *Simulation) Observability() *obs.Collector { return s.col }

// onEject collects statistics for packets completing at their destination.
func (s *Simulation) onEject(p *flit.Packet) {
	if s.measuring && p.Born >= s.measStart && p.Born < s.measEnd {
		s.measuredEjected++
		sum, ok := s.latency[p.Class]
		if !ok {
			sum = &stats.Summary{}
			s.latency[p.Class] = sum
		}
		sum.Add(float64(p.Latency()))
		if p.Class == flit.ClassBackground {
			s.hist.Add(p.Latency())
		}
	}
	if s.measuring && s.net.Now() >= s.measStart && s.net.Now() < s.measEnd {
		s.ejectedFlits += int64(p.Size)
	}
	s.totalEjected += int64(p.Size)
	for _, obs := range s.observers {
		obs.OnEject(p)
	}
	if s.PacketHook != nil {
		s.PacketHook(p)
	}
}

// Step advances the simulation one cycle — traffic generation followed by
// one fabric cycle — without any measurement phase bookkeeping. Analyzers
// that sample network state (e.g. congestion trees) drive the simulation
// with it.
func (s *Simulation) Step() { s.step() }

// step advances one cycle, generating traffic first.
func (s *Simulation) step() {
	now := s.net.Now()
	inWindow := s.measuring && now >= s.measStart && now < s.measEnd
	if inWindow && now%samplePeriod == 0 {
		s.met.sample(s.net)
	}
	if s.col != nil {
		s.col.Tick(now, s.net)
	}
	if s.beatEvery > 0 && now%s.beatEvery == 0 {
		s.heartbeat(now)
	}
	for _, g := range s.gens {
		g.Tick(now, func(p *flit.Packet) {
			s.nextID++
			p.ID = s.nextID
			if inWindow {
				s.measured++
				s.offeredFlits += int64(p.Size)
			}
			s.totalOffered += int64(p.Size)
			s.net.Offer(p)
		})
	}
	s.net.Step()
}

// heartbeat feeds the stall watchdog and publishes live progress to the
// monitoring hub. It runs every beatEvery cycles, so its per-call cost
// (a few hundred counter reads) amortizes to noise.
func (s *Simulation) heartbeat(now int64) {
	inFlight := s.net.InFlight()
	work := s.net.TotalOutputFlits()
	if s.wd != nil {
		if rep := s.wd.Beat(now, inFlight, work); rep != nil {
			s.stalled = true
			path := s.cfg.WatchdogOut
			if path == "" {
				path = "nocsim-stall.json"
			}
			if err := rep.Dump(path); err != nil {
				fmt.Fprintln(os.Stderr, "sim: watchdog dump:", err)
			} else {
				fmt.Fprintf(os.Stderr, "sim: watchdog snapshot written to %s\n", path)
			}
			fmt.Fprintln(os.Stderr, rep.Summary())
			if s.cfg.Monitor != nil {
				s.cfg.Monitor.ReportStall(rep)
				s.runh.MarkStalled()
			}
		}
	}
	hub := s.cfg.Monitor
	if hub == nil {
		return
	}
	if s.runh == nil {
		// Manually-stepped simulations (congestion-tree analyzers) never
		// enter Run; register them on the first beat so they still show
		// up in /status.
		label := s.cfg.RunLabel
		if label == "" {
			label = s.cfg.Algorithm
		}
		total := s.cfg.WarmupCycles + s.cfg.MeasureCycles + s.cfg.DrainCycles
		s.runh = hub.StartRun(label, s.cfg.Algorithm, total)
	}
	if s.wallStart.IsZero() {
		s.wallStart = prof.Now()
		s.runStartCycle = now
	}
	u := obs.RunUpdate{
		Phase:        s.phase,
		Cycle:        now - s.runStartCycle,
		InFlight:     inFlight,
		OfferedFlits: s.totalOffered,
		EjectedFlits: s.totalEjected,
		FlitHops:     work,
	}
	if wall := prof.Now().Sub(s.wallStart).Seconds(); wall > 0 {
		u.CyclesPerSec = float64(now-s.runStartCycle) / wall
	}
	if s.prof != nil {
		u.Phases = s.prof.Snapshot()
	}
	arena := s.net.Arena().Stats()
	u.Arena = &arena
	u.RouteCache = s.net.RouteCacheStats()
	if s.col != nil {
		if s.col.Tracer != nil {
			u.TraceEvents = s.col.Tracer.Total()
			u.TraceDropped = s.col.Tracer.Dropped()
		}
		if s.col.Anatomy != nil {
			u.Anatomy = s.col.Anatomy.Aggregate()
			if smp := s.col.Anatomy.Samples(); len(smp) > 0 {
				last := smp[len(smp)-1]
				u.Occupancy = &last
			}
		}
	}
	if s.measuring && now > s.measStart {
		end := now
		if end > s.measEnd {
			end = s.measEnd
		}
		cycles := float64(end - s.measStart)
		u.AcceptedRate = float64(s.ejectedFlits) / float64(s.cfg.Mesh().Nodes()) / cycles
	}
	if s.hist.N() > 0 {
		u.LatencyP50 = s.hist.Quantile(0.5)
		u.LatencyP99 = s.hist.Quantile(0.99)
	}
	s.runh.Update(u)
	hub.PublishGauges(now, s.net)
	if hub.SnapshotWanted() {
		hub.PublishSnapshot(obs.Capture(s.net))
	}
}

// pprofLabels builds the run's runtime/pprof label set: the routing
// algorithm, the run label, and any (key, value) pairs the harness
// attached through Config.PprofLabels (traffic pattern, injection rate).
// CPU and heap profiles then attribute every sample to its run.
func (s *Simulation) pprofLabels() pprof.LabelSet {
	label := s.cfg.RunLabel
	if label == "" {
		label = algName(s.cfg)
	}
	kv := []string{"alg", algName(s.cfg), "run", label}
	if n := len(s.cfg.PprofLabels); n >= 2 {
		kv = append(kv, s.cfg.PprofLabels[:n-n%2]...)
	}
	return pprof.Labels(kv...)
}

// Run executes warmup, measurement and drain, returning the aggregated
// result.
func (s *Simulation) Run() *Result {
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	wall0 := prof.Now()
	startCycle := s.net.Now()

	if s.cfg.Monitor != nil {
		label := s.cfg.RunLabel
		if label == "" {
			label = s.cfg.Algorithm
		}
		total := s.cfg.WarmupCycles + s.cfg.MeasureCycles + s.cfg.DrainCycles
		s.runh = s.cfg.Monitor.StartRun(label, s.cfg.Algorithm, total)
		s.wallStart = wall0
		s.runStartCycle = startCycle
	}
	pprof.Do(context.Background(), s.pprofLabels(), func(context.Context) {
		s.phase = "warmup"
		for i := int64(0); i < s.cfg.WarmupCycles; i++ {
			s.step()
		}
		s.met.reset()
		s.met.enabled = true
		s.measuring = true
		s.measStart = s.net.Now()
		s.measEnd = s.measStart + s.cfg.MeasureCycles
		if s.col != nil {
			s.col.OpenWindow(s.net, s.cfg.Mesh(), s.measStart, s.measEnd)
		}
		s.phase = "measure"
		for i := int64(0); i < s.cfg.MeasureCycles; i++ {
			s.step()
		}
		s.met.enabled = false
		if s.col != nil {
			s.col.CloseWindow(s.net)
		}
		// Drain: keep the offered load flowing so the backpressure seen
		// by measured packets persists, until every measured packet has
		// ejected or the drain budget runs out.
		s.phase = "drain"
		for i := int64(0); i < s.cfg.DrainCycles && s.measuredEjected < s.measured; i++ {
			s.step()
		}
	})
	s.measuring = false
	s.phase = "done"
	s.runh.Finish()

	wall := prof.Now().Sub(wall0).Seconds()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	ranCycles := s.net.Now() - startCycle
	hops := s.net.TotalOutputFlits()
	rt := RuntimeStats{
		WallSeconds:    wall,
		Cycles:         ranCycles,
		CyclesPerSec:   stats.Ratio(float64(ranCycles), wall),
		FlitHops:       hops,
		FlitHopsPerSec: stats.Ratio(float64(hops), wall),
		HeapAllocBytes: mem1.TotalAlloc - mem0.TotalAlloc,
		HeapAllocs:     mem1.Mallocs - mem0.Mallocs,
	}

	nodes := float64(s.cfg.Mesh().Nodes())
	cycles := float64(s.cfg.MeasureCycles)
	res := &Result{
		Config:          s.cfg,
		Offered:         float64(s.offeredFlits) / nodes / cycles,
		Accepted:        float64(s.ejectedFlits) / nodes / cycles,
		Latency:         s.latency,
		P99:             s.hist.Quantile(0.99),
		Measured:        s.measured,
		MeasuredEjected: s.measuredEjected,
		Stable:          s.measuredEjected >= s.measured,
		Purity:          s.met.purity(),
		BlockEvents:     s.met.blockEvents,
		BufferPurity:    s.met.bufferPurity(),
		Runtime:         rt,
		RouteCache:      s.net.RouteCacheStats(),
		Stalled:         s.stalled,
		Obs:             s.col,
	}
	if s.measured > 0 {
		res.HoLDegree = s.met.holDegree() / float64(s.measured) * 1000
	}
	if s.col != nil {
		if s.col.Anatomy != nil {
			res.Anatomy = s.col.Anatomy.Aggregate()
		}
		if s.col.Tracer != nil {
			// Ring overflow silently truncates the lifecycle record; make
			// the loss visible so trace-derived analyses are not trusted
			// over a partial window.
			if d := s.col.Tracer.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr,
					"sim: warning: trace ring overflowed — %d of %d lifecycle events dropped (raise the trace capacity)\n",
					d, s.col.Tracer.Total())
			}
		}
	}
	if s.prof != nil {
		pp := s.prof.Profile()
		pp.GC = obs.GCStats{
			NumGC:           mem1.NumGC - mem0.NumGC,
			PauseTotalNanos: mem1.PauseTotalNs - mem0.PauseTotalNs,
			TotalAllocBytes: mem1.TotalAlloc - mem0.TotalAlloc,
			Mallocs:         mem1.Mallocs - mem0.Mallocs,
		}
		if mem1.HeapSys > mem0.HeapSys {
			pp.GC.HeapSysGrowthBytes = mem1.HeapSys - mem0.HeapSys
		}
		arena := s.net.Arena().Stats()
		pp.Arena = &arena
		pp.RouteCache = res.RouteCache
		res.PerfProfile = pp
	}
	return res
}

// String renders a result as a one-line report. Runs that measured no
// background packets have no latency distribution; their latency and
// p99 columns read "n/a" rather than a misleading zero.
func (r *Result) String() string {
	lat, p99 := "n/a", "n/a"
	if s, ok := r.Latency[flit.ClassBackground]; ok && s.N() > 0 {
		lat = fmt.Sprintf("%.1f", s.Mean())
	}
	if !math.IsNaN(r.P99) {
		p99 = fmt.Sprintf("%.0f", r.P99)
	}
	return fmt.Sprintf("alg=%s offered=%.3f accepted=%.3f lat=%s p99=%s stable=%v",
		r.Config.Algorithm, r.Offered, r.Accepted, lat, p99, r.Stable)
}
