package sim

import (
	"strings"
	"testing"

	"nocsim/internal/topo"
	"nocsim/internal/traffic"
)

func TestUtilizationProbe(t *testing.T) {
	cfg := testConfig()
	gen := &traffic.Generator{Pattern: traffic.Uniform{Nodes: 16}, Rate: 0.25}
	s := MustNew(cfg, gen)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	probe := NewUtilizationProbe(s.Network())
	for i := 0; i < 500; i++ {
		s.Step()
	}
	snap := probe.Snapshot(cfg.Mesh())
	if snap.Cycles != 500 {
		t.Errorf("cycles = %d", snap.Cycles)
	}
	// 4x4 mesh: 2*(3*4)*2 = 48 directed inter-router links.
	if len(snap.Links) != 48 {
		t.Fatalf("links = %d, want 48", len(snap.Links))
	}
	mean := snap.Mean()
	if mean <= 0 || mean >= 1 {
		t.Errorf("mean utilization = %v", mean)
	}
	for _, l := range snap.Links {
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("link %d->%d utilization %v out of range", l.From, l.To, l.Utilization)
		}
	}
	hot := snap.Hottest(5)
	if len(hot) != 5 {
		t.Fatalf("hottest = %d", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Utilization > hot[i-1].Utilization {
			t.Error("hottest not sorted")
		}
	}
}

func TestUtilizationZeroWindow(t *testing.T) {
	cfg := testConfig()
	s := MustNew(cfg)
	probe := NewUtilizationProbe(s.Network())
	snap := probe.Snapshot(cfg.Mesh())
	if len(snap.Links) != 0 || snap.Mean() != 0 {
		t.Error("zero-window snapshot should be empty")
	}
}

func TestHeatmap(t *testing.T) {
	cfg := testConfig()
	// Persistent flow 0 -> 3 along the top row lights up that row.
	gen := &traffic.Generator{
		Nodes:   []int{0},
		Pattern: traffic.Permutation{Flows: map[int]int{0: 3}},
		Rate:    1.0,
	}
	s := MustNew(cfg, gen)
	probe := NewUtilizationProbe(s.Network())
	for i := 0; i < 400; i++ {
		s.Step()
	}
	m := topo.MustNew(4, 4)
	out := probe.Snapshot(m).Heatmap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("heatmap lines = %d:\n%s", len(lines), out)
	}
	// The top row (through which the flow runs) must be hotter than the
	// bottom row (idle).
	if lines[1] == lines[4] {
		t.Errorf("flow row should differ from idle row:\n%s", out)
	}
	if strings.TrimSpace(lines[4]) != "" {
		t.Errorf("idle row should be blank:\n%s", out)
	}
}

func TestHeatRuneBounds(t *testing.T) {
	if heatRune(-0.5) != heatRunes[0] {
		t.Error("negative utilization not clamped")
	}
	if heatRune(2.0) != heatRunes[len(heatRunes)-1] {
		t.Error("overload not clamped")
	}
}
