package sim

import (
	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/router"
	"nocsim/internal/stats"
	"nocsim/internal/topo"
)

// metrics implements router.MetricsSink and periodic network sampling,
// aggregating the blocking statistics behind Figures 10(b) and 10(c).
// The embedded NopSink declines the per-packet lifecycle events; only
// VC-allocation failures are consumed.
type metrics struct {
	router.NopSink
	enabled bool
	// blockEvents counts VC-allocation failures of routed head packets.
	blockEvents int64
	// sameDestSum/sameDestObs aggregate, per failure, the fraction of
	// busy VCs at the requested port owned by the blocked packet's own
	// destination (a per-event congestion-composition diagnostic).
	sameDestSum float64
	sameDestObs int64

	// VC organization purity (the paper's "purity of blocking",
	// Figure 10b): sampled periodically over all occupied input VCs, the
	// fraction whose buffered packets all share one destination. Pure
	// VCs are footprint chains that only block their own flow; impure
	// VCs are HoL blocking.
	pureVCs     int64
	occupiedVCs int64
}

// samplePeriod is the cycle interval of purity sampling.
const samplePeriod = 16

// OnVCAllocFailure implements router.MetricsSink.
func (m *metrics) OnVCAllocFailure(now int64, node int, p *flit.Packet, out topo.Direction, footprintVCs, busyVCs int, waited int64) {
	if !m.enabled {
		return
	}
	m.blockEvents++
	if busyVCs > 0 {
		m.sameDestSum += float64(footprintVCs) / float64(busyVCs)
		m.sameDestObs++
	}
}

// sample scans the fabric's input buffers for VC organization purity.
func (m *metrics) sample(net *network.Network) {
	if !m.enabled {
		return
	}
	for id := 0; id < net.Nodes(); id++ {
		r := net.Router(id)
		for d := topo.East; d <= topo.Local; d++ {
			for v := 0; v < r.VCs(); v++ {
				occupied, pure := r.InputVCPurity(d, v)
				if !occupied {
					continue
				}
				m.occupiedVCs++
				if pure {
					m.pureVCs++
				}
			}
		}
	}
}

// reset clears the counters (called at the start of measurement).
func (m *metrics) reset() {
	m.blockEvents = 0
	m.sameDestSum = 0
	m.sameDestObs = 0
	m.pureVCs = 0
	m.occupiedVCs = 0
}

// purity returns the paper's purity of blocking (Figure 10b): at each
// VC-allocation failure, the ratio of footprint VCs (busy VCs owned by
// the blocked packet's destination) to all busy VCs at the requested
// port, averaged over blocking events. Higher means blocking is caused by
// the packet's own flow rather than HoL interference.
func (m *metrics) purity() float64 {
	return stats.Ratio(m.sameDestSum, float64(m.sameDestObs))
}

// holDegree returns the degree of HoL blocking: impurity × number of
// blocking events (Figure 10c), normalized per measured packet by the
// caller.
func (m *metrics) holDegree() float64 {
	return (1 - m.purity()) * float64(m.blockEvents)
}

// bufferPurity is a secondary diagnostic: the fraction of occupied input
// VC buffers whose packets all share one destination (destination
// organization of the buffer space).
func (m *metrics) bufferPurity() float64 {
	return stats.Ratio(float64(m.pureVCs), float64(m.occupiedVCs))
}
