// Package trace provides the trace-driven workload substrate replacing the
// paper's PARSEC 2.0 + Netrace setup, which is not available offline: a
// compact trace file format with dependency tracking, deterministic
// synthetic generators modelled on the eight PARSEC workloads the paper
// evaluates, and a dependency-respecting player that injects a trace into
// the simulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Record is one packet of a trace. Records are ordered by Cycle.
type Record struct {
	// ID identifies the record; IDs are unique and positive within a
	// trace.
	ID uint64
	// Cycle is the earliest cycle the packet may be injected.
	Cycle int64
	// Src and Dest are node ids on the target mesh.
	Src, Dest int
	// Size is the packet length in flits.
	Size int
	// Dep, when nonzero, names a record that must be delivered before
	// this record may inject — Netrace-style dependency tracking (a
	// reply waits for its request).
	Dep uint64
}

const (
	magic   = "NOCT"
	version = 1
)

// Write encodes records to w in the binary trace format: a "NOCT" header,
// a version byte, the record count, then varint-encoded records with
// delta-encoded cycles.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(records))); err != nil {
		return err
	}
	prevCycle := int64(0)
	for i, r := range records {
		if r.Cycle < prevCycle {
			return fmt.Errorf("trace: record %d out of cycle order", i)
		}
		if r.ID == 0 {
			return fmt.Errorf("trace: record %d has zero ID", i)
		}
		for _, v := range []uint64{
			r.ID,
			uint64(r.Cycle - prevCycle),
			uint64(r.Src),
			uint64(r.Dest),
			uint64(r.Size),
			r.Dep,
		} {
			if err := putUvarint(v); err != nil {
				return err
			}
		}
		prevCycle = r.Cycle
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxRecords = 1 << 28 // guard against corrupt headers
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	records := make([]Record, 0, count)
	prevCycle := int64(0)
	for i := uint64(0); i < count; i++ {
		var vals [6]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d field %d: %w", i, j, err)
			}
			vals[j] = v
		}
		rec := Record{
			ID:    vals[0],
			Cycle: prevCycle + int64(vals[1]),
			Src:   int(vals[2]),
			Dest:  int(vals[3]),
			Size:  int(vals[4]),
			Dep:   vals[5],
		}
		prevCycle = rec.Cycle
		records = append(records, rec)
	}
	return records, nil
}

// Merge combines several traces into one, reassigning IDs to keep them
// unique and preserving intra-trace dependencies. The paper stresses the
// network by running two PARSEC workloads simultaneously; Merge is how
// those pairs are formed.
func Merge(traces ...[]Record) []Record {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]Record, 0, total)
	var nextID uint64
	for _, t := range traces {
		remap := make(map[uint64]uint64, len(t))
		for _, r := range t {
			nextID++
			remap[r.ID] = nextID
		}
		for _, r := range t {
			r.ID = remap[r.ID]
			if r.Dep != 0 {
				r.Dep = remap[r.Dep] // zero if dangling
			}
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// Validate checks structural invariants: unique nonzero IDs, sizes >= 1,
// non-negative cycles, dependencies referencing existing records, and
// cycle ordering.
func Validate(records []Record, nodes int) error {
	seen := make(map[uint64]bool, len(records))
	prev := int64(0)
	for i, r := range records {
		if r.ID == 0 || seen[r.ID] {
			return fmt.Errorf("trace: record %d: bad or duplicate ID %d", i, r.ID)
		}
		seen[r.ID] = true
		if r.Cycle < prev {
			return fmt.Errorf("trace: record %d out of order", i)
		}
		prev = r.Cycle
		if r.Size < 1 {
			return fmt.Errorf("trace: record %d: size %d", i, r.Size)
		}
		if r.Src < 0 || r.Src >= nodes || r.Dest < 0 || r.Dest >= nodes || r.Src == r.Dest {
			return fmt.Errorf("trace: record %d: bad endpoints %d->%d", i, r.Src, r.Dest)
		}
	}
	for i, r := range records {
		if r.Dep != 0 && !seen[r.Dep] {
			return fmt.Errorf("trace: record %d: dangling dependency %d", i, r.Dep)
		}
	}
	return nil
}
