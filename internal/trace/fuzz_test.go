package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the trace decoder never panics or over-allocates on
// arbitrary input; it either returns records or an error.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NOCT\x01"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes cleanly must re-encode cleanly if it is
		// structurally valid (ordered, nonzero IDs).
		if Validate(records, 1<<30) == nil {
			var out bytes.Buffer
			if err := Write(&out, records); err != nil {
				t.Fatalf("decoded trace failed to re-encode: %v", err)
			}
		}
	})
}

// FuzzGenerateWorkload checks trace generation stays structurally valid
// under fuzzed workload parameters.
func FuzzGenerateWorkload(f *testing.F) {
	f.Add(0.01, 0.5, uint8(8), uint8(4), 0.5, 0.3)
	f.Fuzz(func(t *testing.T, peerRate, duty float64, sharers, share uint8, replyFrac, writeFrac float64) {
		if peerRate < 0 || peerRate > 1 || duty < 0 || duty > 1 ||
			replyFrac < 0 || replyFrac > 1 || writeFrac < 0 || writeFrac > 1 {
			t.Skip()
		}
		w := Workload{
			Name:           "fuzz",
			PeerRate:       peerRate,
			DirRate:        peerRate,
			DirSharers:     int(sharers%32) + 1,
			DutyCycle:      duty,
			BurstLen:       50,
			ShareDegree:    int(share%16) + 1,
			ReplyFraction:  replyFrac,
			WriteFraction:  writeFrac,
			MaxOutstanding: 8,
		}
		m, _ := newMesh()
		recs := Generate(w, m, 500, 1)
		if err := Validate(recs, m.Nodes()); err != nil {
			t.Fatalf("generated invalid trace: %v", err)
		}
	})
}
