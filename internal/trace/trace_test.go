package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"nocsim/internal/topo"
)

func sample() []Record {
	return []Record{
		{ID: 1, Cycle: 0, Src: 0, Dest: 5, Size: 1},
		{ID: 2, Cycle: 0, Src: 5, Dest: 0, Size: 5, Dep: 1},
		{ID: 3, Cycle: 7, Src: 2, Dest: 9, Size: 1},
		{ID: 4, Cycle: 100, Src: 9, Dest: 2, Size: 5, Dep: 3},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteRejectsDisorder(t *testing.T) {
	recs := []Record{{ID: 1, Cycle: 10, Src: 0, Dest: 1, Size: 1}, {ID: 2, Cycle: 5, Src: 0, Dest: 1, Size: 1}}
	if err := Write(&bytes.Buffer{}, recs); err == nil {
		t.Error("out-of-order write should fail")
	}
	if err := Write(&bytes.Buffer{}, []Record{{ID: 0, Cycle: 0, Src: 0, Dest: 1, Size: 1}}); err == nil {
		t.Error("zero-ID write should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("XXXX\x01")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("NOCT\x09")); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Read(strings.NewReader("NOC")); err == nil {
		t.Error("truncated header accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sample(), 16); err != nil {
		t.Fatalf("sample should validate: %v", err)
	}
	bad := []struct {
		name string
		recs []Record
	}{
		{"dup id", []Record{{ID: 1, Src: 0, Dest: 1, Size: 1}, {ID: 1, Src: 0, Dest: 1, Size: 1}}},
		{"zero id", []Record{{ID: 0, Src: 0, Dest: 1, Size: 1}}},
		{"bad size", []Record{{ID: 1, Src: 0, Dest: 1, Size: 0}}},
		{"self loop", []Record{{ID: 1, Src: 1, Dest: 1, Size: 1}}},
		{"out of mesh", []Record{{ID: 1, Src: 0, Dest: 99, Size: 1}}},
		{"dangling dep", []Record{{ID: 1, Src: 0, Dest: 1, Size: 1, Dep: 42}}},
		{"disorder", []Record{{ID: 1, Cycle: 9, Src: 0, Dest: 1, Size: 1}, {ID: 2, Cycle: 1, Src: 0, Dest: 1, Size: 1}}},
	}
	for _, tc := range bad {
		if err := Validate(tc.recs, 16); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestMergePreservesDeps(t *testing.T) {
	a := []Record{
		{ID: 1, Cycle: 0, Src: 0, Dest: 1, Size: 1},
		{ID: 2, Cycle: 3, Src: 1, Dest: 0, Size: 5, Dep: 1},
	}
	b := []Record{
		{ID: 1, Cycle: 1, Src: 2, Dest: 3, Size: 1},
		{ID: 2, Cycle: 2, Src: 3, Dest: 2, Size: 5, Dep: 1},
	}
	merged := Merge(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged len = %d", len(merged))
	}
	if err := Validate(merged, 16); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// Cycle-sorted.
	for i := 1; i < len(merged); i++ {
		if merged[i].Cycle < merged[i-1].Cycle {
			t.Fatal("merge not cycle-sorted")
		}
	}
	// Each reply still depends on its own trace's request endpoints.
	byID := map[uint64]Record{}
	for _, r := range merged {
		byID[r.ID] = r
	}
	for _, r := range merged {
		if r.Dep == 0 {
			continue
		}
		req := byID[r.Dep]
		if req.Src != r.Dest || req.Dest != r.Src {
			t.Errorf("dependency no longer request/reply shaped: %+v <- %+v", req, r)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := topo.MustNew(8, 8)
	w, err := WorkloadByName("dedup")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(w, m, 2000, 42)
	b := Generate(w, m, 2000, 42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic generation: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := Generate(w, m, 2000, 43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds gave identical traces")
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	m := topo.MustNew(8, 8)
	for _, w := range Workloads() {
		recs := Generate(w, m, 3000, 7)
		if len(recs) == 0 {
			t.Errorf("%s: empty trace", w.Name)
			continue
		}
		if err := Validate(recs, m.Nodes()); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestWorkloadIntensityOrdering(t *testing.T) {
	m := topo.MustNew(8, 8)
	flits := func(name string) int {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range Generate(w, m, 5000, 1) {
			total += r.Size
		}
		return total
	}
	fluid := flits("fluidanimate")
	black := flits("blackscholes")
	x264 := flits("x264")
	if fluid <= 3*black {
		t.Errorf("fluidanimate (%d flits) should be far heavier than blackscholes (%d)", fluid, black)
	}
	if fluid <= x264 {
		t.Errorf("fluidanimate (%d) should outweigh x264 (%d)", fluid, x264)
	}
}

func TestWorkloadByNameUnknown(t *testing.T) {
	if _, err := WorkloadByName("doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// Property: write/read round-trips arbitrary well-formed traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		var recs []Record
		cyc := int64(0)
		for i, s := range seeds {
			cyc += int64(s % 5)
			recs = append(recs, Record{
				ID:    uint64(i + 1),
				Cycle: cyc,
				Src:   int(s) % 64,
				Dest:  int(s>>4) % 64,
				Size:  1 + int(s)%6,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// newMesh returns the baseline mesh for fuzz helpers.
func newMesh() (m topo.Mesh, err error) {
	return topo.New(8, 8)
}
