package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"nocsim/internal/topo"
)

// Workload is a synthetic model of one PARSEC 2.0 application's on-chip
// traffic, standing in for the Netrace-generated trace the paper uses.
//
// The model separates two traffic components, mirroring a directory-based
// CMP:
//
//   - peer traffic: core-to-core sharing, spread over each core's fixed
//     peer set — the traffic Footprint protects from HoL blocking;
//   - directory traffic: a subset of cores (DirSharers) stream read
//     requests and 5-flit writebacks at the four directory/memory nodes,
//     which is what oversubscribes endpoints and grows congestion trees
//     (the paper's memory-controller hotspot analogy).
//
// The models are calibrated qualitatively from the paper's own
// observations and PARSEC's published characterization rather than from
// the unavailable traces: Fluidanimate generates heavy, directory-bound
// traffic (highest HoL blocking degree, biggest Footprint gain);
// Bodytrack's tiny peer sets make its blocking the purest (smallest
// opportunity); X264 and Canneal are light enough that routing barely
// matters.
type Workload struct {
	Name string
	// PeerRate is each core's probability of generating a peer packet
	// per bursting cycle.
	PeerRate float64
	// DirRate is each directory-sharing core's probability of
	// generating a directory request per bursting cycle.
	DirRate float64
	// DirSharers is how many cores issue directory traffic; the paper's
	// Table 3 uses two sources per hotspot, and data-parallel PARSEC
	// apps concentrate misses on a worker subset.
	DirSharers int
	// DutyCycle is the fraction of time a core is bursting; 1 means
	// smooth traffic.
	DutyCycle float64
	// BurstLen is the mean burst length in cycles.
	BurstLen int
	// ShareDegree is the number of distinct peers a core communicates
	// with; small values concentrate peer traffic (more footprint reuse,
	// higher blocking purity).
	ShareDegree int
	// ReplyFraction is the fraction of read requests that trigger a
	// dependent 5-flit data reply from the destination.
	ReplyFraction float64
	// WriteFraction is the fraction of directory requests that are
	// 5-flit writebacks (no reply); writebacks are what saturate the
	// directories' ejection bandwidth.
	WriteFraction float64
	// MaxOutstanding bounds each core's in-flight requests,
	// Netrace-style: request i depends on the completion of request
	// i-MaxOutstanding, so cores self-throttle under congestion instead
	// of queueing unboundedly.
	MaxOutstanding int
	// Sync makes all cores burst in the same phase, modelling
	// barrier-synchronized applications.
	Sync bool
}

// Workloads returns the eight PARSEC 2.0 applications of Figure 10.
func Workloads() []Workload {
	// Directory inflow per directory ≈ DirSharers·DirRate·Duty·meanSize/4
	// flits/cycle with meanSize = (1-WriteFraction) + 5·WriteFraction.
	// Fluidanimate's ~1.3 persistently oversubscribes the directories
	// (ejection bandwidth is 1 flit/cycle); the other workloads stay
	// below 1 with at most transient excursions.
	return []Workload{
		{Name: "blackscholes", PeerRate: 0.003, DirRate: 0.010, DirSharers: 8, DutyCycle: 0.9, BurstLen: 200, ShareDegree: 2, ReplyFraction: 0.8, WriteFraction: 0.2, MaxOutstanding: 8},
		{Name: "bodytrack", PeerRate: 0.010, DirRate: 0.100, DirSharers: 4, DutyCycle: 0.8, BurstLen: 150, ShareDegree: 2, ReplyFraction: 0.4, WriteFraction: 0.3, MaxOutstanding: 8, Sync: true},
		{Name: "canneal", PeerRate: 0.008, DirRate: 0.030, DirSharers: 16, DutyCycle: 0.9, BurstLen: 300, ShareDegree: 12, ReplyFraction: 0.7, WriteFraction: 0.3, MaxOutstanding: 8},
		{Name: "dedup", PeerRate: 0.020, DirRate: 0.060, DirSharers: 12, DutyCycle: 0.7, BurstLen: 120, ShareDegree: 6, ReplyFraction: 0.4, WriteFraction: 0.3, MaxOutstanding: 8},
		{Name: "ferret", PeerRate: 0.025, DirRate: 0.080, DirSharers: 12, DutyCycle: 0.7, BurstLen: 120, ShareDegree: 8, ReplyFraction: 0.4, WriteFraction: 0.3, MaxOutstanding: 8},
		{Name: "fluidanimate", PeerRate: 0.060, DirRate: 0.085, DirSharers: 16, DutyCycle: 0.9, BurstLen: 100, ShareDegree: 10, ReplyFraction: 0.6, WriteFraction: 0.5, MaxOutstanding: 16},
		{Name: "vips", PeerRate: 0.025, DirRate: 0.070, DirSharers: 12, DutyCycle: 0.8, BurstLen: 150, ShareDegree: 6, ReplyFraction: 0.45, WriteFraction: 0.3, MaxOutstanding: 8, Sync: true},
		{Name: "x264", PeerRate: 0.012, DirRate: 0.020, DirSharers: 8, DutyCycle: 0.9, BurstLen: 250, ShareDegree: 3, ReplyFraction: 0.5, WriteFraction: 0.2, MaxOutstanding: 8},
	}
}

// WorkloadByName finds a workload model.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown PARSEC workload %q", name)
}

// directoryNodes returns the four directory/memory-controller nodes of
// the mesh, placed at the edge midpoints as in common memory-controller
// floorplans, so their congestion trees sit where peer traffic actually
// crosses.
func directoryNodes(m topo.Mesh) []int {
	midX, midY := m.Width/2, m.Height/2
	return []int{
		midX,                            // top edge
		midY * m.Width,                  // left edge
		(midY+1)*m.Width - 1,            // right edge
		(m.Height-1)*m.Width + midX - 1, // bottom edge
	}
}

// Generate synthesizes a trace of the workload on mesh m covering the
// given number of cycles. Generation is deterministic in seed. Control
// packets are single-flit; writebacks and data replies are five flits.
func Generate(w Workload, m topo.Mesh, cycles int64, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	dirs := directoryNodes(m)
	nodes := m.Nodes()

	// Fixed peer sets per core, giving each workload its sharing
	// structure.
	peers := make([][]int, nodes)
	for n := 0; n < nodes; n++ {
		deg := w.ShareDegree
		if deg < 1 {
			deg = 1
		}
		set := map[int]bool{}
		for len(set) < deg {
			p := rng.Intn(nodes)
			if p != n {
				set[p] = true
			}
		}
		for p := range set {
			peers[n] = append(peers[n], p)
		}
		sort.Ints(peers[n])
	}

	// The directory-sharing cores, spread deterministically over the
	// mesh (avoiding the directories themselves).
	isDir := map[int]bool{}
	for _, d := range dirs {
		isDir[d] = true
	}
	isSharer := make([]bool, nodes)
	stride := nodes / maxi(w.DirSharers, 1)
	if stride < 1 {
		stride = 1
	}
	count := 0
	for n := 0; n < nodes && count < w.DirSharers; n += stride {
		if !isDir[n] {
			isSharer[n] = true
			count++
		}
	}

	// On/off burst state per core; synchronized workloads share entry 0.
	burstNodes := nodes
	if w.Sync {
		burstNodes = 1
	}
	bursting := make([]bool, burstNodes)
	left := make([]int, burstNodes)
	for n := range bursting {
		bursting[n] = rng.Float64() < w.DutyCycle
		left[n] = 1 + rng.Intn(2*w.BurstLen)
	}

	// completions[n] is the ring of each core's recent transaction
	// completion IDs (the reply when one exists, else the request); a new
	// request depends on the completion MaxOutstanding transactions back.
	completions := make([][]uint64, nodes)

	var records []Record
	var nextID uint64
	emit := func(cyc int64, src, dest, size int, wantsReply bool) {
		nextID++
		req := Record{ID: nextID, Cycle: cyc, Src: src, Dest: dest, Size: size}
		if win := w.MaxOutstanding; win > 0 && len(completions[src]) >= win {
			req.Dep = completions[src][len(completions[src])-win]
		}
		records = append(records, req)
		completion := req.ID
		if wantsReply && rng.Float64() < w.ReplyFraction {
			nextID++
			reply := Record{
				ID:    nextID,
				Cycle: cyc, // eligible immediately, gated by Dep
				Src:   dest,
				Dest:  src,
				Size:  5,
				Dep:   req.ID,
			}
			records = append(records, reply)
			completion = reply.ID
		}
		completions[src] = append(completions[src], completion)
	}

	for cyc := int64(0); cyc < cycles; cyc++ {
		for b := range bursting {
			if left[b]--; left[b] <= 0 {
				// Flip burst state; off periods scale to honour the
				// duty cycle.
				if bursting[b] {
					offLen := float64(w.BurstLen) * (1 - w.DutyCycle) / maxf(w.DutyCycle, 0.05)
					left[b] = 1 + rng.Intn(int(2*offLen)+1)
				} else {
					left[b] = 1 + rng.Intn(2*w.BurstLen)
				}
				bursting[b] = !bursting[b]
			}
		}
		for n := 0; n < nodes; n++ {
			bn := n
			if w.Sync {
				bn = 0
			}
			if !bursting[bn] {
				continue
			}
			// Peer traffic: every core.
			if rng.Float64() < w.PeerRate {
				dest := peers[n][rng.Intn(len(peers[n]))]
				if dest != n {
					emit(cyc, n, dest, 1, true)
				}
			}
			// Directory traffic: sharer cores only.
			if isSharer[n] && rng.Float64() < w.DirRate {
				dest := dirs[rng.Intn(len(dirs))]
				if dest == n {
					continue
				}
				if rng.Float64() < w.WriteFraction {
					emit(cyc, n, dest, 5, false) // writeback
				} else {
					emit(cyc, n, dest, 1, true) // read
				}
			}
		}
	}
	return records
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
