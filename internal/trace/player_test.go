package trace

import (
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/topo"
)

func TestPlayerRespectsCycles(t *testing.T) {
	p := NewPlayer([]Record{
		{ID: 1, Cycle: 0, Src: 0, Dest: 1, Size: 1},
		{ID: 2, Cycle: 5, Src: 2, Dest: 3, Size: 1},
	})
	p.Init(topo.MustNew(4, 4), nil)
	var got []*flit.Packet
	collect := func(pkt *flit.Packet) { got = append(got, pkt) }
	p.Tick(0, collect)
	if len(got) != 1 || got[0].Dest != 1 {
		t.Fatalf("cycle 0 injected %d packets", len(got))
	}
	p.Tick(3, collect)
	if len(got) != 1 {
		t.Fatal("record 2 injected early")
	}
	p.Tick(5, collect)
	if len(got) != 2 {
		t.Fatal("record 2 not injected at its cycle")
	}
	if got[1].Born != 5 {
		t.Errorf("Born = %d, want 5", got[1].Born)
	}
}

func TestPlayerDependencyGating(t *testing.T) {
	p := NewPlayer([]Record{
		{ID: 1, Cycle: 0, Src: 0, Dest: 1, Size: 1},
		{ID: 2, Cycle: 0, Src: 1, Dest: 0, Size: 5, Dep: 1},
	})
	p.Init(topo.MustNew(4, 4), nil)
	var got []*flit.Packet
	collect := func(pkt *flit.Packet) { got = append(got, pkt) }
	p.Tick(0, collect)
	if len(got) != 1 {
		t.Fatalf("dependent record escaped the gate: %d packets", len(got))
	}
	// Deliver the request.
	p.OnEject(got[0])
	p.Tick(1, collect)
	if len(got) != 2 {
		t.Fatal("dependent record not released after delivery")
	}
	if got[1].Src != 1 || got[1].Size != 5 || got[1].Born != 1 {
		t.Errorf("reply packet wrong: %+v", got[1])
	}
	p.OnEject(got[1])
	if !p.Finished() {
		t.Error("player should be finished")
	}
	if p.Done != 2 || p.Total != 2 {
		t.Errorf("Done/Total = %d/%d", p.Done, p.Total)
	}
}

func TestPlayerIgnoresForeignPackets(t *testing.T) {
	p := NewPlayer([]Record{{ID: 1, Cycle: 0, Src: 0, Dest: 1, Size: 1}})
	p.Init(topo.MustNew(4, 4), nil)
	p.OnEject(&flit.Packet{ID: 999}) // not ours
	if p.Done != 0 {
		t.Error("foreign packet counted")
	}
}

func TestPlayerInitValidates(t *testing.T) {
	p := NewPlayer([]Record{{ID: 1, Cycle: 0, Src: 0, Dest: 99, Size: 1}})
	defer func() {
		if recover() == nil {
			t.Error("invalid trace accepted by Init")
		}
	}()
	p.Init(topo.MustNew(4, 4), nil)
}

func TestPlayerNotFinishedWhileWaiting(t *testing.T) {
	p := NewPlayer([]Record{
		{ID: 1, Cycle: 0, Src: 0, Dest: 1, Size: 1},
		{ID: 2, Cycle: 0, Src: 1, Dest: 0, Size: 1, Dep: 1},
	})
	p.Init(topo.MustNew(4, 4), nil)
	var pkts []*flit.Packet
	p.Tick(0, func(pkt *flit.Packet) { pkts = append(pkts, pkt) })
	if p.Finished() {
		t.Error("finished with a record still waiting on a dependency")
	}
}
