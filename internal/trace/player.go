package trace

import (
	"fmt"
	"math/rand"

	"nocsim/internal/flit"
	"nocsim/internal/topo"
)

// Player injects a trace into a simulation, honouring record cycles and
// dependencies: a record with Dep only becomes eligible after the record
// it depends on has been delivered. It implements sim.Injector and
// sim.EjectObserver.
type Player struct {
	records []Record
	next    int // first un-injected record index

	waiting   map[uint64][]Record // dep ID -> records blocked on it
	delivered map[uint64]bool
	ready     []Record // dependency-satisfied, cycle-due records

	// inflight keys by packet pointer, which is stable offer-to-eject
	// even for arena packets: the endpoint recycles a slot only after
	// OnEject (in the Sink chain) has run.
	inflight map[*flit.Packet]uint64 // packet -> record ID

	arena *flit.Arena

	// Done counts delivered trace packets; Total is the trace size.
	Done, Total int
}

// UseArena makes the player allocate packets from a instead of the heap;
// the network's endpoints recycle them at ejection. Call before Tick.
func (p *Player) UseArena(a *flit.Arena) { p.arena = a }

// NewPlayer returns a player for records, which must be Validate-clean.
func NewPlayer(records []Record) *Player {
	return &Player{
		records:   records,
		waiting:   map[uint64][]Record{},
		delivered: map[uint64]bool{},
		inflight:  map[*flit.Packet]uint64{},
		Total:     len(records),
	}
}

// Init implements sim.Injector.
func (p *Player) Init(m topo.Mesh, _ *rand.Rand) {
	if err := Validate(p.records, m.Nodes()); err != nil {
		panic(fmt.Sprintf("trace: invalid trace for %dx%d mesh: %v", m.Width, m.Height, err))
	}
}

// Tick implements sim.Injector: offer every due, dependency-free record.
func (p *Player) Tick(now int64, offer func(*flit.Packet)) {
	for p.next < len(p.records) && p.records[p.next].Cycle <= now {
		r := p.records[p.next]
		p.next++
		if r.Dep != 0 && !p.delivered[r.Dep] {
			p.waiting[r.Dep] = append(p.waiting[r.Dep], r)
			continue
		}
		p.ready = append(p.ready, r)
	}
	for _, r := range p.ready {
		var pkt *flit.Packet
		if p.arena != nil {
			pkt = p.arena.NewPacket()
		} else {
			pkt = &flit.Packet{}
		}
		pkt.ID = r.ID
		pkt.Src = r.Src
		pkt.Dest = r.Dest
		pkt.Size = r.Size
		pkt.Born = now
		p.inflight[pkt] = r.ID
		offer(pkt)
	}
	p.ready = p.ready[:0]
}

// OnEject implements sim.EjectObserver: release dependents of the
// delivered record.
func (p *Player) OnEject(pkt *flit.Packet) {
	id, ok := p.inflight[pkt]
	if !ok {
		return // another injector's packet
	}
	delete(p.inflight, pkt)
	p.delivered[id] = true
	p.Done++
	if deps := p.waiting[id]; len(deps) != 0 {
		p.ready = append(p.ready, deps...)
		delete(p.waiting, id)
	}
}

// Finished reports whether every record has been injected and delivered.
func (p *Player) Finished() bool {
	return p.next == len(p.records) && p.Done == p.Total &&
		len(p.waiting) == 0 && len(p.ready) == 0
}
