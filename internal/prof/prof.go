// Package prof is the repository's wall-clock seam. The simulator's
// determinism contract — results are a pure function of (Config, seed) —
// is enforced by noclint's determinism rule, which forbids wall-clock
// reads under the result-producing packages. Self-metrics (cycles/s,
// phase profiles) still need real time, so this package concentrates the
// entire perimeter's wall-clock access into one audited, waived call
// site: Now. Everything under the deterministic roots that needs time
// takes it from here (or through an injected Clock), so a stray
// time.Now anywhere else keeps failing lint instead of accumulating
// scattered waivers.
package prof

import "time"

// Clock reads the current time. The profiler and the runtime
// self-metrics accept a Clock so tests can substitute a deterministic
// fake; production code passes nil and gets Now.
type Clock func() time.Time

// Now is the single sanctioned wall-clock read inside the deterministic
// perimeter. Its values feed self-metrics (cycles/s, phase profiles,
// heartbeat pacing) only — never a simulated quantity — which is the
// reasoned waiver below.
func Now() time.Time {
	return time.Now() //noclint:allow determinism the repo's one sanctioned wall-clock seam; feeds self-metrics and profiles only, never results
}

// Or returns c when non-nil and Now otherwise, so call sites can accept
// an optional injected clock without branching at every read.
func Or(c Clock) Clock {
	if c != nil {
		return c
	}
	return Now
}
