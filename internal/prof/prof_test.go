package prof

import (
	"testing"
	"time"
)

// TestNowMonotonic pins the seam's basic contract: consecutive reads
// never go backwards (Go's time.Time carries a monotonic component).
func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Errorf("Now went backwards: %v then %v", a, b)
	}
}

// TestOr pins the optional-injection helper: nil resolves to Now, a fake
// clock is returned unchanged.
func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) returned nil")
	}
	fixed := time.Unix(42, 0)
	fake := Clock(func() time.Time { return fixed })
	if got := Or(fake)(); !got.Equal(fixed) {
		t.Errorf("Or(fake)() = %v, want %v", got, fixed)
	}
}
