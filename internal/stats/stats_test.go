package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Var() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	s.Reset()
	if s.N() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSummaryNegativeVarianceClamped(t *testing.T) {
	var s Summary
	// Identical large values can produce tiny negative variance from
	// floating point cancellation; it must be clamped.
	for i := 0; i < 1000; i++ {
		s.Add(1e9 + 0.1)
	}
	if s.Var() < 0 {
		t.Errorf("Var = %v, want >= 0", s.Var())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(100)
	for v := int64(1); v <= 100; v++ {
		h.Add(v % 100)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if q := h.Quantile(0.5); math.Abs(q-49.0) > 1.5 {
		t.Errorf("median = %v, want ~49.5", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 99 {
		t.Errorf("q1 = %v, want 99", q)
	}
}

func TestHistogramOverflowTail(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 9; i++ {
		h.Add(1)
	}
	h.Add(1000)
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("tail quantile = %v, want 1000 (tail mean)", got)
	}
	wantMean := (9*1.0 + 1000) / 10
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(10)
	h.Add(-5)
	if h.N() != 1 || h.Quantile(0.5) != 0 {
		t.Error("negative value not clamped to 0")
	}
}

func TestHistogramEmptyQuantileNaN(t *testing.T) {
	h := NewHistogram(10)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
	h.Add(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("single-element Quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestHistogramSkewedQuantiles(t *testing.T) {
	// 99 observations at 1, one at 80: every quantile up to p98 is 1,
	// p99 and above hit the outlier.
	h := NewHistogram(100)
	for i := 0; i < 99; i++ {
		h.Add(1)
	}
	h.Add(80)
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("skewed median = %v, want 1", q)
	}
	if q := h.Quantile(0.98); q != 1 {
		t.Errorf("skewed p98 = %v, want 1", q)
	}
	if q := h.Quantile(1); q != 80 {
		t.Errorf("skewed p100 = %v, want 80", q)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio(6,3) = %v, want 2", got)
	}
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio(5,0) = %v, want 0", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Errorf("Ratio(0,0) = %v, want 0", got)
	}
	if got := Ratio(-4, 2); got != -2 {
		t.Errorf("Ratio(-4,2) = %v, want -2", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(10)
	h.Add(3)
	h.Add(100)
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median != 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
}

// Property: histogram mean equals summary mean for in-range values.
func TestHistogramMatchesSummary(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram(256)
		var s Summary
		for _, v := range raw {
			h.Add(int64(v))
			s.Add(float64(v))
		}
		return math.Abs(h.Mean()-s.Mean()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
