// Package stats provides the streaming statistics used by the simulator:
// running means, histograms with quantiles, and per-class latency
// accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of values and reports moments and extremes.
// The zero value is ready to use.
type Summary struct {
	n        int64
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Reset clears the summary.
func (s *Summary) Reset() { *s = Summary{} }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f max=%.0f",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Histogram collects integer observations (e.g. cycle latencies) in exact
// counts up to a cap, aggregating the tail, and reports quantiles.
type Histogram struct {
	counts []int64
	over   int64 // observations >= len(counts)
	overS  *Summary
	total  int64
}

// NewHistogram returns a histogram with exact bins for values 0..cap-1.
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		panic("stats: histogram cap must be positive")
	}
	return &Histogram{counts: make([]int64, cap), overS: &Summary{}}
}

// Add records one observation; negative values are clamped to 0.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if v >= int64(len(h.counts)) {
		h.over++
		h.overS.Add(float64(v))
	} else {
		h.counts[v]++
	}
	h.total++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Quantile returns the q-quantile (0 <= q <= 1), or NaN for an empty
// histogram — an empty distribution has no quantiles, and returning 0
// would read as a real (excellent) latency. Values beyond the exact
// range are approximated by the tail mean.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := int64(q * float64(h.total-1))
	var cum int64
	for v, c := range h.counts {
		cum += c
		if cum > target {
			return float64(v)
		}
	}
	return h.overS.Mean()
}

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	sum += h.overS.Sum()
	return sum / float64(h.total)
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.over = 0
	h.overS.Reset()
	h.total = 0
}

// Ratio returns num/den, or 0 when den is zero — the shared guard for
// the rate and purity computations that would otherwise divide by zero
// on empty observation windows.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Median of a small sample; the input slice is sorted in place.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}
