package exp

import (
	"fmt"
	"strings"

	"nocsim/internal/routing"
	"nocsim/internal/sim"
	"nocsim/internal/topo"
)

// AdaptivenessRow quantifies Table 1's qualitative grades: the measured
// mean port adaptiveness and the analytic VC adaptiveness per algorithm.
type AdaptivenessRow struct {
	Algorithm string
	// MeanPAdapt is P_adapt (Equation 1) averaged over all node pairs of
	// the baseline 8×8 mesh.
	MeanPAdapt float64
	// VCAdapt is VC_adapt (Equation 2) of a non-escape channel with the
	// baseline 10 VCs.
	VCAdapt float64
}

// TableOneStudy combines the paper's qualitative Table 1 with measured
// adaptiveness values.
type TableOneStudy struct {
	Qualitative []routing.TableOneRow
	Measured    []AdaptivenessRow
}

// Table1 regenerates Table 1 plus the quantitative two-level adaptiveness
// of every implemented algorithm.
func Table1() TableOneStudy {
	m := topo.MustNew(8, 8)
	var measured []AdaptivenessRow
	for _, name := range routing.Names() {
		alg := routing.MustNew(name)
		measured = append(measured, AdaptivenessRow{
			Algorithm:  name,
			MeanPAdapt: routing.MeanPortAdaptiveness(m, alg),
			VCAdapt:    routing.VCAdaptiveness(alg, 10, false),
		})
	}
	return TableOneStudy{
		Qualitative: routing.TableOne(),
		Measured:    measured,
	}
}

// Format renders both halves of the study.
func (t TableOneStudy) Format() string {
	var b strings.Builder
	b.WriteString("Table 1 — qualitative comparison\n")
	b.WriteString(routing.FormatTableOne(t.Qualitative))
	b.WriteString("\nMeasured two-level adaptiveness (8x8 mesh, 10 VCs)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s\n", "algorithm", "P_adapt", "VC_adapt")
	for _, r := range t.Measured {
		fmt.Fprintf(&b, "%-16s %12.3f %12.3f\n", r.Algorithm, r.MeanPAdapt, r.VCAdapt)
	}
	return b.String()
}

// Table2 renders the simulation configuration actually used (the paper's
// Table 2 defaults).
func Table2(cfg sim.Config) string {
	var b strings.Builder
	b.WriteString("Table 2 — network simulation configuration\n")
	fmt.Fprintf(&b, "%-24s %dx%d 2D mesh\n", "topology", cfg.Width, cfg.Height)
	fmt.Fprintf(&b, "%-24s %s\n", "routing algorithm", cfg.Algorithm)
	fmt.Fprintf(&b, "%-24s %d VCs/channel, %d-flit buffers\n", "virtual channels", cfg.VCs, cfg.BufDepth)
	fmt.Fprintf(&b, "%-24s credit-based, wormhole\n", "flow control")
	fmt.Fprintf(&b, "%-24s priority-based VC allocator, round-robin switch arbiter\n", "allocators")
	fmt.Fprintf(&b, "%-24s %d.0\n", "internal speedup", cfg.Speedup)
	fmt.Fprintf(&b, "%-24s warmup %d, measure %d, drain %d cycles\n",
		"measurement", cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles)
	return b.String()
}

// CostStudy reproduces Section 4.4's storage overhead analysis.
type CostStudy struct{ Rows []routing.Cost }

// SectionCost computes the Footprint storage overhead for representative
// network sizes and VC counts.
func SectionCost() CostStudy {
	var s CostStudy
	for _, cfg := range []struct{ nodes, vcs int }{
		{16, 4}, {64, 10}, {64, 16}, {256, 16},
	} {
		s.Rows = append(s.Rows, routing.FootprintCost(cfg.nodes, cfg.vcs))
	}
	return s
}

// Format renders the cost table.
func (c CostStudy) Format() string {
	var b strings.Builder
	b.WriteString("Section 4.4 — Footprint storage overhead per port\n")
	fmt.Fprintf(&b, "%-8s %-6s %12s %12s %12s\n", "nodes", "VCs", "idle ctr", "owner/VC", "total bits")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-8d %-6d %10db %10db %11db\n",
			r.NetworkSize, r.VCsPerPort, r.IdleCounterBits, r.OwnerBitsPerVC, r.TotalBitsPerPort)
	}
	return b.String()
}
