// Package exp defines one reproducible experiment per table and figure of
// the paper. The cmd tools print their results; the benchmark harness in
// the repository root runs them at reduced scale. Each experiment returns
// a structured result with a Format method that prints the same rows or
// series the paper reports.
package exp

import (
	"nocsim/internal/obs"
	"nocsim/internal/sim"
)

// Profile sets the simulation effort of an experiment. Full approximates
// the paper's methodology; Quick is for benchmarks, smoke tests and
// iteration.
type Profile struct {
	Name    string
	Warmup  int64
	Measure int64
	Drain   int64
	// Rates is the injection-rate grid of latency-throughput curves, in
	// flits/node/cycle.
	Rates []float64
	// Tol is the bisection tolerance of saturation-throughput searches.
	Tol float64
	// TraceCycles bounds generated trace length for Figure 10.
	TraceCycles int64

	// Jobs is the worker count for the experiment's grid of independent
	// runs (0 = one per CPU; see sim.Map). Per-run seeds are derived
	// deterministically, so results are identical at any value.
	Jobs int

	// Obs selects per-run observability collectors (counter sampler,
	// heatmap, tracer) attached to every simulation of the experiment;
	// each Result carries its collector back for per-run export.
	Obs obs.Options
	// Monitor, when non-nil, aggregates every run's live progress for
	// the /metrics and /status endpoints, so a whole figure's grid of
	// runs is visible while it executes.
	Monitor *obs.Hub
	// WatchdogCycles arms the per-run stall watchdog (see
	// sim.Config.WatchdogCycles); WatchdogOut overrides the stall
	// snapshot path.
	WatchdogCycles int64
	WatchdogOut    string
	// StepAll disables the active-set worklist in every run of the
	// experiment (see sim.Config.StepAll) — the debug mode the
	// determinism gate diffs against.
	StepAll bool
	// NoRouteCache disables the route-decision cache in every run of the
	// experiment (see sim.Config.NoRouteCache) — the escape hatch the
	// route-cache gate diffs against.
	NoRouteCache bool
}

// FullProfile is the publication-quality effort level.
func FullProfile() Profile {
	return Profile{
		Name:    "full",
		Warmup:  2500,
		Measure: 4000,
		Drain:   15000,
		Rates:   rateGrid(0.05, 0.95, 0.05),
		Tol:     0.01,

		TraceCycles: 20000,
	}
}

// QuickProfile trades precision for speed (used by go test -bench and CI).
func QuickProfile() Profile {
	return Profile{
		Name:    "quick",
		Warmup:  400,
		Measure: 800,
		Drain:   3000,
		Rates:   rateGrid(0.1, 0.7, 0.15),
		Tol:     0.05,

		TraceCycles: 3000,
	}
}

func rateGrid(lo, hi, step float64) []float64 {
	var out []float64
	for r := lo; r <= hi+1e-9; r += step {
		out = append(out, r)
	}
	return out
}

// apply copies the profile's phase lengths and observability wiring onto
// a simulation config.
func (p Profile) apply(cfg sim.Config) sim.Config {
	cfg.WarmupCycles = p.Warmup
	cfg.MeasureCycles = p.Measure
	cfg.DrainCycles = p.Drain
	cfg.Obs = p.Obs
	cfg.Monitor = p.Monitor
	cfg.WatchdogCycles = p.WatchdogCycles
	cfg.WatchdogOut = p.WatchdogOut
	cfg.StepAll = p.StepAll
	cfg.NoRouteCache = p.NoRouteCache
	return cfg
}

// BaseConfig returns the Table 2 default configuration at this profile's
// effort.
func (p Profile) BaseConfig() sim.Config { return p.apply(sim.DefaultConfig()) }
