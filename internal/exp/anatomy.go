package exp

import (
	"fmt"
	"strings"

	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

// AnatomyAlgorithms is the default algorithm set of the anatomy study:
// the four base routing configurations whose adaptiveness regimes the
// paper contrasts (fully adaptive with footprint regulation, fully
// adaptive with DBAR selection, partially adaptive, deterministic).
func AnatomyAlgorithms() []string {
	return []string{"footprint", "dbar", "oddeven", "dor"}
}

// AnatomyPoint is one (rate, run) cell of the anatomy study.
type AnatomyPoint struct {
	Rate   float64
	Result *sim.Result
}

// AnatomyCurve is one algorithm's anatomy trajectory over offered load.
type AnatomyCurve struct {
	Algorithm string
	Points    []AnatomyPoint
}

// AnatomyStudy sweeps offered load × algorithm with the latency-anatomy
// collector enabled: the runtime counterpart of the paper's Section 3.1
// analysis. Where Figure 5 shows *that* an algorithm saturates, the
// anatomy shows *why* — which VC class absorbs the growing wait, and how
// much of the static adaptiveness each algorithm actually exercises as
// congestion builds.
type AnatomyStudy struct {
	Pattern string
	Curves  []AnatomyCurve
}

// Anatomy runs the study under the named pattern. algs defaults to
// AnatomyAlgorithms. Unlike the figure sweeps there is no saturation
// early-exit: the saturated regime is exactly where the anatomy is most
// interesting.
func Anatomy(p Profile, pattern string, algs []string) (AnatomyStudy, error) {
	if algs == nil {
		algs = AnatomyAlgorithms()
	}
	if p.Monitor != nil {
		p.Monitor.AddPlan(len(algs) * len(p.Rates))
	}
	// Flatten the (algorithm × rate) grid: every cell is one independent
	// run through the shared worker pool.
	pts, err := sim.Map(p.Jobs, len(algs)*len(p.Rates), func(i int) (AnatomyPoint, error) {
		alg, rate := algs[i/len(p.Rates)], p.Rates[i%len(p.Rates)]
		cfg := p.BaseConfig()
		cfg.Algorithm = alg
		cfg.Obs.Anatomy = true
		cfg.RunLabel = fmt.Sprintf("anatomy %s/%s rate=%.2f", pattern, alg, rate)
		sub, err := sim.LatencyThroughputJobs(cfg, pattern, traffic.FixedSize(1), []float64{rate}, 1)
		if err != nil {
			return AnatomyPoint{}, fmt.Errorf("exp: anatomy %s/%s rate=%.2f: %w", pattern, alg, rate, err)
		}
		return AnatomyPoint{Rate: rate, Result: sub[0].Result}, nil
	})
	if err != nil {
		return AnatomyStudy{}, err
	}
	out := AnatomyStudy{Pattern: pattern}
	for ai, alg := range algs {
		out.Curves = append(out.Curves, AnatomyCurve{
			Algorithm: alg,
			Points:    pts[ai*len(p.Rates) : (ai+1)*len(p.Rates)],
		})
	}
	return out, nil
}

// Format renders the study's two families of curves: exercised
// adaptiveness vs. load (one ports|vcs column per algorithm) and, per
// algorithm, the latency composition vs. load (component shares of the
// end-to-end latency).
func (s AnatomyStudy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency anatomy — %s traffic\n", s.Pattern)

	b.WriteString("adaptiveness exercised vs load (ports|vcs, sat = unstable)\n")
	fmt.Fprintf(&b, "%-8s", "rate")
	for _, c := range s.Curves {
		fmt.Fprintf(&b, "%16s", c.Algorithm)
	}
	b.WriteString("\n")
	for i := 0; i < s.maxPoints(); i++ {
		fmt.Fprintf(&b, "%-8.2f", s.rateAt(i))
		for _, c := range s.Curves {
			if i >= len(c.Points) || c.Points[i].Result.Anatomy == nil {
				fmt.Fprintf(&b, "%16s", "-")
				continue
			}
			r := c.Points[i].Result
			cell := fmt.Sprintf("%.2f|%.2f", r.Anatomy.PortAdaptivenessExercised(),
				r.Anatomy.VCAdaptivenessExercised())
			if !r.Stable {
				cell += "*"
			}
			fmt.Fprintf(&b, "%16s", cell)
		}
		b.WriteString("\n")
	}

	for _, c := range s.Curves {
		fmt.Fprintf(&b, "latency composition vs load — %s (%% of end-to-end latency)\n", c.Algorithm)
		header := false
		for _, pt := range c.Points {
			a := pt.Result.Anatomy
			if a == nil || a.Packets == 0 {
				continue
			}
			comps := a.Components()
			if !header {
				fmt.Fprintf(&b, "%-8s", "rate")
				for _, comp := range comps {
					fmt.Fprintf(&b, "%20s", comp.Name)
				}
				fmt.Fprintf(&b, "%10s\n", "lat")
				header = true
			}
			fmt.Fprintf(&b, "%-8.2f", pt.Rate)
			for _, comp := range comps {
				share := 0.0
				if a.LatencyCycles > 0 {
					share = 100 * float64(comp.Cycles) / float64(a.LatencyCycles)
				}
				fmt.Fprintf(&b, "%19.1f%%", share)
			}
			fmt.Fprintf(&b, "%10.1f\n", float64(a.LatencyCycles)/float64(a.Packets))
		}
	}
	return b.String()
}

func (s AnatomyStudy) maxPoints() int {
	n := 0
	for _, c := range s.Curves {
		if len(c.Points) > n {
			n = len(c.Points)
		}
	}
	return n
}

func (s AnatomyStudy) rateAt(i int) float64 {
	for _, c := range s.Curves {
		if i < len(c.Points) {
			return c.Points[i].Rate
		}
	}
	return 0
}
