package exp

import (
	"strings"
	"testing"
)

// tinyProfile is even cheaper than Quick, for unit tests.
func tinyProfile() Profile {
	return Profile{
		Name:        "tiny",
		Warmup:      200,
		Measure:     400,
		Drain:       1500,
		Rates:       []float64{0.1, 0.3},
		Tol:         0.1,
		TraceCycles: 1200,
	}
}

func TestProfiles(t *testing.T) {
	full, quick := FullProfile(), QuickProfile()
	if full.Measure <= quick.Measure {
		t.Error("full profile should measure longer than quick")
	}
	if len(full.Rates) <= len(quick.Rates) {
		t.Error("full profile should have a denser rate grid")
	}
	cfg := quick.BaseConfig()
	if cfg.MeasureCycles != quick.Measure {
		t.Error("BaseConfig did not apply profile")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("profile config invalid: %v", err)
	}
}

func TestRateGrid(t *testing.T) {
	g := rateGrid(0.1, 0.3, 0.1)
	if len(g) != 3 || g[0] != 0.1 || g[2] < 0.299 || g[2] > 0.301 {
		t.Errorf("rateGrid = %v", g)
	}
}

func TestSyntheticLists(t *testing.T) {
	if len(SyntheticAlgorithms()) != 7 {
		t.Errorf("algorithms = %v", SyntheticAlgorithms())
	}
	if len(SyntheticPatterns()) != 3 {
		t.Errorf("patterns = %v", SyntheticPatterns())
	}
}

func TestFigure5Tiny(t *testing.T) {
	p := tinyProfile()
	cs, err := curveSet(p, "Figure 5", "uniform", nil, []string{"footprint", "dor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Curves) != 2 {
		t.Fatalf("curves = %d", len(cs.Curves))
	}
	for _, c := range cs.Curves {
		if len(c.Points) != len(p.Rates) {
			t.Errorf("%s: %d points, want %d", c.Algorithm, len(c.Points), len(p.Rates))
		}
		if sat := SaturationFromCurve(c); sat <= 0 {
			t.Errorf("%s: saturation %v", c.Algorithm, sat)
		}
	}
	out := cs.Format()
	for _, want := range []string{"uniform", "footprint", "dor", "satTP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSaturationFromCurveEmpty(t *testing.T) {
	if SaturationFromCurve(Curve{}) != 0 {
		t.Error("empty curve should have zero saturation")
	}
}

func TestFigure7Tiny(t *testing.T) {
	vs, err := Figure7(tinyProfile(), "uniform", []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Points) != 2 {
		t.Fatalf("points = %d", len(vs.Points))
	}
	for _, pt := range vs.Points {
		if pt.Throughput["footprint"] <= 0 || pt.Throughput["dbar"] <= 0 {
			t.Errorf("VCs=%d: zero throughput %v", pt.VCs, pt.Throughput)
		}
	}
	if !strings.Contains(vs.Format(), "Figure 7") {
		t.Error("bad format")
	}
}

func TestFigure8Tiny(t *testing.T) {
	st, err := Figure8(tinyProfile(), [][2]int{{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Points) != 3 { // one mesh x three patterns
		t.Fatalf("points = %d", len(st.Points))
	}
	for _, pt := range st.Points {
		if pt.DBARNormalized <= 0 {
			t.Errorf("%s: normalized %v", pt.Pattern, pt.DBARNormalized)
		}
	}
	if !strings.Contains(st.Format(), "dbar/fp") {
		t.Error("bad format")
	}
}

func TestFigure9Tiny(t *testing.T) {
	hs, err := Figure9(tinyProfile(), 0.3, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs.Curves["footprint"]) != 2 || len(hs.Curves["dbar"]) != 2 {
		t.Fatalf("curves incomplete: %v", hs.Curves)
	}
	if !strings.Contains(hs.Format(), "hotRate") {
		t.Error("bad format")
	}
}

func TestFigure10Tiny(t *testing.T) {
	ts, err := Figure10(tinyProfile(), [][2]string{{"x264", "canneal"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(ts.Pairs))
	}
	if ts.Pairs[0].Latency["footprint"] <= 0 || ts.Pairs[0].Latency["dbar"] <= 0 {
		t.Errorf("latencies = %v", ts.Pairs[0].Latency)
	}
	if len(ts.PerWorkload) != 2 {
		t.Errorf("per-workload = %d", len(ts.PerWorkload))
	}
	out := ts.Format()
	for _, want := range []string{"Figure 10(a)", "Figure 10(b)", "Figure 10(c)", "x264"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestFigure10UnknownWorkload(t *testing.T) {
	if _, err := Figure10(tinyProfile(), [][2]string{{"doom", "x264"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFigure2Tiny(t *testing.T) {
	st, err := Figure2(tinyProfile(), []string{"dor", "footprint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Algorithms) != 2 {
		t.Fatalf("algorithms = %d", len(st.Algorithms))
	}
	for _, ta := range st.Algorithms {
		if ta.Endpoint.VCs <= 0 {
			t.Errorf("%s: no congestion tree measured", ta.Algorithm)
		}
	}
	if !strings.Contains(st.Format(), "n13") {
		t.Error("bad format")
	}
}

func TestTable1(t *testing.T) {
	st := Table1()
	if len(st.Qualitative) == 0 || len(st.Measured) != 10 {
		t.Fatalf("table sizes: %d, %d", len(st.Qualitative), len(st.Measured))
	}
	var fp, dor AdaptivenessRow
	for _, r := range st.Measured {
		switch r.Algorithm {
		case "footprint":
			fp = r
		case "dor":
			dor = r
		}
	}
	if fp.MeanPAdapt != 1.0 {
		t.Errorf("footprint mean P_adapt = %v", fp.MeanPAdapt)
	}
	if dor.MeanPAdapt >= fp.MeanPAdapt {
		t.Error("dor should have lower port adaptiveness")
	}
	if fp.VCAdapt != 0.9 {
		t.Errorf("footprint VC_adapt = %v", fp.VCAdapt)
	}
	if !strings.Contains(st.Format(), "Table 1") {
		t.Error("bad format")
	}
}

func TestTable2(t *testing.T) {
	out := Table2(FullProfile().BaseConfig())
	for _, want := range []string{"8x8", "footprint", "10 VCs", "wormhole", "2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestSectionCost(t *testing.T) {
	cs := SectionCost()
	if len(cs.Rows) != 4 {
		t.Fatalf("rows = %d", len(cs.Rows))
	}
	if !strings.Contains(cs.Format(), "Section 4.4") {
		t.Error("bad format")
	}
}

func TestDefaultPairsNamedCombos(t *testing.T) {
	pairs := DefaultPairs()
	hasX264Canneal := false
	fluidCount := 0
	for _, p := range pairs {
		if (p[0] == "x264" && p[1] == "canneal") || (p[0] == "canneal" && p[1] == "x264") {
			hasX264Canneal = true
		}
		if p[0] == "fluidanimate" || p[1] == "fluidanimate" {
			fluidCount++
		}
	}
	if !hasX264Canneal {
		t.Error("the paper's x264+canneal pair is missing")
	}
	if fluidCount < 2 {
		t.Error("fluidanimate combinations missing")
	}
}
