package exp

import (
	"fmt"
	"strings"

	"nocsim/internal/flit"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/traffic"
)

// SyntheticAlgorithms are the seven routing configurations of Figures 5
// and 6.
func SyntheticAlgorithms() []string {
	return []string{"footprint", "dbar", "oddeven", "dor", "dbar+xordet", "oddeven+xordet", "dor+xordet"}
}

// SyntheticPatterns are the three traffic patterns of Figures 5–8.
func SyntheticPatterns() []string { return []string{"uniform", "transpose", "shuffle"} }

// Curve is one algorithm's latency-throughput curve.
type Curve struct {
	Algorithm string
	Points    []sim.SweepPoint
}

// SaturationFromCurve returns the highest accepted throughput among
// stable, criterion-passing points — the saturation throughput read off a
// latency-throughput curve.
func SaturationFromCurve(c Curve) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	crit := sim.DefaultCriterion()
	zero := c.Points[0].Result.AvgLatency(flit.ClassBackground)
	best := 0.0
	for _, p := range c.Points {
		if crit.Saturated(p.Result, zero) {
			continue
		}
		if p.Result.Accepted > best {
			best = p.Result.Accepted
		}
	}
	return best
}

// CurveSet is one traffic pattern's family of curves (one panel of
// Figure 5 or 6).
type CurveSet struct {
	Figure  string
	Pattern string
	Curves  []Curve
}

// Format renders the panel as the paper's series: one row per rate with
// one latency column per algorithm, followed by the saturation summary.
func (cs CurveSet) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s traffic\n", cs.Figure, cs.Pattern)
	fmt.Fprintf(&b, "%-8s", "rate")
	for _, c := range cs.Curves {
		fmt.Fprintf(&b, "%16s", c.Algorithm)
	}
	b.WriteString("\n")
	maxPts := 0
	for _, c := range cs.Curves {
		if len(c.Points) > maxPts {
			maxPts = len(c.Points)
		}
	}
	crit := sim.DefaultCriterion()
	for i := 0; i < maxPts; i++ {
		var rate float64
		for _, c := range cs.Curves {
			if i < len(c.Points) {
				rate = c.Points[i].Rate
				break
			}
		}
		fmt.Fprintf(&b, "%-8.2f", rate)
		for _, c := range cs.Curves {
			if i >= len(c.Points) {
				fmt.Fprintf(&b, "%16s", "sat")
				continue
			}
			r := c.Points[i].Result
			zero := c.Points[0].Result.AvgLatency(flit.ClassBackground)
			if crit.Saturated(r, zero) {
				fmt.Fprintf(&b, "%16s", "sat")
			} else {
				fmt.Fprintf(&b, "%16.1f", r.AvgLatency(flit.ClassBackground))
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s", "satTP")
	for _, c := range cs.Curves {
		fmt.Fprintf(&b, "%16.3f", SaturationFromCurve(c))
	}
	b.WriteString("\n")
	return b.String()
}

// Figure5 regenerates one panel of Figure 5: latency-throughput curves of
// all seven algorithms under the named pattern with single-flit packets.
func Figure5(p Profile, pattern string) (CurveSet, error) {
	return curveSet(p, "Figure 5", pattern, traffic.FixedSize(1), SyntheticAlgorithms())
}

// Figure6 regenerates one panel of Figure 6: as Figure 5 with packet
// sizes uniform in 1..6 flits.
func Figure6(p Profile, pattern string) (CurveSet, error) {
	return curveSet(p, "Figure 6", pattern, traffic.UniformSize(1, 6), SyntheticAlgorithms())
}

// curveSet fans the figure's algorithms out to the worker pool — one
// curve per worker — while each curve's rates stay sequential: the
// early-exit below needs the previous points' saturation verdicts, and
// a bisection-free curve is cheap enough that curve-level parallelism
// already covers the grid.
func curveSet(p Profile, figure, pattern string, size traffic.SizeFn, algs []string) (CurveSet, error) {
	crit := sim.DefaultCriterion()
	cs := CurveSet{Figure: figure, Pattern: pattern}
	if p.Monitor != nil {
		p.Monitor.AddPlan(len(algs) * len(p.Rates))
	}
	curves, err := sim.Map(p.Jobs, len(algs), func(i int) (Curve, error) {
		alg := algs[i]
		cfg := p.BaseConfig()
		cfg.Algorithm = alg
		var pts []sim.SweepPoint
		var zero float64
		saturated := 0
		cfg.RunLabel = fmt.Sprintf("%s %s/%s", figure, pattern, alg)
		for _, rate := range p.Rates {
			sub, err := sim.LatencyThroughputJobs(cfg, pattern, size, []float64{rate}, 1)
			if err != nil {
				return Curve{}, fmt.Errorf("exp: %s %s/%s: %w", figure, pattern, alg, err)
			}
			pt := sub[0]
			pts = append(pts, pt)
			if zero == 0 {
				zero = pt.Result.AvgLatency(flit.ClassBackground)
			}
			// Deeply saturated points cost a full drain budget each and
			// add nothing to the curve: stop after two in a row.
			if crit.Saturated(pt.Result, zero) {
				if saturated++; saturated >= 2 {
					break
				}
			} else {
				saturated = 0
			}
		}
		if p.Monitor != nil && len(pts) < len(p.Rates) {
			// The early-exit trimmed this curve; the skipped rates will
			// never run, so shrink the plan to keep grid progress honest.
			p.Monitor.AddPlan(len(pts) - len(p.Rates))
		}
		return Curve{Algorithm: alg, Points: pts}, nil
	})
	if err != nil {
		return CurveSet{}, err
	}
	cs.Curves = curves
	return cs, nil
}

// VCSweepPoint is one bar of Figure 7: saturation throughput at a VC
// count.
type VCSweepPoint struct {
	VCs        int
	Throughput map[string]float64 // algorithm -> flits/node/cycle
}

// VCSweep is one panel of Figure 7.
type VCSweep struct {
	Pattern string
	Points  []VCSweepPoint
}

// Format renders the panel with Footprint's gain over DBAR per VC count.
func (v VCSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — %s traffic (saturation throughput, flits/node/cycle)\n", v.Pattern)
	fmt.Fprintf(&b, "%-6s %12s %12s %8s\n", "VCs", "footprint", "dbar", "gain")
	for _, pt := range v.Points {
		fp, db := pt.Throughput["footprint"], pt.Throughput["dbar"]
		gain := stats.Ratio(fp-db, db) * 100
		fmt.Fprintf(&b, "%-6d %12.3f %12.3f %+7.1f%%\n", pt.VCs, fp, db, gain)
	}
	return b.String()
}

// Figure7 regenerates one panel of Figure 7: Footprint vs DBAR saturation
// throughput as the VC count varies. Every (VC count, algorithm) cell is
// an independent bisection; the grid runs in parallel across cells while
// each bisection stays sequential internally.
func Figure7(p Profile, pattern string, vcCounts []int) (VCSweep, error) {
	if vcCounts == nil {
		vcCounts = []int{2, 4, 8, 16}
	}
	algs := []string{"footprint", "dbar"}
	tps, err := sim.Map(p.Jobs, len(vcCounts)*len(algs), func(i int) (float64, error) {
		vcs, alg := vcCounts[i/len(algs)], algs[i%len(algs)]
		cfg := p.BaseConfig()
		cfg.Algorithm = alg
		cfg.VCs = vcs
		cfg.RunLabel = fmt.Sprintf("Figure 7 %s/%s vcs=%d", pattern, alg, vcs)
		sr, err := sim.SaturationThroughput(cfg, pattern, traffic.FixedSize(1), p.Tol)
		if err != nil {
			return 0, err
		}
		return sr.Throughput, nil
	})
	if err != nil {
		return VCSweep{}, err
	}
	out := VCSweep{Pattern: pattern}
	for vi, vcs := range vcCounts {
		pt := VCSweepPoint{VCs: vcs, Throughput: map[string]float64{}}
		for ai, alg := range algs {
			pt.Throughput[alg] = tps[vi*len(algs)+ai]
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// ScalePoint is one bar group of Figure 8.
type ScalePoint struct {
	Width, Height int
	Pattern       string
	Throughput    map[string]float64
	// DBARNormalized is DBAR's saturation throughput divided by
	// Footprint's, the quantity Figure 8 plots.
	DBARNormalized float64
}

// ScaleStudy is the whole of Figure 8.
type ScaleStudy struct{ Points []ScalePoint }

// Format renders Figure 8's normalized bars.
func (s ScaleStudy) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8 — DBAR throughput normalized to Footprint\n")
	fmt.Fprintf(&b, "%-8s %-10s %12s %12s %12s\n", "mesh", "pattern", "footprint", "dbar", "dbar/fp")
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%dx%-6d %-10s %12.3f %12.3f %12.2f\n",
			pt.Width, pt.Height, pt.Pattern,
			pt.Throughput["footprint"], pt.Throughput["dbar"], pt.DBARNormalized)
	}
	return b.String()
}

// Figure8 regenerates Figure 8: saturation throughput of DBAR normalized
// to Footprint on 4×4 and 16×16 meshes (VC count held at the baseline).
// The (mesh, pattern, algorithm) cells bisect independently in parallel.
func Figure8(p Profile, sizes [][2]int) (ScaleStudy, error) {
	if sizes == nil {
		sizes = [][2]int{{4, 4}, {16, 16}}
	}
	patterns := SyntheticPatterns()
	algs := []string{"footprint", "dbar"}
	type cell struct {
		wh      [2]int
		pattern string
		alg     string
	}
	var cells []cell
	for _, wh := range sizes {
		for _, pattern := range patterns {
			for _, alg := range algs {
				cells = append(cells, cell{wh, pattern, alg})
			}
		}
	}
	tps, err := sim.Map(p.Jobs, len(cells), func(i int) (float64, error) {
		c := cells[i]
		cfg := p.BaseConfig()
		cfg.Algorithm = c.alg
		cfg.Width, cfg.Height = c.wh[0], c.wh[1]
		cfg.RunLabel = fmt.Sprintf("Figure 8 %s/%s %dx%d", c.pattern, c.alg, c.wh[0], c.wh[1])
		sr, err := sim.SaturationThroughput(cfg, c.pattern, traffic.FixedSize(1), p.Tol)
		if err != nil {
			return 0, err
		}
		return sr.Throughput, nil
	})
	if err != nil {
		return ScaleStudy{}, err
	}
	var out ScaleStudy
	i := 0
	for _, wh := range sizes {
		for _, pattern := range patterns {
			pt := ScalePoint{Width: wh[0], Height: wh[1], Pattern: pattern, Throughput: map[string]float64{}}
			for _, alg := range algs {
				pt.Throughput[alg] = tps[i]
				i++
			}
			pt.DBARNormalized = stats.Ratio(pt.Throughput["dbar"], pt.Throughput["footprint"])
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// HotspotStudy is Figure 9: one background-latency curve per algorithm.
type HotspotStudy struct {
	BackgroundRate float64
	Rates          []float64
	Curves         map[string][]sim.HotspotPoint
}

// Format renders Figure 9's two curves side by side.
func (h HotspotStudy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — background latency vs hotspot injection rate (background %.0f%%)\n", h.BackgroundRate*100)
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "hotRate", "footprint", "dbar")
	for i, r := range h.Rates {
		row := func(alg string) string {
			p := h.Curves[alg][i]
			if !p.Stable {
				return "sat"
			}
			return fmt.Sprintf("%.1f", p.BackgroundLatency)
		}
		fmt.Fprintf(&b, "%-10.2f %14s %14s\n", r, row("footprint"), row("dbar"))
	}
	return b.String()
}

// Figure9 regenerates Figure 9 with Table 3's hotspot flows and uniform
// background traffic at bgRate.
func Figure9(p Profile, bgRate float64, rates []float64) (HotspotStudy, error) {
	if rates == nil {
		rates = rateGrid(0.05, 0.65, 0.05)
	}
	out := HotspotStudy{BackgroundRate: bgRate, Rates: rates, Curves: map[string][]sim.HotspotPoint{}}
	if p.Monitor != nil {
		p.Monitor.AddPlan(2 * len(rates))
	}
	// Flatten the (algorithm × rate) grid so every cell is one independent
	// run; nesting HotspotCurveJobs inside a parallel algorithm loop would
	// oversubscribe the worker budget.
	algs := []string{"footprint", "dbar"}
	pts, err := sim.Map(p.Jobs, len(algs)*len(rates), func(i int) (sim.HotspotPoint, error) {
		alg, rate := algs[i/len(rates)], rates[i%len(rates)]
		cfg := p.BaseConfig()
		cfg.Algorithm = alg
		cfg.RunLabel = fmt.Sprintf("Figure 9 %s bg=%.2f", alg, bgRate)
		return sim.HotspotRun(cfg, bgRate, rate)
	})
	if err != nil {
		return HotspotStudy{}, err
	}
	for ai, alg := range algs {
		out.Curves[alg] = pts[ai*len(rates) : (ai+1)*len(rates)]
	}
	return out, nil
}
