package exp

import (
	"io"
	"sync"
	"testing"

	"nocsim/internal/obs"
)

// TestCurveSetDeterministicAcrossJobs is the harness-level golden test:
// a whole figure's curve set formats identically whether the grid ran
// serially or on the worker pool (the saturation early-exit trimming
// included).
func TestCurveSetDeterministicAcrossJobs(t *testing.T) {
	algs := []string{"footprint", "dbar", "dor"}

	p := tinyProfile()
	p.Jobs = 1
	serial, err := curveSet(p, "Figure 5", "uniform", nil, algs)
	if err != nil {
		t.Fatal(err)
	}
	p.Jobs = 4
	par, err := curveSet(p, "Figure 5", "uniform", nil, algs)
	if err != nil {
		t.Fatal(err)
	}
	if s, g := serial.Format(), par.Format(); s != g {
		t.Errorf("curve set differs at jobs=1 vs jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", s, g)
	}
}

// TestFigure10DeterministicAcrossJobs covers the trace harness: per-run
// trace generation and simulation seeds must make the paired-workload
// study independent of the worker count.
func TestFigure10DeterministicAcrossJobs(t *testing.T) {
	pairs := [][2]string{{"x264", "canneal"}}

	p := tinyProfile()
	p.Jobs = 1
	serial, err := Figure10(p, pairs)
	if err != nil {
		t.Fatal(err)
	}
	p.Jobs = 4
	par, err := Figure10(p, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if s, g := serial.Format(), par.Format(); s != g {
		t.Errorf("Figure 10 differs at jobs=1 vs jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", s, g)
	}
}

// TestParallelSweepMonitorRace runs a monitored figure on the worker
// pool while scraper goroutines hit the hub the way the HTTP handlers
// do. Under -race this proves the whole path — parallel run
// registration, heartbeats, plan accounting, per-run labels — is clean.
func TestParallelSweepMonitorRace(t *testing.T) {
	hub := obs.NewHub()
	p := tinyProfile()
	p.Jobs = 4
	p.Monitor = hub

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := hub.WriteStatus(io.Discard); err != nil {
					t.Errorf("WriteStatus: %v", err)
					return
				}
				if err := hub.WriteMetrics(io.Discard); err != nil {
					t.Errorf("WriteMetrics: %v", err)
					return
				}
			}
		}()
	}

	cs, err := curveSet(p, "Figure 5", "uniform", nil, []string{"footprint", "dbar", "dor", "oddeven"})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Curves) != 4 {
		t.Fatalf("curves = %d", len(cs.Curves))
	}

	st := hub.Status()
	if st.Active != 0 {
		t.Errorf("active runs = %d after the sweep finished", st.Active)
	}
	if st.Completed == 0 {
		t.Error("no completed runs reported")
	}
	// Every run of the sweep must carry a distinct, rate-tagged label —
	// the shared-config mutation this engine replaced used to clobber
	// them.
	seen := map[string]int{}
	for _, r := range st.Runs {
		seen[r.Label]++
	}
	for label, n := range seen {
		if n > 1 {
			t.Errorf("label %q used by %d runs; per-run identity must be unique", label, n)
		}
	}
}
