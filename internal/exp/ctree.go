package exp

import (
	"fmt"
	"strings"

	"nocsim/internal/sim"
	"nocsim/internal/traffic"
)

// TreeAnatomy is one algorithm's congestion-tree shape in the Section 2
// example (Figure 2): the tree rooted at the oversubscribed endpoint n13
// of a 4×4 mesh under the four-flow permutation.
type TreeAnatomy struct {
	Algorithm string
	Endpoint  sim.AverageTree
}

// TreeStudy is the Figure 2 comparison across algorithms.
type TreeStudy struct {
	Algorithms []TreeAnatomy
}

// Format renders Figure 2's qualitative comparison quantitatively: number
// of branches, total VCs and branch thickness of the endpoint congestion
// tree.
func (t TreeStudy) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2 — endpoint congestion tree at n13 (4x4 mesh, 4 VCs, Section 2 flows)\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %14s\n", "algorithm", "branches", "VCs", "max thickness")
	for _, ta := range t.Algorithms {
		fmt.Fprintf(&b, "%-16s %10.1f %10.1f %14.1f\n",
			ta.Algorithm, ta.Endpoint.Links, ta.Endpoint.VCs, ta.Endpoint.MaxThickness)
	}
	return b.String()
}

// Figure2 reruns the Section 2 example: flows n0→n10, n1→n15 (network
// congestion on the top row) and n4→n13, n12→n13 (endpoint congestion at
// n13), plus light uniform background so the spreading behaviour of each
// algorithm is visible, with time-averaged congestion-tree shapes.
func Figure2(p Profile, algorithms []string) (TreeStudy, error) {
	if algorithms == nil {
		algorithms = []string{"dor", "dbar", "dor+xordet", "footprint"}
	}
	anatomies, err := sim.Map(p.Jobs, len(algorithms), func(i int) (TreeAnatomy, error) {
		alg := algorithms[i]
		cfg := p.BaseConfig()
		cfg.Width, cfg.Height = 4, 4
		cfg.VCs = 4
		cfg.Algorithm = alg
		// One shared seed key: every algorithm sees the same traffic.
		cfg = sim.Identify(cfg, "Figure 2 "+alg, "figure2").Apply(cfg)

		flows := traffic.Permutation{Label: "sec2", Flows: map[int]int{
			0: 10, 1: 15, 4: 13, 12: 13,
		}}
		hot := &traffic.Generator{Nodes: []int{0, 1, 4, 12}, Pattern: flows, Rate: 0.9}
		bg := &traffic.Generator{
			Nodes:   []int{2, 3, 5, 6, 7, 8, 9, 11, 14},
			Pattern: traffic.Uniform{Nodes: 16},
			Rate:    0.1,
		}
		s, err := sim.New(cfg, hot, bg)
		if err != nil {
			return TreeAnatomy{}, err
		}
		sampler := sim.NewTreeSampler(13)
		warm := p.Warmup
		total := warm + p.Measure
		for c := int64(0); c < total; c++ {
			s.Step()
			if c >= warm {
				sampler.Sample(s.Network())
			}
		}
		return TreeAnatomy{Algorithm: alg, Endpoint: sampler.Average()}, nil
	})
	if err != nil {
		return TreeStudy{}, err
	}
	return TreeStudy{Algorithms: anatomies}, nil
}
