package exp

import (
	"fmt"
	"strings"

	"nocsim/internal/flit"
	"nocsim/internal/sim"
	"nocsim/internal/stats"
	"nocsim/internal/trace"
)

// PairResult is one bar of Figure 10(a): the latency of Footprint versus
// DBAR when two PARSEC workloads run simultaneously.
type PairResult struct {
	A, B      string
	Latency   map[string]float64 // algorithm -> mean packet latency
	DeltaPct  float64            // (dbar - footprint) / dbar * 100
	Delivered map[string]int64
}

// WorkloadMetrics is one bar of Figures 10(b) and 10(c): per-application
// purity of blocking and degree of HoL blocking, per algorithm.
type WorkloadMetrics struct {
	Name      string
	Purity    map[string]float64
	HoLDegree map[string]float64
}

// TraceStudy is the whole of Figure 10.
type TraceStudy struct {
	Pairs       []PairResult
	PerWorkload []WorkloadMetrics
}

// DefaultPairs lists the workload combinations reported here, including
// the pairs the paper calls out by name (X264+Canneal as the single case
// DBAR edges ahead; Fluidanimate combinations as the biggest gains).
func DefaultPairs() [][2]string {
	return [][2]string{
		{"blackscholes", "bodytrack"},
		{"bodytrack", "canneal"},
		{"canneal", "dedup"},
		{"dedup", "ferret"},
		{"ferret", "fluidanimate"},
		{"fluidanimate", "vips"},
		{"vips", "x264"},
		{"x264", "canneal"},
		{"fluidanimate", "x264"},
		{"bodytrack", "fluidanimate"},
	}
}

// traceAlgorithms are the two algorithms Figure 10 compares.
var traceAlgorithms = []string{"footprint", "dbar"}

// RunTracePair replays the merged traces of two workloads under one
// algorithm and returns the simulation result. seed drives trace
// generation; the simulation's own seed is derived from the run identity
// so parallel grid cells never share RNG state.
func RunTracePair(p Profile, alg, a, b string, seed int64) (*sim.Result, error) {
	wa, err := trace.WorkloadByName(a)
	if err != nil {
		return nil, err
	}
	cfg := p.BaseConfig()
	cfg.Algorithm = alg
	var label string
	if b != "" {
		label = fmt.Sprintf("Figure 10 %s+%s/%s", a, b, alg)
	} else {
		label = fmt.Sprintf("Figure 10 %s/%s", a, alg)
	}
	// The seed key names the workload cell, not the algorithm, so both
	// algorithms of a Figure 10 bar replay against the same arbitration
	// coin flips (trace generation already shares seed explicitly).
	cfg = sim.Identify(cfg, label,
		fmt.Sprintf("trace/%s+%s/seed=%d", a, b, seed)).Apply(cfg)
	mesh := cfg.Mesh()
	ta := trace.Generate(wa, mesh, p.TraceCycles, seed)
	var merged []trace.Record
	if b != "" {
		wb, err := trace.WorkloadByName(b)
		if err != nil {
			return nil, err
		}
		// The secondary workload gets its own derived stream: seed+1
		// would collide with the next sweep point's base seed.
		tb := trace.Generate(wb, mesh, p.TraceCycles, sim.DeriveSeed(seed, "trace/secondary/"+b))
		merged = trace.Merge(ta, tb)
	} else {
		merged = ta
	}
	// Trace mode measures every packet: no warmup, the window covers the
	// trace, and the drain budget lets dependency chains unwind.
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = p.TraceCycles
	cfg.DrainCycles = 4 * p.TraceCycles
	s, err := sim.New(cfg, trace.NewPlayer(merged))
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// Figure10 regenerates Figure 10: paired-workload latency comparison (a)
// and per-application purity (b) and HoL degree (c). The (pair ×
// algorithm) and (workload × algorithm) grids run in parallel on the
// profile's worker budget; trace generation and simulation seeds are
// per-run, so the study is identical at any Jobs value.
func Figure10(p Profile, pairs [][2]string) (TraceStudy, error) {
	if pairs == nil {
		pairs = DefaultPairs()
	}
	nalg := len(traceAlgorithms)
	pairRes, err := sim.Map(p.Jobs, len(pairs)*nalg, func(i int) (*sim.Result, error) {
		pair, alg := pairs[i/nalg], traceAlgorithms[i%nalg]
		return RunTracePair(p, alg, pair[0], pair[1], 1000)
	})
	if err != nil {
		return TraceStudy{}, err
	}
	var study TraceStudy
	for pi, pair := range pairs {
		pr := PairResult{A: pair[0], B: pair[1],
			Latency: map[string]float64{}, Delivered: map[string]int64{}}
		for ai, alg := range traceAlgorithms {
			res := pairRes[pi*nalg+ai]
			pr.Latency[alg] = res.AvgLatency(flit.ClassBackground)
			pr.Delivered[alg] = res.MeasuredEjected
		}
		db := pr.Latency["dbar"]
		pr.DeltaPct = stats.Ratio(db-pr.Latency["footprint"], db) * 100
		study.Pairs = append(study.Pairs, pr)
	}
	// Per-workload blocking metrics (Figures 10b, 10c) from solo runs over
	// the distinct workloads, in first-appearance order.
	seen := map[string]bool{}
	var names []string
	for _, pair := range pairs {
		for _, name := range []string{pair[0], pair[1]} {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	soloRes, err := sim.Map(p.Jobs, len(names)*nalg, func(i int) (*sim.Result, error) {
		name, alg := names[i/nalg], traceAlgorithms[i%nalg]
		return RunTracePair(p, alg, name, "", 2000)
	})
	if err != nil {
		return TraceStudy{}, err
	}
	for ni, name := range names {
		wm := WorkloadMetrics{Name: name,
			Purity: map[string]float64{}, HoLDegree: map[string]float64{}}
		for ai, alg := range traceAlgorithms {
			res := soloRes[ni*nalg+ai]
			wm.Purity[alg] = res.Purity
			wm.HoLDegree[alg] = res.HoLDegree
		}
		study.PerWorkload = append(study.PerWorkload, wm)
	}
	return study, nil
}

// Format renders the three panels of Figure 10.
func (ts TraceStudy) Format() string {
	var b strings.Builder
	b.WriteString("Figure 10(a) — PARSEC-substitute pairs, mean packet latency\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %10s\n", "pair", "footprint", "dbar", "fp gain")
	for _, pr := range ts.Pairs {
		fmt.Fprintf(&b, "%-28s %12.1f %12.1f %+9.1f%%\n",
			pr.A+"+"+pr.B, pr.Latency["footprint"], pr.Latency["dbar"], pr.DeltaPct)
	}
	b.WriteString("\nFigure 10(b) — purity of blocking (higher = less HoL)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s\n", "workload", "footprint", "dbar", "fp gain")
	for _, wm := range ts.PerWorkload {
		gain := stats.Ratio(wm.Purity["footprint"]-wm.Purity["dbar"], wm.Purity["dbar"]) * 100
		fmt.Fprintf(&b, "%-16s %12.3f %12.3f %+9.1f%%\n",
			wm.Name, wm.Purity["footprint"], wm.Purity["dbar"], gain)
	}
	b.WriteString("\nFigure 10(c) — degree of HoL blocking (impurity x blocks /1k packets)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s\n", "workload", "footprint", "dbar")
	for _, wm := range ts.PerWorkload {
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f\n",
			wm.Name, wm.HoLDegree["footprint"], wm.HoLDegree["dbar"])
	}
	return b.String()
}
