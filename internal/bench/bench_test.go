package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"nocsim/internal/obs"
)

func TestParseLine(t *testing.T) {
	b, ok := ParseLine("BenchmarkFigure5Uniform-8   1   33743302142 ns/op   0.3994 footprint-satTP   3747970128 B/op   59421060 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "Figure5Uniform" || b.Iterations != 1 {
		t.Fatalf("name/iters = %q/%d", b.Name, b.Iterations)
	}
	if b.NsPerOp != 33743302142 || b.BytesPerOp != 3747970128 || b.AllocsPerOp != 59421060 {
		t.Fatalf("std units wrong: %+v", b)
	}
	if b.Metrics["footprint-satTP"] != 0.3994 {
		t.Fatalf("custom metric wrong: %+v", b.Metrics)
	}
}

func TestParseLineSubBench(t *testing.T) {
	b, ok := ParseLine("BenchmarkObsOverhead/disabled-4  1  149685155 ns/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "ObsOverhead/disabled" {
		t.Fatalf("name = %q, want ObsOverhead/disabled", b.Name)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tnocsim\t1.2s",
		"BenchmarkBroken-8 notanint 5 ns/op",
		"",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("parsed noise line %q", line)
		}
	}
}

func TestDegenerate(t *testing.T) {
	cases := []struct {
		name string
		p    ParallelSweep
		want bool
	}{
		{"explicit flag", ParallelSweep{SpeedupDegenerate: true}, true},
		{"gomaxprocs below jobs", ParallelSweep{GOMAXPROCS: 1, CPUs: 1, Jobs: 4}, true},
		{"gomaxprocs covers jobs", ParallelSweep{GOMAXPROCS: 8, CPUs: 8, Jobs: 4}, false},
		{"legacy report, 1 cpu", ParallelSweep{CPUs: 1, Jobs: 4}, true},
		{"legacy report, enough cpus", ParallelSweep{CPUs: 8, Jobs: 4}, false},
		{"serial run", ParallelSweep{GOMAXPROCS: 1, CPUs: 1, Jobs: 1}, false},
	}
	for _, c := range cases {
		if got := c.p.Degenerate(); got != c.want {
			t.Errorf("%s: Degenerate() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNextAndLatest(t *testing.T) {
	dir := t.TempDir()
	if got, want := NextPath(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Fatalf("empty dir NextPath = %q, want %q", got, want)
	}
	for _, n := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_3.json", "notes.txt"} {
		if err := Write(filepath.Join(dir, n), &Report{}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := NextPath(dir), filepath.Join(dir, "BENCH_11.json"); got != want {
		t.Fatalf("NextPath = %q, want %q", got, want)
	}
	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); latest != want {
		t.Fatalf("Latest = %q, want %q", latest, want)
	}
	old, newest, err := LatestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if wantOld := filepath.Join(dir, "BENCH_3.json"); old != wantOld || newest != latest {
		t.Fatalf("LatestPair = (%q, %q), want (%q, %q)", old, newest, wantOld, latest)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	in := &Report{
		GoVersion: "go1.24.0",
		Engine: Engine{
			CyclesPerSec: 8000,
			Profile: &obs.PerfProfile{
				SampleEvery:   64,
				SampledCycles: 19,
				Phases:        []obs.PhaseStats{{Phase: "vc-alloc", Nanos: 123, TimeShare: 0.5}},
			},
		},
		Parallel:   ParallelSweep{CPUs: 1, GOMAXPROCS: 1, Jobs: 4, SpeedupDegenerate: true, Identical: true},
		Benchmarks: []Bench{{Name: "X", Iterations: 1, NsPerOp: 5}},
	}
	if err := Write(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Engine.Profile == nil || out.Engine.Profile.Phases[0].Phase != "vc-alloc" {
		t.Fatalf("profile did not round-trip: %+v", out.Engine)
	}
	if !out.Parallel.Degenerate() {
		t.Fatal("degenerate flag lost in round trip")
	}
}

// TestCompare exercises the gate across its verdict space: within
// budget, regressed, improved, hard-broken determinism and a dropped
// benchmark.
func TestCompare(t *testing.T) {
	base := &Report{
		Engine: Engine{CyclesPerSec: 8000, HeapAllocs: 200000, HeapAllocBytes: 13000000},
		Parallel: ParallelSweep{
			CPUs: 1, GOMAXPROCS: 1, Jobs: 4, Runs: 21,
			Speedup: 0.98, SpeedupDegenerate: true, Identical: true,
		},
		Benchmarks: []Bench{{Name: "Table2Config", NsPerOp: 1.5e8, BytesPerOp: 1.4e7, AllocsPerOp: 224818}},
	}
	tol := DefaultTolerances()

	clone := func() *Report {
		c := *base
		c.Benchmarks = append([]Bench(nil), base.Benchmarks...)
		return &c
	}

	t.Run("identical passes", func(t *testing.T) {
		c := Compare(base, clone(), tol)
		if !c.OK() {
			t.Fatalf("identical reports should pass: %+v", c.Regressions())
		}
	})

	t.Run("alloc growth beyond budget regresses", func(t *testing.T) {
		n := clone()
		n.Engine.HeapAllocs = uint64(float64(base.Engine.HeapAllocs) * 1.2)
		c := Compare(base, n, tol)
		if c.OK() {
			t.Fatal("20% alloc growth should fail a 10% budget")
		}
		regs := c.Regressions()
		if len(regs) != 1 || regs[0].Metric != "engine heap allocs" {
			t.Fatalf("regressions = %+v", regs)
		}
	})

	t.Run("alloc growth within budget passes", func(t *testing.T) {
		n := clone()
		n.Engine.HeapAllocs = uint64(float64(base.Engine.HeapAllocs) * 1.05)
		if c := Compare(base, n, tol); !c.OK() {
			t.Fatalf("5%% growth should pass a 10%% budget: %+v", c.Regressions())
		}
	})

	t.Run("cycles drop beyond budget regresses", func(t *testing.T) {
		n := clone()
		n.Engine.CyclesPerSec = base.Engine.CyclesPerSec * 0.5
		if c := Compare(base, n, tol); c.OK() {
			t.Fatal("halved cycles/s should fail a 25% budget")
		}
	})

	t.Run("cycles improvement passes", func(t *testing.T) {
		n := clone()
		n.Engine.CyclesPerSec = base.Engine.CyclesPerSec * 2
		if c := Compare(base, n, tol); !c.OK() {
			t.Fatalf("faster engine should pass: %+v", c.Regressions())
		}
	})

	t.Run("ns/op is informational", func(t *testing.T) {
		n := clone()
		n.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 10
		if c := Compare(base, n, tol); !c.OK() {
			t.Fatalf("ns/op must never gate: %+v", c.Regressions())
		}
	})

	t.Run("lost determinism is broken", func(t *testing.T) {
		n := clone()
		n.Parallel.Identical = false
		c := Compare(base, n, tol)
		if c.OK() || len(c.Broken) != 1 {
			t.Fatalf("lost determinism must hard-fail: broken=%v", c.Broken)
		}
	})

	t.Run("dropped benchmark is broken", func(t *testing.T) {
		n := clone()
		n.Benchmarks = nil
		c := Compare(base, n, tol)
		if c.OK() || len(c.Broken) != 1 {
			t.Fatalf("dropped benchmark must hard-fail: broken=%v", c.Broken)
		}
	})
}

func TestCompareRendering(t *testing.T) {
	oldR := &Report{Engine: Engine{CyclesPerSec: 8000, HeapAllocs: 100}}
	newR := &Report{
		Engine: Engine{
			CyclesPerSec: 7900, HeapAllocs: 150,
			Profile: &obs.PerfProfile{
				SampleEvery: 64, SampledCycles: 10,
				Phases: []obs.PhaseStats{{Phase: "vc-alloc", Nanos: 5e6, TimeShare: 0.5, AllocBytes: 2048, Allocs: 7}},
				GC:     obs.GCStats{NumGC: 2, PauseTotalNanos: 1e6},
			},
		},
		Parallel: ParallelSweep{CPUs: 1, GOMAXPROCS: 1, Jobs: 4, SpeedupDegenerate: true},
	}
	c := Compare(oldR, newR, DefaultTolerances())
	c.OldPath, c.NewPath = "BENCH_1.json", "BENCH_2.json"

	var text strings.Builder
	c.WriteText(&text)
	if !strings.Contains(text.String(), "engine heap allocs") || !strings.Contains(text.String(), "REGRESSED") {
		t.Fatalf("text output missing expected rows:\n%s", text.String())
	}

	var md strings.Builder
	c.WriteMarkdown(&md, newR)
	for _, want := range []string{"| engine cycles/s |", "vc-alloc", "degenerate"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
	if s := c.Summary(); !strings.Contains(s, "FAIL") {
		t.Fatalf("summary = %q, want FAIL", s)
	}
}
