// Package bench defines the BENCH_<n>.json performance-trajectory
// schema shared by cmd/benchjson (the writer) and cmd/perfgate (the
// regression gate): parsed go-test benchmark lines, the engine
// reference run with its cycle-loop phase profile, and the
// parallel-sweep reference with degenerate-host detection. Keeping the
// schema in one package means the gate can never drift from the writer.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"nocsim/internal/obs"
	"nocsim/internal/routing"
)

// Report is one BENCH_<n>.json document.
type Report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	BenchRegexp string        `json:"bench_regexp"`
	BenchTime   string        `json:"bench_time"`
	Engine      Engine        `json:"engine"`
	Parallel    ParallelSweep `json:"parallel_sweep"`
	Benchmarks  []Bench       `json:"benchmarks"`
}

// Engine is a fixed reference run of the simulation engine (Table 2
// baseline, uniform traffic at 0.3 flits/node/cycle, quick profile) —
// the simulator's own speed, independent of benchmark iteration counts.
type Engine struct {
	Cycles         int64   `json:"cycles"`
	WallSeconds    float64 `json:"wall_seconds"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitHops       int64   `json:"flit_hops"`
	FlitHopsPerSec float64 `json:"flit_hops_per_sec"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapAllocs     uint64  `json:"heap_allocs"`
	// Profile is the cycle-loop phase profile of the reference run:
	// per-phase time/allocation breakdown plus GC pause and heap-growth
	// accounting. Absent in reports written before the profiler existed.
	Profile *obs.PerfProfile `json:"profile,omitempty"`
	// RouteCache is the route-decision cache account of the reference
	// run: hit/miss/eviction/draw-replay counters. Absent in reports
	// written before the cache existed or when it is disabled. Gates
	// treat these fields as informational, never pass/fail.
	RouteCache *routing.CacheStats `json:"route_cache,omitempty"`
}

// ParallelSweep is a fixed reference sweep (Figure 5, uniform traffic,
// reduced rate grid) run twice — serially, then on the -jobs worker
// pool — recording the wall-clock ratio and whether the two sweeps
// formatted identically (the engine's determinism guarantee).
type ParallelSweep struct {
	CPUs int `json:"cpus"`
	// GOMAXPROCS is the scheduler's parallelism bound at run time
	// (0 in reports written before it was recorded; CPUs then stands
	// in). EffectiveJobs = min(Jobs, GOMAXPROCS) is the parallelism the
	// pool can actually realize.
	GOMAXPROCS    int `json:"gomaxprocs,omitempty"`
	Jobs          int `json:"jobs"`
	EffectiveJobs int `json:"effective_jobs,omitempty"`

	Runs            int     `json:"runs"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// SpeedupDegenerate marks Speedup as meaningless: the host cannot
	// schedule Jobs workers in parallel (GOMAXPROCS < Jobs), so the
	// ratio measures pool bookkeeping on a time-sliced CPU, not
	// parallel scaling. Gates skip degenerate speedups.
	SpeedupDegenerate bool `json:"speedup_degenerate,omitempty"`
	Identical         bool `json:"identical"`
}

// Degenerate reports whether the sweep's speedup is meaningless because
// the host could not run its workers in parallel. Reports written
// before GOMAXPROCS was recorded fall back to the CPU count.
func (p ParallelSweep) Degenerate() bool {
	if p.SpeedupDegenerate {
		return true
	}
	gm := p.GOMAXPROCS
	if gm == 0 {
		gm = p.CPUs
	}
	return p.Jobs > 1 && gm < p.Jobs
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric units (satTP, latency
	// cycles, cycles/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ParseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   3   123456 ns/op   4.5 custom-unit   67 B/op   8 allocs/op
func ParseLine(line string) (*Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, keeping sub-benchmark slashes.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		name = name[:i]
	}
	b := &Bench{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// fileRe matches trajectory reports.
var fileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// list returns the BENCH_<n>.json files of dir sorted by n ascending.
func list(dir string) ([]string, []int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type numbered struct {
		name string
		n    int
	}
	var found []numbered
	for _, e := range entries {
		m := fileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, numbered{e.Name(), n})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	names := make([]string, len(found))
	nums := make([]int, len(found))
	for i, f := range found {
		names[i] = filepath.Join(dir, f.name)
		nums[i] = f.n
	}
	return names, nums, nil
}

// NextPath returns BENCH_<n>.json for the smallest n greater than every
// existing report in dir.
func NextPath(dir string) string {
	next := 1
	if _, nums, err := list(dir); err == nil {
		for _, n := range nums {
			if n >= next {
				next = n + 1
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
}

// Latest returns the highest-numbered report path in dir.
func Latest(dir string) (string, error) {
	names, _, err := list(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("bench: no BENCH_<n>.json in %s", dir)
	}
	return names[len(names)-1], nil
}

// LatestPair returns the two highest-numbered report paths in dir:
// (predecessor, newest).
func LatestPair(dir string) (old, newest string, err error) {
	names, _, err := list(dir)
	if err != nil {
		return "", "", err
	}
	if len(names) < 2 {
		return "", "", fmt.Errorf("bench: need two BENCH_<n>.json in %s to compare, have %d", dir, len(names))
	}
	return names[len(names)-2], names[len(names)-1], nil
}

// Load reads one report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}

// Write stores the report as indented JSON at path.
func Write(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
