package bench

import (
	"fmt"
	"io"
	"strings"
)

// Tolerances are the fractional regression budgets of the perf gate.
// Each metric may be worse than the predecessor by up to its tolerance;
// beyond that the comparison reports a regression. Wall-clock metrics
// (cycles/s) need wide budgets — CI hosts differ from the machines that
// generated committed reports — while allocation counts are
// machine-independent and gate tightly.
type Tolerances struct {
	// CyclesPerSec is the allowed fractional drop in engine cycles/s
	// (lower is worse).
	CyclesPerSec float64
	// Allocs is the allowed fractional growth in engine heap
	// allocations and benchmark allocs/op (higher is worse).
	Allocs float64
	// Bytes is the allowed fractional growth in engine heap bytes and
	// benchmark B/op (higher is worse).
	Bytes float64
}

// DefaultTolerances suit a local same-machine comparison: generous on
// wall clock, tight on allocation counts.
func DefaultTolerances() Tolerances {
	return Tolerances{CyclesPerSec: 0.25, Allocs: 0.10, Bytes: 0.10}
}

// Delta is one gated metric comparison.
type Delta struct {
	Metric string  // e.g. "engine cycles/s", "Figure5Uniform allocs/op"
	Old    float64 // predecessor value
	New    float64 // newest value
	// Change is the signed fractional move in the "worse" direction:
	// positive means worse (slower, or more allocation), negative means
	// better. A Change above the metric's tolerance is a regression.
	Change    float64
	Tolerance float64
	Regressed bool
	// Info marks metrics reported for context but never gated
	// (ns/op depends on -benchtime and host load).
	Info bool
}

// Comparison is the result of gating a newest report against its
// predecessor.
type Comparison struct {
	OldPath, NewPath string
	Deltas           []Delta
	// Broken collects hard failures that no tolerance excuses: the
	// parallel sweep losing determinism, or a gated metric disappearing
	// from the newest report.
	Broken []string
}

// Regressions returns the deltas that exceeded their tolerance.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the newest report passes the gate.
func (c *Comparison) OK() bool {
	return len(c.Broken) == 0 && len(c.Regressions()) == 0
}

// frac returns the fractional change from old to new in the direction
// where positive = worse. lowerWorse says whether a *decrease* is the
// bad direction (throughput metrics).
func frac(old, new float64, lowerWorse bool) float64 {
	if old == 0 {
		return 0
	}
	if lowerWorse {
		return (old - new) / old
	}
	return (new - old) / old
}

// Compare gates the newest report against its predecessor. Gated
// metrics: engine cycles/s (lower = worse), engine heap allocs and
// bytes, per-benchmark allocs/op and B/op, and the parallel sweep's
// determinism bit (hard failure if it turns false). ns/op and speedup
// are reported as informational only — the first depends on -benchtime
// and host load, the second is meaningless on degenerate hosts.
func Compare(oldR, newR *Report, tol Tolerances) *Comparison {
	c := &Comparison{}

	add := func(metric string, old, new float64, tolerance float64, lowerWorse, info bool) {
		if old == 0 && new == 0 {
			return
		}
		d := Delta{Metric: metric, Old: old, New: new, Tolerance: tolerance, Info: info}
		d.Change = frac(old, new, lowerWorse)
		d.Regressed = !info && d.Change > tolerance
		c.Deltas = append(c.Deltas, d)
	}

	// Engine reference run: the simulator's own speed and footprint.
	add("engine cycles/s", oldR.Engine.CyclesPerSec, newR.Engine.CyclesPerSec, tol.CyclesPerSec, true, false)
	add("engine heap allocs", float64(oldR.Engine.HeapAllocs), float64(newR.Engine.HeapAllocs), tol.Allocs, false, false)
	add("engine heap bytes", float64(oldR.Engine.HeapAllocBytes), float64(newR.Engine.HeapAllocBytes), tol.Bytes, false, false)

	// Route-decision cache counters: informational only. Hit rates
	// describe workload congruence, not a gated capacity, and reports
	// written before the cache existed have no old value to diff.
	if oc, nc := oldR.Engine.RouteCache, newR.Engine.RouteCache; oc != nil || nc != nil {
		var oldRate, newRate, oldReplay, newReplay float64
		if oc != nil {
			oldRate = oc.HitRate()
			oldReplay = float64(oc.DrawReplays)
		}
		if nc != nil {
			newRate = nc.HitRate()
			newReplay = float64(nc.DrawReplays)
		}
		add("engine route-cache hit rate", oldRate, newRate, 0, true, true)
		add("engine route-cache draw replays", oldReplay, newReplay, 0, false, true)
	}

	// Parallel sweep: determinism is non-negotiable; speedup is context.
	if oldR.Parallel.Identical && !newR.Parallel.Identical {
		c.Broken = append(c.Broken,
			"parallel sweep no longer deterministic: serial and parallel runs diverged")
	}
	if oldR.Parallel.Runs > 0 && newR.Parallel.Runs > 0 {
		add("parallel speedup", oldR.Parallel.Speedup, newR.Parallel.Speedup, 0, true, true)
	}

	// Per-benchmark allocation gates, matched by name. A benchmark
	// present before but missing now is a hard failure — silently
	// dropping a gated benchmark would let regressions hide.
	newBy := map[string]Bench{}
	for _, b := range newR.Benchmarks {
		newBy[b.Name] = b
	}
	for _, ob := range oldR.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			c.Broken = append(c.Broken,
				fmt.Sprintf("benchmark %s present in the predecessor but missing from the newest report", ob.Name))
			continue
		}
		add(ob.Name+" allocs/op", ob.AllocsPerOp, nb.AllocsPerOp, tol.Allocs, false, false)
		add(ob.Name+" B/op", ob.BytesPerOp, nb.BytesPerOp, tol.Bytes, false, false)
		add(ob.Name+" ns/op", ob.NsPerOp, nb.NsPerOp, 0, false, true)
	}
	return c
}

// WriteText renders the comparison as an aligned table with a verdict
// line, suitable for terminals and CI logs.
func (c *Comparison) WriteText(w io.Writer) {
	fmt.Fprintf(w, "perfgate: %s -> %s\n", c.OldPath, c.NewPath)
	fmt.Fprintf(w, "%-34s %14s %14s %9s %8s  %s\n", "metric", "old", "new", "change", "budget", "verdict")
	for _, d := range c.Deltas {
		verdict := "ok"
		budget := fmt.Sprintf("%.0f%%", 100*d.Tolerance)
		switch {
		case d.Info:
			verdict, budget = "info", "-"
		case d.Regressed:
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "%-34s %14.4g %14.4g %+8.1f%% %8s  %s\n",
			d.Metric, d.Old, d.New, 100*d.Change, budget, verdict)
	}
	for _, b := range c.Broken {
		fmt.Fprintf(w, "BROKEN: %s\n", b)
	}
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown
// table for CI job summaries, followed by the newest report's phase
// profile when present.
func (c *Comparison) WriteMarkdown(w io.Writer, newR *Report) {
	fmt.Fprintf(w, "### Perf gate: `%s` vs `%s`\n\n", c.NewPath, c.OldPath)
	fmt.Fprintln(w, "| Metric | Old | New | Change | Budget | Verdict |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	for _, d := range c.Deltas {
		verdict, budget := "ok", fmt.Sprintf("%.0f%%", 100*d.Tolerance)
		switch {
		case d.Info:
			verdict, budget = "info", "—"
		case d.Regressed:
			verdict = "**REGRESSED**"
		}
		fmt.Fprintf(w, "| %s | %.4g | %.4g | %+.1f%% | %s | %s |\n",
			d.Metric, d.Old, d.New, 100*d.Change, budget, verdict)
	}
	for _, b := range c.Broken {
		fmt.Fprintf(w, "\n**BROKEN**: %s\n", b)
	}
	if pp := newR.Engine.Profile; pp != nil {
		fmt.Fprintf(w, "\n#### Engine phase profile (%d sampled cycles, every %d)\n\n",
			pp.SampledCycles, pp.SampleEvery)
		fmt.Fprintln(w, "| Phase | Time (ms) | Share | Alloc (KB) | Allocs |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
		for _, ph := range pp.Phases {
			fmt.Fprintf(w, "| %s | %.2f | %.1f%% | %.1f | %d |\n",
				ph.Phase, float64(ph.Nanos)/1e6, 100*ph.TimeShare,
				float64(ph.AllocBytes)/1024, ph.Allocs)
		}
		fmt.Fprintf(w, "\nGC: %d cycles, %.1f ms paused, %.1f MB allocated (%d objects)\n",
			pp.GC.NumGC, float64(pp.GC.PauseTotalNanos)/1e6,
			float64(pp.GC.TotalAllocBytes)/(1<<20), pp.GC.Mallocs)
	}
	if rc := newR.Engine.RouteCache; rc != nil {
		fmt.Fprintf(w, "\nRoute cache: %s\n", rc)
	}
	if newR.Parallel.Degenerate() {
		gm := newR.Parallel.GOMAXPROCS
		if gm == 0 {
			gm = newR.Parallel.CPUs
		}
		fmt.Fprintf(w, "\n> Parallel speedup is **degenerate** on this host "+
			"(GOMAXPROCS %d < jobs %d): the ratio measures time-slicing, not scaling.\n",
			gm, newR.Parallel.Jobs)
	}
}

// Summary returns a one-line verdict.
func (c *Comparison) Summary() string {
	if c.OK() {
		return fmt.Sprintf("perfgate: PASS (%d metrics within budget)", len(c.Deltas))
	}
	var parts []string
	if n := len(c.Regressions()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d regressed", n))
	}
	if n := len(c.Broken); n > 0 {
		parts = append(parts, fmt.Sprintf("%d broken", n))
	}
	return "perfgate: FAIL (" + strings.Join(parts, ", ") + ")"
}
