package network_test

import (
	"math/rand"
	"testing"

	"nocsim/internal/network"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// FuzzCreditConservation drives a fuzz-shaped fabric with a finite packet
// schedule and checks credit-based flow control's conservation law after
// every cycle: for each inter-router link and VC, the upstream output
// VC's available credits plus the downstream input VC's buffered flits
// never exceed the buffer depth, and neither side ever goes negative.
// (Flits and credits in flight on the one-cycle channel pipelines account
// for the remainder, so the observable sum only ever undershoots the
// depth, never overshoots.) Alongside, the arena's live-packet count must
// track the network's in-flight count exactly — the allocation overhaul
// recycles flit and packet slots at ejection, and a leak or double-free
// on any path breaks this equality immediately.
//
// The schedule is finite, so the run must also drain: every credit
// returns, every buffer empties, and the arena's live counts reach zero.
// A fuzz input that fails to drain within the generous cycle budget has
// found a deadlock or a lost credit, either of which is a real bug.
func FuzzCreditConservation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 0, 9, 200, 4, 4, 4, 4, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{0xff, 0x55, 0xaa, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	for i, name := range routing.Names() {
		seed := make([]byte, 40)
		for j := range seed {
			seed[j] = byte(i*53 + j*7 + len(name))
		}
		f.Add(seed)
	}

	names := routing.Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		pick := func(n int) int { return next() % n }

		name := names[pick(len(names))]
		mesh := topo.MustNew(2+pick(3), 2+pick(3))
		vcs := 2 + pick(3)
		depth := 1 + pick(4)
		cfg := network.Config{
			Mesh:     mesh,
			VCs:      vcs,
			BufDepth: depth,
			Speedup:  1 + pick(2),
			NewAlg:   func() routing.Algorithm { return routing.MustNew(name) },
			Rand:     rand.New(rand.NewSource(int64(next()))),
		}
		// Optionally throttle one endpoint's ejection bandwidth, the
		// paper's second source of endpoint congestion; the interval
		// stays small so the schedule still drains.
		if next()%2 == 0 {
			cfg.SlowEndpoints = map[int]int{pick(mesh.Nodes()): 2 + pick(3)}
		}
		net := network.New(cfg)

		// Finite schedule: a few packets per decoded burst, offered over
		// the first cycles of the run.
		type offer struct {
			cycle     int64
			src, dest int
			size      int
		}
		var schedule []offer
		nPkts := 1 + pick(20)
		var lastOffer int64
		for i := 0; i < nPkts; i++ {
			src := pick(mesh.Nodes())
			dest := pick(mesh.Nodes())
			if dest == src {
				dest = (dest + 1) % mesh.Nodes()
			}
			o := offer{
				cycle: int64(pick(32)),
				src:   src,
				dest:  dest,
				size:  1 + pick(4),
			}
			if o.cycle > lastOffer {
				lastOffer = o.cycle
			}
			schedule = append(schedule, o)
		}

		checkConservation := func(cycle int64) {
			for id := 0; id < mesh.Nodes(); id++ {
				up := net.Router(id)
				for d := topo.East; d <= topo.South; d++ {
					nb, ok := mesh.Neighbor(id, d)
					if !ok {
						continue
					}
					down := net.Router(nb)
					for v := 0; v < vcs; v++ {
						c := up.OutVCCredits(d, v)
						use := down.InputBufferUse(d.Opposite(), v)
						if c < 0 || use < 0 || c+use > depth {
							t.Fatalf("cycle %d link %d-%v->%d vc %d: credits %d + buffered %d outside [0,%d]",
								cycle, id, d, nb, v, c, use, depth)
						}
					}
				}
			}
			st := net.Arena().Stats()
			if st.Packets.Live != net.InFlight() {
				t.Fatalf("cycle %d: arena live packets %d != in-flight %d",
					cycle, st.Packets.Live, net.InFlight())
			}
		}

		const drainBudget = 4000
		var pktID uint64
		for cycle := int64(0); ; cycle++ {
			for _, o := range schedule {
				if o.cycle != cycle {
					continue
				}
				p := net.Arena().NewPacket()
				pktID++
				p.ID = pktID
				p.Src, p.Dest, p.Size = o.src, o.dest, o.size
				p.Born = cycle
				net.Offer(p)
			}
			net.Step()
			checkConservation(cycle)
			if cycle > lastOffer && net.InFlight() == 0 {
				break
			}
			if cycle > lastOffer+drainBudget {
				t.Fatalf("fabric failed to drain: %d packets still in flight after %d cycles (alg %s, %dx%d, %d VCs, depth %d)",
					net.InFlight(), drainBudget, name, mesh.Width, mesh.Height, vcs, depth)
			}
		}

		// Let in-flight credits on the channel pipelines land, then the
		// conservation sums must telescope back to exactly full credit
		// and empty buffers everywhere.
		for i := 0; i < 8; i++ {
			net.Step()
		}
		for id := 0; id < mesh.Nodes(); id++ {
			up := net.Router(id)
			for d := topo.East; d <= topo.South; d++ {
				nb, ok := mesh.Neighbor(id, d)
				if !ok {
					continue
				}
				down := net.Router(nb)
				for v := 0; v < vcs; v++ {
					if c := up.OutVCCredits(d, v); c != depth {
						t.Fatalf("drained fabric: link %d-%v->%d vc %d has %d credits, want %d",
							id, d, nb, v, c, depth)
					}
					if use := down.InputBufferUse(d.Opposite(), v); use != 0 {
						t.Fatalf("drained fabric: link %d-%v->%d vc %d still buffers %d flits",
							id, d, nb, v, use)
					}
				}
			}
		}
		st := net.Arena().Stats()
		if st.Flits.Live != 0 || st.Packets.Live != 0 {
			t.Fatalf("drained fabric leaks arena slots: %s", st)
		}
	})
}
