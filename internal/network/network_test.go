// Package network_test exercises the fabric from outside: it lives in an
// external test package so it can use internal/obs (which itself imports
// network) for watchdog-backed drain diagnostics.
package network_test

import (
	"math/rand"
	"testing"

	"nocsim/internal/flit"
	"nocsim/internal/network"
	"nocsim/internal/obs"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

func newNet(t *testing.T, w, h int, alg string, vcs int) *network.Network {
	t.Helper()
	return network.New(network.Config{
		Mesh:     topo.MustNew(w, h),
		VCs:      vcs,
		BufDepth: 4,
		Speedup:  2,
		NewAlg:   func() routing.Algorithm { return routing.MustNew(alg) },
		Rand:     rand.New(rand.NewSource(1)),
	})
}

// drainOrDiagnose steps the network until it empties or budget cycles
// pass, watching for stalls with the obs watchdog. Instead of a bare
// "packets stuck (deadlock?)", a failed drain reports the fabric
// snapshot's blocked-on chains — which VC is waiting on which, and where
// the chain ends.
func drainOrDiagnose(t *testing.T, n *network.Network, budget int) {
	t.Helper()
	const beat = 100
	wd := obs.NewWatchdog(2000, func() *obs.FabricSnapshot { return obs.Capture(n) })
	for i := 0; i < budget && n.InFlight() > 0; i++ {
		if i%beat == 0 {
			if rep := wd.Beat(n.Now(), n.InFlight(), n.TotalOutputFlits()); rep != nil {
				t.Fatalf("drain stalled:\n%s", rep.Summary())
			}
		}
		n.Step()
	}
	if n.InFlight() > 0 {
		t.Fatalf("%d packets still in flight after %d-cycle drain budget:\n%s",
			n.InFlight(), budget, obs.Capture(n).Summary())
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	for _, alg := range routing.Names() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			n := newNet(t, 8, 8, alg, 4)
			var got *flit.Packet
			n.Sink = func(p *flit.Packet) { got = p }
			p := &flit.Packet{ID: 1, Src: 0, Dest: 63, Size: 1, Born: 0}
			n.Offer(p)
			n.Run(200)
			if got == nil {
				t.Fatal("packet not delivered")
			}
			if got.Hops != topo.MustNew(8, 8).Hops(0, 63)+1 {
				t.Errorf("hops = %d, want %d (minimal routers visited)", got.Hops, 15)
			}
			if got.Latency() <= 0 || got.Latency() > 100 {
				t.Errorf("implausible zero-load latency %d", got.Latency())
			}
			if n.InFlight() != 0 {
				t.Errorf("InFlight = %d after drain", n.InFlight())
			}
		})
	}
}

func TestMultiFlitPacketDelivery(t *testing.T) {
	n := newNet(t, 4, 4, "footprint", 4)
	var got *flit.Packet
	n.Sink = func(p *flit.Packet) { got = p }
	p := &flit.Packet{ID: 7, Src: 0, Dest: 15, Size: 6, Born: 0}
	n.Offer(p)
	n.Run(200)
	if got == nil {
		t.Fatal("multi-flit packet not delivered")
	}
}

func TestPacketToSelfNeighbor(t *testing.T) {
	// One-hop packet: src and dest adjacent.
	n := newNet(t, 4, 4, "dor", 2)
	done := 0
	n.Sink = func(p *flit.Packet) { done++ }
	n.Offer(&flit.Packet{ID: 1, Src: 0, Dest: 1, Size: 1})
	n.Run(50)
	if done != 1 {
		t.Fatalf("one-hop packet not delivered")
	}
}

// TestRandomTrafficAllAlgorithms floods the mesh with random traffic and
// checks that every packet drains (deadlock/livelock smoke test) with
// minimal hop counts.
func TestRandomTrafficAllAlgorithms(t *testing.T) {
	m := topo.MustNew(4, 4)
	for _, alg := range routing.Names() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			n := newNet(t, 4, 4, alg, 4)
			delivered := 0
			n.Sink = func(p *flit.Packet) {
				delivered++
				if p.Hops != m.Hops(p.Src, p.Dest)+1 {
					t.Errorf("packet %d: hops %d, want %d (minimal)", p.ID, p.Hops, m.Hops(p.Src, p.Dest)+1)
				}
			}
			rng := rand.New(rand.NewSource(7))
			offered := 0
			for cycle := 0; cycle < 1500; cycle++ {
				if cycle < 1000 {
					for node := 0; node < 16; node++ {
						if rng.Float64() < 0.2 {
							dest := rng.Intn(16)
							if dest == node {
								continue
							}
							offered++
							n.Offer(&flit.Packet{
								ID:   uint64(offered),
								Src:  node,
								Dest: dest,
								Size: 1 + rng.Intn(3),
								Born: n.Now(),
							})
						}
					}
				}
				n.Step()
			}
			drainOrDiagnose(t, n, 20000)
			if delivered != offered {
				t.Errorf("delivered %d of %d", delivered, offered)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		n := newNet(t, 4, 4, "footprint", 4)
		var lat []int64
		n.Sink = func(p *flit.Packet) { lat = append(lat, p.Latency()) }
		rng := rand.New(rand.NewSource(99))
		id := uint64(0)
		for cycle := 0; cycle < 500; cycle++ {
			for node := 0; node < 16; node++ {
				if rng.Float64() < 0.3 {
					dest := (node + 1 + rng.Intn(15)) % 16
					id++
					n.Offer(&flit.Packet{ID: id, Src: node, Dest: dest, Size: 1, Born: n.Now()})
				}
			}
			n.Step()
		}
		return lat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic latency at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestEndpointOversubscription drives two persistent flows at one
// destination — the paper's endpoint congestion scenario — and checks that
// the network keeps delivering without loss.
func TestEndpointOversubscription(t *testing.T) {
	n := newNet(t, 8, 8, "footprint", 4)
	delivered := 0
	n.Sink = func(p *flit.Packet) { delivered++ }
	offered := 0
	for cycle := 0; cycle < 2000; cycle++ {
		if cycle < 1000 {
			// Flows n4->n13 and n12->n13 at full rate.
			for _, src := range []int{4, 12} {
				offered++
				n.Offer(&flit.Packet{ID: uint64(offered), Src: src, Dest: 13, Size: 1, Born: n.Now()})
			}
		}
		n.Step()
	}
	drainOrDiagnose(t, n, 100000)
	if delivered != offered {
		t.Errorf("delivered %d of %d", delivered, offered)
	}
}

func TestDownstreamIdleAtEdge(t *testing.T) {
	n := newNet(t, 4, 4, "dbar", 4)
	// Node 3 has no East neighbour.
	if got := n.DownstreamIdle(3, topo.East, 0); got != 0 {
		t.Errorf("edge DownstreamIdle = %d, want 0", got)
	}
	// Interior: neighbour exists, all VCs idle initially: 3 adaptive VCs
	// per productive port.
	got := n.DownstreamIdle(5, topo.East, 7) // neighbour 6, productive E only
	if got != 3 {
		t.Errorf("DownstreamIdle = %d, want 3", got)
	}
	// Toward a corner needing both dims from neighbour.
	got = n.DownstreamIdle(5, topo.East, 11) // neighbour 6: dest 11 is E+S
	if got != 6 {
		t.Errorf("DownstreamIdle = %d, want 6", got)
	}
}

func TestOfferWrongSourcePanics(t *testing.T) {
	n := newNet(t, 4, 4, "dor", 2)
	defer func() {
		if recover() == nil {
			t.Error("wrong-source Offer did not panic")
		}
	}()
	n.Endpoint(3).Offer(&flit.Packet{Src: 5})
}

// TestXORDETIsolatesVCClasses checks the static-mapping invariant at the
// fabric level: with dor+xordet, every flit traversing an inter-router
// link uses exactly the VC class of its destination.
func TestXORDETIsolatesVCClasses(t *testing.T) {
	m := topo.MustNew(4, 4)
	n := newNet(t, 4, 4, "dor+xordet", 4)
	bad := 0
	n.Sink = func(p *flit.Packet) {}
	rng := rand.New(rand.NewSource(3))
	id := uint64(0)
	for cycle := 0; cycle < 600; cycle++ {
		for node := 0; node < 16; node++ {
			if rng.Float64() < 0.2 {
				dest := rng.Intn(16)
				if dest == node {
					continue
				}
				id++
				n.Offer(&flit.Packet{ID: id, Src: node, Dest: dest, Size: 1, Born: n.Now()})
			}
		}
		n.Step()
		// Inspect every router's non-local input VCs: any flit buffered
		// in VC v must belong to a destination of class v.
		for r := 0; r < 16; r++ {
			rt := n.Router(r)
			for d := topo.East; d <= topo.South; d++ {
				for v := 0; v < 4; v++ {
					if rt.InputBufferUse(d, v) == 0 {
						continue
					}
					dst := rt.InputVCDest(d, v)
					if want := routing.Class(m, dst, 4); v != want {
						bad++
					}
				}
			}
		}
	}
	if bad != 0 {
		t.Errorf("%d class violations under dor+xordet", bad)
	}
}

// TestVOQSWDeliversEverything is a fabric-level smoke test of the VOQ_sw
// overlay on every base algorithm.
func TestVOQSWDeliversEverything(t *testing.T) {
	for _, alg := range []string{"dor+voqsw", "oddeven+voqsw", "dbar+voqsw"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			n := newNet(t, 4, 4, alg, 4)
			delivered := 0
			n.Sink = func(p *flit.Packet) { delivered++ }
			rng := rand.New(rand.NewSource(11))
			offered := 0
			for cycle := 0; cycle < 800; cycle++ {
				if cycle < 500 {
					for node := 0; node < 16; node++ {
						if rng.Float64() < 0.15 {
							dest := rng.Intn(16)
							if dest == node {
								continue
							}
							offered++
							n.Offer(&flit.Packet{ID: uint64(offered), Src: node, Dest: dest, Size: 1 + rng.Intn(3), Born: n.Now()})
						}
					}
				}
				n.Step()
			}
			drainOrDiagnose(t, n, 30000)
			if delivered != offered {
				t.Errorf("delivered %d of %d", delivered, offered)
			}
		})
	}
}

// TestSlowEndpointNetworkLossless verifies the slow-endpoint feature does
// not lose or duplicate packets at the fabric level.
func TestSlowEndpointNetworkLossless(t *testing.T) {
	n := network.New(network.Config{
		Mesh:     topo.MustNew(4, 4),
		VCs:      4,
		BufDepth: 4,
		Speedup:  2,
		NewAlg:   func() routing.Algorithm { return routing.MustNew("footprint") },
		Rand:     rand.New(rand.NewSource(5)),
		SlowEndpoints: map[int]int{
			5: 3, // drains every 3rd cycle
		},
	})
	delivered := 0
	n.Sink = func(p *flit.Packet) { delivered++ }
	offered := 0
	for cycle := 0; cycle < 600; cycle++ {
		if cycle < 300 && cycle%4 == 0 {
			offered++
			n.Offer(&flit.Packet{ID: uint64(offered), Src: 0, Dest: 5, Size: 1, Born: n.Now()})
		}
		n.Step()
	}
	for i := 0; i < 20000 && n.InFlight() > 0; i++ {
		n.Step()
	}
	if delivered != offered {
		t.Errorf("delivered %d of %d through slow endpoint", delivered, offered)
	}
}
