// Package network wires routers, channels and endpoints into a 2D mesh and
// advances the whole fabric cycle by cycle. It also implements the
// neighbour status exchange that DBAR-class routing algorithms consume.
package network

import (
	"math/rand"

	"nocsim/internal/flit"
	"nocsim/internal/router"
	"nocsim/internal/routing"
	"nocsim/internal/topo"
)

// Config parameterizes a mesh network.
type Config struct {
	Mesh     topo.Mesh
	VCs      int
	BufDepth int
	Speedup  int
	// NewAlg constructs a routing algorithm instance; each router gets
	// its own so algorithms may keep per-router state.
	NewAlg func() routing.Algorithm
	Rand   *rand.Rand
	// Metrics receives router events; may be nil.
	Metrics router.MetricsSink
	// StickyRouting freezes per-packet VC request sets at route time;
	// see router.Config.StickyRouting.
	StickyRouting bool
	// SlowEndpoints maps node id -> consume interval for endpoints whose
	// ejection bandwidth is below the port bandwidth (Section 2's second
	// source of endpoint congestion). Unlisted nodes drain every cycle.
	SlowEndpoints map[int]int
	// StepAll disables the active-set worklist: Step visits every router
	// and endpoint every cycle, as the pre-worklist loop did. A debug
	// mode — results must be bit-identical either way (the determinism
	// gate compares the two), it only costs time.
	StepAll bool
	// NoRouteCache disables the shared route-decision cache (on by
	// default for algorithms that implement routing.Fingerprinter). An
	// escape hatch — results must be bit-identical either way (the
	// route-cache gate compares the two), caching only saves time.
	NoRouteCache bool
}

// chanLink is one channel with the nodes it can wake: a busy channel has
// a flit or credit to deliver, so both its endpoints' nodes must step.
// Injection/ejection channels name the same node twice.
type chanLink struct {
	ch   *router.Channel
	a, b int
}

// Network is a running mesh fabric.
type Network struct {
	cfg       Config
	routers   []*router.Router
	endpoints []*router.Endpoint
	links     []chanLink
	arena     *flit.Arena
	cache     *routing.Cache // shared route-decision cache, nil when off
	now       int64
	inFlight  int

	// activeMark/activeNodes are the worklist scratch: the node ids that
	// can do work this cycle, ascending. Reused across cycles.
	activeMark  []bool
	activeNodes []int

	// Sink, when set, receives every packet as its tail flit is consumed
	// at the destination endpoint. Set it before offering traffic.
	Sink func(p *flit.Packet)

	// Probe, when set, observes the cycle loop's phase structure on the
	// cycles it elects to sample (obs.PhaseProfiler implements it). The
	// disabled path pays one nil check per cycle.
	Probe PhaseProbe
}

// Phase identifies one stage of the fabric's cycle loop, in execution
// order within Step. PhaseInjectEject covers both endpoint spans of a
// cycle (flit receive at the top, consume/inject at the bottom);
// PhaseSwitchAlloc covers switch allocation plus crossbar traversal;
// PhaseLinkTraversal is the link pipeline tick.
type Phase uint8

const (
	PhaseRouteCompute Phase = iota
	PhaseVCAlloc
	PhaseSwitchAlloc
	PhaseLinkTraversal
	PhaseInjectEject
)

// NumPhases is the phase count, for fixed-size per-phase accumulators.
const NumPhases = int(PhaseInjectEject) + 1

// String names the phase for reports and metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseRouteCompute:
		return "route-compute"
	case PhaseVCAlloc:
		return "vc-alloc"
	case PhaseSwitchAlloc:
		return "switch-alloc"
	case PhaseLinkTraversal:
		return "link-traversal"
	case PhaseInjectEject:
		return "inject-eject"
	default:
		panic("network: invalid phase")
	}
}

// PhaseProbe observes sampled cycles of the loop. BeginCycle is called
// at the top of every Step; returning false keeps the cycle on the
// uninstrumented fast path. Within an instrumented cycle, BeginPhase
// marks each phase entry (the probe attributes the span since the
// previous mark to the previous phase) and EndCycle closes the last
// span. A phase may begin more than once per cycle (inject-eject does);
// probes accumulate.
type PhaseProbe interface {
	BeginCycle(now int64) bool
	BeginPhase(p Phase)
	EndCycle()
}

// New builds the mesh: one router and endpoint per node, one channel per
// directed link (including injection and ejection links).
func New(cfg Config) *Network {
	n := &Network{cfg: cfg, arena: flit.NewArena()}
	nodes := cfg.Mesh.Nodes()
	n.routers = make([]*router.Router, nodes)
	n.endpoints = make([]*router.Endpoint, nodes)
	n.activeMark = make([]bool, nodes)
	n.activeNodes = make([]int, 0, nodes)

	// One route-decision cache serves the whole fabric: routers step
	// sequentially within a cycle, and congruent states recur across
	// routers as well as across blocked cycles. NewCache leaves the
	// cache disabled when the algorithm did not opt into fingerprinting.
	if !cfg.NoRouteCache {
		if c := routing.NewCache(cfg.NewAlg()); c.Enabled() {
			n.cache = c
		}
	}
	for id := 0; id < nodes; id++ {
		n.routers[id] = router.New(router.Config{
			Mesh:          cfg.Mesh,
			NodeID:        id,
			VCs:           cfg.VCs,
			BufDepth:      cfg.BufDepth,
			Speedup:       cfg.Speedup,
			Alg:           cfg.NewAlg(),
			Rand:          cfg.Rand,
			Downstream:    n,
			Metrics:       cfg.Metrics,
			StickyRouting: cfg.StickyRouting,
			Cache:         n.cache,
		})
	}
	// Inter-router links: for every node and direction with a neighbour,
	// one channel from node's output to the neighbour's opposite input.
	for id := 0; id < nodes; id++ {
		for d := topo.East; d <= topo.South; d++ {
			nb, ok := cfg.Mesh.Neighbor(id, d)
			if !ok {
				continue
			}
			ch := router.NewChannel()
			n.links = append(n.links, chanLink{ch: ch, a: id, b: nb})
			n.routers[id].AttachOut(d, ch)
			n.routers[nb].AttachIn(d.Opposite(), ch)
		}
	}
	// Injection and ejection links.
	for id := 0; id < nodes; id++ {
		inj := router.NewChannel()
		ej := router.NewChannel()
		n.links = append(n.links, chanLink{ch: inj, a: id, b: id}, chanLink{ch: ej, a: id, b: id})
		n.routers[id].AttachIn(topo.Local, inj)
		n.routers[id].AttachOut(topo.Local, ej)
		ep := router.NewEndpoint(id, cfg.VCs, cfg.BufDepth, inj, ej)
		ep.SetMetrics(cfg.Metrics)
		ep.UseArena(n.arena)
		if iv, ok := cfg.SlowEndpoints[id]; ok {
			ep.ConsumeInterval = iv
		}
		ep.Sink = func(p *flit.Packet) {
			n.inFlight--
			if n.Sink != nil {
				n.Sink(p)
			}
		}
		n.endpoints[id] = ep
	}
	return n
}

// DownstreamIdle implements router.DownstreamInfo: the idle adaptive VC
// count toward dest at the neighbour reached through output port d of
// node. Returns 0 at mesh edges.
func (n *Network) DownstreamIdle(node int, d topo.Direction, dest int) int {
	nb, ok := n.cfg.Mesh.Neighbor(node, d)
	if !ok {
		return 0
	}
	return n.routers[nb].IdleAdaptiveToward(dest)
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Mesh returns the fabric's topology.
func (n *Network) Mesh() topo.Mesh { return n.cfg.Mesh }

// Router returns the router of node id, for analyzers.
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// Endpoint returns the endpoint of node id.
func (n *Network) Endpoint(id int) *router.Endpoint { return n.endpoints[id] }

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.cfg.Mesh.Nodes() }

// Offer enqueues a packet at its source endpoint.
func (n *Network) Offer(p *flit.Packet) {
	n.inFlight++
	n.endpoints[p.Src].Offer(p)
}

// Arena returns the fabric's flit/packet arena. Injectors allocate
// packets from it (endpoints recycle them at ejection) and the profiler
// reads its live/free/high-water accounting.
func (n *Network) Arena() *flit.Arena { return n.arena }

// RouteCacheStats returns a snapshot of the shared route-decision
// cache's counters, or nil when caching is off (disabled by config or
// by an algorithm without fingerprinting).
func (n *Network) RouteCacheStats() *routing.CacheStats {
	if n.cache == nil {
		return nil
	}
	s := n.cache.Stats()
	return &s
}

// computeActive rebuilds the worklist for this cycle: a node is active
// when its router or endpoint holds work, or when any attached channel is
// busy (a flit or credit will be delivered to it this cycle). Everything
// a skipped node could do is a provable no-op — its per-cycle state
// transitions are all driven by held work or channel arrivals, and the
// arbiters update fairness state only on grants — so skipping cannot
// change any simulated result. The list is ascending in node id, keeping
// iteration order (and shared-RNG consumption order) identical to the
// step-everything loop. With Config.StepAll the list is simply every
// node.
func (n *Network) computeActive() {
	n.activeNodes = n.activeNodes[:0]
	if n.cfg.StepAll {
		for id := range n.routers {
			n.activeNodes = append(n.activeNodes, id)
		}
		return
	}
	for id := range n.activeMark {
		n.activeMark[id] = !n.routers[id].Quiescent() || !n.endpoints[id].Quiescent()
	}
	for _, l := range n.links {
		if l.ch.Busy() {
			n.activeMark[l.a] = true
			n.activeMark[l.b] = true
		}
	}
	for id, m := range n.activeMark {
		if m {
			n.activeNodes = append(n.activeNodes, id)
		}
	}
}

// Step advances the fabric by one cycle, visiting only the active nodes.
// Phases are globally ordered so results are independent of router
// iteration order: all receives, then all routing+VC allocation, then
// all switch traversal and endpoint activity, then all links tick.
func (n *Network) Step() {
	if n.Probe != nil && n.Probe.BeginCycle(n.now) {
		n.stepProbed()
		return
	}
	n.computeActive()
	for _, id := range n.activeNodes {
		n.endpoints[id].Receive()
	}
	for _, id := range n.activeNodes {
		r := n.routers[id]
		r.SyncClock(n.now)
		r.Receive()
	}
	for _, id := range n.activeNodes {
		n.routers[id].AllocateVCs()
	}
	for _, id := range n.activeNodes {
		n.routers[id].SwitchAndTraverse()
	}
	for _, id := range n.activeNodes {
		e := n.endpoints[id]
		e.Consume(n.now)
		e.Inject(n.now)
	}
	// Ticking an idle channel is a no-op, so the link phase is identical
	// with or without the worklist.
	for _, l := range n.links {
		l.ch.Tick()
	}
	n.now++
}

// stepProbed is Step with phase marks for an instrumented cycle. The
// fabric work and its ordering are identical to the fast path — the
// probe only reads clocks and allocation counters between phases, so
// sampling can never change simulated results.
func (n *Network) stepProbed() {
	p := n.Probe
	n.computeActive()
	p.BeginPhase(PhaseInjectEject)
	for _, id := range n.activeNodes {
		n.endpoints[id].Receive()
	}
	p.BeginPhase(PhaseRouteCompute)
	for _, id := range n.activeNodes {
		r := n.routers[id]
		r.SyncClock(n.now)
		r.Receive()
	}
	p.BeginPhase(PhaseVCAlloc)
	for _, id := range n.activeNodes {
		n.routers[id].AllocateVCs()
	}
	p.BeginPhase(PhaseSwitchAlloc)
	for _, id := range n.activeNodes {
		n.routers[id].SwitchAndTraverse()
	}
	p.BeginPhase(PhaseInjectEject)
	for _, id := range n.activeNodes {
		e := n.endpoints[id]
		e.Consume(n.now)
		e.Inject(n.now)
	}
	p.BeginPhase(PhaseLinkTraversal)
	for _, l := range n.links {
		l.ch.Tick()
	}
	p.EndCycle()
	n.now++
}

// Run advances the fabric by cycles cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// TotalOutputFlits sums the flits sent by every router over every output
// port (cardinal links plus ejection links) since construction — the
// fabric's total flit-hop work, used by the runtime self-metrics.
func (n *Network) TotalOutputFlits() int64 {
	var total int64
	for _, r := range n.routers {
		for d := topo.East; d <= topo.Local; d++ {
			total += r.OutputFlits(d)
		}
	}
	return total
}

// InFlight reports the number of packets offered but not yet fully ejected
// (source queues plus packets inside the fabric); used to drain
// simulations.
func (n *Network) InFlight() int { return n.inFlight }
