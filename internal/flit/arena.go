package flit

import "fmt"

// This file is the fabric's memory layout for near-zero steady-state
// allocation: a per-run arena that owns every Flit and Packet moving
// through one network. Slots are recycled through free-lists and guarded
// by generation-tagged handles — a recycled slot bumps its generation, so
// any stale Handle kept across a free is detected by Get/free instead of
// silently aliasing the slot's next tenant.
//
// Slabs are chunked so slot pointers stay stable for the arena's
// lifetime: the rest of the simulator keeps passing *Flit and *Packet
// around (channels, input buffers, metrics sinks) and those pointers
// remain valid exactly until the owning Free call.

// Handle identifies one arena slot with its allocation generation: the
// low 32 bits are the slot index, the high 32 bits the generation the
// slot had when allocated. The zero Handle is never issued (generations
// start at 1), so a zero value always means "not arena-managed".
type Handle uint64

// handleOf packs a slot index and generation into a Handle.
func handleOf(idx int, gen uint32) Handle {
	return Handle(uint64(gen)<<32 | uint64(uint32(idx)))
}

// Index returns the slot index of the handle.
func (h Handle) Index() int { return int(uint32(h)) }

// Generation returns the allocation generation of the handle.
func (h Handle) Generation() uint32 { return uint32(h >> 32) }

// arenaChunkSize is the slot count per slab chunk. Chunks are never
// reallocated, so slot pointers are stable.
const arenaChunkSize = 1024

// PoolStats describes one slot pool of an arena.
type PoolStats struct {
	// Live is the number of currently allocated slots; Free the number
	// of recycled slots awaiting reuse; HighWater the maximum Live ever
	// observed (the pool's working-set size).
	Live      int `json:"live"`
	Free      int `json:"free"`
	HighWater int `json:"high_water"`
	// Allocs counts every allocation served; Reused counts the subset
	// served from the free-list rather than by growing a slab. A
	// steady-state loop has Allocs ≈ Reused.
	Allocs uint64 `json:"allocs"`
	Reused uint64 `json:"reused"`
}

// ArenaStats is the arena's self-accounting, one pool per slot type. Like
// every runtime self-metric it is deterministic for a deterministic
// fabric: the counters move only on fabric events.
type ArenaStats struct {
	Flits   PoolStats `json:"flits"`
	Packets PoolStats `json:"packets"`
}

// String renders the stats as a one-line report.
func (s ArenaStats) String() string {
	return fmt.Sprintf(
		"flits live=%d free=%d hw=%d reuse=%d/%d; packets live=%d free=%d hw=%d reuse=%d/%d",
		s.Flits.Live, s.Flits.Free, s.Flits.HighWater, s.Flits.Reused, s.Flits.Allocs,
		s.Packets.Live, s.Packets.Free, s.Packets.HighWater, s.Packets.Reused, s.Packets.Allocs)
}

// Arena owns the Flits and Packets of one network. It is not safe for
// concurrent use; one network is stepped by one goroutine.
type Arena struct {
	flits   pool[Flit]
	packets pool[Packet]
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// pool is one chunked slab with a free-list and generation tags.
type pool[T any] struct {
	chunks [][]T
	gens   []uint32 // per slot; bumped on free
	free   []uint32 // recycled slot indexes (LIFO keeps slots cache-warm)
	stats  PoolStats
}

// slot returns the address of slot idx.
func (p *pool[T]) slot(idx int) *T {
	return &p.chunks[idx/arenaChunkSize][idx%arenaChunkSize]
}

// alloc hands out a zeroed slot and its handle.
func (p *pool[T]) alloc() (*T, Handle) {
	var idx int
	if n := len(p.free); n > 0 {
		idx = int(p.free[n-1])
		p.free = p.free[:n-1]
		p.stats.Reused++
		var zero T
		*p.slot(idx) = zero
	} else {
		idx = len(p.gens)
		if idx/arenaChunkSize == len(p.chunks) {
			p.chunks = append(p.chunks, make([]T, arenaChunkSize))
		}
		p.gens = append(p.gens, 1)
	}
	p.stats.Allocs++
	p.stats.Live++
	if p.stats.Live > p.stats.HighWater {
		p.stats.HighWater = p.stats.Live
	}
	return p.slot(idx), handleOf(idx, p.gens[idx])
}

// get resolves a handle, panicking on stale generations: a Handle that
// outlived its slot's Free must never alias the slot's next tenant.
func (p *pool[T]) get(h Handle, kind string) *T {
	idx := h.Index()
	if idx >= len(p.gens) || h.Generation() == 0 {
		panic(fmt.Sprintf("flit: %s handle %#x outside arena", kind, uint64(h)))
	}
	if g := p.gens[idx]; g != h.Generation() {
		panic(fmt.Sprintf("flit: stale %s handle %#x (slot %d at generation %d)",
			kind, uint64(h), idx, g))
	}
	return p.slot(idx)
}

// release recycles the slot behind h. The generation bump invalidates
// every outstanding copy of the handle, so double frees panic too.
func (p *pool[T]) release(h Handle, kind string) {
	p.get(h, kind) // validates index and generation
	idx := h.Index()
	p.gens[idx]++
	if p.gens[idx] == 0 {
		// Generation wrapped; skip 0 so issued handles never read as
		// "not arena-managed".
		p.gens[idx] = 1
	}
	p.free = append(p.free, uint32(idx))
	p.stats.Live--
}

func (p *pool[T]) snapshot() PoolStats {
	s := p.stats
	s.Free = len(p.free)
	return s
}

// NewFlit allocates a zeroed flit. The flit stays valid until FreeFlit.
func (a *Arena) NewFlit() *Flit {
	f, h := a.flits.alloc()
	f.arena = a
	f.handle = h
	return f
}

// Flit resolves a flit handle, panicking when the handle is stale (the
// slot has been freed, and possibly recycled, since the handle was
// issued).
func (a *Arena) Flit(h Handle) *Flit { return a.flits.get(h, "flit") }

// FreeFlit returns f's slot to the arena. f must not be used afterwards;
// any retained Handle to it goes stale. Freeing a flit that is not
// arena-managed (heap-allocated, e.g. by flit.Segment) is a no-op;
// freeing a flit owned by another arena panics.
func (a *Arena) FreeFlit(f *Flit) {
	if f.arena == nil {
		return
	}
	if f.arena != a {
		panic("flit: flit freed into foreign arena")
	}
	h := f.handle
	f.arena = nil
	f.handle = 0
	a.flits.release(h, "flit")
}

// NewPacket allocates a zeroed packet. The packet pointer stays stable —
// trace players key in-flight state by it — until FreePacket.
func (a *Arena) NewPacket() *Packet {
	p, h := a.packets.alloc()
	p.arena = a
	p.handle = h
	return p
}

// Packet resolves a packet handle, panicking when stale.
func (a *Arena) Packet(h Handle) *Packet { return a.packets.get(h, "packet") }

// FreePacket recycles p. Packets not managed by any arena (plain
// heap-allocated ones from arena-unaware injectors) are ignored, so the
// endpoint can free unconditionally at ejection.
func (a *Arena) FreePacket(p *Packet) {
	if p.arena == nil {
		return
	}
	if p.arena != a {
		panic("flit: packet freed into foreign arena")
	}
	h := p.handle
	p.arena = nil
	p.handle = 0
	a.packets.release(h, "packet")
}

// Stats reports the arena's live/free/high-water accounting.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{Flits: a.flits.snapshot(), Packets: a.packets.snapshot()}
}
