// Package flit defines the units of data moved by the network: packets,
// the flits they are segmented into, and the credits returned by
// credit-based flow control.
package flit

import "fmt"

// Class labels a packet for measurement purposes. The simulator keeps
// separate latency statistics per class; Figure 9 of the paper plots only
// the Background class while Hotspot flows load the network.
type Class int

// Packet measurement classes.
const (
	// ClassBackground is ordinary measured traffic.
	ClassBackground Class = iota
	// ClassHotspot marks packets of the persistent hotspot flows of
	// Table 3; their latency is excluded from Figure 9's plots.
	ClassHotspot
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassBackground:
		return "background"
	case ClassHotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Packet is one message injected at a source endpoint and ejected at a
// destination endpoint. Packets are segmented into Size flits at injection.
type Packet struct {
	ID     uint64
	Src    int
	Dest   int
	Size   int // flits
	Class  Class
	Born   int64 // cycle the packet was created (offered to the source queue)
	Inject int64 // cycle the head flit entered the network
	Eject  int64 // cycle the tail flit left the network

	// Hops is incremented each time the head flit traverses a router.
	Hops int

	// arena/handle tie an arena-managed packet back to its slot; both
	// are zero for plain heap-allocated packets, which Arena.FreePacket
	// ignores.
	arena  *Arena
	handle Handle
}

// Handle returns the packet's arena handle, or 0 when the packet is not
// arena-managed.
func (p *Packet) Handle() Handle { return p.handle }

// Latency returns the packet latency in cycles, measured from creation
// (including source queueing) to tail ejection, as BookSim reports it.
func (p *Packet) Latency() int64 { return p.Eject - p.Born }

// NetworkLatency returns the latency excluding source queueing.
func (p *Packet) NetworkLatency() int64 { return p.Eject - p.Inject }

// Flit is the flow-control unit. A packet of Size 1 has a single flit that
// is both head and tail.
type Flit struct {
	Packet *Packet
	Seq    int // position within the packet, 0-based
	Head   bool
	Tail   bool

	// VC is the virtual channel the flit occupies on its current channel;
	// it is rewritten hop by hop by the VC allocator.
	VC int

	// arena/handle tie an arena-managed flit back to its slot; zero for
	// heap-allocated flits (Segment's output).
	arena  *Arena
	handle Handle
}

// Handle returns the flit's arena handle, or 0 when the flit is not
// arena-managed.
func (f *Flit) Handle() Handle { return f.handle }

// Segment splits a packet into its flits.
func Segment(p *Packet) []*Flit {
	if p.Size <= 0 {
		panic(fmt.Sprintf("flit: packet %d has non-positive size %d", p.ID, p.Size))
	}
	fs := make([]*Flit, p.Size)
	for i := range fs {
		fs[i] = &Flit{
			Packet: p,
			Seq:    i,
			Head:   i == 0,
			Tail:   i == p.Size-1,
		}
	}
	return fs
}

// Credit is the flow-control token returned upstream when a flit leaves an
// input buffer, freeing one slot of virtual channel VC.
type Credit struct {
	VC int
	// Tail reports that the freed slot held a tail flit; conservative
	// (Duato-style) VC reallocation waits for this credit before the
	// output VC can be re-assigned.
	Tail bool
}
