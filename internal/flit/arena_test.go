package flit

import (
	"math/rand"
	"testing"
)

// TestArenaRecycling covers the happy path: slots are reused LIFO, stats
// telescope, and handles of live slots resolve to the same address.
func TestArenaRecycling(t *testing.T) {
	a := NewArena()
	f1 := a.NewFlit()
	h1 := f1.Handle()
	if h1 == 0 {
		t.Fatal("arena flit has zero handle")
	}
	if got := a.Flit(h1); got != f1 {
		t.Fatal("Flit(handle) did not resolve to the allocated flit")
	}
	a.FreeFlit(f1)
	f2 := a.NewFlit()
	if f2 != f1 {
		t.Error("free-list did not recycle the slot")
	}
	if f2.Handle() == h1 {
		t.Error("recycled slot reissued the old generation")
	}
	if f2.Seq != 0 || f2.Head || f2.Packet != nil {
		t.Error("recycled flit not zeroed")
	}
	st := a.Stats()
	if st.Flits.Live != 1 || st.Flits.Allocs != 2 || st.Flits.Reused != 1 || st.Flits.HighWater != 1 {
		t.Errorf("stats = %+v", st.Flits)
	}
}

// TestArenaStaleHandlePanics is the core safety property in its simplest
// form: resolving a handle after its slot was freed (and recycled) must
// panic instead of aliasing the new tenant.
func TestArenaStaleHandlePanics(t *testing.T) {
	a := NewArena()
	f := a.NewFlit()
	h := f.Handle()
	a.FreeFlit(f)
	a.NewFlit() // recycle the slot for a new tenant
	mustPanic(t, "stale handle Get", func() { a.Flit(h) })
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena()
	p := a.NewPacket()
	a.FreePacket(p)
	// After the first free the packet no longer carries arena identity,
	// so a second FreePacket is an (intentional) no-op...
	a.FreePacket(p)
	// ...but releasing the original handle again must panic: the
	// generation already moved on.
	p2 := a.NewPacket()
	h := p2.Handle()
	a.FreePacket(p2)
	mustPanic(t, "stale handle release", func() { a.packets.release(h, "packet") })
}

func TestArenaForeignOwnership(t *testing.T) {
	a, b := NewArena(), NewArena()
	f := a.NewFlit()
	mustPanic(t, "foreign-arena free", func() { b.FreeFlit(f) })
	// Heap-allocated units are ignored, so callers can free
	// unconditionally.
	a.FreeFlit(&Flit{})
	a.FreePacket(&Packet{})
}

// TestArenaRandomizedAliasing is the property test of the invariant
// suite: under randomized alloc/free interleavings, (1) a handle taken
// before a free never resolves after it — generation mismatch panics —
// and (2) the live count always telescopes to allocs − frees, with
// distinct addresses for simultaneously-live flits.
func TestArenaRandomizedAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewArena()
	type liveFlit struct {
		f *Flit
		h Handle
	}
	var live []liveFlit
	stale := make(map[Handle]bool)
	allocs, frees := 0, 0

	for step := 0; step < 20000; step++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			f := a.NewFlit()
			h := f.Handle()
			if stale[h] {
				t.Fatalf("step %d: reissued a previously-freed handle %#x", step, uint64(h))
			}
			f.Seq = step // tag the tenant to catch aliasing below
			live = append(live, liveFlit{f, h})
			allocs++
		} else {
			i := rng.Intn(len(live))
			lf := live[i]
			if got := a.Flit(lf.h); got != lf.f || got.Seq != lf.f.Seq {
				t.Fatalf("step %d: live handle resolved to a different tenant", step)
			}
			a.FreeFlit(lf.f)
			stale[lf.h] = true
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			frees++
		}
		if st := a.Stats(); st.Flits.Live != allocs-frees {
			t.Fatalf("step %d: live %d, want allocs-frees %d", step, st.Flits.Live, allocs-frees)
		}
	}

	// Every stale handle must now panic, no matter how the slot was
	// recycled in the meantime.
	checked := 0
	for h := range stale {
		if checked >= 200 {
			break
		}
		checked++
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("stale handle %#x resolved without panic", uint64(h))
				}
			}()
			a.Flit(h)
		}()
	}
	st := a.Stats()
	if st.Flits.Live != len(live) || int(st.Flits.Allocs) != allocs {
		t.Errorf("final stats %+v, want live=%d allocs=%d", st.Flits, len(live), allocs)
	}
	if st.Flits.HighWater > allocs || st.Flits.HighWater < st.Flits.Live {
		t.Errorf("high-water %d out of range", st.Flits.HighWater)
	}
}

// TestArenaGenerationWrapSkipsZero pins the wraparound rule: generations
// never revisit 0, so an issued handle can never read as "not
// arena-managed".
func TestArenaGenerationWrapSkipsZero(t *testing.T) {
	a := NewArena()
	f := a.NewFlit()
	idx := f.Handle().Index()
	a.FreeFlit(f)
	a.flits.gens[idx] = ^uint32(0) // next release would wrap to 0
	f2 := a.NewFlit()
	if f2.Handle().Generation() != ^uint32(0) {
		t.Fatalf("expected max generation, got %d", f2.Handle().Generation())
	}
	a.FreeFlit(f2)
	if g := a.flits.gens[idx]; g != 1 {
		t.Errorf("generation after wrap = %d, want 1", g)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}
