package flit

import "testing"

func TestSegmentSingleFlit(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dest: 5, Size: 1}
	fs := Segment(p)
	if len(fs) != 1 {
		t.Fatalf("len = %d, want 1", len(fs))
	}
	f := fs[0]
	if !f.Head || !f.Tail {
		t.Errorf("single flit must be head and tail, got head=%v tail=%v", f.Head, f.Tail)
	}
	if f.Packet != p || f.Seq != 0 {
		t.Errorf("flit packet/seq wrong: %+v", f)
	}
}

func TestSegmentMultiFlit(t *testing.T) {
	p := &Packet{ID: 2, Size: 5}
	fs := Segment(p)
	if len(fs) != 5 {
		t.Fatalf("len = %d, want 5", len(fs))
	}
	for i, f := range fs {
		if f.Seq != i {
			t.Errorf("flit %d has seq %d", i, f.Seq)
		}
		if f.Head != (i == 0) {
			t.Errorf("flit %d head = %v", i, f.Head)
		}
		if f.Tail != (i == 4) {
			t.Errorf("flit %d tail = %v", i, f.Tail)
		}
	}
}

func TestSegmentPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Segment of size-0 packet did not panic")
		}
	}()
	Segment(&Packet{ID: 3, Size: 0})
}

func TestLatencies(t *testing.T) {
	p := &Packet{Born: 100, Inject: 130, Eject: 250}
	if got := p.Latency(); got != 150 {
		t.Errorf("Latency = %d, want 150", got)
	}
	if got := p.NetworkLatency(); got != 120 {
		t.Errorf("NetworkLatency = %d, want 120", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassBackground.String() != "background" || ClassHotspot.String() != "hotspot" {
		t.Error("class strings wrong")
	}
	if Class(7).String() != "Class(7)" {
		t.Errorf("unknown class: %q", Class(7).String())
	}
}
