package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// analyzeExhaustive enforces enum coverage: every switch over one of
// the module's integer enum types — router port directions
// (topo.Direction), packet measurement classes (flit.Class), VC request
// priorities (alloc.Priority), lifecycle event kinds (obs.EventKind) —
// must either list every constant of the type or carry a default that
// panics. A silent default turns "someone added a direction" into a
// mis-routed flit instead of a build-time error; the paper's turn-model
// legality arguments assume the port set is closed.
//
// Enum types are detected, not hard-coded: any named integer type
// declared in this module with at least two package-level constants
// counts. Constants named num* are sentinels (numDirections) and are
// not required.
var analyzeExhaustive = &Analyzer{
	Name:    "exhaustive",
	Doc:     "switches over module enum types cover every constant or panic in default",
	Applies: inModule,
	Run:     runExhaustive,
}

// enumConstant is one required constant of an enum type.
type enumConstant struct {
	name string
	val  int64
}

// enumConstantsOf lists the package-level constants of the named type
// declared alongside it, excluding num* sentinels. It returns nil when
// the type is not an enum for our purposes (fewer than two constants,
// non-integer underlying, declared outside the module).
func enumConstantsOf(n *types.Named) []enumConstant {
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := n.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	var out []enumConstant
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), n) {
			continue
		}
		if strings.HasPrefix(name, "num") {
			continue // cardinality sentinel, not a real enum member
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			continue
		}
		out = append(out, enumConstant{name: name, val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val < out[j].val })
	if len(out) < 2 {
		return nil
	}
	return out
}

func runExhaustive(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			sw, ok := node.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			n := namedType(p.Info.Types[sw.Tag].Type)
			if n == nil {
				return true
			}
			enum := enumConstantsOf(n)
			if enum == nil {
				return true
			}

			covered := map[int64]bool{}
			verifiable := true
			var defaultClause *ast.CaseClause
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, e := range cc.List {
					tv := p.Info.Types[e]
					if tv.Value == nil {
						verifiable = false // a non-constant case defeats coverage proof
						continue
					}
					if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
						covered[v] = true
					}
				}
			}

			var missing []string
			for _, c := range enum {
				if !covered[c.val] {
					missing = append(missing, c.name)
				}
			}
			if verifiable && len(missing) == 0 {
				return true
			}
			if defaultClause != nil && clausePanics(p, defaultClause) {
				return true
			}
			label := typeLabel(n)
			if !verifiable {
				out = append(out, finding(p, sw.Pos(), "exhaustive",
					fmt.Sprintf("switch over %s has non-constant cases; coverage cannot be proven — add a panicking default", label)))
				return true
			}
			out = append(out, finding(p, sw.Pos(), "exhaustive",
				fmt.Sprintf("switch over %s misses %s; add the cases or a panicking default", label, strings.Join(missing, ", "))))
			return true
		})
	}
	return out
}

// clausePanics reports whether a case clause body contains a call to
// the panic builtin (anywhere in the clause, so wrapped panics like
// panic(fmt.Sprintf(...)) count).
func clausePanics(p *Package, cc *ast.CaseClause) bool {
	for _, stmt := range cc.Body {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p.Info, call, "panic") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
