package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeArenaEscape enforces the arena discipline PR 8 introduced:
// flits and packets live in per-run arenas addressed by generation-
// tagged handles, and the whole point of the generation check is that a
// stale reference panics at its use site instead of corrupting a later
// run. That protection has two static blind spots this rule closes:
//
//   - Escape to package state. A *Flit/*Packet pointer or a Handle
//     stored in a package-level variable outlives its run; the next run
//     reuses the arena slot and the stored reference silently aliases a
//     different packet (pointers) or panics long after the real bug
//     (handles). The rule flags package-level declarations whose type
//     structurally contains an arena type, and assignments that store an
//     arena-typed value through a package-level variable (map inserts,
//     appends to package slices).
//
//   - Use after free on the same path. Within one statement block, using
//     a handle variable after it was passed to FreeFlit/FreePacket —
//     directly or through a module function that transitively frees that
//     parameter — is flagged. Rebinding the variable clears the taint;
//     frees inside nested control flow are not propagated outward
//     (conservative: no false positives from branches that may not run).
//
// Arena packages are recognized structurally — a module package
// declaring a type Arena with FreeFlit and FreePacket methods — so the
// rule needs no hardcoded import path and applies to fixtures.
var analyzeArenaEscape = &ProgramAnalyzer{
	Name: "arenaescape",
	Doc:  "arena-backed flit/packet pointers and handles never outlive their run or their Free",
	Run:  runArenaEscape,
}

// arenaTypeNames are the run-scoped types of an arena package.
var arenaTypeNames = map[string]bool{"Flit": true, "Packet": true, "Handle": true}

func runArenaEscape(prog *Program) []Finding {
	arenaPkgs := arenaPackages(prog)
	if len(arenaPkgs) == 0 {
		return nil
	}
	isArena := func(t types.Type) bool {
		n := namedType(t)
		if n == nil || n.Obj().Pkg() == nil {
			return false
		}
		return arenaPkgs[n.Obj().Pkg().Path()] && arenaTypeNames[n.Obj().Name()]
	}
	contains := func(t types.Type) bool { return containsArenaType(t, isArena, map[types.Type]bool{}) }

	frees := freeSummaries(prog, arenaPkgs)

	var out []Finding
	for _, p := range prog.Packages {
		if !inModule(p.Path) {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch x := d.(type) {
				case *ast.GenDecl:
					// Package-level vars holding arena state.
					for _, spec := range x.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							v, ok := p.Info.Defs[name].(*types.Var)
							if !ok || v.Parent() != p.Pkg.Scope() {
								continue
							}
							if contains(v.Type()) {
								out = append(out, finding(p, name.Pos(), "arenaescape",
									fmt.Sprintf("package-level %s holds arena-backed state (%s); arena references must not outlive their run",
										name.Name, v.Type())))
							}
						}
					}
				case *ast.FuncDecl:
					if x.Body == nil {
						continue
					}
					out = append(out, arenaStores(p, x, contains)...)
					out = append(out, useAfterFree(prog, p, x, arenaPkgs, frees)...)
				}
			}
		}
	}
	return out
}

// arenaPackages finds every module package (among the program's packages
// and their imports) declaring a type Arena with FreeFlit and FreePacket
// methods.
func arenaPackages(prog *Program) map[string]bool {
	found := map[string]bool{}
	check := func(pkg *types.Package) {
		if pkg == nil || found[pkg.Path()] || !inModule(pkg.Path()) {
			return
		}
		tn, ok := pkg.Scope().Lookup("Arena").(*types.TypeName)
		if !ok {
			return
		}
		ms := types.NewMethodSet(types.NewPointer(tn.Type()))
		hasFlit, hasPacket := false, false
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "FreeFlit":
				hasFlit = true
			case "FreePacket":
				hasPacket = true
			}
		}
		if hasFlit && hasPacket {
			found[pkg.Path()] = true
		}
	}
	for _, p := range prog.Packages {
		check(p.Pkg)
		if p.Pkg != nil {
			for _, imp := range p.Pkg.Imports() {
				check(imp)
			}
		}
	}
	return found
}

// containsArenaType walks a type structurally (structs, arrays, slices,
// maps, pointers, channels) looking for an arena type. Function and
// interface types are opaque: passing a handle to a function is the
// normal calling convention, not storage.
func containsArenaType(t types.Type, isArena func(types.Type) bool, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isArena(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return containsArenaType(u.Elem(), isArena, seen)
	case *types.Slice:
		return containsArenaType(u.Elem(), isArena, seen)
	case *types.Array:
		return containsArenaType(u.Elem(), isArena, seen)
	case *types.Chan:
		return containsArenaType(u.Elem(), isArena, seen)
	case *types.Map:
		return containsArenaType(u.Key(), isArena, seen) || containsArenaType(u.Elem(), isArena, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsArenaType(u.Field(i).Type(), isArena, seen) {
				return true
			}
		}
	}
	return false
}

// arenaStores flags assignments that store arena-typed values through a
// package-level variable.
func arenaStores(p *Package, fd *ast.FuncDecl, contains func(types.Type) bool) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			base, _ := leftmostIdent(lhs)
			if base == nil || base.Name == "_" {
				continue
			}
			v, ok := p.Info.ObjectOf(base).(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(as.Rhs) == len(as.Lhs):
				rhs = as.Rhs[i]
			case len(as.Rhs) == 1:
				rhs = as.Rhs[0]
			default:
				continue
			}
			if tv, ok := p.Info.Types[rhs]; ok && tv.Type != nil && contains(tv.Type) {
				out = append(out, finding(p, lhs.Pos(), "arenaescape",
					fmt.Sprintf("stores arena-backed state into package-level %s; arena references must not outlive their run", base.Name)))
			}
		}
		return true
	})
	return out
}

// freeSummaries computes, for every module function, which parameter
// indices it transitively passes to an arena Free method. The summary
// makes the use-after-free scan interprocedural: a helper that frees its
// handle argument taints that argument at every call site.
func freeSummaries(prog *Program, arenaPkgs map[string]bool) map[string]map[int]bool {
	sums := map[string]map[int]bool{}
	var visit func(node *FuncNode, active map[string]bool) map[int]bool
	visit = func(node *FuncNode, active map[string]bool) map[int]bool {
		if s, ok := sums[node.Key]; ok {
			return s
		}
		if active[node.Key] {
			return nil
		}
		active[node.Key] = true
		defer delete(active, node.Key)

		params := map[types.Object]int{}
		sig := node.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			params[sig.Params().At(i)] = i
		}
		s := map[int]bool{}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			freed := freedArgIndices(prog, node.Pkg, call, arenaPkgs, func(callee *FuncNode) map[int]bool {
				return visit(callee, active)
			})
			for _, ai := range freed {
				if ai >= len(call.Args) {
					continue
				}
				if id, ok := ast.Unparen(call.Args[ai]).(*ast.Ident); ok {
					if pi, ok := params[node.Pkg.Info.ObjectOf(id)]; ok {
						s[pi] = true
					}
				}
			}
			return true
		})
		sums[node.Key] = s
		return s
	}
	for _, node := range prog.Funcs {
		visit(node, map[string]bool{})
	}
	return sums
}

// freedArgIndices returns the indices of call arguments that this call
// frees: all arguments of a direct Arena Free method, or the callee's
// freed parameters for a module-local call.
func freedArgIndices(prog *Program, p *Package, call *ast.CallExpr, arenaPkgs map[string]bool,
	calleeSummary func(*FuncNode) map[int]bool) []int {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if fn.Name() == "FreeFlit" || fn.Name() == "FreePacket" {
			if n := namedType(sig.Recv().Type()); n != nil && n.Obj().Name() == "Arena" &&
				n.Obj().Pkg() != nil && arenaPkgs[n.Obj().Pkg().Path()] {
				idx := make([]int, len(call.Args))
				for i := range idx {
					idx[i] = i
				}
				return idx
			}
		}
	}
	if node := prog.Funcs[funcKeyOf(fn)]; node != nil {
		var idx []int
		for i := range calleeSummary(node) {
			idx = append(idx, i)
		}
		return idx
	}
	return nil
}

// useAfterFree scans each statement block linearly: once a variable is
// passed to a freeing call, any later use of it in the same block is
// flagged until it is rebound.
func useAfterFree(prog *Program, p *Package, fd *ast.FuncDecl, arenaPkgs map[string]bool, frees map[string]map[int]bool) []Finding {
	var out []Finding
	sumOf := func(node *FuncNode) map[int]bool { return frees[node.Key] }

	var scanBlock func(stmts []ast.Stmt)
	scanBlock = func(stmts []ast.Stmt) {
		freed := map[types.Object]ast.Node{} // var → the freeing call
		for _, st := range stmts {
			// Recurse into nested blocks first (their own linear scans);
			// frees inside them do not taint this block's tail.
			switch x := st.(type) {
			case *ast.BlockStmt:
				scanBlock(x.List)
			case *ast.IfStmt:
				scanBlock(x.Body.List)
				if eb, ok := x.Else.(*ast.BlockStmt); ok {
					scanBlock(eb.List)
				}
			case *ast.ForStmt:
				scanBlock(x.Body.List)
			case *ast.RangeStmt:
				scanBlock(x.Body.List)
			case *ast.SwitchStmt:
				for _, c := range x.Body.List {
					scanBlock(c.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, c := range x.Body.List {
					scanBlock(c.(*ast.CaseClause).Body)
				}
			}

			// Uses of already-freed variables in this statement.
			if len(freed) > 0 {
				reported := map[types.Object]bool{}
				ast.Inspect(st, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := p.Info.ObjectOf(id)
					if obj == nil || reported[obj] {
						return true
					}
					if _, isFreed := freed[obj]; isFreed && !isRebinding(st, id) {
						reported[obj] = true
						out = append(out, finding(p, id.Pos(), "arenaescape",
							fmt.Sprintf("%s used after being freed on this path", id.Name)))
					}
					return true
				})
			}

			// Rebinding clears the taint.
			if as, ok := st.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						delete(freed, p.Info.ObjectOf(id))
					}
				}
			}

			// New frees introduced by this statement (only at this block's
			// level: branch-local frees stay branch-local).
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					for _, ai := range freedArgIndices(prog, p, call, arenaPkgs, sumOf) {
						if ai >= len(call.Args) {
							continue
						}
						if id, ok := ast.Unparen(call.Args[ai]).(*ast.Ident); ok {
							if obj := p.Info.ObjectOf(id); obj != nil {
								freed[obj] = call
							}
						}
					}
				}
			}
		}
	}
	scanBlock(fd.Body.List)
	return out
}

// isRebinding reports whether id appears as a plain assignment target of
// st (the rebinding itself is not a use).
func isRebinding(st ast.Stmt, id *ast.Ident) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if ast.Unparen(lhs) == ast.Expr(id) {
			return true
		}
	}
	return false
}
