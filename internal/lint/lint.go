// Package lint implements noclint, the repository's domain-aware static
// analysis suite. The simulator's headline guarantee — bit-identical
// results at any -jobs value, paired seeds per traffic cell — is dynamic
// by nature: a golden test only catches nondeterminism on the path it
// happens to execute. noclint encodes the invariants behind that
// guarantee as machine-checked rules over the module's syntax trees and
// type information, so a future change cannot silently reintroduce a
// wall-clock read, an unordered map walk in an exporter, a side effect
// in a routing function, or ad-hoc seed arithmetic.
//
// The suite is pure standard library (go/parser + go/types with the
// source importer); run it from the module root:
//
//	go run ./cmd/noclint ./...
//
// A finding can be waived at a specific line with a suppression comment
// carrying the rule name and a reason:
//
//	s.wallStart = time.Now() //noclint:allow determinism wall-clock self-metrics only
//
// The comment may also sit on the line directly above the flagged one.
// Suppressions without a reason, or naming an unknown rule, are
// themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package bundles one type-checked package for the analyzers: its syntax
// trees, the shared file set, and full type information.
type Package struct {
	// Path is the package's import path. Fixture packages are loaded
	// under synthetic paths so path-scoped rules apply to them.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one checked invariant: a rule name (the suppression key),
// a one-line contract, a package-path scope, and the checker itself.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the rule is in force for a package path.
	Applies func(pkgPath string) bool
	Run     func(p *Package) []Finding
}

// Analyzers returns the full rule suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzeDeterminism,
		analyzeExhaustive,
		analyzeMapOrder,
		analyzeRoutePurity,
		analyzeSeedIdentity,
	}
}

// knownRules returns the valid //noclint:allow rule names.
func knownRules() map[string]bool {
	m := map[string]bool{ruleTypecheck: true}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	for _, a := range ProgramAnalyzers() {
		m[a.Name] = true
	}
	return m
}

// deterministicRoots are the packages whose code feeds simulation
// results: everything under them must be a pure function of Config and
// seed. obs and cli sit outside — they observe runs (wall-clock speed,
// uptime) without feeding results back in. internal/prof is in scope on
// purpose: it exists to concentrate the module's one sanctioned
// wall-clock read behind a single waived seam (prof.Now), so a new
// time.Now anywhere else in these roots — including prof itself — is a
// finding.
var deterministicRoots = []string{
	"nocsim/internal/sim",
	"nocsim/internal/exp",
	"nocsim/internal/router",
	"nocsim/internal/routing",
	"nocsim/internal/network",
	"nocsim/internal/prof",
}

// underAny reports whether path is one of roots or nested below one.
func underAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// inModule reports whether path belongs to this module (module-wide
// rules apply to it).
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// modulePath is the import path of the module under analysis.
const modulePath = "nocsim"

// Loader parses and type-checks packages against a shared file set and
// source importer, so repeated loads reuse the checked dependency graph.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader. The source importer resolves imports by
// type-checking dependencies from source; it must run with the module
// root as working directory so module-relative imports resolve.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Parse reads the non-test Go files of dir into a Package with syntax
// only — no type information. Enough for the suppression scanner; the
// analyzers need a full Load.
func (l *Loader) Parse(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return &Package{Path: asPath, Fset: l.fset, Files: files}, nil
}

// Load parses the non-test Go files of dir and type-checks them as
// import path asPath. Type errors are returned as findings (rule
// "typecheck") rather than aborting, so a partially broken tree still
// gets the rest of its report.
func (l *Loader) Load(dir, asPath string) (*Package, []Finding, error) {
	p, err := l.Parse(dir, asPath)
	if err != nil {
		return nil, nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var tfs []Finding
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				tfs = append(tfs, Finding{Pos: te.Fset.Position(te.Pos), Rule: ruleTypecheck, Msg: te.Msg})
			} else {
				tfs = append(tfs, Finding{Rule: ruleTypecheck, Msg: err.Error()})
			}
		},
	}
	pkg, _ := conf.Check(asPath, l.fset, p.Files, info)
	p.Pkg, p.Info = pkg, info
	return p, tfs, nil
}

// Check runs every applicable analyzer on p and returns the surviving
// findings after suppression filtering, sorted. Single-package
// convenience over CheckAll: interprocedural rules see only p, so
// obligations normally discharged in another package may surface.
func Check(p *Package) []Finding {
	active, _ := CheckAll([]*Package{p})
	return active
}

// CheckAll runs the whole suite — per-package analyzers on each package,
// then the interprocedural ProgramAnalyzers over all of them at once —
// and splits the results into active findings (including malformed
// suppressions) and findings waived by //noclint:allow comments. Both
// slices come back sorted.
func CheckAll(pkgs []*Package) (active, waived []Finding) {
	var raw []Finding
	var allows []allowance
	var bad []Finding
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			if !a.Applies(p.Path) {
				continue
			}
			raw = append(raw, a.Run(p)...)
		}
		as, b := collectAllowances(p)
		allows = append(allows, as...)
		bad = append(bad, b...)
	}
	prog := BuildProgram(pkgs)
	for _, a := range ProgramAnalyzers() {
		raw = append(raw, a.Run(prog)...)
	}
	active, waived = filterWaived(raw, allows)
	active = append(active, bad...)
	SortFindings(active)
	SortFindings(waived)
	return active, waived
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// PackageDirs lists the directories under root holding at least one
// non-test Go file, skipping testdata, vendor and hidden trees. Paths
// come back sorted and root-relative ("." for the root package).
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = compactStrings(dirs)
	return dirs, nil
}

// compactStrings removes adjacent duplicates from a sorted slice.
func compactStrings(s []string) []string {
	out := s[:0]
	for _, v := range s {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// importPathFor maps a root-relative package directory to its import
// path.
func importPathFor(rel string) string {
	if rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}
