package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzeSinkCap enforces the metrics capability seam. MetricsSink
// implementations advertise what they can absorb (WantPacketEvents,
// WantRouteDecisions) and the hot path consults those answers — cached
// in fields like wantEvents — before paying for event construction.
// A sink method invoked outside its capability guard either crashes on
// a nil sink or silently re-introduces the per-event allocation cost the
// seam exists to avoid, and nothing at runtime would notice: sinks that
// answer true still see every event.
//
// The rule requires every MetricsSink method call to be dominated by an
// if-statement testing the matching capability — either a direct Want*
// call or a variable assigned from one. The check is interprocedural: a
// function making an unguarded sink call simply passes the obligation to
// its callers (emitDecision's OnRouteDecision is discharged by the
// wantDecisions guard at its call site); only an obligation that escapes
// the module's static call graph unguarded is a finding, reported at the
// original sink call. Methods of types that themselves implement
// MetricsSink (fan-out tees, no-op sinks) are the seam's plumbing and
// are exempt. OnVCAllocFailure is exempt by documented design: it is the
// one always-on event, gated only by the nil check.
var analyzeSinkCap = &ProgramAnalyzer{
	Name: "sinkcap",
	Doc:  "every MetricsSink method call is dominated by its capability check",
	Run:  runSinkCap,
}

// sinkCapability maps each guarded MetricsSink method to the capability
// that must dominate it. OnVCAllocFailure is deliberately absent.
var sinkCapability = map[string]string{
	"OnInject":        "WantPacketEvents",
	"OnRoute":         "WantPacketEvents",
	"OnVCAllocGrant":  "WantPacketEvents",
	"OnHeadTraverse":  "WantPacketEvents",
	"OnEject":         "WantPacketEvents",
	"OnRouteDecision": "WantRouteDecisions",
}

// sinkObligation is one unguarded sink call propagating up the call
// graph until some call site guards it.
type sinkObligation struct {
	cap string
	pos token.Pos
}

func runSinkCap(prog *Program) []Finding {
	ifaces := sinkInterfaces(prog)
	if len(ifaces) == 0 {
		return nil
	}
	implementsSink := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if n := namedType(t); n != nil && n.Obj().Name() == "MetricsSink" {
			return true
		}
		for _, iface := range ifaces {
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
		return false
	}

	capVars := capabilityVars(prog)

	// guarded reports whether an ancestor if-statement whose then-branch
	// contains the node tests cap: a direct Want* call in the condition,
	// or a variable assigned from one.
	guarded := func(p *Package, stack []ast.Node, capName string) bool {
		for i, n := range stack {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || i+1 >= len(stack) || stack[i+1] != ast.Node(ifs.Body) {
				continue
			}
			hit := false
			ast.Inspect(ifs.Cond, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == capName {
						hit = true
					}
				case *ast.Ident:
					if obj := p.Info.ObjectOf(x); obj != nil && capVars[capName][obj] {
						hit = true
					}
				}
				return !hit
			})
			if hit {
				return true
			}
		}
		return false
	}

	type callSite struct {
		callee  string
		guards  map[string]bool // capabilities guarded at this site
		present bool
	}
	type funcFacts struct {
		own   []sinkObligation // unguarded sink calls in this body
		sites []callSite       // static module-local call sites
	}
	facts := map[string]*funcFacts{}
	callers := map[string]int{} // static in-degree within the module

	for _, node := range prog.Funcs {
		if !inModule(node.Pkg.Path) {
			continue
		}
		if sig, ok := node.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if implementsSink(sig.Recv().Type()) {
				continue // sink plumbing: tees, no-op sinks
			}
		}
		ff := &funcFacts{}
		walkNodeWithStack(node.Decl.Body, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if capName, isSink := sinkCapability[sel.Sel.Name]; isSink {
					if tv, ok := node.Pkg.Info.Types[sel.X]; ok && implementsSink(tv.Type) {
						if !guarded(node.Pkg, stack, capName) {
							ff.own = append(ff.own, sinkObligation{cap: capName, pos: sel.Sel.Pos()})
						}
						return
					}
				}
			}
			if callee := prog.callee(node.Pkg, call); callee != nil && callee.Key != node.Key {
				cs := callSite{callee: callee.Key, guards: map[string]bool{}, present: true}
				for capName := range capVars {
					if guarded(node.Pkg, stack, capName) {
						cs.guards[capName] = true
					}
				}
				ff.sites = append(ff.sites, cs)
				callers[callee.Key]++
			}
		})
		facts[node.Key] = ff
	}

	// Fixed point by memoized DFS: a function's unmet obligations are its
	// own unguarded sink calls plus callees' obligations not guarded at
	// the call site.
	memo := map[string][]sinkObligation{}
	active := map[string]bool{}
	var obligations func(key string) []sinkObligation
	obligations = func(key string) []sinkObligation {
		if o, ok := memo[key]; ok {
			return o
		}
		if active[key] {
			return nil
		}
		active[key] = true
		defer delete(active, key)
		ff := facts[key]
		if ff == nil {
			return nil
		}
		out := append([]sinkObligation(nil), ff.own...)
		for _, cs := range ff.sites {
			for _, ob := range obligations(cs.callee) {
				if !cs.guards[ob.cap] {
					out = append(out, ob)
				}
			}
		}
		memo[key] = out
		return out
	}

	// An obligation still unmet at a function nothing in the module calls
	// has escaped every chance of being guarded.
	seen := map[token.Pos]bool{}
	var findings []Finding
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if callers[key] > 0 {
			continue
		}
		for _, ob := range obligations(key) {
			if seen[ob.pos] {
				continue
			}
			seen[ob.pos] = true
			findings = append(findings, Finding{Pos: prog.position(ob.pos), Rule: "sinkcap",
				Msg: fmt.Sprintf("MetricsSink call is not dominated by a %s capability check on any path reaching it", ob.cap)})
		}
	}
	return findings
}

// sinkInterfaces collects every interface named MetricsSink declaring
// both capability methods, from the program's packages and their
// imports. Multiple structurally-identical copies exist because each
// target package is type-checked separately; Implements is structural,
// so checking against each copy is redundant but harmless.
func sinkInterfaces(prog *Program) []*types.Interface {
	var out []*types.Interface
	add := func(pkg *types.Package) {
		if pkg == nil || !inModule(pkg.Path()) {
			return
		}
		tn, ok := pkg.Scope().Lookup("MetricsSink").(*types.TypeName)
		if !ok {
			return
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			return
		}
		hasEvents, hasDecisions := false, false
		for i := 0; i < iface.NumMethods(); i++ {
			switch iface.Method(i).Name() {
			case "WantPacketEvents":
				hasEvents = true
			case "WantRouteDecisions":
				hasDecisions = true
			}
		}
		if hasEvents && hasDecisions {
			out = append(out, iface)
		}
	}
	for _, p := range prog.Packages {
		add(p.Pkg)
		if p.Pkg != nil {
			for _, imp := range p.Pkg.Imports() {
				add(imp)
			}
		}
	}
	return out
}

// capabilityVars finds every variable (including struct fields) assigned
// from an expression that calls a capability method — the cached-answer
// pattern `r.wantEvents = m != nil && m.WantPacketEvents()`.
func capabilityVars(prog *Program) map[string]map[types.Object]bool {
	vars := map[string]map[types.Object]bool{
		"WantPacketEvents":   {},
		"WantRouteDecisions": {},
	}
	for _, p := range prog.Packages {
		if !inModule(p.Path) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					var rhs ast.Expr
					switch {
					case len(as.Rhs) == len(as.Lhs):
						rhs = as.Rhs[i]
					case len(as.Rhs) == 1:
						rhs = as.Rhs[0]
					default:
						continue
					}
					capName := capabilityCallIn(rhs)
					if capName == "" {
						continue
					}
					var obj types.Object
					switch x := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						obj = p.Info.ObjectOf(x)
					case *ast.SelectorExpr:
						obj = p.Info.ObjectOf(x.Sel)
					}
					if obj != nil {
						vars[capName][obj] = true
					}
				}
				return true
			})
		}
	}
	return vars
}

// capabilityCallIn reports the capability method called anywhere inside
// e, or "".
func capabilityCallIn(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "WantPacketEvents", "WantRouteDecisions":
				found = sel.Sel.Name
			}
		}
		return found == ""
	})
	return found
}

// walkNodeWithStack is walkWithStack over an arbitrary subtree.
func walkNodeWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
