package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the dataflow walker behind the cacheread and
// rngorder rules: an abstract interpreter over Route decision trees that
// tracks where each value came from — the decision Context, its View,
// its Rand, the current or destination node — through locals,
// assignments, type assertions and module-local calls (context-sensitive
// inlining with memoization on the argument-source signature).
//
// The abstraction mirrors the route cache's key argument (see
// internal/routing/cache.go): the fingerprint always packs the
// destination offset and arrival port, so values derived from BOTH the
// current and the destination node (coordinate differences, node-id
// equality) are key-covered by construction, while values derived from
// ONE of them absolutely (a column parity, a destination class) need a
// declared facet. View reads map to facets by method name. Paths that
// end in panic are skipped: a panicking decision never produces a cache
// entry, so its reads cannot desync one.

// srcTag abstracts a value's provenance.
type srcTag int

const (
	srcNone      srcTag = iota
	srcRecv             // the algorithm receiver
	srcDelegate         // a receiver field the CacheSpec derives from
	srcCtx              // the *Context parameter
	srcMesh             // ctx.Mesh
	srcView             // ctx.View (and views asserted from it)
	srcRand             // ctx.Rand
	srcViewVal          // result of a facet-mapped View method call
	srcCur              // ctx.Cur and node ids derived from it
	srcDest             // ctx.Dest and node ids derived from it
	srcCoordCur         // mesh coordinates of a srcCur node (and their fields)
	srcCoordDest        // mesh coordinates of a srcDest node (and their fields)
)

func (t srcTag) String() string {
	switch t {
	case srcNone:
		return "an untracked value"
	case srcRecv:
		return "the algorithm receiver"
	case srcDelegate:
		return "the delegated base algorithm"
	case srcCtx:
		return "the routing context"
	case srcMesh:
		return "the mesh"
	case srcView:
		return "the router view"
	case srcRand:
		return "the decision RNG"
	case srcViewVal:
		return "a view-derived value"
	case srcCur:
		return "the current node id"
	case srcDest:
		return "the destination node id"
	case srcCoordCur:
		return "the current node's coordinates"
	case srcCoordDest:
		return "the destination's coordinates"
	}
	return "an untracked value"
}

func isCoordTag(t srcTag) bool { return t == srcCoordCur || t == srcCoordDest }
func isNodeTag(t srcTag) bool  { return t == srcCur || t == srcDest }

// isRootTag reports tags that must not leak into unanalyzable calls.
func isRootTag(t srcTag) bool {
	switch t {
	case srcCtx, srcView, srcRand, srcCoordCur, srcCoordDest, srcCur, srcDest:
		return true
	case srcNone, srcRecv, srcDelegate, srcMesh, srcViewVal:
		return false
	}
	return false
}

// viewFacets maps View/AggregateView/BitsView method names to the
// CacheSpec facet that keys their result. Names mapping to "" are
// structural (VC count) and need no facet.
var viewFacets = map[string]string{
	"VCs":            "",
	"VCIdle":         "Idle",
	"IdleCount":      "Idle",
	"IdleBits":       "Idle",
	"VCOwner":        "Owner",
	"OwnerBits":      "Owner",
	"FootprintCount": "Owner",
	"VCRegOwner":     "RegOwner",
	"RegOwnerBits":   "RegOwner",
	"DownstreamIdle": "Downstream",
}

// benignAlgMethods are Algorithm interface methods whose results are
// fixed at construction: calling them on the delegated base reads no
// per-decision state.
var benignAlgMethods = map[string]bool{
	"Name":                true,
	"UsesEscape":          true,
	"ConservativeRealloc": true,
	"CacheSpec":           true,
	"String":              true,
}

// facetUse is one facet requirement discovered in a Route tree.
type facetUse struct {
	facet string
	pos   token.Pos
	what  string
}

// routeWalker drives one root's traversal. Hooks are optional: cacheread
// installs onFacet/onFinding, rngorder installs onDraw/onFinding.
type routeWalker struct {
	prog      *Program
	delegates map[string]bool
	onFacet   func(facetUse)
	onFinding func(pos token.Pos, msg string)
	onDraw    func(recv srcTag, pos token.Pos)
	memo      map[string][]srcTag
	active    map[string]bool
}

func newRouteWalker(prog *Program, delegates map[string]bool) *routeWalker {
	if delegates == nil {
		delegates = map[string]bool{}
	}
	return &routeWalker{
		prog:      prog,
		delegates: delegates,
		memo:      map[string][]srcTag{},
		active:    map[string]bool{},
	}
}

func (w *routeWalker) facet(name string, pos token.Pos, what string) {
	if w.onFacet != nil {
		w.onFacet(facetUse{facet: name, pos: pos, what: what})
	}
}

func (w *routeWalker) finding(pos token.Pos, msg string) {
	if w.onFinding != nil {
		w.onFinding(pos, msg)
	}
}

// walkFunc interprets node with the receiver and parameters bound to the
// given tags and returns the tags of its results. Memoized on
// (function, binding signature); cycles yield untagged results.
func (w *routeWalker) walkFunc(node *FuncNode, recvTag srcTag, argTags []srcTag) []srcTag {
	sig := node.Obj.Type().(*types.Signature)
	nres := sig.Results().Len()
	key := bindingKey(node.Key, recvTag, argTags)
	if res, ok := w.memo[key]; ok {
		return res
	}
	if w.active[key] {
		return make([]srcTag, nres)
	}
	w.active[key] = true
	defer delete(w.active, key)

	b := &bodyWalker{w: w, node: node, bind: map[types.Object]srcTag{}, results: make([]srcTag, nres)}
	// Bind the receiver.
	if fd := node.Decl; fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := node.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			b.bind[obj] = recvTag
		}
	}
	// Bind parameters positionally; a variadic tail joins its extras.
	i := 0
	for _, field := range node.Decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 { // unnamed parameter still consumes a slot
			i++
			continue
		}
		for _, name := range names {
			t := srcNone
			if i < len(argTags) {
				t = argTags[i]
			}
			if i == sig.Params().Len()-1 && sig.Variadic() {
				for j := i; j < len(argTags); j++ {
					t = joinTag(t, argTags[j])
				}
			}
			if obj := node.Pkg.Info.Defs[name]; obj != nil {
				b.bind[obj] = t
			}
			i++
		}
	}
	b.stmt(node.Decl.Body)
	// Naked returns read the named result variables.
	w.memo[key] = b.results
	return b.results
}

func bindingKey(funcKey string, recvTag srcTag, argTags []srcTag) string {
	var sb strings.Builder
	sb.WriteString(funcKey)
	sb.WriteByte('#')
	sb.WriteByte(byte('a' + recvTag))
	for _, t := range argTags {
		sb.WriteByte(byte('a' + t))
	}
	return sb.String()
}

func joinTag(a, b srcTag) srcTag {
	switch {
	case a == b:
		return a
	case a == srcNone:
		return b
	case b == srcNone:
		return a
	}
	return srcNone
}

// bodyWalker interprets one function body under one binding.
type bodyWalker struct {
	w       *routeWalker
	node    *FuncNode
	bind    map[types.Object]srcTag
	results []srcTag
}

func (b *bodyWalker) info() *types.Info { return b.node.Pkg.Info }

func (b *bodyWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range x.List {
			b.stmt(st)
		}
	case *ast.AssignStmt:
		b.assign(x.Lhs, x.Rhs)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					b.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		b.expr(x.X)
	case *ast.IfStmt:
		b.stmt(x.Init)
		b.expr(x.Cond)
		b.stmt(x.Body)
		b.stmt(x.Else)
	case *ast.SwitchStmt:
		b.stmt(x.Init)
		if x.Tag != nil {
			b.expr(x.Tag)
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				b.expr(e)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		b.stmt(x.Init)
		var t srcTag
		switch a := x.Assign.(type) {
		case *ast.AssignStmt:
			if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				t = b.expr(ta.X)
			}
		case *ast.ExprStmt:
			if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
				b.expr(ta.X)
			}
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			if obj := b.info().Implicits[cc]; obj != nil {
				b.bind[obj] = t
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
		}
	case *ast.ForStmt:
		b.stmt(x.Init)
		if x.Cond != nil {
			b.expr(x.Cond)
		}
		b.stmt(x.Post)
		b.stmt(x.Body)
	case *ast.RangeStmt:
		b.expr(x.X)
		b.bindLHS(x.Key, srcNone)
		b.bindLHS(x.Value, srcNone)
		b.stmt(x.Body)
	case *ast.ReturnStmt:
		if len(x.Results) == 0 {
			// Naked return: read the named result variables.
			sig := b.node.Obj.Type().(*types.Signature)
			for i := 0; i < sig.Results().Len(); i++ {
				if v := sig.Results().At(i); v != nil {
					if t, ok := b.bind[v]; ok {
						b.results[i] = joinTag(b.results[i], t)
					}
				}
			}
			return
		}
		if len(x.Results) == 1 && len(b.results) > 1 {
			if call, ok := ast.Unparen(x.Results[0]).(*ast.CallExpr); ok {
				for i, t := range b.call(call) {
					if i < len(b.results) {
						b.results[i] = joinTag(b.results[i], t)
					}
				}
				return
			}
		}
		for i, r := range x.Results {
			if i < len(b.results) {
				b.results[i] = joinTag(b.results[i], b.expr(r))
			}
		}
	case *ast.IncDecStmt:
		b.expr(x.X)
	case *ast.SendStmt:
		b.expr(x.Chan)
		b.expr(x.Value)
	case *ast.DeferStmt:
		b.call(x.Call)
	case *ast.GoStmt:
		b.call(x.Call)
	case *ast.LabeledStmt:
		b.stmt(x.Stmt)
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			b.stmt(cc.Comm)
			for _, st := range cc.Body {
				b.stmt(st)
			}
		}
	}
}

// assign evaluates an assignment, propagating tags onto plain-identifier
// targets. Multi-value forms (call, type assertion, comma-ok) spread the
// result tags positionally.
func (b *bodyWalker) assign(lhs, rhs []ast.Expr) {
	switch {
	case len(rhs) == 0:
		for _, l := range lhs {
			b.bindLHS(l, srcNone)
		}
	case len(lhs) == len(rhs):
		tags := make([]srcTag, len(rhs))
		for i, r := range rhs {
			tags[i] = b.expr(r)
		}
		for i, l := range lhs {
			b.bindLHS(l, tags[i])
		}
	case len(rhs) == 1:
		var tags []srcTag
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			tags = b.call(r)
		case *ast.TypeAssertExpr:
			tags = []srcTag{b.expr(r.X), srcNone}
		default:
			tags = []srcTag{b.expr(rhs[0])}
		}
		for i, l := range lhs {
			t := srcNone
			if i < len(tags) {
				t = tags[i]
			}
			b.bindLHS(l, t)
		}
	}
}

func (b *bodyWalker) bindLHS(l ast.Expr, t srcTag) {
	if l == nil {
		return
	}
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok {
		// Indexed/field targets keep their container's tag; evaluating
		// the base catches tagged indices.
		b.expr(l)
		return
	}
	if id.Name == "_" {
		return
	}
	if obj := b.info().ObjectOf(id); obj != nil {
		b.bind[obj] = t
	}
}

func (b *bodyWalker) expr(e ast.Expr) srcTag {
	switch x := e.(type) {
	case nil:
		return srcNone
	case *ast.Ident:
		if obj := b.info().ObjectOf(x); obj != nil {
			if t, ok := b.bind[obj]; ok {
				return t
			}
		}
		return srcNone
	case *ast.ParenExpr:
		return b.expr(x.X)
	case *ast.StarExpr:
		return b.expr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return b.expr(x.X)
		}
		b.expr(x.X)
		return srcNone
	case *ast.TypeAssertExpr:
		return b.expr(x.X)
	case *ast.SelectorExpr:
		return b.selector(x)
	case *ast.CallExpr:
		res := b.call(x)
		if len(res) > 0 {
			return res[0]
		}
		return srcNone
	case *ast.BinaryExpr:
		return b.binary(x)
	case *ast.IndexExpr:
		b.expr(x.X)
		if it := b.expr(x.Index); isNodeTag(it) || isCoordTag(it) {
			b.w.finding(x.Index.Pos(), fmt.Sprintf(
				"indexes by %s: absolute position is not part of the route-cache fingerprint", it))
		}
		return srcNone
	case *ast.SliceExpr:
		t := b.expr(x.X)
		b.expr(x.Low)
		b.expr(x.High)
		b.expr(x.Max)
		return t
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if t := b.expr(v); isRootTag(t) {
				b.w.finding(v.Pos(), fmt.Sprintf(
					"stores %s into a composite literal, escaping the dataflow analysis", t))
			}
		}
		return srcNone
	case *ast.FuncLit:
		// Walk the closure body under the current binding; results are
		// not propagated.
		saved := b.results
		b.results = make([]srcTag, 8)
		b.stmt(x.Body)
		b.results = saved
		return srcNone
	}
	return srcNone
}

func (b *bodyWalker) selector(x *ast.SelectorExpr) srcTag {
	bt := b.expr(x.X)
	name := x.Sel.Name
	switch bt {
	case srcCtx:
		switch name {
		case "Mesh":
			return srcMesh
		case "View":
			return srcView
		case "Rand":
			return srcRand
		case "Cur":
			return srcCur
		case "Dest":
			return srcDest
		}
		// InDir and any other scalar context field is packed into the
		// key unconditionally.
		return srcNone
	case srcRecv:
		if b.w.delegates[name] {
			return srcDelegate
		}
		// Receiver fields are configuration fixed at construction
		// (CacheSpec's contract: instances from one constructor are
		// interchangeable).
		return srcNone
	case srcCoordCur, srcCoordDest:
		// Coordinate struct fields (X, Y) keep their node's origin.
		return bt
	case srcNone, srcDelegate, srcMesh, srcView, srcRand, srcViewVal, srcCur, srcDest:
		// No field selection on these yields tracked state; method calls
		// on them route through methodCall instead.
		return srcNone
	}
	return srcNone
}

// binary classifies arithmetic and comparisons over tagged operands
// against the fingerprint key: cur-vs-dest combinations are offsets
// (always keyed), parity masks need ColumnParity, other absolute
// destination-coordinate expressions need DestClass, and absolute
// current-position reads are inexpressible.
func (b *bodyWalker) binary(x *ast.BinaryExpr) srcTag {
	lt, rt := b.expr(x.X), b.expr(x.Y)
	lc, rc := isCoordTag(lt), isCoordTag(rt)
	switch {
	case lc && rc:
		if lt != rt {
			return srcNone // cur-vs-dest coordinate arithmetic: the offset is always keyed
		}
		if lt == srcCoordDest {
			b.w.facet("DestClass", x.Pos(), "absolute destination-coordinate expression")
			return srcNone
		}
		b.w.finding(x.Pos(), "combines two absolute current-position coordinates; no fingerprint facet covers absolute position")
		return srcNone
	case lc || rc:
		ct := lt
		constSide := x.Y
		if rc {
			ct, constSide = rt, x.X
		}
		if b.isParityMask(x.Op, constSide) {
			b.w.facet("ColumnParity", x.Pos(), "coordinate parity test")
			return srcNone
		}
		if ct == srcCoordDest {
			b.w.facet("DestClass", x.Pos(), "absolute destination-coordinate expression")
			return srcNone
		}
		b.w.finding(x.Pos(), "reads the current node's absolute coordinate; only its parity (ColumnParity) is fingerprintable")
		return srcNone
	case isNodeTag(lt) && isNodeTag(rt):
		return srcNone // node-id equality/offset between cur and dest is keyed
	case isNodeTag(lt) && rt == srcViewVal, isNodeTag(rt) && lt == srcViewVal:
		return srcNone // dest-sliced view comparisons are the facet's own semantics
	case isNodeTag(lt) || isNodeTag(rt):
		t := lt
		if isNodeTag(rt) {
			t = rt
		}
		b.w.finding(x.Pos(), fmt.Sprintf(
			"combines %s with a value outside the fingerprint key", t))
		return srcNone
	}
	return srcNone
}

// isParityMask reports whether op with the given constant operand is a
// parity extraction (% 2 or & 1).
func (b *bodyWalker) isParityMask(op token.Token, e ast.Expr) bool {
	tv, ok := b.info().Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return false
	}
	return op == token.REM && v == 2 || op == token.AND && v == 1
}

// call interprets one call expression and returns its result tags.
func (b *bodyWalker) call(x *ast.CallExpr) []srcTag {
	info := b.info()
	// Type conversions preserve provenance.
	if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
		if len(x.Args) == 1 {
			return []srcTag{b.expr(x.Args[0])}
		}
		return []srcTag{srcNone}
	}
	// Builtins: panic terminates the decision — a panicking path never
	// produces a cache entry, so its reads cannot desync one.
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			if id.Name != "panic" {
				for _, a := range x.Args {
					b.expr(a)
				}
			}
			return []srcTag{srcNone}
		}
	}
	fn := calleeFunc(info, x)
	if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
		if info.Selections[sel] != nil {
			return b.methodCall(x, sel, fn)
		}
	}
	// Plain or package-qualified function call.
	return b.staticCall(x, fn, srcNone)
}

// methodCall dispatches on the receiver's provenance.
func (b *bodyWalker) methodCall(x *ast.CallExpr, sel *ast.SelectorExpr, fn *types.Func) []srcTag {
	bt := b.expr(sel.X)
	name := sel.Sel.Name

	// The draw hook sees every Intn-shaped call regardless of receiver.
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isIntnShaped(fn, sig) {
			if b.w.onDraw != nil {
				b.w.onDraw(bt, x.Pos())
			}
			for _, a := range x.Args {
				b.expr(a)
			}
			return []srcTag{srcNone}
		}
	}

	switch bt {
	case srcView:
		facet, known := viewFacets[name]
		if !known {
			b.w.finding(x.Pos(), fmt.Sprintf(
				"calls unrecognized view method %s; the fingerprint cannot account for it", name))
		} else if facet != "" {
			b.w.facet(facet, x.Pos(), "view method "+name)
		}
		for _, a := range x.Args {
			b.expr(a) // node-id arguments select the facet's dest slice
		}
		if !known || facet == "" {
			return []srcTag{srcNone, srcNone, srcNone, srcNone}
		}
		return []srcTag{srcViewVal, srcViewVal, srcViewVal, srcViewVal}
	case srcMesh:
		return b.meshCall(x, name)
	case srcRand:
		// Non-Intn Rand methods do not exist on the seam; treat any as a
		// draw-shaped escape.
		b.w.finding(x.Pos(), fmt.Sprintf("calls %s on the decision RNG outside the Intn seam", name))
		return []srcTag{srcNone}
	case srcDelegate:
		if name == "Route" {
			for _, a := range x.Args {
				b.expr(a)
			}
			return []srcTag{srcNone}
		}
		if benignAlgMethods[name] {
			return []srcTag{srcNone, srcNone}
		}
		b.w.finding(x.Pos(), fmt.Sprintf(
			"calls %s on the delegated base algorithm; fingerprint derivation only covers its Route", name))
		return []srcTag{srcNone}
	case srcNone, srcRecv, srcCtx, srcViewVal, srcCur, srcDest, srcCoordCur, srcCoordDest:
		return b.staticCall(x, fn, bt)
	}
	return b.staticCall(x, fn, bt)
}

// meshCall models the topology intrinsics: everything the mesh derives
// from a cur/dest pair is offset arithmetic, and Coord lifts a node id
// into its (absolute) coordinates.
func (b *bodyWalker) meshCall(x *ast.CallExpr, name string) []srcTag {
	argTag := func(i int) srcTag {
		if i < len(x.Args) {
			return b.expr(x.Args[i])
		}
		return srcNone
	}
	switch name {
	case "Coord":
		switch argTag(0) {
		case srcCur:
			return []srcTag{srcCoordCur}
		case srcDest:
			return []srcTag{srcCoordDest}
		case srcNone, srcRecv, srcDelegate, srcCtx, srcMesh, srcView, srcRand, srcViewVal, srcCoordCur, srcCoordDest:
			return []srcTag{srcNone}
		}
		return []srcTag{srcNone}
	case "Neighbor":
		t0 := argTag(0)
		argTag(1)
		return []srcTag{t0, srcNone}
	case "MinimalDirs", "Hops", "MinimalPathCount":
		argTag(0)
		argTag(1)
		return []srcTag{srcNone, srcNone, srcNone, srcNone}
	case "Nodes", "Node", "Contains":
		for _, a := range x.Args {
			b.expr(a)
		}
		return []srcTag{srcNone}
	}
	b.w.finding(x.Pos(), fmt.Sprintf(
		"calls unrecognized mesh method %s; the fingerprint cannot account for it", name))
	return []srcTag{srcNone}
}

// staticCall follows a module-local call with bound argument tags, or
// conservatively flags root values escaping into unanalyzable code.
func (b *bodyWalker) staticCall(x *ast.CallExpr, fn *types.Func, recvTag srcTag) []srcTag {
	argTags := make([]srcTag, len(x.Args))
	for i, a := range x.Args {
		argTags[i] = b.expr(a)
	}
	if fn != nil {
		if node := b.w.prog.Funcs[funcKeyOf(fn)]; node != nil {
			return b.w.walkFunc(node, recvTag, argTags)
		}
	}
	for i, t := range argTags {
		if isRootTag(t) {
			b.w.finding(x.Args[i].Pos(), fmt.Sprintf(
				"passes %s to a call the analysis cannot follow", t))
		}
	}
	if isRootTag(recvTag) && recvTag != srcRecv {
		b.w.finding(x.Pos(), fmt.Sprintf(
			"calls a method on %s that the analysis cannot follow", recvTag))
	}
	return []srcTag{srcNone, srcNone, srcNone, srcNone}
}

// contextParamIndex returns the index of the first parameter whose type
// is (a pointer to) a struct named Context, or -1.
func contextParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if n := namedType(sig.Params().At(i).Type()); n != nil && n.Obj().Name() == "Context" {
			if _, ok := n.Underlying().(*types.Struct); ok {
				return i
			}
		}
	}
	return -1
}

// routeRoots finds every method named Route taking a Context parameter —
// the entry points of the routing decision trees.
func routeRoots(prog *Program) []*FuncNode {
	var roots []*FuncNode
	for _, node := range prog.Funcs {
		if node.Decl.Name.Name != "Route" || node.Decl.Recv == nil {
			continue
		}
		sig := node.Obj.Type().(*types.Signature)
		if sig.Recv() == nil || contextParamIndex(sig) < 0 {
			continue
		}
		roots = append(roots, node)
	}
	return roots
}

// walkRoute binds a Route root (receiver, Context parameter) and walks
// it with the given walker.
func walkRoute(w *routeWalker, node *FuncNode) {
	sig := node.Obj.Type().(*types.Signature)
	argTags := make([]srcTag, sig.Params().Len())
	if i := contextParamIndex(sig); i >= 0 {
		argTags[i] = srcCtx
	}
	w.walkFunc(node, srcRecv, argTags)
}
