package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural core of noclint v2: a module-local
// view over every loaded package at once, with a function index keyed by
// (package path, receiver type name, function name) and static-call
// resolution over it. Rules that must reason across function boundaries
// — fingerprint coverage of a Route tree, capability dominance of a
// metrics call, arena handles escaping their run — run as
// ProgramAnalyzers over this view instead of per-package Analyzers.
//
// The index is keyed by strings rather than types.Object identity
// because the loader type-checks each target package itself while its
// dependencies come from the source importer: the same function is a
// distinct *types.Func in the two worlds, but its key is identical.

// Program is the whole-module input of the interprocedural rules.
type Program struct {
	Packages []*Package
	Fset     *token.FileSet
	// Funcs indexes every function and method declaration with a body,
	// by funcKey.
	Funcs map[string]*FuncNode
}

// FuncNode is one declared function or method in the program.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// funcKeyOf builds the index key of fn: "pkgpath|recv|name". Interface
// methods key under the interface's type name, so they never collide
// with (and never resolve to) a concrete declaration — callers handle
// dynamic dispatch explicitly.
func funcKeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		} else if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			_ = iface // unnamed interface receiver: leave recv empty
		}
	}
	return fn.Pkg().Path() + "|" + recv + "|" + fn.Name()
}

// BuildProgram indexes the packages' function declarations. Multiple
// init functions share a key and shadow each other; nothing resolves
// calls to init, so the collision is harmless.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Packages: pkgs, Funcs: map[string]*FuncNode{}}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKeyOf(obj)
				if key == "" {
					continue
				}
				prog.Funcs[key] = &FuncNode{Key: key, Pkg: p, Decl: fd, Obj: obj}
			}
		}
	}
	return prog
}

// callee resolves a call in package p to the program function it
// statically invokes, or nil for dynamic, external and builtin calls.
func (prog *Program) callee(p *Package, call *ast.CallExpr) *FuncNode {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return nil
	}
	return prog.Funcs[funcKeyOf(fn)]
}

// ProgramAnalyzer is one whole-program invariant. Unlike per-package
// Analyzers, program rules scope themselves (by root shape and package
// path) because a single run covers every package at once.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Finding
}

// ProgramAnalyzers returns the interprocedural rule suite in a fixed
// order.
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		analyzeArenaEscape,
		analyzeCacheRead,
		analyzeRNGOrder,
		analyzeSinkCap,
	}
}

// position converts a token.Pos through the program's shared file set.
func (prog *Program) position(pos token.Pos) token.Position {
	return prog.Fset.Position(pos)
}
