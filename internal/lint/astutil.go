package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Shared resolution helpers for the analyzers. Everything here matches
// by package path + name rather than by object identity, so it is
// robust against the loader and the source importer holding distinct
// *types.Package instances for the same package.

// finding builds a Finding at pos.
func finding(p *Package, pos token.Pos, rule, msg string) Finding {
	return Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg}
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, type conversions, function-typed variables and dynamic
// calls through non-selector expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = base.Sel
		} else if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcIs reports whether fn is the package-level function pkgPath.name.
func funcIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// namedType unwraps pointers and returns the *types.Named behind t, or
// nil when t is not (a pointer to) a named type.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Name() == name && obj.Pkg().Path() == pkgPath
}

// exprString renders a (small) expression for use in messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<expr>"
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// typeLabel renders a named type as pkg.Name using the short package
// name, for messages.
func typeLabel(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// walkWithStack traverses the file invoking fn with every node and the
// stack of its ancestors (outermost first, excluding n itself).
func walkWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// containsObject reports whether expr mentions an identifier resolving
// to obj.
func containsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// leftmostIdent peels selector/index/paren layers off an lvalue and
// returns its base identifier, plus whether any peeled layer implies a
// reference traversal that could reach shared state (explicit pointer
// deref). Returns nil for lvalues with non-ident bases (function calls,
// etc.), which callers treat conservatively.
func leftmostIdent(e ast.Expr) (*ast.Ident, bool) {
	deref := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, deref
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			deref = true
			e = x.X
		default:
			return nil, deref
		}
	}
}

// isReferenceType reports whether writes through a value of type t can
// reach memory shared with the caller: pointers, slices, maps, chans,
// interfaces and functions.
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// hasWriterParam reports whether the function type declares an
// io.Writer parameter (the signature of an exporter).
func hasWriterParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if typeIs(info.Types[field.Type].Type, "io", "Writer") {
			return true
		}
	}
	return false
}

// exporterNamePrefixes mark functions whose job is serializing state.
var exporterNamePrefixes = []string{"Write", "Format", "Export", "Render", "Dump", "Marshal", "Report"}

// hasExporterName reports whether name starts like a serializer.
func hasExporterName(name string) bool {
	for _, p := range exporterNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
