package lint

import (
	"go/ast"
	"strings"
)

// suppressPrefix introduces a suppression comment:
//
//	//noclint:allow <rule> <reason>
//
// It waives findings of <rule> on the comment's own line (trailing
// comment) and on the line directly below (comment-above form). The
// reason is mandatory: a waiver without a recorded justification is
// itself reported.
const suppressPrefix = "//noclint:allow"

// allowance is one parsed suppression comment.
type allowance struct {
	rule   string
	reason string
	line   int
	file   string
}

// collectAllowances parses every suppression comment of the package.
// Malformed comments (no rule, unknown rule, missing reason) come back
// as findings.
func collectAllowances(p *Package) ([]allowance, []Finding) {
	rules := knownRules()
	var allows []allowance
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, suppressPrefix))
				rule, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case rule == "":
					bad = append(bad, Finding{Pos: pos, Rule: ruleSuppression,
						Msg: "suppression names no rule; write //noclint:allow <rule> <reason>"})
				case !rules[rule]:
					bad = append(bad, Finding{Pos: pos, Rule: ruleSuppression,
						Msg: "suppression names unknown rule " + rule})
				case reason == "":
					bad = append(bad, Finding{Pos: pos, Rule: ruleSuppression,
						Msg: "suppression of " + rule + " gives no reason"})
				default:
					allows = append(allows, allowance{rule: rule, reason: reason, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	return allows, bad
}

// applySuppressions drops findings waived by a matching allowance and
// returns the survivors plus the findings for malformed suppressions.
func applySuppressions(p *Package, fs []Finding) (kept, bad []Finding) {
	allows, bad := collectAllowances(p)
	kept, _ = filterWaived(fs, allows)
	return kept, bad
}

// filterWaived splits findings into survivors and those waived by a
// matching allowance (same rule, same file, comment on the finding's
// line or the line above).
func filterWaived(fs []Finding, allows []allowance) (kept, waived []Finding) {
	if len(allows) == 0 {
		return fs, nil
	}
	isWaived := func(f Finding) bool {
		for _, a := range allows {
			if a.rule == f.Rule && a.file == f.Pos.Filename &&
				(a.line == f.Pos.Line || a.line == f.Pos.Line-1) {
				return true
			}
		}
		return false
	}
	for _, f := range fs {
		if isWaived(f) {
			waived = append(waived, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, waived
}

// nodeLine returns the 1-based line of a node's position.
func nodeLine(p *Package, n ast.Node) int {
	return p.Fset.Position(n.Pos()).Line
}
