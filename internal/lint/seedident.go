package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeSeedIdentity enforces the seed-derivation discipline behind
// sim.Map's determinism guarantee: per-run seeds are minted by
// sim.DeriveSeed (FNV-1a over a run-identity string) or carried in a
// sim.RunIdentity, never produced by arithmetic on the base seed.
// seed+i looks harmless but collides across sweeps (run 3 of seed 40
// equals run 1 of seed 42), correlates adjacent runs for LCG-family
// generators, and silently changes meaning when a sweep is reordered.
//
// Two shapes are flagged under the deterministic roots:
//
//   - integer arithmetic whose operand is seed-named (seed, baseSeed,
//     cfg.Seed, ...), outside sim.DeriveSeed/Identify themselves, and
//   - assignments to a sim.Config's Seed field whose value is not a
//     DeriveSeed result, a RunIdentity's Seed, or a plain seed-valued
//     identifier threading the base seed through.
var analyzeSeedIdentity = &Analyzer{
	Name: "seedident",
	Doc:  "per-run seeds come from sim.DeriveSeed / sim.RunIdentity, never seed arithmetic",
	Applies: func(path string) bool {
		return underAny(path, deterministicRoots)
	},
	Run: runSeedIdentity,
}

func runSeedIdentity(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isBlessedDeriver(p, fd) {
				continue // DeriveSeed/Identify are where mixing is allowed to live
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if !arithmeticOp(x.Op) || !isIntegerExpr(p.Info, x) {
						return true
					}
					for _, side := range []ast.Expr{x.X, x.Y} {
						if name, ok := seedishName(side); ok {
							out = append(out, finding(p, x.Pos(), "seedident",
								fmt.Sprintf("arithmetic on %s collides across sweeps and correlates runs; derive per-run seeds with sim.DeriveSeed", name)))
							return true
						}
					}
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i, lhs := range x.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok || sel.Sel.Name != "Seed" {
							continue
						}
						if !typeIs(p.Info.Types[sel.X].Type, "nocsim/internal/sim", "Config") {
							continue
						}
						if legalSeedSource(p, x.Rhs[i]) {
							continue
						}
						out = append(out, finding(p, lhs.Pos(), "seedident",
							fmt.Sprintf("%s set from %s; per-run seeds must come from sim.DeriveSeed or a RunIdentity",
								exprString(p.Fset, lhs), exprString(p.Fset, x.Rhs[i]))))
					}
				}
				return true
			})
		}
	}
	return out
}

// isBlessedDeriver reports whether fd is sim.DeriveSeed or sim.Identify,
// the two functions allowed to manufacture seeds.
func isBlessedDeriver(p *Package, fd *ast.FuncDecl) bool {
	if p.Pkg.Path() != "nocsim/internal/sim" || fd.Recv != nil {
		return false
	}
	return fd.Name.Name == "DeriveSeed" || fd.Name.Name == "Identify"
}

// arithmeticOp reports whether op combines integers into a new value
// (comparisons and logical operators are not seed manufacturing).
func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}

// isIntegerExpr reports whether the expression has integer type.
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// seedishName reports whether e is an identifier or field selector whose
// name marks it as a seed (seed, baseSeed, cfg.Seed, ...).
func seedishName(e ast.Expr) (string, bool) {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return "", false
	}
	if strings.EqualFold(name, "seed") || strings.HasSuffix(name, "Seed") {
		return name, true
	}
	return "", false
}

// legalSeedSource recognizes the value shapes allowed on the right of a
// Config.Seed assignment.
func legalSeedSource(p *Package, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return true // threading a base seed through verbatim
	case *ast.CallExpr:
		return funcIs(calleeFunc(p.Info, x), "nocsim/internal/sim", "DeriveSeed")
	case *ast.SelectorExpr:
		// id.Seed where id is a sim.RunIdentity
		return x.Sel.Name == "Seed" &&
			typeIs(p.Info.Types[x.X].Type, "nocsim/internal/sim", "RunIdentity")
	case *ast.BinaryExpr:
		return true // the arithmetic rule already reports this expression
	}
	return false
}
