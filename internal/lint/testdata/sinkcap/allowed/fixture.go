// The bad fixture's unguarded sink calls, each carrying a suppression
// with a recorded reason at the original call. noclint must honor both
// waivers — including the one whose finding surfaces through a caller.
package fixture

// Packet is the event payload.
type Packet struct{ ID int }

// MetricsSink mirrors the capability-gated observer seam.
type MetricsSink interface {
	WantPacketEvents() bool
	OnInject(now uint64, p *Packet)
	WantRouteDecisions() bool
	OnRouteDecision(now uint64, node int, p *Packet)
}

// Router caches the sink's capability answers at construction.
type Router struct {
	metrics    MetricsSink
	wantEvents bool
}

// New wires the sink and caches its capability answer.
func New(m MetricsSink) *Router {
	r := &Router{metrics: m}
	r.wantEvents = m != nil && m.WantPacketEvents()
	return r
}

// Inject waives its unguarded event: this router only ever runs under a
// benchmarking sink that always wants events.
func (r *Router) Inject(now uint64, p *Packet) {
	r.metrics.OnInject(now, p) //noclint:allow sinkcap bench-only router, sink always wants events
}

// emit waives the obligation at the sink call itself.
func (r *Router) emit(now uint64, p *Packet) {
	//noclint:allow sinkcap decision stream is mandatory in this fixture topology
	r.metrics.OnRouteDecision(now, 0, p)
}

// Step calls emit; the waiver upstream covers the escaped obligation.
func (r *Router) Step(now uint64, p *Packet) {
	r.emit(now, p)
}
