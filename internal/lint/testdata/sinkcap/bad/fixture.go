// MetricsSink calls outside their capability guards: a packet event
// emitted without consulting the cached WantPacketEvents answer, and a
// decision event whose guard obligation escapes through an unguarded
// call site — the helper making the call is fine, its caller is not.
// noclint must flag both, each at the original sink call.
package fixture

// Packet is the event payload.
type Packet struct{ ID int }

// MetricsSink mirrors the capability-gated observer seam.
type MetricsSink interface {
	WantPacketEvents() bool
	OnInject(now uint64, p *Packet)
	WantRouteDecisions() bool
	OnRouteDecision(now uint64, node int, p *Packet)
}

// Router caches the sink's capability answers at construction.
type Router struct {
	metrics    MetricsSink
	wantEvents bool
}

// New wires the sink and caches its capability answer.
func New(m MetricsSink) *Router {
	r := &Router{metrics: m}
	r.wantEvents = m != nil && m.WantPacketEvents()
	return r
}

// Inject emits a packet event without its guard.
func (r *Router) Inject(now uint64, p *Packet) {
	r.metrics.OnInject(now, p)
}

// emit centralizes decision emission; the guard is its callers' job.
func (r *Router) emit(now uint64, p *Packet) {
	r.metrics.OnRouteDecision(now, 0, p)
}

// Step calls emit without discharging the guard obligation.
func (r *Router) Step(now uint64, p *Packet) {
	r.emit(now, p)
}
