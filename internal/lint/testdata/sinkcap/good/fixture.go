// Capability-disciplined sink usage: every MetricsSink call sits under
// its matching guard — a cached capability field, or a direct Want*
// check dominating the helper call site that makes the sink call. Sink
// implementations themselves (the no-op sink, the fan-out tee) are the
// seam's plumbing and exempt. noclint must stay quiet.
package fixture

// Packet is the event payload.
type Packet struct{ ID int }

// MetricsSink mirrors the capability-gated observer seam.
type MetricsSink interface {
	WantPacketEvents() bool
	OnInject(now uint64, p *Packet)
	WantRouteDecisions() bool
	OnRouteDecision(now uint64, node int, p *Packet)
}

// Router caches the sink's capability answers at construction.
type Router struct {
	metrics    MetricsSink
	wantEvents bool
}

// New wires the sink and caches its capability answer.
func New(m MetricsSink) *Router {
	r := &Router{metrics: m}
	r.wantEvents = m != nil && m.WantPacketEvents()
	return r
}

// Inject emits a packet event under the cached capability guard.
func (r *Router) Inject(now uint64, p *Packet) {
	if r.wantEvents {
		r.metrics.OnInject(now, p)
	}
}

// emit centralizes decision emission; the guard is its callers' job.
func (r *Router) emit(now uint64, p *Packet) {
	r.metrics.OnRouteDecision(now, 0, p)
}

// Step discharges emit's guard obligation at the call site.
func (r *Router) Step(now uint64, p *Packet) {
	if r.metrics != nil && r.metrics.WantRouteDecisions() {
		r.emit(now, p)
	}
}

// NopSink absorbs everything; as a MetricsSink it is exempt plumbing.
type NopSink struct{}

// WantPacketEvents declines packet events.
func (NopSink) WantPacketEvents() bool { return false }

// OnInject drops the event.
func (NopSink) OnInject(now uint64, p *Packet) {}

// WantRouteDecisions declines decision events.
func (NopSink) WantRouteDecisions() bool { return false }

// OnRouteDecision drops the event.
func (NopSink) OnRouteDecision(now uint64, node int, p *Packet) {}

// tee fans every event out to two sinks; its unguarded forwarding calls
// are the seam's own plumbing, exempt by implementing MetricsSink.
type tee struct{ a, b MetricsSink }

// WantPacketEvents wants events if either branch does.
func (t tee) WantPacketEvents() bool { return t.a.WantPacketEvents() || t.b.WantPacketEvents() }

// OnInject forwards to both branches.
func (t tee) OnInject(now uint64, p *Packet) {
	t.a.OnInject(now, p)
	t.b.OnInject(now, p)
}

// WantRouteDecisions wants decisions if either branch does.
func (t tee) WantRouteDecisions() bool { return t.a.WantRouteDecisions() || t.b.WantRouteDecisions() }

// OnRouteDecision forwards to both branches.
func (t tee) OnRouteDecision(now uint64, node int, p *Packet) {
	t.a.OnRouteDecision(now, node, p)
	t.b.OnRouteDecision(now, node, p)
}
