// Package fixture: per-run seeds minted by offsetting the base seed —
// run 3 of seed 40 collides with run 1 of seed 42. noclint must flag it.
package fixture

// RunSeeds derives stream seeds with arithmetic.
func RunSeeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = seed + int64(i)
	}
	return out
}
