// Package fixture: the two blessed seed flows — DeriveSeed for stream
// seeds, RunIdentity for Config.Seed.
package fixture

import "nocsim/internal/sim"

// StreamSeed mints a per-run seed through the hash-based deriver.
func StreamSeed(seed int64, label string) int64 {
	return sim.DeriveSeed(seed, "fixture/"+label)
}

// Stamp applies an identity's seed to a config.
func Stamp(cfg sim.Config, id sim.RunIdentity) sim.Config {
	cfg.Seed = id.Seed
	return cfg
}
