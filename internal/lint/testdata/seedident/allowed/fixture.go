// Package fixture: a legacy seed offset kept under a reasoned waiver.
package fixture

// LegacySeed preserves a historical stream layout.
func LegacySeed(seed int64) int64 {
	return seed + 1 //noclint:allow seedident frozen offset kept for golden-file compatibility
}
