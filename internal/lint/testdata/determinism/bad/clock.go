// A wall-clock read scattered into engine code instead of flowing
// through the prof.Clock seam. noclint must flag it even when the value
// only feeds a self-metric — the seam exists so these reads stay
// auditable at one waived site.
package fixture

import "time"

// heartbeat stamps a progress update straight off the wall clock.
func heartbeat(cycles int64) float64 {
	elapsed := time.Since(time.Unix(0, 0))
	return float64(cycles) / elapsed.Seconds()
}
