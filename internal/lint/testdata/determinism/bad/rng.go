// A package-level generator shared across runs. The seed is explicit,
// but the state is still hidden coupling: two concurrent runs drawing
// from it interleave nondeterministically. noclint must flag the draw
// even though the constructor call itself is legal.
package fixture

import "math/rand"

// sharedRNG outlives any single run.
var sharedRNG = rand.New(rand.NewSource(1))

// tieBreak draws from the shared generator.
func tieBreak() int {
	return sharedRNG.Intn(2)
}

// holder shows the receiver-chain case: the generator hides one field
// deep under a package-level variable.
type holder struct {
	rng *rand.Rand
}

var sharedState = holder{rng: rand.New(rand.NewSource(2))}

func nestedTieBreak() int {
	return sharedState.rng.Intn(2)
}
