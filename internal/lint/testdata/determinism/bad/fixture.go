// Package fixture: wall-clock and global math/rand reads inside a
// deterministic package. noclint must flag both.
package fixture

import (
	"math/rand"
	"time"
)

// Jitter draws from hidden global state and the wall clock.
func Jitter() int {
	n := rand.Intn(100)
	if time.Now().Unix()%2 == 0 {
		n++
	}
	return n
}
