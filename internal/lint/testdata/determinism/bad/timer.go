// Wall-clock scheduling inside engine code: timers and tickers advance
// on real time, so any state they touch depends on host speed, not on
// the cycle count. noclint must flag every timer constructor, not just
// direct clock reads.
package fixture

import "time"

// drain polls a queue on a wall-clock cadence.
func drain(q chan int) int {
	total := 0
	tick := time.Tick(time.Millisecond)
	timer := time.NewTimer(time.Second)
	for {
		select {
		case v := <-q:
			total += v
		case <-tick:
			continue
		case <-timer.C:
			return total
		}
	}
}

// backoff sleeps between retries, stretching simulated work by host time.
func backoff(attempt int) {
	time.Sleep(time.Duration(attempt) * time.Millisecond)
}
