// The seam itself: the one place a deterministic tree may read the wall
// clock, waived with a reason. This mirrors prof.Now — every other
// wall-clock consumer calls through the returned value instead of
// earning its own waiver.
package fixture

import "time"

// now is the single sanctioned wall-clock read.
func now() time.Time {
	return time.Now() //noclint:allow determinism the one sanctioned wall-clock seam; feeds self-metrics only, never results
}
