// Package fixture: a wall-clock read waived with a reasoned suppression.
package fixture

import "time"

// Uptime reports elapsed wall time for self-metrics.
func Uptime(start time.Time) float64 {
	return time.Since(start).Seconds() //noclint:allow determinism wall-clock self-metrics only, never feeds results
}
