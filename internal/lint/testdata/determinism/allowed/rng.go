// A package-level generator draw waived with a reasoned suppression.
package fixture

import "math/rand"

// jitterRNG feeds a self-metric sampler, never simulation results.
var jitterRNG = rand.New(rand.NewSource(1))

func sampleJitter() int {
	return jitterRNG.Intn(100) //noclint:allow determinism feeds the self-metric sampler only, never results
}
