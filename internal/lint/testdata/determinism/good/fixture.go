// Package fixture: explicitly seeded randomness, the legal form in a
// deterministic package.
package fixture

import "math/rand"

// Draw uses a caller-seeded generator; methods on *rand.Rand are fine.
func Draw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}
