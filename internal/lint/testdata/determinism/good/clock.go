// The consumer side of the wall-clock seam: engine code that needs
// timestamps takes an injected clock and calls it. Calls through a
// function value are not time.Now and pass the rule without a waiver —
// tests substitute fake clocks, production wires prof.Now.
package fixture

import "time"

// clock mirrors prof.Clock.
type clock func() time.Time

// profiler accumulates wall time through the seam only.
type profiler struct {
	now   clock
	start time.Time
}

func (p *profiler) begin()       { p.start = p.now() }
func (p *profiler) nanos() int64 { return p.now().Sub(p.start).Nanoseconds() }
