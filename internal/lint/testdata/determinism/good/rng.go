// Run-owned generators: draws through parameters, fields of local
// values, and locals are all legal — the state's lifetime is the run's.
package fixture

import "math/rand"

// decider mirrors the routing.Rand consumer shape: the generator
// arrives as an interface value owned by the caller.
type decider interface {
	Intn(n int) int
}

// pick draws from a caller-owned generator.
func pick(r decider, n int) int {
	return r.Intn(n)
}

// engine owns its generator for one run.
type engine struct {
	rng *rand.Rand
}

func (e *engine) step() int {
	return e.rng.Intn(6)
}

// localDraw seeds and drains a generator entirely within one call.
func localDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
