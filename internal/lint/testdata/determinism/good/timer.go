// The deterministic counterpart of a timer: cadence expressed in
// cycles, advanced by the engine's own loop. No wall clock anywhere, so
// the rule stays quiet.
package fixture

// cadence fires every period cycles of simulated time.
type cadence struct {
	period uint64
	next   uint64
}

// due reports and reschedules a cycle-counted deadline.
func (c *cadence) due(now uint64) bool {
	if now < c.next {
		return false
	}
	c.next = now + c.period
	return true
}
