// A Fingerprinter whose CacheSpec under-declares what its Route reads:
// the spec admits only Idle, but the decision tree consults VC ownership
// (through a helper, so the walk must cross a call) and the current
// node's absolute column, which no facet can express. noclint must flag
// both — either would let a cached decision diverge from a computed one.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Coord locates a node on the mesh.
type Coord struct{ X, Y int }

// Mesh mirrors the topology intrinsics the walker models.
type Mesh struct{ width, height int }

// Coord maps a node id to its coordinates.
func (m *Mesh) Coord(n int) Coord { return Coord{X: n % m.width, Y: n / m.width} }

// MinimalDirs mirrors the productive-direction query.
func (m *Mesh) MinimalDirs(cur, dest int) (Direction, bool, Direction, bool) {
	return 0, cur != dest, 0, false
}

// View mirrors the per-router VC state snapshot.
type View struct{ vcs int }

// VCs returns the structural VC count (no facet needed).
func (v *View) VCs() int { return v.vcs }

// VCIdle is keyed by the Idle facet.
func (v *View) VCIdle(dest, vc int) bool { return dest >= 0 && vc >= 0 }

// VCOwner is keyed by the Owner facet.
func (v *View) VCOwner(dest, vc int) int { return dest + vc }

// Rand mirrors the decision RNG seam.
type Rand struct{ state uint64 }

// Intn mirrors the seam's draw shape.
func (r *Rand) Intn(n int) int { return int(r.state % uint64(n)) }

// CacheSpec mirrors the fingerprint facet declaration.
type CacheSpec struct {
	Idle, Owner, RegOwner, Downstream, ColumnParity, DestClass bool
}

// Context mirrors the per-decision routing context.
type Context struct {
	Mesh  *Mesh
	View  *View
	Rand  *Rand
	Cur   int
	Dest  int
	InDir Direction
}

// Greedy claims its decisions depend only on idle state.
type Greedy struct{ threshold int }

// CacheSpec under-declares: Route also reads ownership and position.
func (g *Greedy) CacheSpec() (CacheSpec, bool) { return CacheSpec{Idle: true}, true }

// Route reads VC ownership via a helper and the absolute column of the
// current node.
func (g *Greedy) Route(ctx Context) Direction {
	d := Direction(0)
	if maxOwner(ctx) > g.threshold {
		d++
	}
	if ctx.Mesh.Coord(ctx.Cur).X > 1 {
		d++
	}
	return d
}

// maxOwner reads the Owner facet; the finding lands here, inside the
// helper the walk followed.
func maxOwner(ctx Context) int {
	max := 0
	for vc := 0; vc < ctx.View.VCs(); vc++ {
		if o := ctx.View.VCOwner(ctx.Dest, vc); o > max {
			max = o
		}
	}
	return max
}
