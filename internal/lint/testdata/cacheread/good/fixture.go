// A Fingerprinter whose CacheSpec covers everything its Route reads:
// idle state (through a helper), the column parity of the current node,
// and otherwise only cur/dest offsets — which the fingerprint key packs
// unconditionally. noclint must stay quiet.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Coord locates a node on the mesh.
type Coord struct{ X, Y int }

// Mesh mirrors the topology intrinsics the walker models.
type Mesh struct{ width, height int }

// Coord maps a node id to its coordinates.
func (m *Mesh) Coord(n int) Coord { return Coord{X: n % m.width, Y: n / m.width} }

// MinimalDirs mirrors the productive-direction query.
func (m *Mesh) MinimalDirs(cur, dest int) (Direction, bool, Direction, bool) {
	return 0, cur != dest, 0, false
}

// View mirrors the per-router VC state snapshot.
type View struct{ vcs int }

// VCs returns the structural VC count (no facet needed).
func (v *View) VCs() int { return v.vcs }

// VCIdle is keyed by the Idle facet.
func (v *View) VCIdle(dest, vc int) bool { return dest >= 0 && vc >= 0 }

// Rand mirrors the decision RNG seam.
type Rand struct{ state uint64 }

// Intn mirrors the seam's draw shape.
func (r *Rand) Intn(n int) int { return int(r.state % uint64(n)) }

// CacheSpec mirrors the fingerprint facet declaration.
type CacheSpec struct {
	Idle, Owner, RegOwner, Downstream, ColumnParity, DestClass bool
}

// Context mirrors the per-decision routing context.
type Context struct {
	Mesh  *Mesh
	View  *View
	Rand  *Rand
	Cur   int
	Dest  int
	InDir Direction
}

// Parity keys on idle state and the current column's parity.
type Parity struct{ pri int }

// CacheSpec declares exactly what Route reads.
func (p *Parity) CacheSpec() (CacheSpec, bool) {
	return CacheSpec{Idle: true, ColumnParity: true}, true
}

// Route reads offsets, a declared parity, and a declared idle count.
func (p *Parity) Route(ctx Context) Direction {
	cc := ctx.Mesh.Coord(ctx.Cur)
	dc := ctx.Mesh.Coord(ctx.Dest)
	d := Direction(0)
	if dc.X-cc.X > 0 {
		d++
	}
	if cc.X%2 == 1 {
		d++
	}
	if countIdle(ctx) > p.pri {
		d++
	}
	return d
}

// countIdle reads the (declared) Idle facet through a helper.
func countIdle(ctx Context) int {
	n := 0
	for vc := 0; vc < ctx.View.VCs(); vc++ {
		if ctx.View.VCIdle(ctx.Dest, vc) {
			n++
		}
	}
	return n
}
