// The bad fixture's under-declared reads, each carrying a suppression
// with a recorded reason. noclint must honor both waivers.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Coord locates a node on the mesh.
type Coord struct{ X, Y int }

// Mesh mirrors the topology intrinsics the walker models.
type Mesh struct{ width, height int }

// Coord maps a node id to its coordinates.
func (m *Mesh) Coord(n int) Coord { return Coord{X: n % m.width, Y: n / m.width} }

// View mirrors the per-router VC state snapshot.
type View struct{ vcs int }

// VCs returns the structural VC count (no facet needed).
func (v *View) VCs() int { return v.vcs }

// VCOwner is keyed by the Owner facet.
func (v *View) VCOwner(dest, vc int) int { return dest + vc }

// CacheSpec mirrors the fingerprint facet declaration.
type CacheSpec struct {
	Idle, Owner, RegOwner, Downstream, ColumnParity, DestClass bool
}

// Context mirrors the per-decision routing context.
type Context struct {
	Mesh *Mesh
	View *View
	Cur  int
	Dest int
}

// Greedy claims its decisions depend only on idle state.
type Greedy struct{ threshold int }

// CacheSpec under-declares, with both extra reads waived below.
func (g *Greedy) CacheSpec() (CacheSpec, bool) { return CacheSpec{Idle: true}, true }

// Route carries waivers for its two inexpressible reads.
func (g *Greedy) Route(ctx Context) Direction {
	d := Direction(0)
	//noclint:allow cacheread migration fixture: spec gains Owner next release
	if ctx.View.VCOwner(ctx.Dest, 0) > g.threshold {
		d++
	}
	//noclint:allow cacheread migration fixture: column special-case is being removed
	if ctx.Mesh.Coord(ctx.Cur).X > 1 {
		d++
	}
	return d
}
