// A Route tree drawing from an algorithm-owned generator instead of the
// injected decision RNG. The route cache records and replays only
// ctx.Rand draws, so this draw would be skipped on a cache hit and every
// later draw in the run would desync. noclint must flag it.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Rand mirrors the decision RNG seam.
type Rand struct{ state uint64 }

// Intn mirrors the seam's draw shape.
func (r *Rand) Intn(n int) int { return int(r.state % uint64(n)) }

// localRand is a private generator outside the record/replay seam.
type localRand struct{ state uint64 }

// Intn draws from the hidden stream.
func (r *localRand) Intn(n int) int { return int(r.state % uint64(n)) }

// Context mirrors the per-decision routing context.
type Context struct {
	Rand *Rand
	Cur  int
	Dest int
}

// Jittered owns its own tie-break generator.
type Jittered struct{ rng *localRand }

// Route draws from the receiver's generator, invisible to the recorder.
func (j *Jittered) Route(ctx Context) Direction {
	if j.rng.Intn(2) == 0 {
		return 1
	}
	return 0
}
