// The bad fixture's off-seam draw carrying a suppression with a
// recorded reason. noclint must honor the waiver.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Rand mirrors the decision RNG seam.
type Rand struct{ state uint64 }

// Intn mirrors the seam's draw shape.
func (r *Rand) Intn(n int) int { return int(r.state % uint64(n)) }

// localRand is a private generator outside the record/replay seam.
type localRand struct{ state uint64 }

// Intn draws from the hidden stream.
func (r *localRand) Intn(n int) int { return int(r.state % uint64(n)) }

// Context mirrors the per-decision routing context.
type Context struct {
	Rand *Rand
	Cur  int
	Dest int
}

// Jittered owns its own tie-break generator.
type Jittered struct{ rng *localRand }

// Route waives its off-seam draw: the algorithm never runs under the
// cache in this configuration.
func (j *Jittered) Route(ctx Context) Direction {
	if j.rng.Intn(2) == 0 { //noclint:allow rngorder fixture alg is never registered as cacheable
		return 1
	}
	return 0
}
