// A Route tree whose only draws flow through ctx.Rand — directly and
// through a helper the walk must follow with argument binding. noclint
// must stay quiet.
package fixture

// Direction is a self-contained mirror of the routing seam's port type.
type Direction int

// Rand mirrors the decision RNG seam.
type Rand struct{ state uint64 }

// Intn mirrors the seam's draw shape.
func (r *Rand) Intn(n int) int { return int(r.state % uint64(n)) }

// Context mirrors the per-decision routing context.
type Context struct {
	Rand *Rand
	Cur  int
	Dest int
}

// Fair breaks ties on the recorded stream only.
type Fair struct{ bias int }

// Route draws directly and through a helper, both on ctx.Rand.
func (f *Fair) Route(ctx Context) Direction {
	if ctx.Rand.Intn(2) == 0 {
		return 0
	}
	return Direction(pick(ctx.Rand, 2))
}

// pick receives the seam RNG as an argument; the walk binds it.
func pick(r *Rand, n int) int {
	return r.Intn(n)
}
