// Package fixture: the two legal switch shapes over a closed enum —
// full coverage, or a panicking default.
package fixture

// Port is a closed enum of router ports.
type Port int

const (
	PortEast Port = iota
	PortWest
	PortLocal
)

// Name covers every constant.
func Name(p Port) string {
	switch p {
	case PortEast:
		return "E"
	case PortWest:
		return "W"
	case PortLocal:
		return "L"
	}
	return "?"
}

// Axis covers a subset but panics on anything else.
func Axis(p Port) string {
	switch p {
	case PortEast, PortWest:
		return "x"
	default:
		panic("fixture: port has no axis")
	}
}

// VCClass mirrors the router's grant-classification enum: the
// num-prefixed sentinel needs no case, the real members do.
type VCClass uint8

const (
	VCClassIdle VCClass = iota
	VCClassFootprint
	VCClassBusy
	VCClassEscape
	numVCClasses
)

var _ = numVCClasses

// ClassName covers every real member and panics on anything else — the
// sentinel included, so a widened enum fails loudly.
func ClassName(c VCClass) string {
	switch c {
	case VCClassIdle:
		return "idle"
	case VCClassFootprint:
		return "footprint"
	case VCClassBusy:
		return "busy"
	case VCClassEscape:
		return "escape"
	default:
		panic("fixture: unknown VC class")
	}
}
