// Package fixture: the two legal switch shapes over a closed enum —
// full coverage, or a panicking default.
package fixture

// Port is a closed enum of router ports.
type Port int

const (
	PortEast Port = iota
	PortWest
	PortLocal
)

// Name covers every constant.
func Name(p Port) string {
	switch p {
	case PortEast:
		return "E"
	case PortWest:
		return "W"
	case PortLocal:
		return "L"
	}
	return "?"
}

// Axis covers a subset but panics on anything else.
func Axis(p Port) string {
	switch p {
	case PortEast, PortWest:
		return "x"
	default:
		panic("fixture: port has no axis")
	}
}
