// Package fixture: a switch over a closed enum with a silent default
// that hides a missing constant. noclint must flag it.
package fixture

// Port is a closed enum of router ports.
type Port int

const (
	PortEast Port = iota
	PortWest
	PortLocal
)

// Name misses PortLocal and swallows it in a non-panicking default.
func Name(p Port) string {
	s := "?"
	switch p {
	case PortEast:
		s = "E"
	case PortWest:
		s = "W"
	default:
		s = "-"
	}
	return s
}
