// Package fixture: a switch over a closed enum with a silent default
// that hides a missing constant. noclint must flag it.
package fixture

// Port is a closed enum of router ports.
type Port int

const (
	PortEast Port = iota
	PortWest
	PortLocal
)

// Name misses PortLocal and swallows it in a non-panicking default.
func Name(p Port) string {
	s := "?"
	switch p {
	case PortEast:
		s = "E"
	case PortWest:
		s = "W"
	default:
		s = "-"
	}
	return s
}

// VCClass mirrors the router's grant-classification enum: a closed set
// with a num-prefixed sentinel, which the rule must exempt from coverage
// while still demanding the real members.
type VCClass uint8

const (
	VCClassIdle VCClass = iota
	VCClassFootprint
	VCClassBusy
	VCClassEscape
	numVCClasses
)

var _ = numVCClasses

// ClassName misses VCClassEscape behind a silent default: exporters would
// quietly mislabel escape grants.
func ClassName(c VCClass) string {
	switch c {
	case VCClassIdle:
		return "idle"
	case VCClassFootprint:
		return "footprint"
	case VCClassBusy:
		return "busy"
	default:
		return "?"
	}
}
