// Package fixture: an intentionally partial enum switch waived with a
// reasoned suppression on the line above.
package fixture

// Port is a closed enum of router ports.
type Port int

const (
	PortEast Port = iota
	PortWest
	PortLocal
)

// Mirror only ever sees the two horizontal ports.
func Mirror(p Port) Port {
	//noclint:allow exhaustive callers filter to horizontal ports first
	switch p {
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	}
	return p
}
