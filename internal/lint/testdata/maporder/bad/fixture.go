// Package fixture: a map serialized in iteration order — the bytes
// differ run to run. noclint must flag it.
package fixture

import (
	"fmt"
	"io"
)

// WriteCounts emits key/value pairs straight from the map walk.
func WriteCounts(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
