// Package fixture: the blessed collect-and-sort idiom for serializing a
// map deterministically.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// WriteCounts collects keys, sorts them, then emits in stable order.
func WriteCounts(w io.Writer, counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, counts[k])
	}
}
