// Package fixture: an order-insensitive map walk in an exporter, waived
// with a reasoned suppression.
package fixture

import (
	"fmt"
	"io"
)

// WriteCardinality emits only the element count, which no iteration
// order can change.
func WriteCardinality(w io.Writer, set map[string]bool) {
	n := 0
	for range set { //noclint:allow maporder cardinality only, order cannot reach the output
		n++
	}
	fmt.Fprintln(w, n)
}
