// Clean arena usage: references stay function-local, every handle's
// last touch is its Free, and rebinding a variable to a fresh
// allocation clears its stale state. noclint must stay quiet.
package fixture

// Flit mirrors the arena's flit record.
type Flit struct{ ID int }

// Packet mirrors the arena's packet record.
type Packet struct{ ID int }

// Handle mirrors the generation-tagged arena handle.
type Handle uint64

// Arena mirrors the run-scoped allocator by shape.
type Arena struct{ flits []Flit }

// NewFlit hands out a flit and its handle.
func (a *Arena) NewFlit() (*Flit, Handle) {
	a.flits = append(a.flits, Flit{})
	return &a.flits[len(a.flits)-1], Handle(len(a.flits))
}

// FreeFlit recycles a flit slot.
func (a *Arena) FreeFlit(h Handle) {}

// FreePacket recycles a packet slot.
func (a *Arena) FreePacket(h Handle) {}

// roundTrip keeps every reference inside one run and frees last.
func roundTrip(a *Arena) int {
	f, h := a.NewFlit()
	f.ID = 7
	id := f.ID
	a.FreeFlit(h)
	return id
}

// helperFree frees its argument for callers that are done with it.
func helperFree(a *Arena, h Handle) {
	a.FreeFlit(h)
}

// rebind frees through the helper, then rebinds the variable to a fresh
// allocation before touching it again.
func rebind(a *Arena) {
	_, h := a.NewFlit()
	helperFree(a, h)
	_, h = a.NewFlit()
	helperFree(a, h)
}
