// The bad fixture's violations, each carrying a suppression with a
// recorded reason. noclint must honor every waiver.
package fixture

// Flit mirrors the arena's flit record.
type Flit struct{ ID int }

// Packet mirrors the arena's packet record.
type Packet struct{ ID int }

// Handle mirrors the generation-tagged arena handle.
type Handle uint64

// Arena mirrors the run-scoped allocator by shape.
type Arena struct{ flits []Flit }

// NewFlit hands out a flit and its handle.
func (a *Arena) NewFlit() (*Flit, Handle) {
	a.flits = append(a.flits, Flit{})
	return &a.flits[len(a.flits)-1], Handle(len(a.flits))
}

// FreeFlit recycles a flit slot.
func (a *Arena) FreeFlit(h Handle) {}

// FreePacket recycles a packet slot.
func (a *Arena) FreePacket(h Handle) {}

// lastFlit is a debug probe, cleared at run teardown.
var lastFlit *Flit //noclint:allow arenaescape debug probe cleared by the harness between runs

// leak feeds the waived debug probe.
func leak(a *Arena) {
	f, _ := a.NewFlit()
	//noclint:allow arenaescape debug probe cleared by the harness between runs
	lastFlit = f
}

// doubleUse arithmetic on a freed handle is waived: the value is only
// logged, never dereferenced.
func doubleUse(a *Arena, h Handle) Handle {
	a.FreeFlit(h)
	return h + 1 //noclint:allow arenaescape freed handle is logged as an integer only
}
