// Arena discipline violations: run-scoped flit/packet references parked
// in package-level state (they alias recycled slots in the next run),
// and a handle used after it was freed — directly and through a helper
// that frees its argument, so the check must cross a call. noclint must
// flag every one.
package fixture

// Flit mirrors the arena's flit record.
type Flit struct{ ID int }

// Packet mirrors the arena's packet record.
type Packet struct{ ID int }

// Handle mirrors the generation-tagged arena handle.
type Handle uint64

// Arena mirrors the run-scoped allocator by shape: a type named Arena
// with FreeFlit and FreePacket methods marks this package's Flit,
// Packet and Handle as run-scoped.
type Arena struct{ flits []Flit }

// NewFlit hands out a flit and its handle.
func (a *Arena) NewFlit() (*Flit, Handle) {
	a.flits = append(a.flits, Flit{})
	return &a.flits[len(a.flits)-1], Handle(len(a.flits))
}

// FreeFlit recycles a flit slot.
func (a *Arena) FreeFlit(h Handle) {}

// FreePacket recycles a packet slot.
func (a *Arena) FreePacket(h Handle) {}

// lastFlit outlives the run that allocated it.
var lastFlit *Flit

// byID parks packet pointers in package state.
var byID = map[int]*Packet{}

// leak stores a run-scoped pointer into the package-level variable.
func leak(a *Arena) {
	f, _ := a.NewFlit()
	lastFlit = f
}

// doubleUse touches a handle after freeing it directly.
func doubleUse(a *Arena, h Handle) Handle {
	a.FreeFlit(h)
	return h + 1
}

// freeVia frees its argument; callers' later uses are stale.
func freeVia(a *Arena, h Handle) {
	a.FreeFlit(h)
}

// staleViaHelper frees through the helper, then frees again.
func staleViaHelper(a *Arena, h Handle) {
	freeVia(a, h)
	a.FreeFlit(h)
}
