// Package fixture: a receiver write inside Route waived with a reasoned
// suppression.
package fixture

// Alg remembers its last pick for post-run inspection.
type Alg struct {
	last int
}

// Route caches the decision; the waiver documents why that is safe.
func (a *Alg) Route(reqs []int) []int {
	if len(reqs) == 0 {
		return nil
	}
	a.last = reqs[0] //noclint:allow routepurity write-only debug cache, never read during routing
	return reqs[:1]
}
