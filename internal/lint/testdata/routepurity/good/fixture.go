// Package fixture: a pure Route — reads receiver state, writes only
// function-local values.
package fixture

// Alg scores candidates against fixed weights.
type Alg struct {
	weights []int
}

// Route picks the best-scoring request without touching shared state.
func (a *Alg) Route(reqs []int) []int {
	best, score := -1, -1
	for _, r := range reqs {
		s := 0
		if r >= 0 && r < len(a.weights) {
			s = a.weights[r]
		}
		if s > score {
			best, score = r, s
		}
	}
	if best < 0 {
		return nil
	}
	return []int{best}
}
