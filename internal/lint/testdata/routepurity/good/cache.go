// The pure counterpart of the caching fixture: a Route that reads a
// prebuilt table owned by the receiver but writes only locals. Reuse
// of prior decisions is the cache layer's job; the algorithm just
// computes.
package fixture

// TableAlg routes from an immutable table built at construction.
type TableAlg struct {
	table map[int][]int
}

// Route reads the table and appends to the caller's slice — the only
// memory it may grow is the request list it was handed.
func (t *TableAlg) Route(dest int, reqs []int) []int {
	decision, ok := t.table[dest]
	if !ok {
		fallback := dest % 4
		return append(reqs, fallback)
	}
	return append(reqs, decision...)
}
