// A memoizing algorithm whose Route mutates caller-visible state: the
// receiver's cache map and hit counter. Memoization belongs in the
// cache layer that interposes on Route (internal/routing/cache.go),
// where the router drives it explicitly — a Route that self-caches
// hides writes inside what the replay contract requires to be a pure
// decision function. noclint must flag every write.
package fixture

// CachingAlg memoizes decisions inside Route itself.
type CachingAlg struct {
	memo map[int][]int
	hits int
}

// Route consults and populates the receiver's memo.
func (c *CachingAlg) Route(dest int, reqs []int) []int {
	if cached, ok := c.memo[dest]; ok {
		c.hits++
		return append(reqs, cached...)
	}
	decision := []int{dest % 4}
	c.memo[dest] = decision
	return append(reqs, decision...)
}
