// Package fixture: a Route method that mutates receiver state and
// signals another goroutine through a helper. noclint must flag both.
package fixture

// Alg is a stateful routing algorithm.
type Alg struct {
	calls int
	done  chan struct{}
}

// Route counts invocations on the receiver and signals mid-decision.
func (a *Alg) Route(reqs []int) []int {
	a.calls++
	signal(a.done)
	return reqs
}

// signal is reached from Route via the same-package call walk.
func signal(c chan struct{}) {
	c <- struct{}{}
}
