package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzeCacheRead statically proves the route cache's central soundness
// argument: an algorithm that opts into caching by implementing
// Fingerprinter asserts that its Route is a pure function of the
// destination offset, the arrival port, its construction-time
// configuration and the facets its CacheSpec declares. PR 9 backed that
// assertion with a differential fuzz target; this rule turns it into a
// build-time proof obligation. For every type declaring a
// CacheSpec() (CacheSpec, bool) method alongside a Route method, the
// rule walks the transitive read-set of Route — through module-local
// helpers, with arguments bound context-sensitively — and checks that
// every facet-keyed read (view methods, coordinate parities, absolute
// destination classes) is covered by a declared facet. Overlay
// algorithms that derive their spec from a wrapped base
// (base.CacheSpec() + own facets) may delegate base.Route untracked;
// everything else they read must be covered by their own additions.
//
// Reads the abstraction cannot express in any facet — absolute
// current-position coordinates beyond parity, node ids leaking into
// unanalyzable calls — are findings too: they would silently desync
// cached from computed decisions.
var analyzeCacheRead = &ProgramAnalyzer{
	Name: "cacheread",
	Doc:  "a Fingerprinter's Route reads only state covered by its declared CacheSpec facets",
	Run:  runCacheRead,
}

// cacheSpecFacets are the declarable CacheSpec fields, used to sanity-
// check parsed specs against fixture drift.
var cacheSpecFacets = map[string]bool{
	"Idle":         true,
	"Owner":        true,
	"RegOwner":     true,
	"Downstream":   true,
	"ColumnParity": true,
	"DestClass":    true,
}

// specDecl is one parsed CacheSpec declaration.
type specDecl struct {
	facets    map[string]bool
	delegates map[string]bool // receiver fields whose spec is derived
}

// cacheRoot pairs a Fingerprinter's CacheSpec declaration with the
// Route method it makes cacheable.
type cacheRoot struct {
	spec  *FuncNode
	route *FuncNode
}

// cacheSpecRoots finds every module type declaring both the
// Fingerprinter shape and a Route method, in source order.
func cacheSpecRoots(prog *Program) []cacheRoot {
	var roots []cacheRoot
	for _, node := range prog.Funcs {
		if node.Decl.Name.Name != "CacheSpec" || node.Decl.Recv == nil {
			continue
		}
		if !inModule(node.Pkg.Path) {
			continue
		}
		sig := node.Obj.Type().(*types.Signature)
		if sig.Recv() == nil || !isCacheSpecSig(sig) {
			continue
		}
		recv := namedType(sig.Recv().Type())
		if recv == nil {
			continue
		}
		routeNode := prog.Funcs[node.Pkg.Path+"|"+recv.Obj().Name()+"|Route"]
		if routeNode == nil {
			continue
		}
		roots = append(roots, cacheRoot{spec: node, route: routeNode})
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].spec.Decl.Pos() < roots[j].spec.Decl.Pos() })
	return roots
}

func runCacheRead(prog *Program) []Finding {
	var out []Finding
	for _, r := range cacheSpecRoots(prog) {
		decl := parseCacheSpec(r.spec)
		var uses []facetUse
		w := newRouteWalker(prog, decl.delegates)
		w.onFacet = func(u facetUse) { uses = append(uses, u) }
		w.onFinding = func(pos token.Pos, msg string) {
			out = append(out, Finding{Pos: prog.position(pos), Rule: "cacheread",
				Msg: routeOwner(r.route) + " " + msg})
		}
		walkRoute(w, r.route)
		seen := map[string]bool{}
		for _, u := range uses {
			if decl.facets[u.facet] {
				continue
			}
			key := fmt.Sprintf("%s@%v", u.facet, u.pos)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Finding{Pos: prog.position(u.pos), Rule: "cacheread",
				Msg: fmt.Sprintf("%s reads %s but its CacheSpec does not declare the %s facet",
					routeOwner(r.route), u.what, u.facet)})
		}
	}
	return out
}

// isCacheSpecSig reports the Fingerprinter method shape: no parameters,
// results (struct named CacheSpec, bool).
func isCacheSpecSig(sig *types.Signature) bool {
	if sig.Params().Len() != 0 || sig.Results().Len() != 2 {
		return false
	}
	n := namedType(sig.Results().At(0).Type())
	if n == nil || n.Obj().Name() != "CacheSpec" {
		return false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	b, ok := sig.Results().At(1).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// routeOwner labels a Route root for messages, e.g. "(*Footprint).Route".
func routeOwner(node *FuncNode) string {
	sig := node.Obj.Type().(*types.Signature)
	if n := namedType(sig.Recv().Type()); n != nil {
		return "(*" + n.Obj().Name() + ").Route"
	}
	return "Route"
}

// parseCacheSpec extracts the declared facets and delegation fields from
// a CacheSpec method body. Facets come from CacheSpec composite literals
// (keyed and positional) and spec.<Facet> = ... assignments; a facet
// assigned any non-false expression counts as declared (overdeclaring
// keys on more state, which is sound). Delegation is the overlay
// pattern: asserting a receiver field to Fingerprinter (or calling
// CacheSpec on it directly) marks that field's Route as covered by the
// derived spec.
func parseCacheSpec(node *FuncNode) specDecl {
	info := node.Pkg.Info
	decl := specDecl{facets: map[string]bool{}, delegates: map[string]bool{}}

	// The receiver object, for tracing field selections.
	var recvObj types.Object
	if fd := node.Decl; fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}
	// fieldOf maps locals to the receiver field they were derived from
	// (f, ok := x.base.(Fingerprinter) → fieldOf[f] = "base").
	fieldOf := map[types.Object]string{}
	var recvField func(e ast.Expr) (string, bool)
	recvField = func(e ast.Expr) (string, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && recvObj != nil && info.ObjectOf(id) == recvObj {
				return x.Sel.Name, true
			}
		case *ast.TypeAssertExpr:
			return recvField(x.X)
		case *ast.Ident:
			if f, ok := fieldOf[info.ObjectOf(x)]; ok {
				return f, true
			}
		}
		return "", false
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) && len(x.Rhs) != 1 {
					break
				}
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				// Track derived-field locals.
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if f, ok := recvField(rhs); ok {
						if obj := info.ObjectOf(id); obj != nil {
							fieldOf[obj] = f
						}
					}
				}
				// spec.<Facet> = <expr>
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && cacheSpecFacets[sel.Sel.Name] {
					if !isFalseIdent(rhs) {
						decl.facets[sel.Sel.Name] = true
					}
				}
			}
		case *ast.CompositeLit:
			if n := namedType(info.Types[x].Type); n == nil || n.Obj().Name() != "CacheSpec" {
				return true
			}
			st, ok := info.Types[x].Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok && !isFalseIdent(kv.Value) {
						decl.facets[id.Name] = true
					}
					continue
				}
				if i < st.NumFields() && !isFalseIdent(elt) {
					decl.facets[st.Field(i).Name()] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "CacheSpec" {
				if f, ok := recvField(sel.X); ok {
					decl.delegates[f] = true
				}
			}
		}
		return true
	})
	return decl
}

// isFalseIdent reports the literal identifier false.
func isFalseIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "false"
}
