package lint

import (
	"go/ast"
	"go/types"
)

// analyzeDeterminism enforces the engine's first invariant: simulation
// results are a pure function of (Config, seed). Under the
// deterministic roots the rule forbids
//
//   - wall-clock reads (time.Now / time.Since / time.Until), and
//   - the global math/rand source (rand.Intn, rand.Shuffle, …), whose
//     hidden shared state couples concurrent runs and breaks the
//     "equal seeds ⇒ identical results at any -jobs" guarantee.
//
// Explicitly seeded generators (rand.New(rand.NewSource(seed))) and
// *rand.Rand method calls stay legal. Wall-clock self-metrics that
// never feed results (cycles/s reporting, the phase profiler) flow
// through the single waived seam prof.Now in internal/prof; consumers
// take a prof.Clock and need no waiver of their own.
var analyzeDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock or global math/rand state in result-producing packages",
	Applies: func(path string) bool {
		return underAny(path, deterministicRoots)
	},
	Run: runDeterminism,
}

// mathRandConstructors are the package-level math/rand functions that
// build explicitly seeded state rather than touching the global source.
var mathRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					out = append(out, finding(p, call.Pos(), "determinism",
						"time."+fn.Name()+" reads the wall clock in a deterministic simulation path"))
				}
			case "math/rand", "math/rand/v2":
				if !mathRandConstructors[fn.Name()] {
					out = append(out, finding(p, call.Pos(), "determinism",
						"rand."+fn.Name()+" draws from the global math/rand source; use an explicitly seeded *rand.Rand"))
				} else if fn.Name() == "New" && len(call.Args) == 0 {
					out = append(out, finding(p, call.Pos(), "determinism",
						"rand.New without an explicit source is auto-seeded and nondeterministic"))
				}
			}
			return true
		})
	}
	return out
}
