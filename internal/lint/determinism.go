package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeDeterminism enforces the engine's first invariant: simulation
// results are a pure function of (Config, seed). Under the
// deterministic roots the rule forbids
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - the global math/rand source (rand.Intn, rand.Shuffle, …), whose
//     hidden shared state couples concurrent runs and breaks the
//     "equal seeds ⇒ identical results at any -jobs" guarantee, and
//   - Intn draws on a generator stored in a package-level variable.
//     Routing decisions draw through the routing.Rand interface
//     (Intn(n int) int), so a `var rng = rand.New(...)` shared across
//     runs is the same hidden coupling as the global source with an
//     explicit seed pasted on; generators must be owned per run and
//     reach their draw sites as parameters, fields or locals.
//
// Explicitly seeded generators (rand.New(rand.NewSource(seed))) and
// *rand.Rand / routing.Rand method calls on run-owned values stay
// legal. Wall-clock self-metrics that never feed results (cycles/s
// reporting, the phase profiler) flow through the single waived seam
// prof.Now in internal/prof; consumers take a prof.Clock and need no
// waiver of their own.
var analyzeDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock or global math/rand state in result-producing packages",
	Applies: func(path string) bool {
		return underAny(path, deterministicRoots)
	},
	Run: runDeterminism,
}

// mathRandConstructors are the package-level math/rand functions that
// build explicitly seeded state rather than touching the global source.
var mathRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods (e.g. *rand.Rand, routing.Rand) are fine on
				// run-owned generators — but an Intn-shaped draw whose
				// receiver chain is rooted in a package-level variable is
				// shared hidden state, seeded or not.
				if isIntnShaped(fn, sig) {
					if v := packageLevelRecv(p.Info, call); v != nil {
						out = append(out, finding(p, call.Pos(), "determinism",
							fmt.Sprintf("%s.Intn draws from package-level generator state; generators must be owned per run (parameter, field or local)", v.Name())))
					}
				}
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					out = append(out, finding(p, call.Pos(), "determinism",
						"time."+fn.Name()+" reads the wall clock in a deterministic simulation path"))
				case "NewTimer", "NewTicker", "Tick", "After", "AfterFunc", "Sleep":
					out = append(out, finding(p, call.Pos(), "determinism",
						"time."+fn.Name()+" schedules on the wall clock; simulation time advances only through the cycle loop"))
				}
			case "math/rand", "math/rand/v2":
				if !mathRandConstructors[fn.Name()] {
					out = append(out, finding(p, call.Pos(), "determinism",
						"rand."+fn.Name()+" draws from the global math/rand source; use an explicitly seeded *rand.Rand"))
				} else if fn.Name() == "New" && len(call.Args) == 0 {
					out = append(out, finding(p, call.Pos(), "determinism",
						"rand.New without an explicit source is auto-seeded and nondeterministic"))
				}
			}
			return true
		})
	}
	return out
}

// isIntnShaped reports whether a method has the routing.Rand draw shape:
// named Intn, one int parameter, one int result. Matching the shape
// rather than a concrete type catches both *rand.Rand and any
// interposer implementing the Rand interface.
func isIntnShaped(fn *types.Func, sig *types.Signature) bool {
	if fn.Name() != "Intn" || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isInt(sig.Params().At(0).Type()) && isInt(sig.Results().At(0).Type())
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// packageLevelRecv returns the package-level variable at the root of a
// method call's receiver chain (sharedRNG.Intn, state.rng.Intn), or nil
// when the receiver is a parameter, field access through a local, or
// any other run-scoped value.
func packageLevelRecv(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base, _ := leftmostIdent(sel.X)
	if base == nil {
		return nil
	}
	v, ok := info.ObjectOf(base).(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
