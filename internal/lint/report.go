package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names used by the driver itself (analyzers carry their own).
const (
	ruleTypecheck   = "typecheck"
	ruleSuppression = "suppression"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// SortFindings orders findings by file, line, column, rule and message —
// a total order, so two runs over the same tree print byte-identical
// reports and CI diffs are reproducible.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// WriteFindings prints findings one per line as
// "path:line:col: rule: message", with paths relative to base when
// possible so reports do not embed the checkout location.
func WriteFindings(w io.Writer, fs []Finding, base string) {
	for _, f := range fs {
		name := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		if name == "" {
			fmt.Fprintf(w, "%s: %s\n", f.Rule, f.Msg)
			continue
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
}

// jsonFinding is one finding in -json output. Waived findings are
// included with Suppressed true so tooling can audit what the
// //noclint:allow comments are absorbing; only unsuppressed findings
// count toward the exit code.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed"`
}

// Main is the noclint entry point: it lints the packages named by the
// patterns (directories, or ./... for the whole module) and returns the
// process exit code — 0 clean, 1 findings, 2 usage or load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("noclint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	pkgPath := fl.String("pkgpath", "", "lint a single directory under this synthetic import path (fixture mode)")
	list := fl.Bool("rules", false, "list the rule suite and exit")
	asJSON := fl.Bool("json", false, "emit findings as a JSON array (suppressed findings included)")
	waivers := fl.Bool("waivers", false, "list every //noclint:allow comment with its rule and reason, then exit")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: noclint [-pkgpath path] [-rules] [-json] [-waivers] ./...\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range ProgramAnalyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		fl.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "noclint:", err)
		return 2
	}
	root, err := ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "noclint:", err)
		return 2
	}

	// Resolve patterns to (dir, import path) pairs.
	type target struct{ dir, path string }
	var targets []target
	for _, pat := range patterns {
		switch {
		case *pkgPath != "":
			targets = append(targets, target{pat, *pkgPath})
		case pat == "./..." || pat == "...":
			rels, err := PackageDirs(root)
			if err != nil {
				fmt.Fprintln(stderr, "noclint:", err)
				return 2
			}
			for _, rel := range rels {
				targets = append(targets, target{filepath.Join(root, rel), importPathFor(rel)})
			}
		default:
			abs, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintln(stderr, "noclint:", err)
				return 2
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || filepath.IsAbs(rel) || escapesRoot(rel) {
				fmt.Fprintf(stderr, "noclint: %s is outside the module\n", pat)
				return 2
			}
			targets = append(targets, target{abs, importPathFor(rel)})
		}
	}

	loader := NewLoader()

	// -waivers needs only syntax: parse each target and list its
	// suppression comments, without paying for type-checking the module.
	if *waivers {
		var allows []allowance
		var bad []Finding
		for _, t := range targets {
			p, err := loader.Parse(t.dir, t.path)
			if err != nil {
				fmt.Fprintln(stderr, "noclint:", err)
				return 2
			}
			as, b := collectAllowances(p)
			allows = append(allows, as...)
			bad = append(bad, b...)
		}
		sort.Slice(allows, func(i, j int) bool {
			a, b := allows[i], allows[j]
			if a.file != b.file {
				return a.file < b.file
			}
			if a.line != b.line {
				return a.line < b.line
			}
			return a.rule < b.rule
		})
		for _, a := range allows {
			name := a.file
			if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && !escapesRoot(rel) {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", name, a.line, a.rule, a.reason)
		}
		if len(bad) > 0 {
			SortFindings(bad)
			WriteFindings(stderr, bad, root)
			return 1
		}
		return 0
	}

	var pkgs []*Package
	var typecheckFindings []Finding
	for _, t := range targets {
		p, tfs, err := loader.Load(t.dir, t.path)
		if err != nil {
			fmt.Fprintln(stderr, "noclint:", err)
			return 2
		}
		typecheckFindings = append(typecheckFindings, tfs...)
		pkgs = append(pkgs, p)
	}
	active, waived := CheckAll(pkgs)
	active = append(active, typecheckFindings...)
	SortFindings(active)

	if *asJSON {
		relName := func(name string) string {
			if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && !escapesRoot(rel) {
				return rel
			}
			return name
		}
		out := make([]jsonFinding, 0, len(active)+len(waived))
		for _, f := range active {
			out = append(out, jsonFinding{File: relName(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Msg: f.Msg})
		}
		for _, f := range waived {
			out = append(out, jsonFinding{File: relName(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column, Rule: f.Rule, Msg: f.Msg, Suppressed: true})
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Rule != b.Rule {
				return a.Rule < b.Rule
			}
			return a.Msg < b.Msg
		})
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "noclint:", err)
			return 2
		}
	} else {
		WriteFindings(stdout, active, root)
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "noclint: %d finding(s)\n", len(active))
		return 1
	}
	return 0
}

// escapesRoot reports whether a relative path escapes the module root.
func escapesRoot(rel string) bool {
	return rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))
}
