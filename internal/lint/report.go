package lint

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names used by the driver itself (analyzers carry their own).
const (
	ruleTypecheck   = "typecheck"
	ruleSuppression = "suppression"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// SortFindings orders findings by file, line, column, rule and message —
// a total order, so two runs over the same tree print byte-identical
// reports and CI diffs are reproducible.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// WriteFindings prints findings one per line as
// "path:line:col: rule: message", with paths relative to base when
// possible so reports do not embed the checkout location.
func WriteFindings(w io.Writer, fs []Finding, base string) {
	for _, f := range fs {
		name := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		if name == "" {
			fmt.Fprintf(w, "%s: %s\n", f.Rule, f.Msg)
			continue
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
}

// Main is the noclint entry point: it lints the packages named by the
// patterns (directories, or ./... for the whole module) and returns the
// process exit code — 0 clean, 1 findings, 2 usage or load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("noclint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	pkgPath := fl.String("pkgpath", "", "lint a single directory under this synthetic import path (fixture mode)")
	list := fl.Bool("rules", false, "list the rule suite and exit")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: noclint [-pkgpath path] [-rules] ./...\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		fl.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "noclint:", err)
		return 2
	}
	root, err := ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "noclint:", err)
		return 2
	}

	// Resolve patterns to (dir, import path) pairs.
	type target struct{ dir, path string }
	var targets []target
	for _, pat := range patterns {
		switch {
		case *pkgPath != "":
			targets = append(targets, target{pat, *pkgPath})
		case pat == "./..." || pat == "...":
			rels, err := PackageDirs(root)
			if err != nil {
				fmt.Fprintln(stderr, "noclint:", err)
				return 2
			}
			for _, rel := range rels {
				targets = append(targets, target{filepath.Join(root, rel), importPathFor(rel)})
			}
		default:
			abs, err := filepath.Abs(pat)
			if err != nil {
				fmt.Fprintln(stderr, "noclint:", err)
				return 2
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || filepath.IsAbs(rel) || escapesRoot(rel) {
				fmt.Fprintf(stderr, "noclint: %s is outside the module\n", pat)
				return 2
			}
			targets = append(targets, target{abs, importPathFor(rel)})
		}
	}

	loader := NewLoader()
	var all []Finding
	for _, t := range targets {
		p, tfs, err := loader.Load(t.dir, t.path)
		if err != nil {
			fmt.Fprintln(stderr, "noclint:", err)
			return 2
		}
		all = append(all, tfs...)
		all = append(all, Check(p)...)
	}
	SortFindings(all)
	WriteFindings(stdout, all, root)
	if len(all) > 0 {
		fmt.Fprintf(stderr, "noclint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// escapesRoot reports whether a relative path escapes the module root.
func escapesRoot(rel string) bool {
	return rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))
}
