package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureCases pairs each rule with the synthetic import path that puts
// its fixtures inside the rule's scope.
var fixtureCases = []struct {
	rule   string
	asPath string
}{
	{"determinism", "nocsim/internal/sim/fixture"},
	{"exhaustive", "nocsim/internal/lint/fixture"},
	{"maporder", "nocsim/internal/lint/fixture"},
	{"routepurity", "nocsim/internal/routing/fixture"},
	{"seedident", "nocsim/internal/sim/fixture"},
	{"arenaescape", "nocsim/internal/flit/fixture"},
	{"cacheread", "nocsim/internal/routing/fixture"},
	{"rngorder", "nocsim/internal/routing/fixture"},
	{"sinkcap", "nocsim/internal/router/fixture"},
}

// checkFixture loads one fixture package and returns its findings for
// the rule under test, plus any suppression-hygiene findings (a
// malformed //noclint:allow in a fixture is a fixture bug).
func checkFixture(t *testing.T, l *Loader, dir, asPath, rule string) []Finding {
	t.Helper()
	p, tfs, err := l.Load(dir, asPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, f := range tfs {
		t.Fatalf("fixture %s does not type-check: %s: %s", dir, f.Pos, f.Msg)
	}
	var out []Finding
	for _, f := range Check(p) {
		if f.Rule == rule || f.Rule == ruleSuppression {
			out = append(out, f)
		}
	}
	return out
}

// TestFixtures exercises every rule against its bad / good / allowed
// fixture triple: at least one true positive, a clean pass, and an
// honored //noclint:allow suppression.
func TestFixtures(t *testing.T) {
	l := NewLoader()
	for _, tc := range fixtureCases {
		t.Run(tc.rule, func(t *testing.T) {
			base := filepath.Join("testdata", tc.rule)
			if bad := checkFixture(t, l, filepath.Join(base, "bad"), tc.asPath, tc.rule); len(bad) == 0 {
				t.Errorf("%s/bad: want at least one finding, got none", tc.rule)
			}
			if good := checkFixture(t, l, filepath.Join(base, "good"), tc.asPath, tc.rule); len(good) != 0 {
				t.Errorf("%s/good: unexpected findings: %v", tc.rule, good)
			}
			if allowed := checkFixture(t, l, filepath.Join(base, "allowed"), tc.asPath, tc.rule); len(allowed) != 0 {
				t.Errorf("%s/allowed: suppression not honored: %v", tc.rule, allowed)
			}
		})
	}
}

// TestScopes pins the path scoping: result-producing roots are covered
// by determinism, the observability layer is not, and nothing outside
// the module is.
func TestScopes(t *testing.T) {
	det := analyzeDeterminism.Applies
	for path, want := range map[string]bool{
		"nocsim/internal/sim":         true,
		"nocsim/internal/sim/fixture": true,
		"nocsim/internal/routing":     true,
		"nocsim/internal/prof":        true,
		"nocsim/internal/obs":         false,
		"nocsim/internal/cli":         false,
		"nocsim/internal/simx":        false,
		"other/internal/sim":          false,
	} {
		if got := det(path); got != want {
			t.Errorf("determinism applies(%s) = %v, want %v", path, got, want)
		}
	}
	if inModule("nocsimx/internal/sim") {
		t.Error("inModule must not match a foreign module sharing the prefix")
	}
}

// reportLine matches the stable "path:line:col: rule: message" format.
var reportLine = regexp.MustCompile(`^[^:]+\.go:\d+:\d+: [a-z]+: .+$`)

// TestMainExitCodes drives the CLI entry point: nonzero with a sorted,
// stable report on a bad fixture, zero on a clean one.
func TestMainExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bad fixture: exit %d (stderr %q), want 1", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("bad fixture: no report lines on stdout")
	}
	for _, line := range lines {
		if !reportLine.MatchString(line) {
			t.Errorf("report line %q does not match path:line:col: rule: msg", line)
		}
	}
	if !sort.StringsAreSorted(lines) {
		t.Errorf("report not sorted:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr %q missing the finding count", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = Main([]string{"-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/good"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("good fixture: exit %d (stdout %q), want 0", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("good fixture: unexpected output %q", stdout.String())
	}
}

// loadModule type-checks every package in the module with one shared
// loader, failing the test on load errors.
func loadModule(t testing.TB) []*Package {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	var pkgs []*Package
	for _, rel := range rels {
		p, tfs, err := l.Load(filepath.Join(root, rel), importPathFor(rel))
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		for _, f := range tfs {
			t.Errorf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// TestMainJSON drives -json: machine-readable findings on a bad
// fixture, and suppressed findings surfaced (but not counted) on the
// allowed fixture.
func TestMainJSON(t *testing.T) {
	type jf struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Rule       string `json:"rule"`
		Msg        string `json:"msg"`
		Suppressed bool   `json:"suppressed"`
	}
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-json", "-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bad fixture: exit %d (stderr %q), want 1", code, stderr.String())
	}
	var got []jf
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(got) == 0 {
		t.Fatal("bad fixture: empty JSON findings")
	}
	for _, f := range got {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
		if f.Suppressed {
			t.Errorf("bad fixture has no suppressions, but %+v is marked suppressed", f)
		}
	}

	stdout.Reset()
	stderr.Reset()
	code = Main([]string{"-json", "-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/allowed"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("allowed fixture: exit %d (stdout %q), want 0", code, stdout.String())
	}
	got = nil
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	suppressed := 0
	for _, f := range got {
		if !f.Suppressed {
			t.Errorf("allowed fixture: active finding leaked into exit-0 run: %+v", f)
		} else {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("allowed fixture: waived findings missing from -json output")
	}
}

// TestMainWaivers drives -waivers: every //noclint:allow in the target
// comes back as "file:line: rule: reason" without type-checking.
func TestMainWaivers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-waivers", "-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/allowed"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d (stderr %q), want 0", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no waivers reported for the allowed fixture")
	}
	waiverLine := regexp.MustCompile(`^[^:]+\.go:\d+: [a-z]+: .+$`)
	for _, line := range lines {
		if !waiverLine.MatchString(line) {
			t.Errorf("waiver line %q does not match file:line: rule: reason", line)
		}
	}
}

// TestCacheReadCoversFingerprinters guards cacheread against silently
// verifying nothing: every algorithm that opts into the route cache
// must be discovered as a proof root. A new Fingerprinter joins the
// list by being found; one that stops being found (renamed method,
// changed signature) fails here instead of passing vacuously.
func TestCacheReadCoversFingerprinters(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking internal/routing is slow")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	p, tfs, err := l.Load(filepath.Join(root, "internal", "routing"), "nocsim/internal/routing")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tfs {
		t.Fatalf("internal/routing does not type-check: %s: %s", f.Pos, f.Msg)
	}
	var got []string
	for _, r := range cacheSpecRoots(BuildProgram([]*Package{p})) {
		got = append(got, routeOwner(r.route))
	}
	sort.Strings(got)
	want := []string{
		"(*DBAR).Route",
		"(*DOR).Route",
		"(*Footprint).Route",
		"(*OddEven).Route",
		"(*VOQSW).Route",
		"(*XORDET).Route",
	}
	if !slicesEqual(got, want) {
		t.Errorf("cacheread proof roots = %q, want %q", got, want)
	}
}

// TestRepositoryClean runs the full suite — all per-package rules plus
// the interprocedural program rules — over the module tip. The tree must
// stay noclint-clean, so CI failures reproduce locally as a test.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow")
	}
	active, _ := CheckAll(loadModule(t))
	for _, f := range active {
		t.Errorf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
	}
}

// TestWaiverBudget pins the module's //noclint:allow inventory: every
// waiver in the tree must be on this list, so adding one is a conscious,
// reviewed act rather than drift.
func TestWaiverBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("parsing the whole module is slow enough to skip in -short")
	}
	want := []string{
		"internal/prof/prof.go: determinism",
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	var got []string
	for _, rel := range rels {
		p, err := l.Parse(filepath.Join(root, rel), importPathFor(rel))
		if err != nil {
			t.Fatalf("parse %s: %v", rel, err)
		}
		allows, bad := collectAllowances(p)
		for _, f := range bad {
			t.Errorf("malformed suppression: %s: %s", f.Pos, f.Msg)
		}
		for _, a := range allows {
			relFile, err := filepath.Rel(root, a.file)
			if err != nil {
				relFile = a.file
			}
			got = append(got, filepath.ToSlash(relFile)+": "+a.rule)
		}
	}
	sort.Strings(got)
	if !slicesEqual(got, want) {
		t.Errorf("waiver inventory drifted:\n got  %q\n want %q\nupdate the golden only with a reviewed justification", got, want)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkNoclintFullModule measures one whole-suite pass over the
// already-loaded module — the marginal cost of the rules themselves,
// excluding parsing and type-checking.
func BenchmarkNoclintFullModule(b *testing.B) {
	pkgs := loadModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		active, _ := CheckAll(pkgs)
		if len(active) != 0 {
			b.Fatalf("module not clean: %v", active[0])
		}
	}
}
