package lint

import (
	"bytes"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureCases pairs each rule with the synthetic import path that puts
// its fixtures inside the rule's scope.
var fixtureCases = []struct {
	rule   string
	asPath string
}{
	{"determinism", "nocsim/internal/sim/fixture"},
	{"exhaustive", "nocsim/internal/lint/fixture"},
	{"maporder", "nocsim/internal/lint/fixture"},
	{"routepurity", "nocsim/internal/routing/fixture"},
	{"seedident", "nocsim/internal/sim/fixture"},
}

// checkFixture loads one fixture package and returns its findings for
// the rule under test, plus any suppression-hygiene findings (a
// malformed //noclint:allow in a fixture is a fixture bug).
func checkFixture(t *testing.T, l *Loader, dir, asPath, rule string) []Finding {
	t.Helper()
	p, tfs, err := l.Load(dir, asPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, f := range tfs {
		t.Fatalf("fixture %s does not type-check: %s: %s", dir, f.Pos, f.Msg)
	}
	var out []Finding
	for _, f := range Check(p) {
		if f.Rule == rule || f.Rule == ruleSuppression {
			out = append(out, f)
		}
	}
	return out
}

// TestFixtures exercises every rule against its bad / good / allowed
// fixture triple: at least one true positive, a clean pass, and an
// honored //noclint:allow suppression.
func TestFixtures(t *testing.T) {
	l := NewLoader()
	for _, tc := range fixtureCases {
		t.Run(tc.rule, func(t *testing.T) {
			base := filepath.Join("testdata", tc.rule)
			if bad := checkFixture(t, l, filepath.Join(base, "bad"), tc.asPath, tc.rule); len(bad) == 0 {
				t.Errorf("%s/bad: want at least one finding, got none", tc.rule)
			}
			if good := checkFixture(t, l, filepath.Join(base, "good"), tc.asPath, tc.rule); len(good) != 0 {
				t.Errorf("%s/good: unexpected findings: %v", tc.rule, good)
			}
			if allowed := checkFixture(t, l, filepath.Join(base, "allowed"), tc.asPath, tc.rule); len(allowed) != 0 {
				t.Errorf("%s/allowed: suppression not honored: %v", tc.rule, allowed)
			}
		})
	}
}

// TestScopes pins the path scoping: result-producing roots are covered
// by determinism, the observability layer is not, and nothing outside
// the module is.
func TestScopes(t *testing.T) {
	det := analyzeDeterminism.Applies
	for path, want := range map[string]bool{
		"nocsim/internal/sim":         true,
		"nocsim/internal/sim/fixture": true,
		"nocsim/internal/routing":     true,
		"nocsim/internal/prof":        true,
		"nocsim/internal/obs":         false,
		"nocsim/internal/cli":         false,
		"nocsim/internal/simx":        false,
		"other/internal/sim":          false,
	} {
		if got := det(path); got != want {
			t.Errorf("determinism applies(%s) = %v, want %v", path, got, want)
		}
	}
	if inModule("nocsimx/internal/sim") {
		t.Error("inModule must not match a foreign module sharing the prefix")
	}
}

// reportLine matches the stable "path:line:col: rule: message" format.
var reportLine = regexp.MustCompile(`^[^:]+\.go:\d+:\d+: [a-z]+: .+$`)

// TestMainExitCodes drives the CLI entry point: nonzero with a sorted,
// stable report on a bad fixture, zero on a clean one.
func TestMainExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bad fixture: exit %d (stderr %q), want 1", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("bad fixture: no report lines on stdout")
	}
	for _, line := range lines {
		if !reportLine.MatchString(line) {
			t.Errorf("report line %q does not match path:line:col: rule: msg", line)
		}
	}
	if !sort.StringsAreSorted(lines) {
		t.Errorf("report not sorted:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr %q missing the finding count", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = Main([]string{"-pkgpath", "nocsim/internal/sim/fixture", "testdata/determinism/good"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("good fixture: exit %d (stdout %q), want 0", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("good fixture: unexpected output %q", stdout.String())
	}
}

// TestRepositoryClean runs the full suite over the module tip — the tree
// must stay noclint-clean, so CI failures reproduce locally as a test.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	for _, rel := range rels {
		p, tfs, err := l.Load(filepath.Join(root, rel), importPathFor(rel))
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		for _, f := range append(tfs, Check(p)...) {
			t.Errorf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
		}
	}
}
