package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeRoutePurity enforces the routing contract: a Route method (and
// every same-package function it reaches) is a decision function — it
// may read the router's View and draw from the decision's own RNG, but
// it must not mutate reachable state, send on channels, or talk to the
// observability layer. This is the static twin of the dynamic
// replay-purity property test: the paper's paired-seed comparisons are
// only meaningful if routing cannot perturb the fabric it is inspecting.
//
// Concretely, in internal/routing, starting from every method named
// Route and walking same-package static calls:
//
//   - no assignment whose target can alias caller-visible memory
//     (fields through pointers/receivers, slice/map elements, derefs);
//     writes to function-local value variables stay legal,
//   - no channel sends or close,
//   - no calls to router.MetricsSink methods (or any value implementing
//     it) — metrics are the router's job, after the decision.
var analyzeRoutePurity = &Analyzer{
	Name: "routepurity",
	Doc:  "Route and its helpers read state but never write, send or emit metrics",
	Applies: func(path string) bool {
		const root = "nocsim/internal/routing"
		return path == root || len(path) > len(root) && path[:len(root)+1] == root+"/"
	},
	Run: runRoutePurity,
}

func runRoutePurity(p *Package) []Finding {
	// Index the package's function declarations by their object so the
	// walk can follow static calls.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	sink := metricsSinkInterface(p)
	var out []Finding
	visited := map[*types.Func]bool{}

	var visit func(obj *types.Func, fd *ast.FuncDecl, root string)
	visit = func(obj *types.Func, fd *ast.FuncDecl, root string) {
		if visited[obj] {
			return
		}
		visited[obj] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					out = appendImpureWrite(p, out, fd, lhs, root)
				}
			case *ast.IncDecStmt:
				out = appendImpureWrite(p, out, fd, x.X, root)
			case *ast.SendStmt:
				out = append(out, finding(p, x.Pos(), "routepurity",
					fmt.Sprintf("channel send inside %s: routing decisions must not signal other goroutines", root)))
			case *ast.CallExpr:
				if isBuiltin(p.Info, x, "close") {
					out = append(out, finding(p, x.Pos(), "routepurity",
						fmt.Sprintf("close inside %s: routing decisions must not manage channels", root)))
					return true
				}
				fn := calleeFunc(p.Info, x)
				if fn == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if isMetricsSinkRecv(sig.Recv().Type(), sink) {
						out = append(out, finding(p, x.Pos(), "routepurity",
							fmt.Sprintf("MetricsSink call %s inside %s: metrics are emitted by the router, not the algorithm", fn.Name(), root)))
					}
					return true
				}
				// Follow same-package static calls.
				if next, ok := decls[fn]; ok {
					visit(fn, next, root)
				}
			}
			return true
		})
	}

	for obj, fd := range decls {
		if fd.Name.Name == "Route" && fd.Recv != nil {
			visit(obj, fd, routeLabel(p, fd))
		}
	}
	return out
}

// routeLabel names a Route root for messages, e.g. "(*Footprint).Route".
func routeLabel(p *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	if n := namedType(p.Info.Types[fd.Recv.List[0].Type].Type); n != nil {
		return "(*" + n.Obj().Name() + ").Route"
	}
	return fd.Name.Name
}

// appendImpureWrite flags an assignment target that can alias memory
// outside the function. A write is pure only when its base identifier
// is a non-reference local (declared inside the function, value type)
// and no pointer was dereferenced on the way.
func appendImpureWrite(p *Package, out []Finding, fd *ast.FuncDecl, lhs ast.Expr, root string) []Finding {
	base, deref := leftmostIdent(lhs)
	if base == nil {
		return append(out, finding(p, lhs.Pos(), "routepurity",
			fmt.Sprintf("write through %s inside %s", exprString(p.Fset, lhs), root)))
	}
	if base.Name == "_" {
		return out
	}
	obj := p.Info.ObjectOf(base)
	v, ok := obj.(*types.Var)
	if !ok {
		// Package-level func/const cannot be assigned; a nil object is a
		// fresh := definition, which is local by construction.
		if obj == nil && !deref {
			return out
		}
		return append(out, finding(p, lhs.Pos(), "routepurity",
			fmt.Sprintf("write to %s inside %s", exprString(p.Fset, lhs), root)))
	}
	local := v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
	switch {
	case !local:
		return append(out, finding(p, lhs.Pos(), "routepurity",
			fmt.Sprintf("write to package state %s inside %s", exprString(p.Fset, lhs), root)))
	case deref, isReferenceType(v.Type()) && lhs != ast.Expr(base):
		// Writing *through* a local pointer/slice/map reaches shared
		// memory; rebinding the local itself (base = ...) is fine.
		return append(out, finding(p, lhs.Pos(), "routepurity",
			fmt.Sprintf("write through reference %s inside %s: may mutate router state", exprString(p.Fset, lhs), root)))
	}
	return out
}

// metricsSinkInterface finds router.MetricsSink among the package's
// imports, or nil when the package does not import the router.
func metricsSinkInterface(p *Package) *types.Interface {
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() != "nocsim/internal/router" {
			continue
		}
		if tn, ok := imp.Scope().Lookup("MetricsSink").(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// isMetricsSinkRecv reports whether a method receiver type is (or
// implements) the router's MetricsSink seam.
func isMetricsSinkRecv(recv types.Type, sink *types.Interface) bool {
	if n := namedType(recv); n != nil && n.Obj().Name() == "MetricsSink" {
		if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "nocsim/internal/router" {
			return true
		}
	}
	if sink == nil {
		return false
	}
	return types.Implements(recv, sink) || types.Implements(types.NewPointer(recv), sink)
}
