package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzeMapOrder enforces ordered iteration where order can leak into
// an artifact: Go randomizes map range order per run, so a map walk in
// a function that builds a Result, serializes state (CSV/JSON/metrics
// exporters and Format methods), or derives seeds produces
// run-to-run-different bytes — exactly the class of nondeterminism the
// golden tests can only catch when the affected path executes.
//
// A map range inside a sensitive function is legal only as the
// collect-then-sort idiom: the loop body does nothing but append keys
// or values to a slice that is subsequently passed to a sort call in
// the same function. Anything else needs sorted keys up front or a
// //noclint:allow waiver.
var analyzeMapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "no unordered map iteration in Result-building, exporting or seed-deriving functions",
	Applies: inModule,
	Run:     runMapOrder,
}

func runMapOrder(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			why := sensitivityOf(p, fd)
			if why == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := p.Info.Types[rs.X].Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectAndSort(p, fd, rs) {
					return true
				}
				out = append(out, finding(p, rs.Pos(), "maporder",
					fmt.Sprintf("map iteration order leaks into %s; iterate sorted keys or collect-and-sort", why)))
				return true
			})
		}
	}
	return out
}

// sensitivityOf classifies fd: a non-empty return value names why its
// iteration order is observable.
func sensitivityOf(p *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if hasExporterName(name) {
		return "the serialized output of " + name
	}
	if hasWriterParam(p.Info, fd.Type) {
		return "the stream written by " + name
	}
	why := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CompositeLit:
			if typeIs(p.Info.Types[x].Type, "nocsim/internal/sim", "Result") {
				why = "a sim.Result built by " + name
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if typeIs(p.Info.Types[sel.X].Type, "nocsim/internal/sim", "Result") {
						why = "a sim.Result written by " + name
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p.Info, x)
			if funcIs(fn, "nocsim/internal/sim", "DeriveSeed") || funcIs(fn, "nocsim/internal/sim", "Identify") {
				why = "seed derivation in " + name
			}
		}
		return true
	})
	return why
}

// isCollectAndSort recognizes the one blessed shape of map iteration in
// a sensitive function:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// The loop body may branch but must only append to slices; at least one
// appended slice must reach a sort/slices sort call later in the
// function.
func isCollectAndSort(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	targets := appendOnlyTargets(p, rs.Body.List, nil)
	if targets == nil || len(targets) == 0 {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(p.Info, call) {
			return true
		}
		for _, obj := range targets {
			for _, arg := range call.Args {
				if containsObject(p.Info, arg, obj) {
					sorted = true
				}
			}
		}
		return !sorted
	})
	return sorted
}

// appendOnlyTargets walks loop-body statements and returns the objects
// of the slices they append to, or nil if any statement is not an
// append assignment (or an if/block wrapping only such assignments).
func appendOnlyTargets(p *Package, stmts []ast.Stmt, acc []types.Object) []types.Object {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			obj := appendTarget(p, s)
			if obj == nil {
				return nil
			}
			acc = append(acc, obj)
		case *ast.IfStmt:
			if s.Init != nil {
				return nil
			}
			acc = appendOnlyTargets(p, s.Body.List, acc)
			if acc == nil {
				return nil
			}
			if s.Else != nil {
				block, ok := s.Else.(*ast.BlockStmt)
				if !ok {
					return nil
				}
				acc = appendOnlyTargets(p, block.List, acc)
				if acc == nil {
					return nil
				}
			}
		case *ast.BlockStmt:
			acc = appendOnlyTargets(p, s.List, acc)
			if acc == nil {
				return nil
			}
		default:
			return nil
		}
	}
	if acc == nil {
		acc = []types.Object{}
	}
	return acc
}

// appendTarget matches `x = append(x, ...)` and returns x's object.
func appendTarget(p *Package, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(p.Info, call, "append") || len(call.Args) < 2 {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || p.Info.ObjectOf(first) != p.Info.ObjectOf(lhs) {
		return nil
	}
	return p.Info.ObjectOf(lhs)
}

// isSortCall reports whether call invokes a sort/slices ordering
// function.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
