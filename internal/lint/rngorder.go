package lint

import (
	"go/token"
)

// analyzeRNGOrder guards the route cache's RNG-exact replay seam. The
// cache records how many tie-break draws a computed decision consumed
// from ctx.Rand and replays exactly that many on every hit, keeping the
// shared per-router RNG stream bit-identical with caching on or off
// (see internal/routing/cache.go). That accounting only sees draws that
// flow through ctx.Rand: a draw on any other generator reachable from a
// Route tree — an algorithm-owned *rand.Rand field, a local source —
// would be invisible to the recorder, so a cache hit would skip it and
// silently desync every later draw in the run.
//
// The rule walks every Route method (the routing-pipeline entry points,
// identified by name and a Context parameter) in the deterministic
// roots, following module-local calls with context-sensitive argument
// binding, and requires the receiver of every Intn-shaped draw to trace
// back to the Context's Rand field. The determinism rule separately
// forbids global math/rand state; this rule closes the per-instance
// gap.
var analyzeRNGOrder = &ProgramAnalyzer{
	Name: "rngorder",
	Doc:  "every Rand draw reachable from a Route tree flows through ctx.Rand (the cache's record/replay seam)",
	Run:  runRNGOrder,
}

func runRNGOrder(prog *Program) []Finding {
	var out []Finding
	roots := routeRoots(prog)
	// Deterministic order across the map-ordered function index.
	sortFuncNodes(roots)
	for _, root := range roots {
		if !underAny(root.Pkg.Path, deterministicRoots) {
			continue
		}
		w := newRouteWalker(prog, nil)
		owner := routeOwner(root)
		w.onDraw = func(recv srcTag, pos token.Pos) {
			if recv == srcRand {
				return
			}
			out = append(out, Finding{Pos: prog.position(pos), Rule: "rngorder",
				Msg: "Intn draw reachable from " + owner + " does not come from ctx.Rand; " +
					"the route cache records and replays only ctx.Rand draws, so this draw would desync replay"})
		}
		walkRoute(w, root)
	}
	return out
}

// sortFuncNodes orders nodes by source position for stable reports.
func sortFuncNodes(nodes []*FuncNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Decl.Pos() < nodes[j-1].Decl.Pos(); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}
