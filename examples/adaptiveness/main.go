// Adaptiveness: compute the paper's two-level routing adaptiveness
// (Section 3.1) for every implemented algorithm, regenerate Table 1, and
// print the Section 4.4 hardware cost model.
package main

import (
	"fmt"
	"log"

	"nocsim"
	"nocsim/internal/exp"
)

func main() {
	cfg := nocsim.DefaultConfig()

	fmt.Println("== two-level routing adaptiveness (Section 3.1) ==")
	fmt.Printf("%-16s %22s %10s\n", "algorithm", "P_adapt(n0 -> n27)", "VC_adapt")
	for _, alg := range nocsim.Algorithms() {
		pa, err := nocsim.PortAdaptiveness(cfg, alg, 0, 27)
		if err != nil {
			log.Fatal(err)
		}
		va, err := nocsim.VCAdaptiveness(alg, cfg.VCs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %22.3f %10.3f\n", alg, pa, va)
	}

	fmt.Println("\n== Table 1 and network-wide means ==")
	fmt.Println(exp.Table1().Format())

	fmt.Println("== Section 4.4: Footprint storage cost ==")
	for _, c := range []struct{ nodes, vcs int }{{64, 10}, {64, 16}, {256, 16}} {
		fmt.Printf("%3d nodes, %2d VCs: %d bits per port\n",
			c.nodes, c.vcs, nocsim.FootprintCostBits(c.nodes, c.vcs))
	}
}
