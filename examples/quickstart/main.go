// Quickstart: simulate the paper's baseline configuration — an 8×8 mesh
// with Footprint routing — under uniform random traffic and print the
// headline statistics, then compare against DBAR at the same load.
package main

import (
	"fmt"
	"log"

	"nocsim"
)

func main() {
	cfg := nocsim.DefaultConfig()
	// Trim the measurement phases so the example finishes in seconds.
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 2000, 3000, 10000

	fmt.Println("== nocsim quickstart: 8x8 mesh, 10 VCs, uniform traffic @ 0.35 ==")
	for _, alg := range []string{"footprint", "dbar", "dor"} {
		cfg.Algorithm = alg
		res, err := nocsim.Run(cfg, "uniform", 0.35)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s latency %6.1f cycles   p99 %4.0f   accepted %.3f flits/node/cycle   stable=%v\n",
			alg, res.AvgLatency(nocsim.ClassBackground), res.P99, res.Accepted, res.Stable)
	}

	// A full latency-throughput curve for Footprint.
	fmt.Println("\n== footprint latency-throughput curve, transpose traffic ==")
	cfg.Algorithm = "footprint"
	pts, err := nocsim.LatencyThroughput(cfg, "transpose", []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		status := fmt.Sprintf("%6.1f cycles", p.Result.AvgLatency(nocsim.ClassBackground))
		if !p.Result.Stable {
			status = "saturated"
		}
		fmt.Printf("  rate %.2f -> %s\n", p.Rate, status)
	}
}
