// Trace replay: generate PARSEC-substitute traces, write them to disk in
// the binary trace format, read them back, merge two workloads and replay
// the pair through the simulator under Footprint and DBAR — the Figure 10
// workflow end to end.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nocsim"
	"nocsim/internal/trace"
)

func main() {
	cfg := nocsim.DefaultConfig()
	const cycles = 6000

	// 1. Generate two workload traces.
	fluid, err := nocsim.GeneratePARSEC(cfg, "fluidanimate", cycles, 1)
	if err != nil {
		log.Fatal(err)
	}
	x264, err := nocsim.GeneratePARSEC(cfg, "x264", cycles, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated fluidanimate: %d records, x264: %d records\n", len(fluid), len(x264))

	// 2. Round-trip one through the on-disk format.
	dir, err := os.MkdirTemp("", "nocsim-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "fluidanimate.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(f, fluid); err != nil {
		log.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.Read(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote and re-read %s: %d records, %d bytes on disk\n",
		filepath.Base(path), len(loaded), fi.Size())

	// 3. Merge the pair and replay under both algorithms.
	merged := nocsim.MergeTraces(loaded, x264)
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, cycles, 8*cycles
	for _, alg := range []string{"footprint", "dbar"} {
		cfg.Algorithm = alg
		s, err := nocsim.New(cfg, nocsim.NewTracePlayer(merged))
		if err != nil {
			log.Fatal(err)
		}
		res := s.Run()
		fmt.Printf("%-10s replayed %d packets: avg latency %.1f cycles, purity %.3f, HoL degree %.1f\n",
			alg, res.MeasuredEjected, res.AvgLatency(nocsim.ClassBackground), res.Purity, res.HoLDegree)
	}
}
