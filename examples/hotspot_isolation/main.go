// Hotspot isolation: the paper's headline scenario (Figure 9). The eight
// persistent flows of Table 3 oversubscribe four endpoints while every
// other node sends uniform background traffic at 30% load; the example
// shows how the background traffic's latency collapses under DBAR but
// survives under Footprint as the hotspot rate rises.
package main

import (
	"fmt"
	"log"

	"nocsim"
)

func main() {
	cfg := nocsim.DefaultConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 1500, 2500, 8000

	rates := []float64{0.15, 0.30, 0.45, 0.60}
	curves := map[string][]nocsim.HotspotPoint{}
	for _, alg := range []string{"footprint", "dbar"} {
		cfg.Algorithm = alg
		pts, err := nocsim.HotspotCurve(cfg, 0.3, rates)
		if err != nil {
			log.Fatal(err)
		}
		curves[alg] = pts
	}

	fmt.Println("== background latency under endpoint congestion (Table 3 flows + 30% uniform) ==")
	fmt.Printf("%-10s %14s %14s\n", "hot rate", "footprint", "dbar")
	for i, r := range rates {
		cell := func(alg string) string {
			p := curves[alg][i]
			if !p.Stable {
				return "saturated"
			}
			return fmt.Sprintf("%.1f cycles", p.BackgroundLatency)
		}
		fmt.Printf("%-10.2f %14s %14s\n", r, cell("footprint"), cell("dbar"))
	}

	fmt.Println("\nFootprint regulates adaptiveness: hotspot packets wait on footprint")
	fmt.Println("VCs instead of spreading across every virtual channel, so the")
	fmt.Println("congestion tree stays slim and background traffic keeps flowing.")
}
